// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 7 — throughput on the real-world-shaped datasets: (a) Wiki
// versions, uniform read and write workloads; (b) Ethereum transactions,
// per-block indexes behind a block list (ledger simulation).
// Shape to reproduce: (a) ranks like YCSB (MBT reads strong, POS ≈
// baseline, MPT slowest — Wiki's long URL keys hurt it). (b) POS-Tree wins
// writes thanks to its bottom-up batched block build; reads are slower
// than writes for everyone because the block scan dominates.

#include "bench/bench_common.h"
#include "system/ledger.h"
#include "workload/datasets.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);

  PrintHeader("Figure 7(a)", "Wiki dataset read/write throughput (kops/s)");
  {
    const uint64_t pages = 20000 * scale;
    WikiDataset wiki(pages);
    auto records = wiki.InitialRecords();
    printf("%8s %10s %10s\n", "index", "read", "write");
    for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
      Hash root = LoadRecords(index.get(), records);
      // Uniformly selected keys (paper: "read and write workload using
      // keys uniformly selected from the dataset").
      Rng rng(3);
      std::vector<YcsbOp> reads, writes;
      for (int i = 0; i < 3000; ++i) {
        const uint64_t p = rng.Uniform(pages);
        reads.push_back({YcsbOp::Type::kRead, wiki.KeyOf(p), ""});
        writes.push_back(
            {YcsbOp::Type::kWrite, wiki.KeyOf(p), wiki.ValueOf(p, 1 + i)});
      }
      const double r = RunOps(index.get(), &root, reads);
      const double w = RunOps(index.get(), &root, writes, WriteBatchFor(name, 100));
      printf("%8s %10.1f %10.1f\n", name.c_str(), r, w);
      fflush(stdout);
    }
  }

  PrintHeader("Figure 7(b)",
              "Ethereum transactions: block building (write) and tx lookup "
              "(read), kops/s");
  {
    const uint64_t blocks = 30 * scale;
    const uint64_t txs_per_block = 200;
    EthDataset eth;
    printf("%8s %10s %10s\n", "index", "read", "write");
    for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore(), 512)) {
      Ledger ledger(index.get(), /*batch_build=*/name == "pos" || name == "mbt");
      // Write = append blocks (per-block index built from scratch).
      Timer wt;
      for (uint64_t b = 0; b < blocks; ++b) {
        SIRI_CHECK(ledger.AppendBlock(eth.BlockRecords(b, txs_per_block)).ok());
      }
      const double write_kops =
          blocks * txs_per_block / wt.ElapsedSeconds() / 1000.0;

      // Read = lookup of random transactions (block scan + index probe).
      Rng rng(4);
      Timer rt;
      const int reads = 300;
      for (int i = 0; i < reads; ++i) {
        const uint64_t b = rng.Uniform(blocks);
        auto txs = eth.BlockRecords(b, txs_per_block);
        auto got = ledger.Lookup(txs[rng.Uniform(txs_per_block)].key);
        SIRI_CHECK(got.ok());
        SIRI_CHECK(got->has_value());
      }
      const double read_kops = reads / rt.ElapsedSeconds() / 1000.0;
      printf("%8s %10.2f %10.2f\n", name.c_str(), read_kops, write_kops);
      fflush(stdout);
    }
  }
  return 0;
}
