// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 14 — single-group data access: (a) storage usage and (b) number
// of distinct nodes after loading N records and applying versioned
// updates, per structure.
// Shape to reproduce: MBT largest storage (biggest nodes) but the fewest
// nodes (fixed skeleton); MPT more storage and far more nodes than
// POS/baseline (deep paths => more node creations); POS ≈ baseline.

#include "bench/bench_common.h"
#include "metrics/dedup.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  std::vector<uint64_t> sizes;
  for (uint64_t n : {10000, 20000, 40000, 80000}) sizes.push_back(n * scale);
  const int versions = 10;

  PrintHeader("Figure 14",
              "single-group storage (MB) and #nodes (x1000) incl. versions");
  printf("%10s | %28s | %28s\n", "", "storage MB", "#nodes x1000");
  printf("%10s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "#records", "pos",
         "mbt", "mpt", "mvmb", "pos", "mbt", "mpt", "mvmb");

  for (uint64_t n : sizes) {
    YcsbGenerator gen(1);
    auto records = gen.GenerateRecords(n);
    double mb[4];
    double knodes[4];
    int idx = 0;
    for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
      std::vector<Hash> roots;
      Hash root = LoadRecords(index.get(), records);
      roots.push_back(root);
      Rng rng(8);
      for (int v = 1; v <= versions; ++v) {
        std::vector<KV> updates;
        for (uint64_t i = 0; i < n / 100; ++i) {
          const uint64_t r = rng.Uniform(n);
          updates.push_back(KV{gen.KeyOf(r), gen.ValueOf(r, v)});
        }
        auto next = index->PutBatch(root, updates);
        SIRI_CHECK(next.ok());
        root = *next;
        roots.push_back(root);
      }
      auto fp = ComputeFootprint(*index, roots);
      SIRI_CHECK(fp.ok());
      mb[idx] = static_cast<double>(fp->bytes) / 1e6;
      knodes[idx] = static_cast<double>(fp->nodes) / 1e3;
      ++idx;
    }
    printf("%10llu | %6.1f %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f %6.1f\n",
           static_cast<unsigned long long>(n), mb[0], mb[1], mb[2], mb[3],
           knodes[0], knodes[1], knodes[2], knodes[3]);
    fflush(stdout);
  }
  return 0;
}
