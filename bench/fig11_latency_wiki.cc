// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 11 — read/write latency distributions on the Wiki dataset.
// Shape to reproduce: same ranking as Figure 10 (POS best, MPT worst —
// amplified by the long URL keys).

#include "bench/bench_common.h"
#include "common/histogram.h"
#include "workload/datasets.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t pages = 20000 * scale;
  const int num_ops = 5000;

  PrintHeader("Figure 11", "Wiki latency distributions (microseconds)");

  WikiDataset wiki(pages);
  auto records = wiki.InitialRecords();
  Rng rng(5);

  for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
    Hash root = LoadRecords(index.get(), records);
    Histogram read_lat, write_lat;
    for (int i = 0; i < num_ops; ++i) {
      const uint64_t p = rng.Uniform(pages);
      {
        Timer t;
        auto got = index->Get(root, wiki.KeyOf(p), nullptr);
        read_lat.Record(t.ElapsedMicros());
        SIRI_CHECK(got.ok());
      }
      {
        Timer t;
        auto next = index->Put(root, wiki.KeyOf(p), wiki.ValueOf(p, 1 + i));
        write_lat.Record(t.ElapsedMicros());
        SIRI_CHECK(next.ok());
        root = *next;
      }
    }
    printf("%8s  read:  %s\n", name.c_str(), read_lat.Summary().c_str());
    printf("%8s  write: %s\n", name.c_str(), write_lat.Summary().c_str());
    fflush(stdout);
  }
  return 0;
}
