// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 17 — diverse-group collaboration: 10 parties initialize the same
// dataset and run update workloads whose records overlap by a varying
// ratio; measure storage, node counts, deduplication ratio η, and node
// sharing ratio over the parties' final instances.
// Shape to reproduce: all metrics improve with overlap; MPT reaches the
// highest η (paper: up to 0.96) and sharing ratio (up to 0.7); POS-Tree
// beats the MVMB+-Tree baseline on sharing ratio decisively (0.48 vs 0.27
// in the paper) thanks to content-addressed chunk boundaries; MBT trails
// the other SIRI structures.

#include "bench/bench_common.h"
#include "metrics/dedup.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);

  PrintHeader("Figure 17", "collaboration vs overlap ratio");
  printf("%8s | %7s | %12s | %12s | %10s | %10s\n", "overlap", "index",
         "storage(MB)", "nodes(x1000)", "dedup", "sharing");

  for (int overlap = 10; overlap <= 100; overlap += 30) {
    for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
      CollaborationConfig cfg;
      cfg.base_records = 4000 * scale;
      cfg.insert_records = 4 * cfg.base_records;
      cfg.parties = 10;
      cfg.overlap = overlap / 100.0;
      cfg.batch_size = 1000;
      // Compare the parties' final instances: each party inserted in its
      // own order, so page sharing is exactly what structural invariance
      // buys (intermediate-version sharing is Figure 18's subject).
      cfg.all_versions = false;
      YcsbGenerator gen(1);
      auto roots = RunCollaboration(index.get(), cfg, &gen);

      std::vector<PageSet> page_sets;
      for (const auto& party_roots : roots) {
        PageSet pages;
        for (const Hash& r : party_roots) {
          SIRI_CHECK(index->CollectPages(r, &pages).ok());
        }
        page_sets.push_back(std::move(pages));
      }
      auto stats = ComputeDedupStats(index->store(), page_sets);
      SIRI_CHECK(stats.ok());
      printf("%7d%% | %7s | %12.1f | %12.1f | %10.3f | %10.3f\n", overlap,
             name.c_str(), static_cast<double>(stats->union_bytes) / 1e6,
             static_cast<double>(stats->union_nodes) / 1e3,
             stats->DeduplicationRatio(), stats->NodeSharingRatio());
      fflush(stdout);
    }
  }
  return 0;
}
