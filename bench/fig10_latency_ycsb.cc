// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 10 — per-operation latency distributions on YCSB: read/write ×
// balanced (θ=0) / skewed (θ=0.9), 160k keys, 10k operations.
// Shape to reproduce: POS fastest on both read and write; MPT slowest with
// multiple peaks (keys at different trie depths); MBT best on reads but
// behind POS on writes; skew barely changes anything.

#include "bench/bench_common.h"
#include "common/histogram.h"

using namespace siri;
using namespace siri::bench;

namespace {

void PrintHistogram(const char* label, const Histogram& h) {
  printf("  %-6s %s\n", label, h.Summary().c_str());
  auto buckets = h.FixedBuckets(8);
  for (const auto& b : buckets) {
    printf("    [%8.3f,%8.3f) us: %llu\n", b.lo, b.hi,
           static_cast<unsigned long long>(b.count));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t n = 40000 * scale;
  const uint64_t num_ops = 10000;

  PrintHeader("Figure 10", "YCSB latency distributions (microseconds)");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);

  for (double theta : {0.0, 0.9}) {
    printf("\n[%s workload, θ=%.1f]\n", theta == 0 ? "balanced" : "skewed",
           theta);
    auto read_ops = gen.GenerateOps(num_ops, n, 0.0, theta);
    auto write_ops = gen.GenerateOps(num_ops, n, 1.0, theta);
    for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
      Hash root = LoadRecords(index.get(), records);
      Histogram read_lat, write_lat;
      for (const YcsbOp& op : read_ops) {
        Timer t;
        auto got = index->Get(root, op.key, nullptr);
        read_lat.Record(t.ElapsedMicros());
        SIRI_CHECK(got.ok());
      }
      for (const YcsbOp& op : write_ops) {
        Timer t;
        auto next = index->Put(root, op.key, op.value);
        write_lat.Record(t.ElapsedMicros());
        SIRI_CHECK(next.ok());
        root = *next;
      }
      printf(" %s:\n", name.c_str());
      PrintHistogram("read", read_lat);
      PrintHistogram("write", write_lat);
      fflush(stdout);
    }
  }

  // Concurrent clients: per-op read latency under K threads reading through
  // private caches over a shared servlet (slept 20us round trips). Latency
  // per op stays roughly flat while aggregate throughput scales — the
  // signature of overlapped remote fetches rather than core contention.
  {
    const std::vector<int> thread_counts = ParseThreadCounts(argc, argv);
    printf("\n[concurrent read latency] n=%llu rtt=20us(sleep) "
           "cache=1MB/client\n",
           static_cast<unsigned long long>(n));
    auto ops = gen.GenerateOps(num_ops / 2, n, 0.0, 0.0);
    auto server_store = NewInMemoryNodeStore();
    ForkbaseServlet servlet(server_store);
    for (auto& [name, index] : MakeAllIndexes(server_store)) {
      Hash root = LoadRecords(index.get(), records);
      printf(" %s:\n", name.c_str());
      for (int threads : thread_counts) {
        ConcurrentReadConfig cfg;
        cfg.threads = threads;
        cfg.record_latency = true;
        auto result = RunConcurrentReads(&servlet, *index, root, ops, cfg);
        printf("  t=%d agg=%8.1f kops hit=%4.2f  %s\n", threads, result.kops,
               result.hit_ratio, result.latencies_us.Summary().c_str());
        fflush(stdout);
      }
    }
  }
  return 0;
}
