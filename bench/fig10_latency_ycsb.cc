// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 10 — per-operation latency distributions on YCSB: read/write ×
// balanced (θ=0) / skewed (θ=0.9), 160k keys, 10k operations.
// Shape to reproduce: POS fastest on both read and write; MPT slowest with
// multiple peaks (keys at different trie depths); MBT best on reads but
// behind POS on writes; skew barely changes anything.

#include "bench/bench_common.h"
#include "common/histogram.h"
#include "store/file_store.h"
#include "system/ledger.h"

using namespace siri;
using namespace siri::bench;

namespace {

void PrintHistogram(const char* label, const Histogram& h) {
  printf("  %-6s %s\n", label, h.Summary().c_str());
  auto buckets = h.FixedBuckets(8);
  for (const auto& b : buckets) {
    printf("    [%8.3f,%8.3f) us: %llu\n", b.lo, b.hi,
           static_cast<unsigned long long>(b.count));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t n = 40000 * scale;
  const uint64_t num_ops = 10000;

  PrintHeader("Figure 10", "YCSB latency distributions (microseconds)");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);

  for (double theta : {0.0, 0.9}) {
    printf("\n[%s workload, θ=%.1f]\n", theta == 0 ? "balanced" : "skewed",
           theta);
    auto read_ops = gen.GenerateOps(num_ops, n, 0.0, theta);
    auto write_ops = gen.GenerateOps(num_ops, n, 1.0, theta);
    for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
      Hash root = LoadRecords(index.get(), records);
      Histogram read_lat, write_lat;
      for (const YcsbOp& op : read_ops) {
        Timer t;
        auto got = index->Get(root, op.key, nullptr);
        read_lat.Record(t.ElapsedMicros());
        SIRI_CHECK(got.ok());
      }
      for (const YcsbOp& op : write_ops) {
        Timer t;
        auto next = index->Put(root, op.key, op.value);
        write_lat.Record(t.ElapsedMicros());
        SIRI_CHECK(next.ok());
        root = *next;
      }
      printf(" %s:\n", name.c_str());
      PrintHistogram("read", read_lat);
      PrintHistogram("write", write_lat);
      fflush(stdout);
    }
  }

  // Batched vs eager commits over the remote boundary: a Ledger appends
  // blocks of 100 txs through a client store whose upload RPCs cost a
  // slept 50us round trip. A batched build stages the block's dirty nodes
  // and ships them as ONE PutMany RPC per commit; the eager build applies
  // txs one at a time and pays one upload RPC per operation. The rpc
  // column is upload RPCs per commit — ≤ 1.0 certifies batching.
  {
    const int kBlocks = 20;
    const int kTxsPerBlock = 100;
    const uint64_t kUploadRttNanos = 50000;

    printf("\n[commit latency: batched vs eager] %d-tx blocks, upload "
           "rtt=50us(sleep)\n",
           kTxsPerBlock);
    printf(" %-6s %28s %28s\n", "", "batched p50/p95 us (rpc/c)",
           "eager p50/p95 us (rpc/c)");

    YcsbGenerator commit_gen(7);
    for (const char* mode_name : {"pos", "mbt", "mpt", "mvmb"}) {
      printf(" %-6s", mode_name);
      for (bool batched : {true, false}) {
        auto server_store = NewInMemoryNodeStore();
        ForkbaseServlet servlet(server_store);
        auto client_store = std::make_shared<ForkbaseClientStore>(
            &servlet, 4 << 20, kUploadRttNanos, RttModel::kSleep);
        // The whole structure lives behind the client boundary: commits
        // upload their nodes, lookups during the build fetch remotely.
        auto indexes = MakeAllIndexes(client_store, /*mbt_buckets=*/1024);
        ImmutableIndex* index = nullptr;
        for (auto& [name, ix] : indexes) {
          if (name == mode_name) index = ix.get();
        }
        SIRI_CHECK(index != nullptr);
        client_store->ResetOpCounters();

        Ledger ledger(index, /*batch_build=*/batched);
        Histogram commit_lat;
        for (int b = 0; b < kBlocks; ++b) {
          std::vector<KV> txs;
          for (int i = 0; i < kTxsPerBlock; ++i) {
            const uint64_t id = static_cast<uint64_t>(b) * kTxsPerBlock + i;
            txs.push_back(KV{commit_gen.KeyOf(id, "blk"),
                             commit_gen.ValueOf(id, 0, "blk")});
          }
          Timer t;
          SIRI_CHECK(ledger.AppendBlock(txs).ok());
          commit_lat.Record(t.ElapsedMicros());
        }
        const double rpcs_per_commit =
            static_cast<double>(client_store->remote_stats().remote_puts) /
            kBlocks;
        printf("   %9.0f/%8.0f (%5.1f)", commit_lat.Percentile(0.5),
               commit_lat.Percentile(0.95), rpcs_per_commit);
        fflush(stdout);
      }
      printf("\n");
    }
  }

  // Durable batched commits: the same Ledger boundary over a disk-backed
  // store. Each block's nodes land as one batched log append, and the
  // commit flush is the only fsync — the fsyncs/commit figure should be
  // exactly 1.0 (clean flushes are skipped).
  {
    const std::string path = "/tmp/siri_fig10_commit.log";
    std::remove(path.c_str());
    std::shared_ptr<FileNodeStore> fstore;
    SIRI_CHECK(FileNodeStore::Open(path, &fstore).ok());
    SIRI_CHECK(fstore->Flush().ok());  // settle the fresh-log header
    const uint64_t baseline_fsyncs = fstore->fsync_count();

    PosTree tree(fstore);
    Ledger ledger(&tree, /*batch_build=*/true, /*sync_on_commit=*/true);
    const int kBlocks = 10;
    Histogram commit_lat;
    YcsbGenerator durable_gen(11);
    for (int b = 0; b < kBlocks; ++b) {
      std::vector<KV> txs;
      for (int i = 0; i < 200; ++i) {
        const uint64_t id = static_cast<uint64_t>(b) * 200 + i;
        txs.push_back(
            KV{durable_gen.KeyOf(id, "dur"), durable_gen.ValueOf(id, 0, "dur")});
      }
      Timer t;
      SIRI_CHECK(ledger.AppendBlock(txs).ok());
      commit_lat.Record(t.ElapsedMicros());
    }
    const double fsyncs_per_commit =
        static_cast<double>(fstore->fsync_count() - baseline_fsyncs) / kBlocks;
    printf("\n[durable batched commits] FileNodeStore ledger, 200-tx blocks: "
           "p50=%.0fus p95=%.0fus fsyncs/commit=%.2f\n",
           commit_lat.Percentile(0.5), commit_lat.Percentile(0.95),
           fsyncs_per_commit);
    std::remove(path.c_str());
  }

  // Concurrent clients: per-op read latency under K threads reading through
  // private caches over a shared servlet (slept 20us round trips). Latency
  // per op stays roughly flat while aggregate throughput scales — the
  // signature of overlapped remote fetches rather than core contention.
  {
    const std::vector<int> thread_counts = ParseThreadCounts(argc, argv);
    printf("\n[concurrent read latency] n=%llu rtt=20us(sleep) "
           "cache=1MB/client\n",
           static_cast<unsigned long long>(n));
    auto ops = gen.GenerateOps(num_ops / 2, n, 0.0, 0.0);
    auto server_store = NewInMemoryNodeStore();
    ForkbaseServlet servlet(server_store);
    for (auto& [name, index] : MakeAllIndexes(server_store)) {
      Hash root = LoadRecords(index.get(), records);
      printf(" %s:\n", name.c_str());
      for (int threads : thread_counts) {
        ConcurrentReadConfig cfg;
        cfg.threads = threads;
        cfg.record_latency = true;
        auto result = RunConcurrentReads(&servlet, *index, root, ops, cfg);
        printf("  t=%d agg=%8.1f kops hit=%4.2f  %s\n", threads, result.kops,
               result.hit_ratio, result.latencies_us.Summary().c_str());
        fflush(stdout);
      }
    }
  }
  return 0;
}
