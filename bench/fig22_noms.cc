// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 22 — Forkbase (POS-Tree) vs Noms (Prolly tree): identical system
// setup, the only variable being the internal-layer chunking strategy.
// POS-Tree tests each child digest directly; the Prolly tree re-hashes the
// serialized entries through a sliding window (67-byte window, 4 KB
// nodes — Noms' defaults, which we apply to both sides as the paper does).
// Shape to reproduce: comparable reads; POS-Tree several times faster on
// writes because it skips the per-byte rolling-hash work in internal
// layers.

#include "bench/bench_common.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  std::vector<uint64_t> sizes;
  for (uint64_t n : {10000, 20000, 40000, 80000, 128000}) {
    sizes.push_back(n * scale);
  }
  const uint64_t num_ops = 5000;

  PrintHeader("Figure 22", "Forkbase (POS) vs Noms (Prolly): kops/s");
  printf("%10s | %10s %10s | %10s %10s\n", "#records", "pos-read",
         "noms-read", "pos-write", "noms-write");

  // Noms default geometry on both sides for a fair comparison (§5.6.2).
  PosTreeOptions pos_opt;
  pos_opt.window_size = 67;
  pos_opt.leaf_pattern_bits = 12;   // ~4 KB nodes
  pos_opt.internal_pattern_bits = 7;
  PosTreeOptions prolly_opt = PosTreeOptions::Prolly();

  for (uint64_t n : sizes) {
    YcsbGenerator gen(1);
    auto records = gen.GenerateRecords(n);
    auto read_ops = gen.GenerateOps(num_ops, n, 0.0, 0.0);
    auto write_ops = gen.GenerateOps(num_ops, n, 1.0, 0.0);

    double read_kops[2], write_kops[2];
    int i = 0;
    for (const PosTreeOptions& opt : {pos_opt, prolly_opt}) {
      PosTree tree(NewInMemoryNodeStore(), opt);
      Hash root = LoadRecords(&tree, records);
      Hash r = root;
      read_kops[i] = RunOps(&tree, &r, read_ops);
      r = root;
      write_kops[i] = RunOps(&tree, &r, write_ops, /*batch=*/100);
      ++i;
    }
    printf("%10llu | %10.1f %10.1f | %10.1f %10.1f\n",
           static_cast<unsigned long long>(n), read_kops[0], read_kops[1],
           write_kops[0], write_kops[1]);
    fflush(stdout);
  }
  return 0;
}
