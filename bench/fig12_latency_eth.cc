// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 12 — read/write latency distributions on Ethereum transactions
// through the ledger (per-block indexes + block scan).
// Shape to reproduce: read latencies are similar for all indexes because
// the block scan dominates; write latencies rank like the other write
// benchmarks (POS best via bottom-up block builds).

#include "bench/bench_common.h"
#include "common/histogram.h"
#include "system/ledger.h"
#include "workload/datasets.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t blocks = 20 * scale;
  const uint64_t txs_per_block = 200;
  const int reads = 300;

  PrintHeader("Figure 12", "Ethereum latency distributions");

  EthDataset eth;
  for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore(), 512)) {
    Ledger ledger(index.get(), /*batch_build=*/name == "pos" || name == "mbt");
    Histogram write_lat;  // per-block build latency, amortized per tx (us)
    for (uint64_t b = 0; b < blocks; ++b) {
      auto txs = eth.BlockRecords(b, txs_per_block);
      Timer t;
      SIRI_CHECK(ledger.AppendBlock(txs).ok());
      write_lat.Record(t.ElapsedMicros() / txs_per_block);
    }

    Histogram read_lat;  // per-tx lookup latency (ms: scan dominates)
    Rng rng(6);
    for (int i = 0; i < reads; ++i) {
      const uint64_t b = rng.Uniform(blocks);
      auto txs = eth.BlockRecords(b, txs_per_block);
      const std::string& key = txs[rng.Uniform(txs_per_block)].key;
      Timer t;
      auto got = ledger.Lookup(key);
      read_lat.Record(t.ElapsedMillis());
      SIRI_CHECK(got.ok());
    }
    printf("%8s  read(ms):     %s\n", name.c_str(), read_lat.Summary().c_str());
    printf("%8s  write(us/tx): %s\n", name.c_str(),
           write_lat.Summary().c_str());
    fflush(stdout);
  }
  return 0;
}
