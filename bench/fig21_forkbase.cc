// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 21 — system-level throughput with the indexes integrated behind a
// Forkbase-style servlet: reads go through a client-side node cache over
// an accounted remote boundary; writes run server-side.
// Shape to reproduce: read ranking shifts with the cache hit ratio — MBT
// suffers at small N (fixed-entry nodes yield fewer repeated reads) and at
// very large N (bucket scans), POS ≈ baseline; write ranking matches the
// index-level experiment.

#include "bench/bench_common.h"
#include "system/forkbase.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const std::vector<int> thread_counts = ParseThreadCounts(argc, argv);
  // fig21's series are all simulated-RTT in-process numbers; a socket
  // variant would be a different quantity. Refuse rather than mislabel
  // (fig06 owns the socket regime).
  if (ParseTransportFlag(argc, argv) != "inproc") {
    fprintf(stderr,
            "%s: --transport=socket is not supported by this figure; "
            "use fig06_ycsb_throughput --transport=socket\n",
            argv[0]);
    return 2;
  }
  std::vector<uint64_t> sizes;
  for (uint64_t n : {10000, 40000, 160000}) sizes.push_back(n * scale);
  const uint64_t num_ops = 3000;
  const uint64_t rtt_nanos = 20000;  // 20us simulated round trip
  const uint64_t cache_bytes = 4 << 20;

  PrintHeader("Figure 21", "Forkbase-integrated throughput (kops/s)");

  for (const char* phase : {"read", "write"}) {
    printf("\n[%s workload, rtt=%lluus, cache=%lluMB]\n", phase,
           static_cast<unsigned long long>(rtt_nanos / 1000),
           static_cast<unsigned long long>(cache_bytes >> 20));
    printf("%10s %18s %18s %18s %18s\n", "#records", "pos(kops|hit)",
           "mbt(kops|hit)", "mpt(kops|hit)", "mvmb(kops|hit)");
    for (uint64_t n : sizes) {
      printf("%10llu", static_cast<unsigned long long>(n));
      YcsbGenerator gen(1);
      auto records = gen.GenerateRecords(n);
      const bool is_read = strcmp(phase, "read") == 0;
      auto ops = gen.GenerateOps(num_ops, n, is_read ? 0.0 : 1.0, 0.0);

      auto server_store = NewInMemoryNodeStore();
      ForkbaseServlet servlet(server_store);
      for (auto& [name, server_index] : MakeAllIndexes(server_store)) {
        // Server builds the dataset.
        Hash root = LoadRecords(server_index.get(), records);
        if (is_read) {
          // Client reads through its cache.
          auto client_store = std::make_shared<ForkbaseClientStore>(
              &servlet, cache_bytes, rtt_nanos);
          auto client_index = server_index->WithStore(client_store);
          Hash client_root = root;
          const double kops = RunOps(client_index.get(), &client_root, ops);
          printf("   %9.1f|%4.2f", kops,
                 client_store->remote_stats().HitRatio());
        } else {
          // Writes run fully server-side (no cache involvement).
          const double kops = RunOps(server_index.get(), &root, ops, WriteBatchFor(name, 100));
          printf("   %9.1f|----", kops);
        }
        fflush(stdout);
      }
      printf("\n");
    }
  }

  // Multi-client scaling: K concurrent clients, each with a private cache,
  // against one servlet. Overlapped (slept) round trips make aggregate read
  // throughput scale with the client count — the regime the paper's system
  // experiment targets.
  {
    const uint64_t n = 40000 * scale;
    printf("\n[multi-client read scaling] n=%llu read-only rtt=%lluus(sleep) "
           "cache=%lluMB/client\n",
           static_cast<unsigned long long>(n),
           static_cast<unsigned long long>(rtt_nanos / 1000),
           static_cast<unsigned long long>(cache_bytes >> 20));
    printf("%8s %18s %18s %18s %18s\n", "threads", "pos(kops|hit)",
           "mbt(kops|hit)", "mpt(kops|hit)", "mvmb(kops|hit)");

    YcsbGenerator gen(1);
    auto records = gen.GenerateRecords(n);
    auto ops = gen.GenerateOps(num_ops, n, 0.0, 0.0);

    auto server_store = NewInMemoryNodeStore();
    ForkbaseServlet servlet(server_store);
    auto indexes = MakeAllIndexes(server_store);
    std::vector<Hash> roots;
    for (auto& [name, index] : indexes) {
      roots.push_back(LoadRecords(index.get(), records));
    }

    for (int threads : thread_counts) {
      printf("%8d", threads);
      for (size_t i = 0; i < indexes.size(); ++i) {
        ConcurrentReadConfig cfg;
        cfg.threads = threads;
        cfg.cache_bytes = cache_bytes;
        cfg.rtt_nanos = rtt_nanos;
        auto result = RunConcurrentReads(&servlet, *indexes[i].index, roots[i],
                                         ops, cfg);
        printf("   %11.1f|%4.2f", result.kops, result.hit_ratio);
        fflush(stdout);
      }
      printf("\n");
    }
  }

  // Multi-client write scaling: K writer clients committing staged batches
  // against the servlet, one chunk-upload RPC (slept round trip) per
  // commit. Like the read path, aggregate write throughput scales with the
  // client count because the round trips overlap; the rpc column certifies
  // that every commit shipped its whole dirty path in ≤ 1 RTT.
  {
    const std::vector<int> write_threads = ParseWriteThreadCounts(argc, argv);
    const uint64_t n = 40000 * scale;
    printf("\n[multi-client write scaling] n=%llu write-only commit=20 "
           "rtt=2ms(sleep,1/commit) cache=%lluMB/client\n",
           static_cast<unsigned long long>(n),
           static_cast<unsigned long long>(cache_bytes >> 20));
    printf("%8s %18s %18s %18s %18s\n", "threads", "pos(kops|rpc)",
           "mbt(kops|rpc)", "mpt(kops|rpc)", "mvmb(kops|rpc)");

    YcsbGenerator gen(1);
    auto records = gen.GenerateRecords(n);
    auto ops = gen.GenerateOps(num_ops, n, /*write_ratio=*/1.0, 0.0);

    auto server_store = NewInMemoryNodeStore();
    ForkbaseServlet servlet(server_store);
    auto indexes = MakeAllIndexes(server_store);
    std::vector<Hash> roots;
    for (auto& [name, index] : indexes) {
      roots.push_back(LoadRecords(index.get(), records));
    }

    for (int threads : write_threads) {
      printf("%8d", threads);
      for (size_t i = 0; i < indexes.size(); ++i) {
        ConcurrentWriteConfig cfg;
        cfg.threads = threads;
        cfg.cache_bytes = cache_bytes;
        auto result = RunConcurrentWrites(&servlet, *indexes[i].index,
                                          roots[i], ops, cfg);
        printf("   %11.2f|%4.2f", result.kops, result.RpcsPerCommit());
        fflush(stdout);
      }
      printf("\n");
    }
  }

  // Multi-writer-same-branch contention: the collaborative regime — K
  // writer clients racing commits onto ONE shared branch through the
  // servlet's BranchManager. Head movement is an optimistic CAS; a lost
  // race is retried as a two-parent merge commit (version/occ.h) whose
  // staged batch costs nothing unless it wins. The retry column is lost
  // head races per landed commit; every writer's every key must be
  // readable at the final head (zero lost updates) or the run aborts.
  {
    const std::vector<int> write_threads = ParseWriteThreadCounts(argc, argv);
    RunBranchCommitTable(8000 * scale, /*mbt_buckets=*/2048, write_threads,
                         /*commits_per_writer=*/24, /*uploads_per_commit=*/5);
    // Group-commit publish pipeline over the same contended regime:
    // {off, on} sweep with publish-bound commit bodies, so the combining
    // queue's batch-size win (commits-per-fsync > 1, throughput scaling
    // past the per-commit ceiling) is visible next to the per-commit
    // table above.
    RunGroupCommitTable(8000 * scale, /*mbt_buckets=*/2048, write_threads,
                        /*commits_per_writer=*/24, /*uploads_per_commit=*/1,
                        /*window_micros=*/500);
  }
  return 0;
}
