// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 16 — storage usage and node counts on Ethereum transaction data
// as blocks accumulate (one index instance per block).
// Shape to reproduce: MPT grows fastest (64-hex keys double the nibble
// depth); MBT inflates node *counts* relative to the others because every
// small block pays the full fixed skeleton.

#include "bench/bench_common.h"
#include "metrics/dedup.h"
#include "system/ledger.h"
#include "workload/datasets.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t max_blocks = 30 * scale;
  const uint64_t txs_per_block = 200;
  const uint64_t step = max_blocks / 3;

  PrintHeader("Figure 16", "Ethereum storage (MB) / #nodes (x1000) by blocks");
  printf("%10s | %28s | %28s\n", "", "storage MB", "#nodes x1000");
  printf("%10s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "#blocks", "pos",
         "mbt", "mpt", "mvmb", "pos", "mbt", "mpt", "mvmb");

  EthDataset eth;
  struct State {
    std::string name;
    std::unique_ptr<ImmutableIndex> index;
    std::unique_ptr<Ledger> ledger;
  };
  std::vector<State> states;
  for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore(), 512)) {
    State s;
    s.name = name;
    s.index = std::move(index);
    s.ledger = std::make_unique<Ledger>(s.index.get());
    states.push_back(std::move(s));
  }

  for (uint64_t b = 1; b <= max_blocks; ++b) {
    auto txs = eth.BlockRecords(b, txs_per_block);
    for (State& s : states) SIRI_CHECK(s.ledger->AppendBlock(txs).ok());
    if (b % step == 0) {
      printf("%10llu |", static_cast<unsigned long long>(b));
      std::vector<double> knodes;
      for (State& s : states) {
        auto fp = ComputeFootprint(*s.index, s.ledger->block_roots());
        SIRI_CHECK(fp.ok());
        printf(" %6.1f", static_cast<double>(fp->bytes) / 1e6);
        knodes.push_back(static_cast<double>(fp->nodes) / 1e3);
      }
      printf(" |");
      for (double k : knodes) printf(" %6.1f", k);
      printf("\n");
      fflush(stdout);
    }
  }
  return 0;
}
