// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 18 — effect of the write batch size in the collaboration setting
// (overlap fixed at 50%), retaining every intermediate version.
// Shape to reproduce: the dedup ratio decreases as the batch grows (each
// batch dirties a larger fraction of the tree, so adjacent versions share
// fewer pages), and storage/node totals shrink because fewer versions
// exist overall.

#include "bench/bench_common.h"
#include "metrics/dedup.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);

  PrintHeader("Figure 18", "effect of batch size (overlap 50%)");
  printf("%8s | %7s | %12s | %12s | %10s | %10s\n", "batch", "index",
         "storage(MB)", "nodes(x1000)", "dedup", "sharing");

  for (size_t batch : {500u, 1000u, 2000u, 4000u}) {
    for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
      CollaborationConfig cfg;
      cfg.base_records = 4000 * scale;
      cfg.insert_records = 4 * cfg.base_records;
      cfg.parties = 5;
      cfg.overlap = 0.5;
      cfg.batch_size = batch;
      cfg.all_versions = true;  // versions drive the batch-size effect
      YcsbGenerator gen(1);
      auto roots = RunCollaboration(index.get(), cfg, &gen);

      std::vector<PageSet> page_sets;
      for (const auto& party_roots : roots) {
        for (const Hash& r : party_roots) {
          PageSet pages;
          SIRI_CHECK(index->CollectPages(r, &pages).ok());
          page_sets.push_back(std::move(pages));
        }
      }
      auto stats = ComputeDedupStats(index->store(), page_sets);
      SIRI_CHECK(stats.ok());
      printf("%8zu | %7s | %12.1f | %12.1f | %10.3f | %10.3f\n", batch,
             name.c_str(), static_cast<double>(stats->union_bytes) / 1e6,
             static_cast<double>(stats->union_nodes) / 1e3,
             stats->DeduplicationRatio(), stats->NodeSharingRatio());
      fflush(stdout);
    }
  }
  return 0;
}
