// Copyright (c) 2026 The siri Authors. MIT license.
//
// google-benchmark microbenchmarks for the substrates: SHA-256 digesting,
// rolling-hash throughput, node codec encode/decode, store puts/gets, and
// per-structure point operations. These are not paper figures; they guard
// against substrate-level performance regressions.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "crypto/rolling_hash.h"
#include "crypto/sha256.h"
#include "index/mbt/mbt.h"
#include "index/mpt/mpt.h"
#include "index/mvmb/mvmb_tree.h"
#include "index/ordered/node_codec.h"
#include "index/pos/pos_tree.h"
#include "store/node_store.h"
#include "workload/ycsb.h"

namespace siri {
namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const std::string data = rng.Bytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_RollingHash(benchmark::State& state) {
  Rng rng(2);
  const std::string data = rng.Bytes(65536);
  RollingHash rh(48);
  for (auto _ : state) {
    uint64_t acc = 0;
    for (char c : data) acc ^= rh.Roll(static_cast<uint8_t>(c));
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_RollingHash);

void BM_LeafEncodeDecode(benchmark::State& state) {
  std::vector<KV> entries;
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    entries.push_back(KV{rng.AlphaNum(12), rng.AlphaNum(256)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });
  for (auto _ : state) {
    const std::string node = EncodeLeaf(entries);
    std::vector<KV> back;
    benchmark::DoNotOptimize(DecodeLeaf(node, &back));
  }
}
BENCHMARK(BM_LeafEncodeDecode);

void BM_StorePutGet(benchmark::State& state) {
  auto store = NewInMemoryNodeStore();
  Rng rng(4);
  std::vector<std::string> blobs;
  std::vector<Hash> hashes;
  for (int i = 0; i < 1024; ++i) {
    blobs.push_back(rng.Bytes(1024));
    hashes.push_back(store->Put(blobs.back()));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Get(hashes[i++ % hashes.size()]));
  }
}
BENCHMARK(BM_StorePutGet);

template <typename MakeIndexFn>
void RunIndexGet(benchmark::State& state, MakeIndexFn make_index) {
  auto store = NewInMemoryNodeStore();
  auto index = make_index(store);
  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(state.range(0));
  Hash root = index->EmptyRoot();
  for (size_t i = 0; i < records.size(); i += 4000) {
    std::vector<KV> batch(
        records.begin() + i,
        records.begin() + std::min(i + 4000, records.size()));
    root = *index->PutBatch(root, batch);
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Get(root, gen.KeyOf(rng.Uniform(records.size())), nullptr));
  }
}

void BM_PosGet(benchmark::State& state) {
  RunIndexGet(state, [](NodeStorePtr s) {
    return std::make_unique<PosTree>(std::move(s));
  });
}
BENCHMARK(BM_PosGet)->Arg(10000)->Arg(100000);

void BM_MbtGet(benchmark::State& state) {
  RunIndexGet(state, [](NodeStorePtr s) {
    return std::make_unique<Mbt>(std::move(s));
  });
}
BENCHMARK(BM_MbtGet)->Arg(10000)->Arg(100000);

void BM_MptGet(benchmark::State& state) {
  RunIndexGet(state, [](NodeStorePtr s) {
    return std::make_unique<Mpt>(std::move(s));
  });
}
BENCHMARK(BM_MptGet)->Arg(10000)->Arg(100000);

void BM_MvmbGet(benchmark::State& state) {
  RunIndexGet(state, [](NodeStorePtr s) {
    return std::make_unique<MvmbTree>(std::move(s));
  });
}
BENCHMARK(BM_MvmbGet)->Arg(10000)->Arg(100000);

void BM_PosPut(benchmark::State& state) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(50000);
  Hash root = Hash::Zero();
  for (size_t i = 0; i < records.size(); i += 4000) {
    std::vector<KV> batch(
        records.begin() + i,
        records.begin() + std::min(i + 4000, records.size()));
    root = *tree.PutBatch(root, batch);
  }
  Rng rng(6);
  uint64_t version = 1;
  for (auto _ : state) {
    const uint64_t r = rng.Uniform(50000);
    root = *tree.Put(root, gen.KeyOf(r), gen.ValueOf(r, version++));
  }
}
BENCHMARK(BM_PosPut);

}  // namespace
}  // namespace siri

BENCHMARK_MAIN();
