// Copyright (c) 2026 The siri Authors. MIT license.
//
// Shared scaffolding for the per-figure benchmark binaries. Every binary
// prints the same series the corresponding paper figure/table plots, at a
// laptop-scale default that preserves the figure's *shape* (who wins, by
// what factor, where the crossovers are). Pass --scale=K to multiply the
// dataset sizes, e.g. --scale=8 approaches the paper's full sizes.

#ifndef SIRI_BENCH_BENCH_COMMON_H_
#define SIRI_BENCH_BENCH_COMMON_H_

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/timer.h"
#include "crypto/sha256.h"
#include "index/index.h"
#include "io/fault_env.h"
#include "index/mbt/mbt.h"
#include "index/mpt/mpt.h"
#include "index/mvmb/mvmb_tree.h"
#include "index/pos/pos_tree.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "net/wire.h"
#include "store/file_store.h"
#include "store/node_store.h"
#include "system/forkbase.h"
#include "version/occ.h"
#include "version/transfer.h"
#include "workload/ycsb.h"

namespace siri {
namespace bench {

/// Every flag any figure bench understands. Entries ending in '=' are
/// prefix flags (take a value); the rest match exactly.
inline const char* const kKnownBenchFlags[] = {
    "--scale=",
    "--threads=",
    "--write-threads=",
    "--help",
    "--threads-only",
    "--write-scaling-only",
    "--branch-commits-only",
    "--group-commit-only",
    "--smoke",
    "--transport=",
    "--chaos",
    "--pipeline",
    "--disk-fault=",
};

/// Returns the first argv entry matching no known bench flag, or nullptr
/// when every argument is recognized. Pure (no exit, no I/O) so
/// tests/bench_flags_test.cc can cover the matching rules directly.
inline const char* FirstUnknownFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    bool known = false;
    for (const char* flag : kKnownBenchFlags) {
      const size_t len = strlen(flag);
      known = flag[len - 1] == '=' ? strncmp(argv[i], flag, len) == 0
                                   : strcmp(argv[i], flag) == 0;
      if (known) break;
    }
    if (!known) return argv[i];
  }
  return nullptr;
}

/// Parses --scale=K (default 1) and --help from argv. Rejects anything
/// not in kKnownBenchFlags up front (exit 2 with a message), so a typo'd
/// flag (--sclae=8, --thread=4) aborts the run instead of silently
/// benchmarking the defaults and poisoning a recorded trajectory.
inline uint64_t ParseScale(int argc, char** argv) {
  if (const char* bad = FirstUnknownFlag(argc, argv)) {
    fprintf(stderr, "%s: unrecognized argument '%s' (see --help)\n", argv[0],
            bad);
    exit(2);
  }
  uint64_t scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--scale=", 8) == 0) {
      scale = strtoull(argv[i] + 8, nullptr, 10);
      if (scale == 0) scale = 1;
    } else if (strcmp(argv[i], "--help") == 0) {
      printf("usage: %s [--scale=K]\n"
             "  YCSB benches (fig06/fig10/fig21) also take"
             " [--threads=K[,K...]] [--write-threads=K[,K...]]\n"
             "  fig06 also takes [--threads-only] [--write-scaling-only]"
             " [--branch-commits-only] [--smoke]\n"
             "  fig06 --transport=socket also takes [--chaos] (goodput"
             " under injected wire faults) and [--pipeline] (depth sweep"
             " of writers sharing one connection)\n",
             argv[0]);
      exit(0);
    }
  }
  return scale;
}

/// Parses a K[,K...] thread-count list from \p flag (e.g. "--threads=").
/// Default: the paper-style 1/2/4/8 sweep.
inline std::vector<int> ParseThreadList(int argc, char** argv,
                                        const char* flag) {
  const size_t flag_len = strlen(flag);
  std::vector<int> counts;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], flag, flag_len) == 0) {
      counts.clear();
      const char* p = argv[i] + flag_len;
      while (*p) {
        char* end = nullptr;
        const long v = strtol(p, &end, 10);
        if (end == p) break;
        if (v > 0) counts.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
      }
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

/// --threads=K[,K...] — client-thread counts for the multi-client read
/// sections of the YCSB benches.
inline std::vector<int> ParseThreadCounts(int argc, char** argv) {
  return ParseThreadList(argc, argv, "--threads=");
}

/// --write-threads=K[,K...] — writer-thread counts for the write-scaling
/// sections.
inline std::vector<int> ParseWriteThreadCounts(int argc, char** argv) {
  return ParseThreadList(argc, argv, "--write-threads=");
}

/// --transport=inproc|socket (default inproc). Rejects anything else with
/// exit 2: a misspelled transport must not silently fall back to the
/// in-process path and record its numbers under the wrong label.
inline std::string ParseTransportFlag(int argc, char** argv) {
  std::string transport = "inproc";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--transport=", 12) == 0) transport = argv[i] + 12;
  }
  if (transport != "inproc" && transport != "socket") {
    fprintf(stderr, "%s: --transport must be 'inproc' or 'socket', got '%s'\n",
            argv[0], transport.c_str());
    exit(2);
  }
  return transport;
}

/// --disk-fault=enospc (default none). Rejects anything else with exit 2
/// for the same reason as --transport: a misspelled fault kind must not
/// silently run the healthy benchmark and report it as a fault run.
inline std::string ParseDiskFaultFlag(int argc, char** argv) {
  std::string fault = "none";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--disk-fault=", 13) == 0) fault = argv[i] + 13;
  }
  if (fault != "none" && fault != "enospc") {
    fprintf(stderr, "%s: --disk-fault must be 'enospc', got '%s'\n", argv[0],
            fault.c_str());
    exit(2);
  }
  return fault;
}

/// True if \p flag (e.g. "--threads-only") was passed.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct NamedIndex {
  std::string name;
  std::unique_ptr<ImmutableIndex> index;
};

/// The paper's four structures, node sizes tuned to ~1 KB (§5).
/// \param mbt_buckets bucket count; the paper picks it per experiment.
inline std::vector<NamedIndex> MakeAllIndexes(const NodeStorePtr& store,
                                              uint64_t mbt_buckets = 8192) {
  std::vector<NamedIndex> out;
  out.push_back({"pos", std::make_unique<PosTree>(store)});
  MbtOptions mbt_opt;
  mbt_opt.num_buckets = mbt_buckets;
  mbt_opt.fanout = 32;
  out.push_back({"mbt", std::make_unique<Mbt>(store, mbt_opt)});
  out.push_back({"mpt", std::make_unique<Mpt>(store)});
  out.push_back({"mvmb", std::make_unique<MvmbTree>(store)});
  return out;
}

/// Loads records in batches; returns the resulting version root.
inline Hash LoadRecords(ImmutableIndex* index, const std::vector<KV>& records,
                        size_t batch_size = 4000) {
  Hash root = index->EmptyRoot();
  for (size_t i = 0; i < records.size(); i += batch_size) {
    std::vector<KV> batch(
        records.begin() + i,
        records.begin() + std::min(i + batch_size, records.size()));
    auto next = index->PutBatch(root, batch);
    SIRI_CHECK(next.ok());
    root = *next;
  }
  return root;
}

/// Runs an op stream (reads point-lookup, writes batched per
/// \p write_batch) and returns throughput in kops/s.
inline double RunOps(ImmutableIndex* index, Hash* root,
                     const std::vector<YcsbOp>& ops, size_t write_batch = 1) {
  Timer timer;
  std::vector<KV> pending;
  pending.reserve(write_batch);
  uint64_t done = 0;
  for (const YcsbOp& op : ops) {
    if (op.type == YcsbOp::Type::kRead) {
      auto got = index->Get(*root, op.key, nullptr);
      SIRI_CHECK(got.ok());
    } else {
      pending.push_back(KV{op.key, op.value});
      if (pending.size() >= write_batch) {
        auto next = index->PutBatch(*root, std::move(pending));
        SIRI_CHECK(next.ok());
        *root = *next;
        pending.clear();
      }
    }
    ++done;
  }
  if (!pending.empty()) {
    auto next = index->PutBatch(*root, std::move(pending));
    SIRI_CHECK(next.ok());
    *root = *next;
  }
  const double secs = timer.ElapsedSeconds();
  return secs == 0 ? 0 : static_cast<double>(done) / secs / 1000.0;
}

/// Write batch granularity per structure, mirroring the paper's
/// implementations (§5.2): POS-Tree "applies batching techniques, taking
/// advantage of the bottom-up build order"; MBT groups a batch by bucket.
/// The MPT port and the MVMB+-Tree baseline apply operations individually
/// (Ethereum's trie and a classic B+-tree have no batch write path).
inline size_t WriteBatchFor(const std::string& name, size_t batch) {
  if (name == "pos" || name == "prolly" || name == "mbt") return batch;
  return 1;
}

/// Paper §5.4.2 collaboration setup: every party initializes the same base
/// dataset, then runs its own insert workload. An `overlap` fraction of
/// the inserted records (key AND value) is common to all parties and lives
/// under a shared key namespace (collaborative datasets partition key
/// space by ownership); the rest is party-private. All intermediate
/// versions are retained, as an immutable store does. Returns the version
/// roots per party.
struct CollaborationConfig {
  uint64_t base_records = 4000;
  uint64_t insert_records = 16000;  ///< workload size per party
  int parties = 10;
  double overlap = 0.5;
  size_t batch_size = 1000;
  bool shuffle_order = true;   ///< party-specific op order (SI stressor)
  bool all_versions = true;    ///< collect every intermediate version
};

inline std::vector<std::vector<Hash>> RunCollaboration(
    ImmutableIndex* index, const CollaborationConfig& cfg,
    YcsbGenerator* gen) {
  auto base = gen->GenerateRecords(cfg.base_records, "base");
  const uint64_t shared_records =
      static_cast<uint64_t>(cfg.insert_records * cfg.overlap);

  std::vector<std::vector<Hash>> roots_per_party;
  for (int p = 0; p < cfg.parties; ++p) {
    const std::string ns = "party" + std::to_string(p);
    std::vector<KV> ops;
    ops.reserve(cfg.insert_records);
    for (uint64_t j = 0; j < shared_records; ++j) {
      ops.push_back(KV{"shared/" + gen->KeyOf(j, "shared"),
                       gen->ValueOf(j, 0, "shared")});
    }
    for (uint64_t j = shared_records; j < cfg.insert_records; ++j) {
      ops.push_back(KV{ns + "/" + gen->KeyOf(j, ns), gen->ValueOf(j, 0, ns)});
    }
    if (cfg.shuffle_order) {
      Rng rng(0xc0ffee + p);
      for (size_t i = ops.size(); i > 1; --i) {
        std::swap(ops[i - 1], ops[rng.Uniform(i)]);
      }
    }

    std::vector<Hash> roots;
    Hash root = LoadRecords(index, base, cfg.batch_size);
    if (cfg.all_versions) roots.push_back(root);
    for (size_t i = 0; i < ops.size(); i += cfg.batch_size) {
      std::vector<KV> batch(ops.begin() + i,
                            ops.begin() +
                                std::min(i + cfg.batch_size, ops.size()));
      auto next = index->PutBatch(root, batch);
      SIRI_CHECK(next.ok());
      root = *next;
      if (cfg.all_versions) roots.push_back(root);
    }
    if (!cfg.all_versions) roots.push_back(root);
    roots_per_party.push_back(std::move(roots));
  }
  return roots_per_party;
}

/// Multi-client read path (§5.6 at K clients): one ForkbaseServlet serves
/// \p threads ForkbaseClientStore clients, each on its own thread with a
/// private node cache. The simulated round trip uses RttModel::kSleep so
/// concurrent clients overlap their round trips — aggregate throughput then
/// scales with the client count the way networked clients do, even on a
/// small core count.
struct ConcurrentReadConfig {
  int threads = 1;
  uint64_t cache_bytes = 1 << 20;  ///< per client
  uint64_t rtt_nanos = 20000;      ///< 20us simulated round trip
  bool record_latency = false;
};

struct ConcurrentReadResult {
  double kops = 0;         ///< aggregate ops/s across all clients, in kops
  double hit_ratio = 0;    ///< mean per-client cache hit ratio
  uint64_t remote_gets = 0;
  Histogram latencies_us;  ///< per-op read latencies (when recorded)
};

inline ConcurrentReadResult RunConcurrentReads(ForkbaseServlet* servlet,
                                               const ImmutableIndex& proto,
                                               const Hash& root,
                                               const std::vector<YcsbOp>& ops,
                                               const ConcurrentReadConfig& cfg) {
  std::vector<std::shared_ptr<ForkbaseClientStore>> stores;
  std::vector<std::unique_ptr<ImmutableIndex>> indexes;
  for (int t = 0; t < cfg.threads; ++t) {
    stores.push_back(std::make_shared<ForkbaseClientStore>(
        servlet, cfg.cache_bytes, cfg.rtt_nanos, RttModel::kSleep));
    indexes.push_back(proto.WithStore(stores.back()));
  }

  uint64_t reads_per_client = 0;
  for (const YcsbOp& op : ops) reads_per_client += op.type == YcsbOp::Type::kRead;

  std::vector<Histogram> lat(cfg.threads);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      const ImmutableIndex* index = indexes[t].get();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (const YcsbOp& op : ops) {
        if (op.type != YcsbOp::Type::kRead) continue;
        if (cfg.record_latency) {
          Timer lt;
          auto got = index->Get(root, op.key, nullptr);
          lat[t].Record(lt.ElapsedMicros());
          SIRI_CHECK(got.ok());
        } else {
          auto got = index->Get(root, op.key, nullptr);
          SIRI_CHECK(got.ok());
        }
      }
    });
  }

  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs = timer.ElapsedSeconds();

  ConcurrentReadResult out;
  const uint64_t total_reads = reads_per_client * cfg.threads;
  out.kops = secs == 0 ? 0 : static_cast<double>(total_reads) / secs / 1000.0;
  for (const auto& s : stores) {
    const auto stats = s->remote_stats();
    out.hit_ratio += stats.HitRatio() / cfg.threads;
    out.remote_gets += stats.remote_gets;
  }
  for (const Histogram& h : lat) out.latencies_us.Merge(h);
  return out;
}

/// Multi-client write path: K writer clients, each on its own thread with
/// its own ForkbaseClientStore, committing batches of writes against a
/// shared servlet. Every commit stages its dirty root-to-leaf nodes and
/// ships them in ONE PutMany upload RPC (one slept round trip), so — as
/// with the read path — aggregate throughput scales with the client count
/// because the clients' round trips overlap. Writers derive independent
/// version lineages from the shared base root (copy-on-write needs no
/// coordination beyond the store).
struct ConcurrentWriteConfig {
  int threads = 1;
  size_t commit_kvs = 20;          ///< writes per commit (one PutBatch)
  uint64_t cache_bytes = 1 << 20;  ///< per client
  uint64_t rtt_nanos = 2000000;    ///< 2ms simulated upload round trip
};

struct ConcurrentWriteResult {
  double kops = 0;           ///< aggregate writes/s across clients, in kops
  uint64_t commits = 0;      ///< total commits across clients
  uint64_t upload_rpcs = 0;  ///< total write RPCs (sum of remote_puts)
  /// Upload RPCs per commit: 1.0 when every commit batched into one RPC.
  double RpcsPerCommit() const {
    return commits == 0 ? 0 : static_cast<double>(upload_rpcs) / commits;
  }
};

inline ConcurrentWriteResult RunConcurrentWrites(
    ForkbaseServlet* servlet, const ImmutableIndex& proto,
    const Hash& base_root, const std::vector<YcsbOp>& ops,
    const ConcurrentWriteConfig& cfg) {
  std::vector<std::shared_ptr<ForkbaseClientStore>> stores;
  std::vector<std::unique_ptr<ImmutableIndex>> indexes;
  for (int t = 0; t < cfg.threads; ++t) {
    stores.push_back(std::make_shared<ForkbaseClientStore>(
        servlet, cfg.cache_bytes, cfg.rtt_nanos, RttModel::kSleep));
    indexes.push_back(proto.WithStore(stores.back()));
    // Index construction may upload a skeleton (MBT's empty tree); that is
    // setup, not steady-state commit traffic.
    stores.back()->ResetOpCounters();
  }

  std::vector<std::vector<KV>> commits;  // shared op stream, pre-batched
  for (const YcsbOp& op : ops) {
    if (op.type != YcsbOp::Type::kWrite) continue;
    if (commits.empty() || commits.back().size() >= cfg.commit_kvs) {
      commits.emplace_back();
    }
    commits.back().push_back(KV{op.key, op.value});
  }

  uint64_t writes_per_client = 0;
  for (const auto& c : commits) writes_per_client += c.size();

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ImmutableIndex* index = indexes[t].get();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      Hash root = base_root;
      for (const auto& commit : commits) {
        // Writer-private key prefix: every client builds its own lineage.
        std::vector<KV> batch;
        batch.reserve(commit.size());
        for (const KV& kv : commit) {
          batch.push_back(KV{"w" + std::to_string(t) + "/" + kv.key, kv.value});
        }
        auto next = index->PutBatch(root, std::move(batch));
        SIRI_CHECK(next.ok());
        root = *next;
      }
    });
  }

  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs = timer.ElapsedSeconds();

  ConcurrentWriteResult out;
  const uint64_t total_writes = writes_per_client * cfg.threads;
  out.kops = secs == 0 ? 0 : static_cast<double>(total_writes) / secs / 1000.0;
  out.commits = commits.size() * cfg.threads;
  for (const auto& s : stores) out.upload_rpcs += s->remote_stats().remote_puts;
  return out;
}

/// Multi-writer-same-branch contention (the collaborative regime of
/// §2.1/§5.6): K writer clients, ONE branch, optimistic head CAS with
/// auto-merge retries. Each writer reads the branch head, builds a commit
/// of disjoint writer-private keys on the head's root through its own
/// client store, and lands it with CommitWithMerge — a lost head race is
/// retried as a two-parent merge commit whose staged batch costs nothing
/// unless it wins. Afterward every writer's every key must be readable at
/// the final head (zero lost updates).
struct BranchContentionConfig {
  int threads = 1;
  int commits_per_writer = 24;
  /// Publish through the servlet's group-commit combiner instead of
  /// per-commit CommitWithMerge: K racing committers batch into one
  /// combined merge + one staged flush + one head swing. The combiner's
  /// window/batch knobs come from the servlet's GroupCommitOptions.
  bool group_commit = false;
  /// Chunk uploads per commit: a branch commit publishes a body of work
  /// built through several staged batches (each one upload RPC), the way
  /// a collaborative writer accumulates changes before committing. The
  /// uploads overlap across writers; only the publish (head CAS + flush)
  /// serializes per branch, so the upload:publish ratio is what aggregate
  /// commit throughput scales with.
  int uploads_per_commit = 5;
  size_t upload_kvs = 10;           ///< writer-private keys per chunk upload
  uint64_t cache_bytes = 32 << 20;  ///< shared client cache (holds the base
                                    ///< version of every structure + churn)
  uint64_t rtt_nanos = 2000000;     ///< 2ms simulated round trip (sleep)
};

/// The writer-private key scheme RunBranchContention commits and its
/// lost-update verifier re-reads — one definition so the two sides can
/// never drift apart.
inline std::string BranchContentionKey(int writer, int commit, int upload,
                                       size_t kv) {
  return "w" + std::to_string(writer) + "/c" + std::to_string(commit) + "/u" +
         std::to_string(upload) + "/k" + std::to_string(kv);
}

struct BranchContentionResult {
  double commits_per_sec = 0;  ///< aggregate landed commits/s
  uint64_t commits = 0;        ///< landed commits (threads x per-writer)
  uint64_t cas_failures = 0;   ///< head races lost (branch_stats)
  uint64_t merge_commits = 0;  ///< merge/combined commits written
  uint64_t combined_commits = 0;  ///< commits landed in ≥2-member batches
  uint64_t flushes = 0;        ///< server-store durability points paid
  bool lost_update = false;    ///< any committed key missing at final head

  /// Lost head races per landed commit: 0 single-writer, grows with K.
  double RetriesPerCommit() const {
    return commits == 0 ? 0 : static_cast<double>(cas_failures) / commits;
  }

  /// Landed commits per server-store flush (fsync on a disk-backed
  /// deployment): 1.0 per-commit publishes, > 1 when group commit
  /// amortizes the durability point across a batch.
  double CommitsPerFlush() const {
    return flushes == 0 ? 0 : static_cast<double>(commits) / flushes;
  }
};

inline BranchContentionResult RunBranchContention(
    ForkbaseServlet* servlet, const ImmutableIndex& proto,
    const Hash& base_root, const std::string& branch,
    const BranchContentionConfig& cfg) {
  BranchManager* mgr = servlet->branches();
  {
    auto init = mgr->CommitOnBranch(branch, base_root, "init", "base");
    SIRI_CHECK(init.ok());
  }

  // One client app, K writer worker threads (PR 2's shared-client model):
  // every upload (PutMany) write-allocates into the shared cache, so each
  // writer reads the evolving head — and a merge retry reads base, ours
  // and theirs — almost entirely locally. Per-commit cost is then
  // dominated by the slept upload RPCs, which concurrent writers overlap,
  // and a winning merge retry ships its whole staged batch (merged pages
  // + both commit objects) in exactly one more upload RPC.
  auto client_store = std::make_shared<ForkbaseClientStore>(
      servlet, cfg.cache_bytes, cfg.rtt_nanos, RttModel::kSleep);
  auto client_index = proto.WithStore(client_store);
  // Steady-state collaboration: the client holds the shared base version
  // before the race starts, delivered the way a replica receives one — as
  // a version-transfer pack landed in a single batched PutMany (which
  // write-allocates the whole version into the shared cache). From here
  // on every node a commit or a merge retry reads is either cached base
  // state or a peer's upload; the measured round trips are the uploads
  // themselves, which concurrent writers overlap.
  {
    auto pack = PackVersions(proto, {base_root});
    SIRI_CHECK(pack.ok());
    SIRI_CHECK(UnpackVersions(*pack, client_store.get()).ok());
  }

  std::atomic<uint64_t> merge_commits{0};
  std::atomic<bool> go{false};
  const uint64_t flushes_before = servlet->store()->stats().flushes;
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ImmutableIndex* index = client_index.get();
      MergeCommitOptions opts;
      // The bench must never abandon a commit: at 8 writers on one branch
      // a streak of 64+ lost races is possible, so the cap is effectively
      // removed (backoff still bounds the retry rate).
      opts.max_retries = std::numeric_limits<int>::max();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int c = 0; c < cfg.commits_per_writer; ++c) {
        auto head = mgr->Head(branch);
        SIRI_CHECK(head.ok());
        auto head_commit = mgr->ReadCommit(*head);
        SIRI_CHECK(head_commit.ok());
        // Build the commit's body: several chained chunk uploads on top
        // of the head root (each PutBatch stages its dirty path and ships
        // it as one upload RPC).
        Hash root = head_commit->root;
        for (int u = 0; u < cfg.uploads_per_commit; ++u) {
          std::vector<KV> batch;
          batch.reserve(cfg.upload_kvs);
          for (size_t k = 0; k < cfg.upload_kvs; ++k) {
            batch.push_back(KV{BranchContentionKey(t, c, u, k),
                               "v" + std::to_string(c)});
          }
          auto next = index->PutBatch(root, std::move(batch));
          SIRI_CHECK(next.ok());
          root = *next;
        }
        if (cfg.group_commit) {
          // Publish through the combining commit queue: racing committers
          // batch into one combined merge + one flush + one head swing.
          PublishSpec spec;
          spec.index = index;
          spec.branch = branch;
          spec.new_root = root;
          spec.author = "w" + std::to_string(t);
          spec.message = "c" + std::to_string(c);
          spec.expected_head = *head;
          auto landed = servlet->combiner()->Publish(spec);
          SIRI_CHECK(landed.ok());
          merge_commits.fetch_add(landed->merge_commits,
                                  std::memory_order_relaxed);
        } else {
          auto landed = CommitWithMerge(mgr, index, branch, root,
                                        "w" + std::to_string(t),
                                        "c" + std::to_string(c), *head, opts);
          SIRI_CHECK(landed.ok());
          merge_commits.fetch_add(landed->merge_commits,
                                  std::memory_order_relaxed);
        }
      }
    });
  }

  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs = timer.ElapsedSeconds();

  BranchContentionResult out;
  out.commits =
      static_cast<uint64_t>(cfg.threads) * cfg.commits_per_writer;
  out.commits_per_sec =
      secs == 0 ? 0 : static_cast<double>(out.commits) / secs;
  const BranchStats stats = mgr->branch_stats(branch);
  out.cas_failures = stats.cas_failures;
  out.merge_commits = merge_commits.load();
  out.combined_commits = stats.combined_commits;
  out.flushes = servlet->store()->stats().flushes - flushes_before;

  // Zero lost updates: every writer's every key is readable at the final
  // head (server-side reads — verification, not measured traffic).
  auto head = mgr->Head(branch);
  SIRI_CHECK(head.ok());
  auto head_commit = mgr->ReadCommit(*head);
  SIRI_CHECK(head_commit.ok());
  for (int t = 0; t < cfg.threads && !out.lost_update; ++t) {
    for (int c = 0; c < cfg.commits_per_writer && !out.lost_update; ++c) {
      for (int u = 0; u < cfg.uploads_per_commit && !out.lost_update; ++u) {
        for (size_t k = 0; k < cfg.upload_kvs; ++k) {
          auto got = proto.Get(head_commit->root,
                               BranchContentionKey(t, c, u, k), nullptr);
          if (!got.ok() || !got->has_value()) {
            out.lost_update = true;
            break;
          }
        }
      }
    }
  }
  return out;
}

/// Drives and prints one [multi-writer branch commits] table: the four
/// structures behind one servlet at \p n preloaded records, swept over
/// \p thread_counts writer counts, one contended branch per cell (fresh
/// branch per cell so the per-branch stats isolate that cell). Shared by
/// fig06 and fig21 so the two figures cannot drift; aborts on any lost
/// update because zero lost updates is the section's whole claim.
inline void RunBranchCommitTable(uint64_t n, uint64_t mbt_buckets,
                                 const std::vector<int>& thread_counts,
                                 int commits_per_writer,
                                 int uploads_per_commit) {
  const BranchContentionConfig defaults;
  printf("\n[multi-writer branch commits] one branch, head CAS + merge "
         "retry, n=%llu records, commits of %dx%zu-KV uploads, "
         "rtt=%llums(sleep) warm shared-cache=%lluMB\n",
         static_cast<unsigned long long>(n), uploads_per_commit,
         defaults.upload_kvs,
         static_cast<unsigned long long>(defaults.rtt_nanos / 1000000),
         static_cast<unsigned long long>(defaults.cache_bytes >> 20));
  printf("%8s %17s %17s %17s %17s\n", "threads", "pos(cmt/s|retry)",
         "mbt(cmt/s|retry)", "mpt(cmt/s|retry)", "mvmb(cmt/s|retry)");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);

  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto indexes = MakeAllIndexes(server_store, mbt_buckets);
  std::vector<Hash> roots;
  for (auto& [name, index] : indexes) {
    roots.push_back(LoadRecords(index.get(), records));
  }

  for (int threads : thread_counts) {
    printf("%8d", threads);
    for (size_t i = 0; i < indexes.size(); ++i) {
      BranchContentionConfig cfg;
      cfg.threads = threads;
      cfg.commits_per_writer = commits_per_writer;
      cfg.uploads_per_commit = uploads_per_commit;
      const std::string branch =
          indexes[i].name + "-k" + std::to_string(threads);
      auto result = RunBranchContention(&servlet, *indexes[i].index, roots[i],
                                        branch, cfg);
      SIRI_CHECK(!result.lost_update);
      printf("   %8.1f|%5.2f", result.commits_per_sec,
             result.RetriesPerCommit());
      fflush(stdout);
    }
    printf("\n");
  }
}

/// Drives and prints one [group-commit publish pipeline] table: the four
/// structures behind one servlet, swept over writer counts x {group
/// commit off, on} on ONE contended branch per cell. The body of each
/// commit is deliberately small (uploads_per_commit low) so the cell is
/// publish-bound — exactly the single-branch ceiling the combiner lifts.
/// Also emits one machine-readable `#json` line per cell so run_bench.sh
/// can record commits_per_fsync and the publish-window size in the bench
/// trajectory. Shared by fig06 and fig21. Aborts on any lost update.
inline void RunGroupCommitTable(uint64_t n, uint64_t mbt_buckets,
                                const std::vector<int>& thread_counts,
                                int commits_per_writer, int uploads_per_commit,
                                uint64_t window_micros,
                                uint64_t rtt_nanos = 4000000) {
  const BranchContentionConfig defaults;
  printf("\n[group-commit publish pipeline] one branch, combining commit "
         "queue, n=%llu records, commits of %dx%zu-KV uploads, "
         "window=%lluus, rtt=%llums(sleep)\n",
         static_cast<unsigned long long>(n), uploads_per_commit,
         defaults.upload_kvs, static_cast<unsigned long long>(window_micros),
         static_cast<unsigned long long>(rtt_nanos / 1000000));
  printf("%8s %4s %19s %19s %19s %19s\n", "threads", "gc",
         "pos(cmt/s|rty|cpf)", "mbt(cmt/s|rty|cpf)", "mpt(cmt/s|rty|cpf)",
         "mvmb(cmt/s|rty|cpf)");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);

  GroupCommitOptions gc;
  gc.window_micros = window_micros;
  // The bench must never abandon a commit (matching the per-commit path's
  // uncapped retries).
  gc.merge.max_retries = std::numeric_limits<int>::max();
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store, gc);
  auto indexes = MakeAllIndexes(server_store, mbt_buckets);
  std::vector<Hash> roots;
  for (auto& [name, index] : indexes) {
    roots.push_back(LoadRecords(index.get(), records));
  }

  std::vector<std::string> machine_lines;
  for (int threads : thread_counts) {
    for (bool group_commit : {false, true}) {
      printf("%8d %4s", threads, group_commit ? "on" : "off");
      for (size_t i = 0; i < indexes.size(); ++i) {
        BranchContentionConfig cfg;
        cfg.threads = threads;
        cfg.commits_per_writer = commits_per_writer;
        cfg.uploads_per_commit = uploads_per_commit;
        cfg.group_commit = group_commit;
        // The sweep's subject is the publish ceiling, so the round trip
        // is slower than the contention table's default: the costs the
        // combiner amortizes (upload + durability point per publish)
        // dominate single-host scheduling noise, for both modes alike.
        cfg.rtt_nanos = rtt_nanos;
        const std::string branch = indexes[i].name + "-gc" +
                                   (group_commit ? "on" : "off") + "-k" +
                                   std::to_string(threads);
        auto result = RunBranchContention(&servlet, *indexes[i].index,
                                          roots[i], branch, cfg);
        SIRI_CHECK(!result.lost_update);
        printf("   %7.1f|%4.2f|%3.1f", result.commits_per_sec,
               result.RetriesPerCommit(), result.CommitsPerFlush());
        fflush(stdout);
        char line[256];
        snprintf(line, sizeof(line),
                 "#json group_commit structure=%s threads=%d gc=%s "
                 "transport=inproc "
                 "commits_per_sec=%.1f commits_per_fsync=%.2f "
                 "combined_commits=%llu window_us=%llu",
                 indexes[i].name.c_str(), threads,
                 group_commit ? "on" : "off", result.commits_per_sec,
                 result.CommitsPerFlush(),
                 static_cast<unsigned long long>(result.combined_commits),
                 static_cast<unsigned long long>(window_micros));
        machine_lines.emplace_back(line);
      }
      printf("\n");
    }
  }
  // Machine-readable trajectory lines (run_bench.sh lifts
  // commits_per_fsync and the window size into the bench JSON).
  for (const std::string& line : machine_lines) printf("%s\n", line.c_str());
}

/// Drives and prints one [socket commit pipeline] table: the same
/// contended-branch group-commit regime, but through the REAL boundary —
/// an in-process SiriServer on an ephemeral loopback port, a file-backed
/// server store (real fsyncs), and K writer clients each owning its own
/// SocketTransport connection and ForkbaseClientStore.
///
/// Honesty rules for these numbers: the in-process tables above *simulate*
/// their round trips (slept RTTs), this table *measures* loopback TCP —
/// the two are different quantities and must never be read as one series.
/// So every socket cell reports what only a real transport can measure —
/// bytes per RPC and syscalls per commit — next to its commits/s, and the
/// `#json` lines carry `transport=socket` so the recorded trajectory can
/// never silently mix the regimes.
inline void RunSocketCommitTable(uint64_t n, uint64_t mbt_buckets,
                                 const std::vector<int>& thread_counts,
                                 int commits_per_writer,
                                 uint64_t window_micros) {
  printf("\n[socket commit pipeline] REAL loopback TCP via in-process "
         "siri-server, file-backed store (real fsyncs), n=%llu records, "
         "window=%lluus — measured bytes/RPC + syscalls/commit, NOT "
         "comparable with the slept-RTT tables above\n",
         static_cast<unsigned long long>(n),
         static_cast<unsigned long long>(window_micros));
  printf("%8s %24s %24s %24s %24s\n", "threads",
         "pos(cmt/s|B/rpc|sys|cpf)", "mbt(cmt/s|B/rpc|sys|cpf)",
         "mpt(cmt/s|B/rpc|sys|cpf)", "mvmb(cmt/s|B/rpc|sys|cpf)");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);

  const std::string store_path =
      "/tmp/siri_bench_socket_" + std::to_string(getpid()) + ".log";
  std::remove(store_path.c_str());
  std::shared_ptr<FileNodeStore> server_store;
  SIRI_CHECK(FileNodeStore::Open(store_path, &server_store).ok());

  GroupCommitOptions gc;
  gc.window_micros = window_micros;
  gc.merge.max_retries = std::numeric_limits<int>::max();
  ForkbaseServlet servlet(server_store, gc);
  auto indexes = MakeAllIndexes(server_store, mbt_buckets);
  std::vector<Hash> roots;
  for (auto& [name, index] : indexes) {
    roots.push_back(LoadRecords(index.get(), records));
    // The server must serve Publish RPCs for each structure: same store,
    // same geometry as the loaded index.
  }
  {
    auto registered = MakeAllIndexes(server_store, mbt_buckets);
    for (auto& [name, index] : registered) {
      servlet.RegisterIndex(std::move(index));
    }
  }

  net::ServerOptions sopts;
  sopts.group_flush_window_micros = window_micros;
  net::SiriServer server(&servlet, sopts);
  SIRI_CHECK(server.Listen(0).ok());
  SIRI_CHECK(server.Start().ok());
  const int port = server.port();

  std::vector<std::string> machine_lines;
  for (int threads : thread_counts) {
    printf("%8d", threads);
    for (size_t i = 0; i < indexes.size(); ++i) {
      const std::string branch =
          indexes[i].name + "-sock-k" + std::to_string(threads);
      {
        auto init = servlet.branches()->CommitOnBranch(branch, roots[i],
                                                       "init", "base");
        SIRI_CHECK(init.ok());
      }

      // Connect and warm every client BEFORE the timer: each client
      // receives the base version as one version-transfer pack (cache
      // write-allocation), exactly like the in-process tables.
      struct SocketClient {
        std::shared_ptr<net::SocketTransport> transport;
        std::shared_ptr<ForkbaseClientStore> store;
        std::unique_ptr<ImmutableIndex> index;
      };
      std::vector<SocketClient> clients(threads);
      auto pack = PackVersions(*indexes[i].index, {roots[i]});
      SIRI_CHECK(pack.ok());
      for (int t = 0; t < threads; ++t) {
        SIRI_CHECK(net::SocketTransport::Connect("127.0.0.1", port,
                                                 &clients[t].transport)
                       .ok());
        clients[t].store = std::make_shared<ForkbaseClientStore>(
            clients[t].transport, 32 << 20);
        clients[t].index = indexes[i].index->WithStore(clients[t].store);
        SIRI_CHECK(UnpackVersions(*pack, clients[t].store.get()).ok());
      }
      // Snapshot after warmup so the reported traffic is the commits'.
      net::Transport::Stats warm{};
      for (auto& c : clients) {
        const auto s = c.transport->stats();
        warm.rpcs += s.rpcs;
        warm.bytes_sent += s.bytes_sent;
        warm.bytes_received += s.bytes_received;
        warm.syscalls += s.syscalls;
      }
      const uint64_t fsyncs_before = server_store->stats().flushes;

      std::atomic<bool> go{false};
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          auto& cl = clients[t];
          while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
          for (int c = 0; c < commits_per_writer; ++c) {
            auto head = cl.transport->Head(branch);
            SIRI_CHECK(head.ok());
            auto node = cl.store->Get(*head);
            SIRI_CHECK(node.ok());
            auto head_commit = Commit::Decode(**node);
            SIRI_CHECK(head_commit.ok());
            std::vector<KV> batch;
            const BranchContentionConfig defaults;
            batch.reserve(defaults.upload_kvs);
            for (size_t k = 0; k < defaults.upload_kvs; ++k) {
              batch.push_back(
                  KV{BranchContentionKey(t, c, 0, k), "v" + std::to_string(c)});
            }
            auto next = cl.index->PutBatch(head_commit->root, std::move(batch));
            SIRI_CHECK(next.ok());
            net::PublishRequest pub;
            pub.structure = indexes[i].name;
            pub.branch = branch;
            pub.new_root = *next;
            pub.author = "w" + std::to_string(t);
            pub.message = "c" + std::to_string(c);
            pub.expected_head = *head;
            auto landed = cl.transport->Publish(pub);
            SIRI_CHECK(landed.ok());
          }
        });
      }
      Timer timer;
      go.store(true, std::memory_order_release);
      for (auto& w : workers) w.join();
      const double secs = timer.ElapsedSeconds();

      net::Transport::Stats total{};
      for (auto& c : clients) {
        const auto s = c.transport->stats();
        total.rpcs += s.rpcs;
        total.bytes_sent += s.bytes_sent;
        total.bytes_received += s.bytes_received;
        total.syscalls += s.syscalls;
      }
      const uint64_t rpcs = total.rpcs - warm.rpcs;
      const uint64_t bytes = (total.bytes_sent + total.bytes_received) -
                             (warm.bytes_sent + warm.bytes_received);
      const uint64_t syscalls = total.syscalls - warm.syscalls;
      const uint64_t commits =
          static_cast<uint64_t>(threads) * commits_per_writer;
      const uint64_t fsyncs = server_store->stats().flushes - fsyncs_before;
      const double commits_per_sec =
          secs == 0 ? 0 : static_cast<double>(commits) / secs;
      const double bytes_per_rpc =
          rpcs == 0 ? 0 : static_cast<double>(bytes) / rpcs;
      const double syscalls_per_commit =
          commits == 0 ? 0 : static_cast<double>(syscalls) / commits;
      const double commits_per_fsync =
          fsyncs == 0 ? 0 : static_cast<double>(commits) / fsyncs;

      // Zero lost updates across real connections, verified server-side.
      auto head = servlet.branches()->Head(branch);
      SIRI_CHECK(head.ok());
      auto head_commit = servlet.branches()->ReadCommit(*head);
      SIRI_CHECK(head_commit.ok());
      const BranchContentionConfig defaults;
      for (int t = 0; t < threads; ++t) {
        for (int c = 0; c < commits_per_writer; ++c) {
          for (size_t k = 0; k < defaults.upload_kvs; ++k) {
            auto got = indexes[i].index->Get(
                head_commit->root, BranchContentionKey(t, c, 0, k), nullptr);
            SIRI_CHECK(got.ok() && got->has_value());
          }
        }
      }

      printf("  %8.1f|%6.0f|%4.1f|%4.1f", commits_per_sec, bytes_per_rpc,
             syscalls_per_commit, commits_per_fsync);
      fflush(stdout);
      char line[320];
      snprintf(line, sizeof(line),
               "#json socket_commit structure=%s threads=%d gc=on "
               "transport=socket commits_per_sec=%.1f bytes_per_rpc=%.0f "
               "syscalls_per_commit=%.2f commits_per_fsync=%.2f "
               "window_us=%llu",
               indexes[i].name.c_str(), threads, commits_per_sec,
               bytes_per_rpc, syscalls_per_commit, commits_per_fsync,
               static_cast<unsigned long long>(window_micros));
      machine_lines.emplace_back(line);
      clients.clear();  // closes the connections before the next cell
    }
    printf("\n");
  }
  for (const std::string& line : machine_lines) printf("%s\n", line.c_str());

  server.Stop();
  std::remove(store_path.c_str());
}

/// The pipelined wire boundary, isolated: K writer threads SHARING ONE
/// SocketTransport, swept over the pipelining depth (max_inflight) and
/// the combiner-aware cache push. The depth-1 row is the serialized
/// baseline — one outstanding RPC, exactly the pre-pipelining channel —
/// so the sweep reads as "what did depth buy on the same connection":
/// commits/s up, syscalls/commit down (the reader drains batched
/// responses per recv, the server flushes coalesced writev rounds).
/// The push rows additionally report pushed nodes per commit and the
/// losing-committer Get RPCs they displaced (remote_gets/commit).
/// Structure: pos only — the boundary, not the index, is under test.
inline void RunSocketPipelineTable(uint64_t n, int threads,
                                   int commits_per_writer,
                                   const std::vector<int>& depths,
                                   uint64_t window_micros) {
  printf("\n[socket pipeline] REAL loopback TCP, %d writers sharing ONE "
         "connection, n=%llu records, window=%lluus — depth 1 is the "
         "serialized baseline\n",
         threads, static_cast<unsigned long long>(n),
         static_cast<unsigned long long>(window_micros));
  printf("%8s %6s %10s %10s %10s %10s %10s\n", "depth", "push", "cmt/s",
         "B/rpc", "sys/cmt", "push/cmt", "rget/cmt");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);

  const std::string store_path =
      "/tmp/siri_bench_pipeline_" + std::to_string(getpid()) + ".log";
  std::remove(store_path.c_str());
  std::shared_ptr<FileNodeStore> server_store;
  SIRI_CHECK(FileNodeStore::Open(store_path, &server_store).ok());

  GroupCommitOptions gc;
  gc.window_micros = window_micros;
  gc.merge.max_retries = std::numeric_limits<int>::max();
  ForkbaseServlet servlet(server_store, gc);
  PosTree server_index(server_store);
  const Hash base_root = LoadRecords(&server_index, records);
  servlet.RegisterIndex(std::make_unique<PosTree>(server_store));

  net::ServerOptions sopts;
  sopts.group_flush_window_micros = window_micros;
  net::SiriServer server(&servlet, sopts);
  SIRI_CHECK(server.Listen(0).ok());
  SIRI_CHECK(server.Start().ok());
  const int port = server.port();

  // Cells: every depth with push off, plus the deepest depth with push on
  // (push is flag-gated precisely so the off rows reproduce the PR 7
  // baseline series).
  std::vector<std::pair<int, bool>> cells;
  for (int d : depths) cells.push_back({d, false});
  if (!depths.empty()) cells.push_back({depths.back(), true});

  std::vector<std::string> machine_lines;
  for (const auto& [depth, push] : cells) {
    const std::string branch = std::string("pipe-d") + std::to_string(depth) +
                               (push ? "-push" : "");
    {
      auto init =
          servlet.branches()->CommitOnBranch(branch, base_root, "init", "base");
      SIRI_CHECK(init.ok());
    }

    net::SocketTransport::Options topts;
    topts.max_inflight = depth;
    topts.cache_push = push;
    std::shared_ptr<net::SocketTransport> transport;
    SIRI_CHECK(
        net::SocketTransport::Connect("127.0.0.1", port, &transport, topts)
            .ok());
    auto client_store =
        std::make_shared<ForkbaseClientStore>(transport, 32 << 20);
    auto pack = PackVersions(server_index, {base_root});
    SIRI_CHECK(pack.ok());
    SIRI_CHECK(UnpackVersions(*pack, client_store.get()).ok());

    const auto warm = transport->stats();
    const auto warm_store = client_store->remote_stats();

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        PosTree index(client_store);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int c = 0; c < commits_per_writer; ++c) {
          auto head = transport->Head(branch);
          SIRI_CHECK(head.ok());
          auto node = client_store->Get(*head);
          SIRI_CHECK(node.ok());
          auto head_commit = Commit::Decode(**node);
          SIRI_CHECK(head_commit.ok());
          std::vector<KV> batch;
          const BranchContentionConfig defaults;
          batch.reserve(defaults.upload_kvs);
          for (size_t k = 0; k < defaults.upload_kvs; ++k) {
            batch.push_back(
                KV{BranchContentionKey(t, c, 0, k), "v" + std::to_string(c)});
          }
          auto next = index.PutBatch(head_commit->root, std::move(batch));
          SIRI_CHECK(next.ok());
          net::PublishRequest pub;
          pub.structure = "pos";
          pub.branch = branch;
          pub.new_root = *next;
          pub.author = "w" + std::to_string(t);
          pub.message = "c" + std::to_string(c);
          pub.expected_head = *head;
          auto landed = transport->Publish(pub);
          SIRI_CHECK(landed.ok());
        }
      });
    }
    Timer timer;
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double secs = timer.ElapsedSeconds();

    const auto total = transport->stats();
    const auto total_store = client_store->remote_stats();
    const uint64_t rpcs = total.rpcs - warm.rpcs;
    const uint64_t bytes = (total.bytes_sent + total.bytes_received) -
                           (warm.bytes_sent + warm.bytes_received);
    const uint64_t syscalls = total.syscalls - warm.syscalls;
    const uint64_t pushed = total.pushed_nodes - warm.pushed_nodes;
    const uint64_t rgets = total_store.remote_gets - warm_store.remote_gets;
    const uint64_t commits =
        static_cast<uint64_t>(threads) * commits_per_writer;
    const double commits_per_sec =
        secs == 0 ? 0 : static_cast<double>(commits) / secs;
    const double bytes_per_rpc =
        rpcs == 0 ? 0 : static_cast<double>(bytes) / rpcs;
    const double syscalls_per_commit =
        commits == 0 ? 0 : static_cast<double>(syscalls) / commits;
    const double pushed_per_commit =
        commits == 0 ? 0 : static_cast<double>(pushed) / commits;
    const double rgets_per_commit =
        commits == 0 ? 0 : static_cast<double>(rgets) / commits;

    // Zero lost updates on the shared pipelined connection, verified
    // server-side before the numbers are reported.
    auto head = servlet.branches()->Head(branch);
    SIRI_CHECK(head.ok());
    auto head_commit = servlet.branches()->ReadCommit(*head);
    SIRI_CHECK(head_commit.ok());
    const BranchContentionConfig defaults;
    for (int t = 0; t < threads; ++t) {
      for (int c = 0; c < commits_per_writer; ++c) {
        for (size_t k = 0; k < defaults.upload_kvs; ++k) {
          auto got = server_index.Get(head_commit->root,
                                      BranchContentionKey(t, c, 0, k), nullptr);
          SIRI_CHECK(got.ok() && got->has_value());
        }
      }
    }

    printf("%8d %6s %10.1f %10.0f %10.2f %10.2f %10.2f\n", depth,
           push ? "on" : "off", commits_per_sec, bytes_per_rpc,
           syscalls_per_commit, pushed_per_commit, rgets_per_commit);
    fflush(stdout);
    char line[360];
    snprintf(line, sizeof(line),
             "#json socket_pipeline structure=pos threads=%d "
             "transport=socket max_inflight=%d cache_push=%s "
             "commits_per_sec=%.1f bytes_per_rpc=%.0f "
             "syscalls_per_commit=%.2f pushed_nodes_per_commit=%.2f "
             "remote_gets_per_commit=%.2f window_us=%llu",
             threads, depth, push ? "on" : "off", commits_per_sec,
             bytes_per_rpc, syscalls_per_commit, pushed_per_commit,
             rgets_per_commit, static_cast<unsigned long long>(window_micros));
    machine_lines.emplace_back(line);
  }
  for (const std::string& line : machine_lines) printf("%s\n", line.c_str());

  server.Stop();
  std::remove(store_path.c_str());
}

/// Goodput under injected wire faults: the socket commit pipeline re-run
/// with a client-side FaultInjector (net/fault.h) sabotaging a swept
/// fraction of wire attempts — resets before/after send, torn frames,
/// bit flips, delays — while the resilient transport retries, reconnects,
/// and resolves lost publish acks. Two honesty rules:
///
///   - the row at rate 0.00 is the healthy baseline; every other row's
///     commits/s is GOODPUT (acked commits only) and is expected to sag
///     as the rate climbs — the interesting number is how gracefully;
///   - the retry/reconnect/deadline-miss counters are printed next to the
///     goodput because nonzero values are the flag that faults shaped the
///     numbers (net/transport.h); the run aborts if any acked commit's
///     keys are missing at the final head or the executed-publish
///     accounting disagrees with the acked count (a lost or duplicated
///     commit is a correctness bug, not a slow cell).
inline void RunSocketChaosTable(uint64_t n, int threads,
                                int commits_per_writer,
                                const std::vector<double>& fault_rates,
                                uint64_t window_micros) {
  printf("\n[socket chaos goodput] REAL loopback TCP via in-process "
         "siri-server, file-backed store, pos structure, %d writers x %d "
         "commits, n=%llu, window=%lluus — client-side fault injection, "
         "acked-commit goodput\n",
         threads, commits_per_writer, static_cast<unsigned long long>(n),
         static_cast<unsigned long long>(window_micros));
  printf("%10s %12s %10s %10s %12s %10s\n", "fault_rate", "goodput(c/s)",
         "retries", "reconnects", "ddl_misses", "injected");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);

  const std::string store_path =
      "/tmp/siri_bench_chaos_" + std::to_string(getpid()) + ".log";
  std::remove(store_path.c_str());
  std::shared_ptr<FileNodeStore> server_store;
  SIRI_CHECK(FileNodeStore::Open(store_path, &server_store).ok());

  GroupCommitOptions gc;
  gc.window_micros = window_micros;
  gc.merge.max_retries = std::numeric_limits<int>::max();
  ForkbaseServlet servlet(server_store, gc);
  auto loaded = std::make_unique<PosTree>(server_store);
  const Hash base_root = LoadRecords(loaded.get(), records);
  servlet.RegisterIndex(std::make_unique<PosTree>(server_store));

  net::ServerOptions sopts;
  sopts.group_flush_window_micros = window_micros;
  net::SiriServer server(&servlet, sopts);
  SIRI_CHECK(server.Listen(0).ok());
  SIRI_CHECK(server.Start().ok());
  const int port = server.port();

  std::vector<std::string> machine_lines;
  auto pack = PackVersions(*loaded, {base_root});
  SIRI_CHECK(pack.ok());
  for (size_t row = 0; row < fault_rates.size(); ++row) {
    const double rate = fault_rates[row];
    const std::string branch = "pos-chaos-r" + std::to_string(row);
    {
      auto init =
          servlet.branches()->CommitOnBranch(branch, base_root, "init", "base");
      SIRI_CHECK(init.ok());
    }

    struct ChaosClient {
      std::shared_ptr<net::FaultInjector> fault;
      std::shared_ptr<net::SocketTransport> transport;
      std::shared_ptr<ForkbaseClientStore> store;
      std::unique_ptr<ImmutableIndex> index;
    };
    std::vector<ChaosClient> clients(threads);
    for (int t = 0; t < threads; ++t) {
      net::FaultInjector::RandomConfig cfg;
      cfg.fault_rate = rate;
      cfg.delay_micros = 1000;
      clients[t].fault = std::make_shared<net::FaultInjector>(
          /*seed=*/0x5151u + row * 64 + static_cast<uint64_t>(t), cfg);
      net::SocketTransport::Options topts;
      topts.rpc_timeout_ms = 10000;
      topts.retry.max_attempts = 10;
      topts.retry.backoff_init_ms = 2;
      topts.retry.backoff_max_ms = 50;
      topts.retry.jitter_seed = 0x7e57u + static_cast<uint64_t>(t);
      topts.fault = clients[t].fault;
      SIRI_CHECK(net::SocketTransport::Connect("127.0.0.1", port,
                                               &clients[t].transport, topts)
                     .ok());
      clients[t].store = std::make_shared<ForkbaseClientStore>(
          clients[t].transport, 32 << 20);
      clients[t].index = loaded->WithStore(clients[t].store);
      SIRI_CHECK(UnpackVersions(*pack, clients[t].store.get()).ok());
    }
    const uint64_t acked_before =
        servlet.combiner()->stats().solo_commits +
        servlet.combiner()->stats().combined_commits +
        servlet.combiner()->stats().fallbacks;

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        auto& cl = clients[t];
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int c = 0; c < commits_per_writer; ++c) {
          auto head = cl.transport->Head(branch);
          SIRI_CHECK(head.ok());
          auto node = cl.store->Get(*head);
          SIRI_CHECK(node.ok());
          auto head_commit = Commit::Decode(**node);
          SIRI_CHECK(head_commit.ok());
          std::vector<KV> batch;
          const BranchContentionConfig defaults;
          batch.reserve(defaults.upload_kvs);
          for (size_t k = 0; k < defaults.upload_kvs; ++k) {
            batch.push_back(
                KV{BranchContentionKey(t, c, row, k), "v" + std::to_string(c)});
          }
          auto next = cl.index->PutBatch(head_commit->root, std::move(batch));
          SIRI_CHECK(next.ok());
          net::PublishRequest pub;
          pub.structure = "pos";
          pub.branch = branch;
          pub.new_root = *next;
          pub.author = "w" + std::to_string(t);
          pub.message = "c" + std::to_string(c);
          pub.expected_head = *head;
          auto landed = cl.transport->Publish(pub);
          SIRI_CHECK(landed.ok());
        }
      });
    }
    Timer timer;
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double secs = timer.ElapsedSeconds();

    uint64_t retries = 0, reconnects = 0, deadline_misses = 0, injected = 0;
    for (auto& c : clients) {
      const auto s = c.transport->stats();
      retries += s.retries;
      reconnects += s.reconnects;
      deadline_misses += s.deadline_misses;
      injected += c.fault->stats().injected;
    }
    const uint64_t commits =
        static_cast<uint64_t>(threads) * commits_per_writer;
    const double goodput =
        secs == 0 ? 0 : static_cast<double>(commits) / secs;

    // Zero lost acked updates, and exactly-once execution: the combiner's
    // executed-publish accounting must equal the acked count — a replayed
    // lost-ack publish that double-applied would push it past.
    auto head = servlet.branches()->Head(branch);
    SIRI_CHECK(head.ok());
    auto head_commit = servlet.branches()->ReadCommit(*head);
    SIRI_CHECK(head_commit.ok());
    const BranchContentionConfig defaults;
    for (int t = 0; t < threads; ++t) {
      for (int c = 0; c < commits_per_writer; ++c) {
        for (size_t k = 0; k < defaults.upload_kvs; ++k) {
          auto got = loaded->Get(head_commit->root,
                                 BranchContentionKey(t, c, row, k), nullptr);
          SIRI_CHECK(got.ok() && got->has_value());
        }
      }
    }
    const uint64_t acked_after = servlet.combiner()->stats().solo_commits +
                                 servlet.combiner()->stats().combined_commits +
                                 servlet.combiner()->stats().fallbacks;
    SIRI_CHECK(acked_after - acked_before == commits);

    printf("%10.2f %12.1f %10llu %10llu %12llu %10llu\n", rate, goodput,
           static_cast<unsigned long long>(retries),
           static_cast<unsigned long long>(reconnects),
           static_cast<unsigned long long>(deadline_misses),
           static_cast<unsigned long long>(injected));
    fflush(stdout);
    char line[320];
    snprintf(line, sizeof(line),
             "#json socket_chaos structure=pos threads=%d transport=socket "
             "fault_rate=%.2f goodput_cps=%.1f retries=%llu reconnects=%llu "
             "deadline_misses=%llu injected=%llu window_us=%llu",
             threads, rate, goodput, static_cast<unsigned long long>(retries),
             static_cast<unsigned long long>(reconnects),
             static_cast<unsigned long long>(deadline_misses),
             static_cast<unsigned long long>(injected),
             static_cast<unsigned long long>(window_micros));
    machine_lines.emplace_back(line);
    clients.clear();  // closes the connections before the next row
  }
  for (const std::string& line : machine_lines) printf("%s\n", line.c_str());

  server.Stop();
  std::remove(store_path.c_str());
}

/// Read-only degradation under a disk fault: the socket commit pipeline
/// with the server's file-backed store sitting on an io::FaultEnv. Phase 1
/// runs the healthy publish loop; then the "disk fills" (every further
/// write op returns ENOSPC) and phase 2 asserts the failure semantics
/// end-to-end over the real wire:
///
///   - every write a client attempts after the trip fails with the TYPED
///     degraded reject (net::IsDegradedReject) — never a raw store error,
///     and never an ack;
///   - degraded rejects fail FAST: the transport's retry counter must not
///     move after the trip (retrying a full disk only burns the window);
///   - reads keep serving — Head and node fetches succeed throughout
///     phase 2 against the degraded server;
///   - zero lost acked commits: the head recorded at the trip never moves
///     again, and every key acked in phase 1 is still readable under it.
inline void RunSocketDiskFaultTable(uint64_t n, int threads,
                                    int commits_per_writer,
                                    uint64_t window_micros) {
  printf("\n[socket disk-fault degradation] REAL loopback TCP via "
         "in-process siri-server, file-backed store on a FaultEnv, pos "
         "structure, %d writers x %d commits then ENOSPC, n=%llu, "
         "window=%lluus\n",
         threads, commits_per_writer, static_cast<unsigned long long>(n),
         static_cast<unsigned long long>(window_micros));
  printf("%10s %12s %14s %16s %12s\n", "acked", "goodput(c/s)",
         "typed_rejects", "degraded_rejects", "lost_acked");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);

  const std::string store_path =
      "/tmp/siri_bench_diskfault_" + std::to_string(getpid()) + ".log";
  std::remove(store_path.c_str());
  io::FaultEnv fault_env(io::Env::Default(), io::FaultEnv::Mode::kPassthrough);
  std::shared_ptr<FileNodeStore> server_store;
  SIRI_CHECK(FileNodeStore::Open(&fault_env, store_path, &server_store).ok());

  GroupCommitOptions gc;
  gc.window_micros = window_micros;
  gc.merge.max_retries = std::numeric_limits<int>::max();
  ForkbaseServlet servlet(server_store, gc);
  auto loaded = std::make_unique<PosTree>(server_store);
  const Hash base_root = LoadRecords(loaded.get(), records);
  servlet.RegisterIndex(std::make_unique<PosTree>(server_store));

  net::ServerOptions sopts;
  sopts.group_flush_window_micros = window_micros;
  net::SiriServer server(&servlet, sopts);
  SIRI_CHECK(server.Listen(0).ok());
  SIRI_CHECK(server.Start().ok());
  const int port = server.port();

  const std::string branch = "pos-diskfault";
  {
    auto init =
        servlet.branches()->CommitOnBranch(branch, base_root, "init", "base");
    SIRI_CHECK(init.ok());
  }

  struct DiskFaultClient {
    std::shared_ptr<net::SocketTransport> transport;
    std::shared_ptr<ForkbaseClientStore> store;
    std::unique_ptr<ImmutableIndex> index;
  };
  std::vector<DiskFaultClient> clients(threads);
  auto pack = PackVersions(*loaded, {base_root});
  SIRI_CHECK(pack.ok());
  for (int t = 0; t < threads; ++t) {
    net::SocketTransport::Options topts;
    topts.rpc_timeout_ms = 10000;
    topts.retry.max_attempts = 10;
    topts.retry.backoff_init_ms = 2;
    topts.retry.backoff_max_ms = 50;
    topts.retry.jitter_seed = 0xd15cu + static_cast<uint64_t>(t);
    SIRI_CHECK(net::SocketTransport::Connect("127.0.0.1", port,
                                             &clients[t].transport, topts)
                   .ok());
    clients[t].store =
        std::make_shared<ForkbaseClientStore>(clients[t].transport, 32 << 20);
    clients[t].index = loaded->WithStore(clients[t].store);
    SIRI_CHECK(UnpackVersions(*pack, clients[t].store.get()).ok());
  }

  // Phase 1: the healthy publish loop — every commit here must be acked.
  const int row = 0;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& cl = clients[t];
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int c = 0; c < commits_per_writer; ++c) {
        auto head = cl.transport->Head(branch);
        SIRI_CHECK(head.ok());
        auto node = cl.store->Get(*head);
        SIRI_CHECK(node.ok());
        auto head_commit = Commit::Decode(**node);
        SIRI_CHECK(head_commit.ok());
        std::vector<KV> batch;
        const BranchContentionConfig defaults;
        batch.reserve(defaults.upload_kvs);
        for (size_t k = 0; k < defaults.upload_kvs; ++k) {
          batch.push_back(
              KV{BranchContentionKey(t, c, row, k), "v" + std::to_string(c)});
        }
        auto next = cl.index->PutBatch(head_commit->root, std::move(batch));
        SIRI_CHECK(next.ok());
        net::PublishRequest pub;
        pub.structure = "pos";
        pub.branch = branch;
        pub.new_root = *next;
        pub.author = "w" + std::to_string(t);
        pub.message = "c" + std::to_string(c);
        pub.expected_head = *head;
        auto landed = cl.transport->Publish(pub);
        SIRI_CHECK(landed.ok());
      }
    });
  }
  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs = timer.ElapsedSeconds();
  const uint64_t acked = static_cast<uint64_t>(threads) * commits_per_writer;
  const double goodput = secs == 0 ? 0 : static_cast<double>(acked) / secs;

  // The trip: from the next mutating op on, the disk is full. The head at
  // this instant is the last acked state — it must never move again.
  auto acked_head = servlet.branches()->Head(branch);
  SIRI_CHECK(acked_head.ok());
  uint64_t retries_at_trip = 0;
  for (auto& c : clients) retries_at_trip += c.transport->stats().retries;
  fault_env.set_enospc_after_op(fault_env.op_count());

  // Phase 2: every client keeps trying to write against the full disk.
  // The writes go through the raw transport, NOT ForkbaseClientStore —
  // the client store treats a failed upload as fatal (NodeStore::Put has
  // no failure channel), which is exactly right for an application but
  // wrong for a harness that wants to LOOK at the reject. Order matters:
  // a bare upload is fire-and-forget (durability is only claimed at
  // publish), so the op that TRIPS the latch must be a Publish — its
  // group flush fails, the raw ENOSPC is remapped by the server, and
  // every write after it (publish or upload alike) is rejected up front.
  // All of them must surface as the SAME typed degraded reject. Reads
  // interleave and must keep working.
  std::atomic<uint64_t> typed_rejects{0};
  workers.clear();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& cl = clients[t];
      auto expect_degraded = [&](const Status& failure) {
        SIRI_CHECK(!failure.ok());  // a full disk must never ack
        SIRI_CHECK(failure.IsResourceExhausted());
        SIRI_CHECK(net::IsDegradedReject(failure));
        typed_rejects.fetch_add(1, std::memory_order_relaxed);
      };
      for (int a = 0; a < 2; ++a) {
        auto head = cl.transport->Head(branch);
        SIRI_CHECK(head.ok());  // reads serve while degraded
        auto node = cl.store->Get(*head);
        SIRI_CHECK(node.ok());
        auto head_commit = Commit::Decode(**node);
        SIRI_CHECK(head_commit.ok());

        net::PublishRequest pub;
        pub.structure = "pos";
        pub.branch = branch;
        pub.new_root = head_commit->root;
        pub.author = "w" + std::to_string(t);
        pub.message = "overflow";
        pub.expected_head = *head;
        expect_degraded(cl.transport->Publish(pub).status());

        // By now this client has seen a degraded reject, so the sticky
        // latch is set server-side: even a fire-and-forget upload is
        // answered with the typed reject instead of silently dropped.
        const std::string payload = "overflow-" + std::to_string(t) + "-" +
                                    std::to_string(a);
        NodeBatch batch;
        batch.push_back(NodeRecord{
            Sha256::Digest(payload),
            std::make_shared<const std::string>(payload)});
        expect_degraded(cl.transport->PutMany(batch));
      }
    });
  }
  for (auto& w : workers) w.join();

  // Degraded rejects fail fast: retrying a full disk cannot help, so the
  // transports' retry counters must not have moved during phase 2.
  uint64_t retries_after = 0;
  for (auto& c : clients) retries_after += c.transport->stats().retries;
  SIRI_CHECK(retries_after == retries_at_trip);

  // Zero lost acked commits: the head never moved past the trip point and
  // every phase-1 key is still readable under it, server-side.
  auto final_head = servlet.branches()->Head(branch);
  SIRI_CHECK(final_head.ok());
  SIRI_CHECK(*final_head == *acked_head);
  auto head_commit = servlet.branches()->ReadCommit(*final_head);
  SIRI_CHECK(head_commit.ok());
  uint64_t lost = 0;
  const BranchContentionConfig defaults;
  for (int t = 0; t < threads; ++t) {
    for (int c = 0; c < commits_per_writer; ++c) {
      for (size_t k = 0; k < defaults.upload_kvs; ++k) {
        auto got = loaded->Get(head_commit->root,
                               BranchContentionKey(t, c, row, k), nullptr);
        if (!got.ok() || !got->has_value()) ++lost;
      }
    }
  }
  SIRI_CHECK(lost == 0);

  const auto st = server.stats();
  SIRI_CHECK(st.degraded);
  SIRI_CHECK(st.degraded_cause.find("enospc") != std::string::npos);
  SIRI_CHECK(st.degraded_rejects >= 1);

  printf("%10llu %12.1f %14llu %16llu %12llu\n",
         static_cast<unsigned long long>(acked), goodput,
         static_cast<unsigned long long>(typed_rejects.load()),
         static_cast<unsigned long long>(st.degraded_rejects),
         static_cast<unsigned long long>(lost));
  printf("#json socket_disk_fault structure=pos threads=%d transport=socket "
         "fault=enospc acked=%llu goodput_cps=%.1f typed_rejects=%llu "
         "degraded_rejects=%llu lost_acked=%llu window_us=%llu\n",
         threads, static_cast<unsigned long long>(acked), goodput,
         static_cast<unsigned long long>(typed_rejects.load()),
         static_cast<unsigned long long>(st.degraded_rejects),
         static_cast<unsigned long long>(lost),
         static_cast<unsigned long long>(window_micros));

  clients.clear();
  server.Stop();
  std::remove(store_path.c_str());
}

/// Printf a header line like the paper's figure captions.
inline void PrintHeader(const char* fig, const char* title) {
  printf("==============================================================\n");
  printf("%s — %s\n", fig, title);
  printf("==============================================================\n");
}

}  // namespace bench
}  // namespace siri

#endif  // SIRI_BENCH_BENCH_COMMON_H_
