// Copyright (c) 2026 The siri Authors. MIT license.
//
// Shared scaffolding for the per-figure benchmark binaries. Every binary
// prints the same series the corresponding paper figure/table plots, at a
// laptop-scale default that preserves the figure's *shape* (who wins, by
// what factor, where the crossovers are). Pass --scale=K to multiply the
// dataset sizes, e.g. --scale=8 approaches the paper's full sizes.

#ifndef SIRI_BENCH_BENCH_COMMON_H_
#define SIRI_BENCH_BENCH_COMMON_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/timer.h"
#include "index/index.h"
#include "index/mbt/mbt.h"
#include "index/mpt/mpt.h"
#include "index/mvmb/mvmb_tree.h"
#include "index/pos/pos_tree.h"
#include "store/node_store.h"
#include "system/forkbase.h"
#include "workload/ycsb.h"

namespace siri {
namespace bench {

/// Parses --scale=K (default 1) and --help from argv.
inline uint64_t ParseScale(int argc, char** argv) {
  uint64_t scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--scale=", 8) == 0) {
      scale = strtoull(argv[i] + 8, nullptr, 10);
      if (scale == 0) scale = 1;
    } else if (strcmp(argv[i], "--help") == 0) {
      printf("usage: %s [--scale=K]\n"
             "  YCSB benches (fig06/fig10/fig21) also take"
             " [--threads=K[,K...]] [--write-threads=K[,K...]]\n"
             "  fig06 also takes [--threads-only] [--write-scaling-only]"
             " [--smoke]\n",
             argv[0]);
      exit(0);
    }
  }
  return scale;
}

/// Parses a K[,K...] thread-count list from \p flag (e.g. "--threads=").
/// Default: the paper-style 1/2/4/8 sweep.
inline std::vector<int> ParseThreadList(int argc, char** argv,
                                        const char* flag) {
  const size_t flag_len = strlen(flag);
  std::vector<int> counts;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], flag, flag_len) == 0) {
      counts.clear();
      const char* p = argv[i] + flag_len;
      while (*p) {
        char* end = nullptr;
        const long v = strtol(p, &end, 10);
        if (end == p) break;
        if (v > 0) counts.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
      }
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

/// --threads=K[,K...] — client-thread counts for the multi-client read
/// sections of the YCSB benches.
inline std::vector<int> ParseThreadCounts(int argc, char** argv) {
  return ParseThreadList(argc, argv, "--threads=");
}

/// --write-threads=K[,K...] — writer-thread counts for the write-scaling
/// sections.
inline std::vector<int> ParseWriteThreadCounts(int argc, char** argv) {
  return ParseThreadList(argc, argv, "--write-threads=");
}

/// True if \p flag (e.g. "--threads-only") was passed.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct NamedIndex {
  std::string name;
  std::unique_ptr<ImmutableIndex> index;
};

/// The paper's four structures, node sizes tuned to ~1 KB (§5).
/// \param mbt_buckets bucket count; the paper picks it per experiment.
inline std::vector<NamedIndex> MakeAllIndexes(const NodeStorePtr& store,
                                              uint64_t mbt_buckets = 8192) {
  std::vector<NamedIndex> out;
  out.push_back({"pos", std::make_unique<PosTree>(store)});
  MbtOptions mbt_opt;
  mbt_opt.num_buckets = mbt_buckets;
  mbt_opt.fanout = 32;
  out.push_back({"mbt", std::make_unique<Mbt>(store, mbt_opt)});
  out.push_back({"mpt", std::make_unique<Mpt>(store)});
  out.push_back({"mvmb", std::make_unique<MvmbTree>(store)});
  return out;
}

/// Loads records in batches; returns the resulting version root.
inline Hash LoadRecords(ImmutableIndex* index, const std::vector<KV>& records,
                        size_t batch_size = 4000) {
  Hash root = index->EmptyRoot();
  for (size_t i = 0; i < records.size(); i += batch_size) {
    std::vector<KV> batch(
        records.begin() + i,
        records.begin() + std::min(i + batch_size, records.size()));
    auto next = index->PutBatch(root, batch);
    SIRI_CHECK(next.ok());
    root = *next;
  }
  return root;
}

/// Runs an op stream (reads point-lookup, writes batched per
/// \p write_batch) and returns throughput in kops/s.
inline double RunOps(ImmutableIndex* index, Hash* root,
                     const std::vector<YcsbOp>& ops, size_t write_batch = 1) {
  Timer timer;
  std::vector<KV> pending;
  pending.reserve(write_batch);
  uint64_t done = 0;
  for (const YcsbOp& op : ops) {
    if (op.type == YcsbOp::Type::kRead) {
      auto got = index->Get(*root, op.key, nullptr);
      SIRI_CHECK(got.ok());
    } else {
      pending.push_back(KV{op.key, op.value});
      if (pending.size() >= write_batch) {
        auto next = index->PutBatch(*root, std::move(pending));
        SIRI_CHECK(next.ok());
        *root = *next;
        pending.clear();
      }
    }
    ++done;
  }
  if (!pending.empty()) {
    auto next = index->PutBatch(*root, std::move(pending));
    SIRI_CHECK(next.ok());
    *root = *next;
  }
  const double secs = timer.ElapsedSeconds();
  return secs == 0 ? 0 : static_cast<double>(done) / secs / 1000.0;
}

/// Write batch granularity per structure, mirroring the paper's
/// implementations (§5.2): POS-Tree "applies batching techniques, taking
/// advantage of the bottom-up build order"; MBT groups a batch by bucket.
/// The MPT port and the MVMB+-Tree baseline apply operations individually
/// (Ethereum's trie and a classic B+-tree have no batch write path).
inline size_t WriteBatchFor(const std::string& name, size_t batch) {
  if (name == "pos" || name == "prolly" || name == "mbt") return batch;
  return 1;
}

/// Paper §5.4.2 collaboration setup: every party initializes the same base
/// dataset, then runs its own insert workload. An `overlap` fraction of
/// the inserted records (key AND value) is common to all parties and lives
/// under a shared key namespace (collaborative datasets partition key
/// space by ownership); the rest is party-private. All intermediate
/// versions are retained, as an immutable store does. Returns the version
/// roots per party.
struct CollaborationConfig {
  uint64_t base_records = 4000;
  uint64_t insert_records = 16000;  ///< workload size per party
  int parties = 10;
  double overlap = 0.5;
  size_t batch_size = 1000;
  bool shuffle_order = true;   ///< party-specific op order (SI stressor)
  bool all_versions = true;    ///< collect every intermediate version
};

inline std::vector<std::vector<Hash>> RunCollaboration(
    ImmutableIndex* index, const CollaborationConfig& cfg,
    YcsbGenerator* gen) {
  auto base = gen->GenerateRecords(cfg.base_records, "base");
  const uint64_t shared_records =
      static_cast<uint64_t>(cfg.insert_records * cfg.overlap);

  std::vector<std::vector<Hash>> roots_per_party;
  for (int p = 0; p < cfg.parties; ++p) {
    const std::string ns = "party" + std::to_string(p);
    std::vector<KV> ops;
    ops.reserve(cfg.insert_records);
    for (uint64_t j = 0; j < shared_records; ++j) {
      ops.push_back(KV{"shared/" + gen->KeyOf(j, "shared"),
                       gen->ValueOf(j, 0, "shared")});
    }
    for (uint64_t j = shared_records; j < cfg.insert_records; ++j) {
      ops.push_back(KV{ns + "/" + gen->KeyOf(j, ns), gen->ValueOf(j, 0, ns)});
    }
    if (cfg.shuffle_order) {
      Rng rng(0xc0ffee + p);
      for (size_t i = ops.size(); i > 1; --i) {
        std::swap(ops[i - 1], ops[rng.Uniform(i)]);
      }
    }

    std::vector<Hash> roots;
    Hash root = LoadRecords(index, base, cfg.batch_size);
    if (cfg.all_versions) roots.push_back(root);
    for (size_t i = 0; i < ops.size(); i += cfg.batch_size) {
      std::vector<KV> batch(ops.begin() + i,
                            ops.begin() +
                                std::min(i + cfg.batch_size, ops.size()));
      auto next = index->PutBatch(root, batch);
      SIRI_CHECK(next.ok());
      root = *next;
      if (cfg.all_versions) roots.push_back(root);
    }
    if (!cfg.all_versions) roots.push_back(root);
    roots_per_party.push_back(std::move(roots));
  }
  return roots_per_party;
}

/// Multi-client read path (§5.6 at K clients): one ForkbaseServlet serves
/// \p threads ForkbaseClientStore clients, each on its own thread with a
/// private node cache. The simulated round trip uses RttModel::kSleep so
/// concurrent clients overlap their round trips — aggregate throughput then
/// scales with the client count the way networked clients do, even on a
/// small core count.
struct ConcurrentReadConfig {
  int threads = 1;
  uint64_t cache_bytes = 1 << 20;  ///< per client
  uint64_t rtt_nanos = 20000;      ///< 20us simulated round trip
  bool record_latency = false;
};

struct ConcurrentReadResult {
  double kops = 0;         ///< aggregate ops/s across all clients, in kops
  double hit_ratio = 0;    ///< mean per-client cache hit ratio
  uint64_t remote_gets = 0;
  Histogram latencies_us;  ///< per-op read latencies (when recorded)
};

inline ConcurrentReadResult RunConcurrentReads(ForkbaseServlet* servlet,
                                               const ImmutableIndex& proto,
                                               const Hash& root,
                                               const std::vector<YcsbOp>& ops,
                                               const ConcurrentReadConfig& cfg) {
  std::vector<std::shared_ptr<ForkbaseClientStore>> stores;
  std::vector<std::unique_ptr<ImmutableIndex>> indexes;
  for (int t = 0; t < cfg.threads; ++t) {
    stores.push_back(std::make_shared<ForkbaseClientStore>(
        servlet, cfg.cache_bytes, cfg.rtt_nanos, RttModel::kSleep));
    indexes.push_back(proto.WithStore(stores.back()));
  }

  uint64_t reads_per_client = 0;
  for (const YcsbOp& op : ops) reads_per_client += op.type == YcsbOp::Type::kRead;

  std::vector<Histogram> lat(cfg.threads);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      const ImmutableIndex* index = indexes[t].get();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (const YcsbOp& op : ops) {
        if (op.type != YcsbOp::Type::kRead) continue;
        if (cfg.record_latency) {
          Timer lt;
          auto got = index->Get(root, op.key, nullptr);
          lat[t].Record(lt.ElapsedMicros());
          SIRI_CHECK(got.ok());
        } else {
          auto got = index->Get(root, op.key, nullptr);
          SIRI_CHECK(got.ok());
        }
      }
    });
  }

  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs = timer.ElapsedSeconds();

  ConcurrentReadResult out;
  const uint64_t total_reads = reads_per_client * cfg.threads;
  out.kops = secs == 0 ? 0 : static_cast<double>(total_reads) / secs / 1000.0;
  for (const auto& s : stores) {
    const auto stats = s->remote_stats();
    out.hit_ratio += stats.HitRatio() / cfg.threads;
    out.remote_gets += stats.remote_gets;
  }
  for (const Histogram& h : lat) out.latencies_us.Merge(h);
  return out;
}

/// Multi-client write path: K writer clients, each on its own thread with
/// its own ForkbaseClientStore, committing batches of writes against a
/// shared servlet. Every commit stages its dirty root-to-leaf nodes and
/// ships them in ONE PutMany upload RPC (one slept round trip), so — as
/// with the read path — aggregate throughput scales with the client count
/// because the clients' round trips overlap. Writers derive independent
/// version lineages from the shared base root (copy-on-write needs no
/// coordination beyond the store).
struct ConcurrentWriteConfig {
  int threads = 1;
  size_t commit_kvs = 20;          ///< writes per commit (one PutBatch)
  uint64_t cache_bytes = 1 << 20;  ///< per client
  uint64_t rtt_nanos = 2000000;    ///< 2ms simulated upload round trip
};

struct ConcurrentWriteResult {
  double kops = 0;           ///< aggregate writes/s across clients, in kops
  uint64_t commits = 0;      ///< total commits across clients
  uint64_t upload_rpcs = 0;  ///< total write RPCs (sum of remote_puts)
  /// Upload RPCs per commit: 1.0 when every commit batched into one RPC.
  double RpcsPerCommit() const {
    return commits == 0 ? 0 : static_cast<double>(upload_rpcs) / commits;
  }
};

inline ConcurrentWriteResult RunConcurrentWrites(
    ForkbaseServlet* servlet, const ImmutableIndex& proto,
    const Hash& base_root, const std::vector<YcsbOp>& ops,
    const ConcurrentWriteConfig& cfg) {
  std::vector<std::shared_ptr<ForkbaseClientStore>> stores;
  std::vector<std::unique_ptr<ImmutableIndex>> indexes;
  for (int t = 0; t < cfg.threads; ++t) {
    stores.push_back(std::make_shared<ForkbaseClientStore>(
        servlet, cfg.cache_bytes, cfg.rtt_nanos, RttModel::kSleep));
    indexes.push_back(proto.WithStore(stores.back()));
    // Index construction may upload a skeleton (MBT's empty tree); that is
    // setup, not steady-state commit traffic.
    stores.back()->ResetOpCounters();
  }

  std::vector<std::vector<KV>> commits;  // shared op stream, pre-batched
  for (const YcsbOp& op : ops) {
    if (op.type != YcsbOp::Type::kWrite) continue;
    if (commits.empty() || commits.back().size() >= cfg.commit_kvs) {
      commits.emplace_back();
    }
    commits.back().push_back(KV{op.key, op.value});
  }

  uint64_t writes_per_client = 0;
  for (const auto& c : commits) writes_per_client += c.size();

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ImmutableIndex* index = indexes[t].get();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      Hash root = base_root;
      for (const auto& commit : commits) {
        // Writer-private key prefix: every client builds its own lineage.
        std::vector<KV> batch;
        batch.reserve(commit.size());
        for (const KV& kv : commit) {
          batch.push_back(KV{"w" + std::to_string(t) + "/" + kv.key, kv.value});
        }
        auto next = index->PutBatch(root, std::move(batch));
        SIRI_CHECK(next.ok());
        root = *next;
      }
    });
  }

  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs = timer.ElapsedSeconds();

  ConcurrentWriteResult out;
  const uint64_t total_writes = writes_per_client * cfg.threads;
  out.kops = secs == 0 ? 0 : static_cast<double>(total_writes) / secs / 1000.0;
  out.commits = commits.size() * cfg.threads;
  for (const auto& s : stores) out.upload_rpcs += s->remote_stats().remote_puts;
  return out;
}

/// Printf a header line like the paper's figure captions.
inline void PrintHeader(const char* fig, const char* title) {
  printf("==============================================================\n");
  printf("%s — %s\n", fig, title);
  printf("==============================================================\n");
}

}  // namespace bench
}  // namespace siri

#endif  // SIRI_BENCH_BENCH_COMMON_H_
