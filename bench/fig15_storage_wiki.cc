// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 15 — storage usage and node counts on the Wiki dataset as more
// versions are loaded.
// Shape to reproduce: MPT storage grows fastest (long URL keys make the
// trie sparse: every update rewrites deep paths); MBT above POS/baseline;
// POS ≈ baseline and flattest.

#include "bench/bench_common.h"
#include "metrics/dedup.h"
#include "workload/datasets.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t pages = 20000 * scale;
  const int max_versions = 30;
  const int step = 10;

  PrintHeader("Figure 15", "Wiki storage (MB) / #nodes (x1000) by versions");
  printf("%10s | %28s | %28s\n", "", "storage MB", "#nodes x1000");
  printf("%10s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "#versions", "pos",
         "mbt", "mpt", "mvmb", "pos", "mbt", "mpt", "mvmb");

  WikiDataset wiki(pages);
  auto initial = wiki.InitialRecords();

  struct State {
    std::string name;
    std::unique_ptr<ImmutableIndex> index;
    std::vector<Hash> roots;
  };
  std::vector<State> states;
  for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
    State s;
    s.name = name;
    s.index = std::move(index);
    s.roots.push_back(LoadRecords(s.index.get(), initial));
    states.push_back(std::move(s));
  }

  for (int v = 1; v <= max_versions; ++v) {
    auto edits = wiki.VersionEdits(v, /*update_ratio=*/0.01);
    for (State& s : states) {
      auto next = s.index->PutBatch(s.roots.back(), edits);
      SIRI_CHECK(next.ok());
      s.roots.push_back(*next);
    }
    if (v % step == 0) {
      printf("%10d |", v);
      std::vector<double> knodes;
      for (State& s : states) {
        auto fp = ComputeFootprint(*s.index, s.roots);
        SIRI_CHECK(fp.ok());
        printf(" %6.1f", static_cast<double>(fp->bytes) / 1e6);
        knodes.push_back(static_cast<double>(fp->nodes) / 1e3);
      }
      printf(" |");
      for (double k : knodes) printf(" %6.1f", k);
      printf("\n");
      fflush(stdout);
    }
  }
  return 0;
}
