// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 1 — motivation: storage usage and transmission time for a growing
// number of dataset versions, raw (every version stored separately) vs
// deduplicated (page-level sharing via the content-addressed store).
// Paper setup: 100k initial records, 1k record updates per version,
// versions 100..500; 1 Gbit/s link for the transfer-time estimate.
// Shape to reproduce: raw grows linearly and steeply; deduplicated grows
// by roughly the delta size per version (~30x flatter).

#include "bench/bench_common.h"
#include "index/pos/pos_tree.h"
#include "metrics/dedup.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t num_records = 20000 * scale;
  const uint64_t updates_per_version = 200 * scale;
  const int max_versions = 100;
  const int step = 20;
  const double gbit_per_sec = 1e9 / 8;  // bytes per second on 1 GbE

  PrintHeader("Figure 1", "storage & transfer time, raw vs deduplicated");
  printf("records=%llu updates/version=%llu\n",
         static_cast<unsigned long long>(num_records),
         static_cast<unsigned long long>(updates_per_version));

  auto store = NewInMemoryNodeStore();
  PosTree index(store);
  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(num_records);

  std::vector<Hash> roots;
  Hash root = LoadRecords(&index, records);
  roots.push_back(root);

  printf("%10s %18s %18s %14s %14s\n", "#versions", "raw(MB)", "dedup(MB)",
         "raw-xfer(s)", "dedup-xfer(s)");
  uint64_t raw_bytes_per_version = 0;
  {
    auto fp = ComputeFootprint(index, {root});
    SIRI_CHECK(fp.ok());
    raw_bytes_per_version = fp->bytes;  // a full standalone copy
  }

  Rng rng(7);
  for (int v = 1; v <= max_versions; ++v) {
    std::vector<KV> updates;
    updates.reserve(updates_per_version);
    for (uint64_t i = 0; i < updates_per_version; ++i) {
      const uint64_t r = rng.Uniform(num_records);
      updates.push_back(KV{gen.KeyOf(r), gen.ValueOf(r, v)});
    }
    auto next = index.PutBatch(root, updates);
    SIRI_CHECK(next.ok());
    root = *next;
    roots.push_back(root);

    if (v % step == 0) {
      auto fp = ComputeFootprint(index, roots);
      SIRI_CHECK(fp.ok());
      const double raw_mb =
          static_cast<double>(raw_bytes_per_version) * roots.size() / 1e6;
      const double dedup_mb = static_cast<double>(fp->bytes) / 1e6;
      printf("%10d %18.1f %18.1f %14.2f %14.2f\n", v, raw_mb, dedup_mb,
             raw_mb * 1e6 / gbit_per_sec, dedup_mb * 1e6 / gbit_per_sec);
    }
  }
  return 0;
}
