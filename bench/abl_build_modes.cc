// Copyright (c) 2026 The siri Authors. MIT license.
//
// Ablation (DESIGN.md §6) — construction-mode cost for each structure:
//   bulk    : sorted bottom-up build, every node created & hashed once
//   batched : PutBatch in 4k-record batches (the paper's default batch)
//   per-op  : one Put per record (the paper's MPT / baseline write path)
// This isolates the mechanism behind Figure 7(b): POS-Tree's bottom-up
// batched build is the reason it wins block construction, while per-op
// insertion re-hashes a root-to-leaf path per record for every structure.

#include "bench/bench_common.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t n = 20000 * scale;

  PrintHeader("Ablation", "construction modes (krecords/s)");
  printf("%8s %10s %10s %10s\n", "index", "bulk", "batched", "per-op");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);
  auto sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });

  for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
    double bulk_kps = 0;
    {
      Timer t;
      if (name == "pos") {
        auto* pos = static_cast<PosTree*>(index.get());
        SIRI_CHECK(pos->BuildFromSorted(sorted).ok());
      } else if (name == "mvmb") {
        auto* mvmb = static_cast<MvmbTree*>(index.get());
        SIRI_CHECK(mvmb->BuildFromSorted(sorted).ok());
      } else {
        // MPT/MBT have no bulk path beyond a whole-dataset batch.
        SIRI_CHECK(index->PutBatch(index->EmptyRoot(), sorted).ok());
      }
      bulk_kps = n / t.ElapsedSeconds() / 1000.0;
    }

    double batched_kps = 0;
    {
      Timer t;
      (void)LoadRecords(index.get(), records, 4000);
      batched_kps = n / t.ElapsedSeconds() / 1000.0;
    }

    double per_op_kps = 0;
    {
      // Per-op over a subset, extrapolated (full per-op MPT at 160k would
      // dominate the suite's runtime).
      const uint64_t sub = std::min<uint64_t>(n, 5000);
      Timer t;
      Hash root = index->EmptyRoot();
      for (uint64_t i = 0; i < sub; ++i) {
        auto next = index->Put(root, records[i].key, records[i].value);
        SIRI_CHECK(next.ok());
        root = *next;
      }
      per_op_kps = sub / t.ElapsedSeconds() / 1000.0;
    }

    printf("%8s %10.1f %10.1f %10.1f\n", name.c_str(), bulk_kps, batched_kps,
           per_op_kps);
    fflush(stdout);
  }
  return 0;
}
