// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 9 — distribution of traversed tree height per operation for a
// write-only uniform workload over 160k keys.
// Shape to reproduce: MBT constant and smallest (static skeleton); POS
// concentrated at ~4 levels; MPT spread across deeper levels (5–7);
// MVMB+-Tree between POS and MPT.

#include "bench/bench_common.h"
#include "common/histogram.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t n = 160000 * scale / 4;  // default 40k, --scale=4 = paper
  const uint64_t num_ops = 5000;

  PrintHeader("Figure 9", "lookup-path height distribution (write workload)");
  printf("records=%llu ops=%llu\n", static_cast<unsigned long long>(n),
         static_cast<unsigned long long>(num_ops));

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);
  auto ops = gen.GenerateOps(num_ops, n, /*write_ratio=*/1.0, /*theta=*/0.0);

  for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
    Hash root = LoadRecords(index.get(), records);
    CountHistogram heights;
    for (const YcsbOp& op : ops) {
      // A write = lookup + path rewrite; the traversed height is the
      // lookup depth.
      LookupStats stats;
      auto got = index->Get(root, op.key, &stats);
      SIRI_CHECK(got.ok());
      heights.Record(stats.depth);
      auto next = index->Put(root, op.key, op.value);
      SIRI_CHECK(next.ok());
      root = *next;
    }
    printf("%8s  height:count  %s\n", name.c_str(),
           heights.ToString().c_str());
  }
  return 0;
}
