// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 20 — ablation: POS-Tree with the Recursively Identical property
// disabled (every version stamps all nodes, so nothing is shared) vs
// normal, in the collaboration setting.
// Shape to reproduce: dedup ratio and node sharing ratio collapse to
// exactly 0 when RI is disabled (paper Figure 20) — RI is the fundamental
// property enabling cross-version and cross-user deduplication.

#include "bench/bench_common.h"
#include "metrics/dedup.h"

using namespace siri;
using namespace siri::bench;

namespace {

void MeasureVariant(const char* label, const PosTreeOptions& options,
                    uint64_t base, int overlap) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store, options);
  CollaborationConfig cfg;
  cfg.base_records = base;
  cfg.insert_records = 2 * cfg.base_records;
  cfg.parties = 4;
  cfg.overlap = overlap / 100.0;
  cfg.batch_size = 1000;
  cfg.all_versions = true;  // RI is about sharing across versions
  YcsbGenerator gen(1);
  auto roots = RunCollaboration(&tree, cfg, &gen);

  std::vector<PageSet> page_sets;
  for (const auto& party_roots : roots) {
    for (const Hash& r : party_roots) {
      PageSet pages;
      SIRI_CHECK(tree.CollectPages(r, &pages).ok());
      page_sets.push_back(std::move(pages));
    }
  }
  auto stats = ComputeDedupStats(store.get(), page_sets);
  SIRI_CHECK(stats.ok());
  printf("%8d%% | %-24s | %10.3f | %10.3f\n", overlap, label,
         stats->DeduplicationRatio(), stats->NodeSharingRatio());
  fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t base = 3000 * scale;

  PrintHeader("Figure 20", "disabling Recursively Identical (POS-Tree)");
  printf("%9s | %-24s | %10s | %10s\n", "overlap", "variant", "dedup",
         "sharing");
  for (int overlap = 20; overlap <= 100; overlap += 20) {
    MeasureVariant("recursively-identical", PosTreeOptions::Default(), base,
                   overlap);
    MeasureVariant("non-recursively-ident.",
                   PosTreeOptions::NonRecursivelyIdentical(), base, overlap);
  }
  return 0;
}
