// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 13 — MBT lookup cost breakdown: time to traverse the tree and
// load nodes vs time to scan (binary-search) the bucket.
// Shape to reproduce: load time stays ~constant as N grows (fixed path
// length and node count) while scan time keeps rising with the bucket
// size N/B — the effect that makes MBT reads degrade at large N.

#include "bench/bench_common.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  std::vector<uint64_t> sizes;
  for (uint64_t n = 10000; n <= 160000; n *= 2) sizes.push_back(n * scale);
  const int probes = 3000;

  PrintHeader("Figure 13", "MBT lookup breakdown: load vs scan (us/op)");
  printf("%10s %12s %12s\n", "#records", "load(us)", "scan(us)");

  for (uint64_t n : sizes) {
    auto store = NewInMemoryNodeStore();
    MbtOptions opt;
    opt.num_buckets = 1024;  // small B so N/B growth is visible
    opt.fanout = 32;
    Mbt mbt(store, opt);
    YcsbGenerator gen(1);
    auto records = gen.GenerateRecords(n);
    Hash root = LoadRecords(&mbt, records);

    uint64_t load_total = 0, scan_total = 0;
    Rng rng(2);
    for (int i = 0; i < probes; ++i) {
      uint64_t load_ns = 0, scan_ns = 0;
      auto got = mbt.GetBreakdown(root, gen.KeyOf(rng.Uniform(n)), &load_ns,
                                  &scan_ns);
      SIRI_CHECK(got.ok());
      load_total += load_ns;
      scan_total += scan_ns;
    }
    printf("%10llu %12.3f %12.3f\n", static_cast<unsigned long long>(n),
           static_cast<double>(load_total) / probes / 1000.0,
           static_cast<double>(scan_total) / probes / 1000.0);
    fflush(stdout);
  }
  return 0;
}
