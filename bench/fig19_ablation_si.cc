// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 19 — ablation: POS-Tree with the Structurally Invariant property
// disabled (fixed-size chunking, history-inherited boundaries) vs normal,
// in the collaboration setting with party-specific operation orders.
// Shape to reproduce: both dedup ratio and node sharing ratio drop by
// 10–20 points when SI is disabled — identical final content no longer
// implies identical pages once parties applied their ops in different
// orders (paper: η 0.67 -> 0.52 at 100% overlap).

#include "bench/bench_common.h"
#include "metrics/dedup.h"

using namespace siri;
using namespace siri::bench;

namespace {

void MeasureVariant(const char* label, const PosTreeOptions& options,
                    uint64_t base, int overlap) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store, options);
  CollaborationConfig cfg;
  cfg.base_records = base;
  cfg.insert_records = 2 * cfg.base_records;
  cfg.parties = 6;
  cfg.overlap = overlap / 100.0;
  cfg.batch_size = 1000;
  cfg.shuffle_order = true;  // each party applies its ops in its own order
  cfg.all_versions = false;  // final instances: the SI effect undiluted
  YcsbGenerator gen(1);
  auto roots = RunCollaboration(&tree, cfg, &gen);

  std::vector<PageSet> page_sets;
  for (const auto& party_roots : roots) {
    PageSet pages;
    for (const Hash& r : party_roots) {
      SIRI_CHECK(tree.CollectPages(r, &pages).ok());
    }
    page_sets.push_back(std::move(pages));
  }
  auto stats = ComputeDedupStats(store.get(), page_sets);
  SIRI_CHECK(stats.ok());
  printf("%8d%% | %-22s | %10.3f | %10.3f\n", overlap, label,
         stats->DeduplicationRatio(), stats->NodeSharingRatio());
  fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t base = 4000 * scale;

  PrintHeader("Figure 19", "disabling Structurally Invariant (POS-Tree)");
  printf("%9s | %-22s | %10s | %10s\n", "overlap", "variant", "dedup",
         "sharing");
  for (int overlap = 20; overlap <= 100; overlap += 20) {
    MeasureVariant("structurally-invariant", PosTreeOptions::Default(), base,
                   overlap);
    MeasureVariant("non-structurally-inv.",
                   PosTreeOptions::NonStructurallyInvariant(), base, overlap);
  }
  return 0;
}
