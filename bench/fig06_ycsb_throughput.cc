// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 6 (a–i) — YCSB throughput grid: Zipfian θ ∈ {0, 0.5, 0.9} ×
// write-ratio ∈ {0, 0.5, 1}, dataset sizes sweeping upward, for POS-Tree,
// MBT, MPT and the MVMB+-Tree baseline.
// Shape to reproduce (paper): throughput of every index decreases with N;
// MBT reads start far ahead (shallow fixed path) and degrade below the
// others as buckets grow; POS ≈ baseline and ahead of MPT everywhere;
// write-heavy workloads are ~10x slower than read-only across the board;
// skew (θ) changes almost nothing.

#include "bench/bench_common.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  std::vector<uint64_t> sizes;
  for (uint64_t n : {10000, 20000, 40000, 80000}) sizes.push_back(n * scale);
  const uint64_t num_ops = 3000;
  const double thetas[] = {0.0, 0.5, 0.9};
  const double write_ratios[] = {0.0, 0.5, 1.0};

  PrintHeader("Figure 6", "YCSB throughput (kops/s) across θ and write ratio");

  for (double theta : thetas) {
    for (double wr : write_ratios) {
      printf("\n[θ=%.1f write_ratio=%.1f]\n", theta, wr);
      printf("%10s %10s %10s %10s %10s\n", "#records", "pos", "mbt", "mpt",
             "mvmb");
      for (uint64_t n : sizes) {
        printf("%10llu", static_cast<unsigned long long>(n));
        YcsbGenerator gen(1);
        auto records = gen.GenerateRecords(n);
        auto ops = gen.GenerateOps(num_ops, n, wr, theta);
        for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
          Hash root = LoadRecords(index.get(), records);
          const double kops = RunOps(index.get(), &root, ops, WriteBatchFor(name, 100));
          printf(" %10.1f", kops);
          fflush(stdout);
        }
        printf("\n");
      }
    }
  }
  return 0;
}
