// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 6 (a–i) — YCSB throughput grid: Zipfian θ ∈ {0, 0.5, 0.9} ×
// write-ratio ∈ {0, 0.5, 1}, dataset sizes sweeping upward, for POS-Tree,
// MBT, MPT and the MVMB+-Tree baseline.
// Shape to reproduce (paper): throughput of every index decreases with N;
// MBT reads start far ahead (shallow fixed path) and degrade below the
// others as buckets grow; POS ≈ baseline and ahead of MPT everywhere;
// write-heavy workloads are ~10x slower than read-only across the board;
// skew (θ) changes almost nothing.

#include "bench/bench_common.h"
#include "crypto/sha256.h"
#include "store/staging_store.h"

using namespace siri;
using namespace siri::bench;

namespace {

// Sharded vs unsharded NodeCache under reader contention: K threads doing
// hot-set Lookups against one cache. With one shard every Lookup serializes
// on a single mutex (the pre-sharding design, made safe); with the default
// shard count most acquisitions are uncontended.
void RunCacheShardSection(const std::vector<int>& thread_counts,
                          bool smoke = false) {
  constexpr int kHotKeys = 256;
  const int kLookupsPerThread = smoke ? 5000 : 100000;

  printf("\n[node-cache lock scaling] %d-key hot set, aggregate Mops/s\n",
         kHotKeys);
  printf("%8s %12s %12s\n", "threads", "1shard",
         (std::to_string(NodeCache::kDefaultShards) + "shards").c_str());

  for (int threads : thread_counts) {
    printf("%8d", threads);
    for (int shards : {1, NodeCache::kDefaultShards}) {
      NodeCache cache(8 << 20, shards);
      std::vector<Hash> keys;
      for (int i = 0; i < kHotKeys; ++i) {
        const std::string payload(1024, 'a' + (i % 26));
        const Hash h = Sha256::Digest(payload + std::to_string(i));
        cache.Insert(h, std::make_shared<const std::string>(payload));
        keys.push_back(h);
      }

      std::atomic<bool> go{false};
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
          for (int i = 0; i < kLookupsPerThread; ++i) {
            SIRI_CHECK(cache.Lookup(keys[(i + t) % kHotKeys]) != nullptr);
          }
        });
      }
      Timer timer;
      go.store(true, std::memory_order_release);
      for (auto& w : workers) w.join();
      const double secs = timer.ElapsedSeconds();
      const double mops =
          secs == 0 ? 0
                    : static_cast<double>(kLookupsPerThread) * threads / secs / 1e6;
      printf(" %12.2f", mops);
      fflush(stdout);
    }
    printf("\n");
  }
}

// Sharded vs unsharded InMemoryNodeStore under writer contention: K
// threads each flushing staged 64-node batches into one shared store.
// With one shard every batch serializes on a single mutex (the
// pre-sharding write path, made safe); with the default shard count a
// batch takes each shard lock once and different writers rarely collide.
void RunStoreShardSection(const std::vector<int>& thread_counts,
                          bool smoke = false) {
  const int kBatchesPerThread = smoke ? 40 : 400;
  constexpr int kBatchNodes = 64;

  printf("\n[node-store write lock scaling] %d-node staged batches,"
         " aggregate K nodes/s\n",
         kBatchNodes);
  printf("%8s %12s %12s\n", "threads", "1shard",
         (std::to_string(InMemoryNodeStore::kDefaultShards) + "shards").c_str());

  for (int threads : thread_counts) {
    printf("%8d", threads);
    for (int shards : {1, InMemoryNodeStore::kDefaultShards}) {
      auto store = NewInMemoryNodeStore(shards);
      std::atomic<bool> go{false};
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
          for (int b = 0; b < kBatchesPerThread; ++b) {
            StagingNodeStore staging(store.get());
            for (int i = 0; i < kBatchNodes; ++i) {
              std::string node(192, 'a' + (i % 26));
              node += std::to_string(t * 1000000 + b * 1000 + i);
              // Fire-and-forget staging: the bench measures batched write
              // throughput, the digests are never re-read.
              (void)staging.Put(node);
            }
            staging.FlushBatch();
          }
        });
      }
      Timer timer;
      go.store(true, std::memory_order_release);
      for (auto& w : workers) w.join();
      const double secs = timer.ElapsedSeconds();
      const double knodes =
          secs == 0 ? 0
                    : static_cast<double>(kBatchesPerThread) * kBatchNodes *
                          threads / secs / 1e3;
      printf(" %12.1f", knodes);
      fflush(stdout);
    }
    printf("\n");
  }
}

// Multi-client write scaling: K writer threads, each with its own client
// store, committing staged write batches (one upload RPC per commit)
// against one servlet over a sharded server store. Reported per
// structure: aggregate write kops/s and upload RPCs per commit (≤ 1.0
// means every commit batched its whole dirty path into one round trip).
void RunWriteScalingSection(uint64_t scale,
                            const std::vector<int>& thread_counts,
                            bool smoke = false) {
  const uint64_t n = (smoke ? 2000 : 20000) * scale;
  const uint64_t num_ops = smoke ? 200 : 1000;

  printf("\n[multi-client write scaling] n=%llu write-only commit=20"
         " rtt=2ms(sleep,1/commit) cache=1MB/client\n",
         static_cast<unsigned long long>(n));
  printf("%8s %15s %15s %15s %15s\n", "threads", "pos(kops|rpc)",
         "mbt(kops|rpc)", "mpt(kops|rpc)", "mvmb(kops|rpc)");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);
  auto ops = gen.GenerateOps(num_ops, n, /*write_ratio=*/1.0, /*theta=*/0.0);

  auto server_store = NewInMemoryNodeStore();
  siri::ForkbaseServlet servlet(server_store);
  auto indexes = MakeAllIndexes(server_store, smoke ? 1024 : 8192);
  std::vector<Hash> roots;
  for (auto& [name, index] : indexes) {
    roots.push_back(LoadRecords(index.get(), records));
  }

  for (int threads : thread_counts) {
    printf("%8d", threads);
    for (size_t i = 0; i < indexes.size(); ++i) {
      ConcurrentWriteConfig cfg;
      cfg.threads = threads;
      auto result = RunConcurrentWrites(&servlet, *indexes[i].index, roots[i],
                                        ops, cfg);
      printf("   %8.2f|%4.2f", result.kops, result.RpcsPerCommit());
      fflush(stdout);
    }
    printf("\n");
  }
}

// Multi-writer-same-branch contention: K writer threads racing commits
// onto ONE branch through the servlet's BranchManager — optimistic head
// CAS, lost races retried as two-parent merge commits (version/occ.h).
// Reported per structure: aggregate landed commits/s and lost head races
// per commit; the run aborts if any committed key is missing at the
// final head, because the whole point is zero lost updates under
// contention.
// Shape: the chunk uploads of a commit's body overlap across writers;
// only the publish (head CAS + one flushed batch) serializes per branch,
// so structures with batched write paths (POS, and the B+-tree baseline)
// scale ~2.5-3x from 1 to 4 writers. MPT — and to a lesser degree MBT —
// falls off at 4 writers instead: its per-key top-down write path makes
// the Merge3 of a retry cost ~divergence x per-key-rebuild (the same
// write asymmetry the paper's Figure 7b measures), and on a contended
// branch that work grows with the writer count.
void RunBranchCommitSection(uint64_t scale,
                            const std::vector<int>& thread_counts,
                            bool smoke = false) {
  RunBranchCommitTable((smoke ? 1000 : 8000) * scale,
                       /*mbt_buckets=*/smoke ? 256 : 2048, thread_counts,
                       /*commits_per_writer=*/smoke ? 4 : 24,
                       /*uploads_per_commit=*/smoke ? 2 : 5);
}

// Group-commit publish pipeline: the same contended-branch regime, swept
// over {group commit off, on}. The commit bodies are small (publish-bound
// cells) because the combiner's whole point is the publish ceiling: with
// per-commit publishes, one hot branch lands at most one commit per
// (merge CPU + flush); the combining queue batches K waiting committers
// into one merged publish, so commits-per-fsync rises toward K and
// throughput scales with the batch size instead.
void RunGroupCommitSection(uint64_t scale,
                           const std::vector<int>& thread_counts,
                           bool smoke = false) {
  RunGroupCommitTable((smoke ? 1000 : 8000) * scale,
                      /*mbt_buckets=*/smoke ? 256 : 2048, thread_counts,
                      /*commits_per_writer=*/smoke ? 4 : 48,
                      /*uploads_per_commit=*/1,
                      /*window_micros=*/500);
}

// Socket transport: the same group-commit regime through the REAL
// boundary — loopback TCP to an in-process siri-server over a file-backed
// store. Reported per cell: measured commits/s, bytes/RPC, syscalls per
// commit, and real commits-per-fsync. These are a different quantity from
// the slept-RTT in-process numbers and are labeled as such.
void RunSocketCommitSection(uint64_t scale,
                            const std::vector<int>& thread_counts,
                            bool smoke = false) {
  RunSocketCommitTable((smoke ? 500 : 4000) * scale,
                       /*mbt_buckets=*/smoke ? 256 : 2048, thread_counts,
                       /*commits_per_writer=*/smoke ? 3 : 24,
                       /*window_micros=*/500);
}

// Pipelined wire boundary: K writers sharing ONE connection, swept over
// the pipelining depth (depth 1 = the serialized baseline) plus a
// cache-push row at the deepest depth. The acceptance read: depth >= 4
// shows higher commits/s and strictly lower syscalls/commit than depth 1.
void RunSocketPipelineSection(uint64_t scale,
                              const std::vector<int>& write_threads,
                              bool smoke = false) {
  const int threads = write_threads.empty() ? 8 : write_threads.back();
  const std::vector<int> depths =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 4, 8};
  RunSocketPipelineTable((smoke ? 500 : 4000) * scale, threads,
                         /*commits_per_writer=*/smoke ? 3 : 16, depths,
                         /*window_micros=*/500);
}

// Chaos goodput: the socket commit pipeline re-run under client-side
// fault injection at a swept rate. Acked-commit goodput per rate next to
// the retry/reconnect/deadline counters that flag how it was earned; the
// run aborts on any lost or duplicated acked commit.
void RunSocketChaosSection(uint64_t scale,
                           const std::vector<int>& write_threads,
                           bool smoke = false) {
  const int threads = write_threads.empty() ? 4 : write_threads.back();
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.02, 0.05, 0.10};
  RunSocketChaosTable((smoke ? 500 : 4000) * scale, threads,
                      /*commits_per_writer=*/smoke ? 3 : 16, rates,
                      /*window_micros=*/500);
}

// Disk-fault degradation: the socket commit pipeline with the server's
// file-backed store on an io::FaultEnv. Half-way marker semantics: a
// healthy publish phase, then ENOSPC on every further write op. The
// acceptance read: every post-trip write fails with the typed degraded
// reject (no retry burn), reads keep serving, and zero acked commits are
// lost — the run aborts otherwise.
void RunSocketDiskFaultSection(uint64_t scale,
                               const std::vector<int>& write_threads,
                               bool smoke = false) {
  const int threads = write_threads.empty() ? 4 : write_threads.back();
  RunSocketDiskFaultTable((smoke ? 500 : 4000) * scale, threads,
                          /*commits_per_writer=*/smoke ? 3 : 16,
                          /*window_micros=*/500);
}

// Multi-client read scaling: K client threads, each with its own cache,
// reading through one servlet. Reported per structure: aggregate kops/s
// and mean cache hit ratio at each thread count.
void RunThreadedSection(uint64_t scale, const std::vector<int>& thread_counts,
                        bool smoke = false) {
  const uint64_t n = (smoke ? 2000 : 20000) * scale;
  const uint64_t num_ops = smoke ? 500 : 3000;

  printf("\n[multi-client read scaling] n=%llu read-only θ=0 "
         "rtt=20us(sleep) cache=1MB/client\n",
         static_cast<unsigned long long>(n));
  printf("%8s %15s %15s %15s %15s\n", "threads", "pos(kops|hit)",
         "mbt(kops|hit)", "mpt(kops|hit)", "mvmb(kops|hit)");

  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(n);
  auto ops = gen.GenerateOps(num_ops, n, /*write_ratio=*/0.0, /*theta=*/0.0);

  auto server_store = NewInMemoryNodeStore();
  siri::ForkbaseServlet servlet(server_store);
  auto indexes = MakeAllIndexes(server_store);
  std::vector<Hash> roots;
  for (auto& [name, index] : indexes) {
    roots.push_back(LoadRecords(index.get(), records));
  }

  for (int threads : thread_counts) {
    printf("%8d", threads);
    for (size_t i = 0; i < indexes.size(); ++i) {
      ConcurrentReadConfig cfg;
      cfg.threads = threads;
      auto result = RunConcurrentReads(&servlet, *indexes[i].index, roots[i],
                                       ops, cfg);
      printf("   %8.1f|%4.2f", result.kops, result.hit_ratio);
      fflush(stdout);
    }
    printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const std::vector<int> thread_counts = ParseThreadCounts(argc, argv);
  const std::vector<int> write_threads = ParseWriteThreadCounts(argc, argv);
  const bool threads_only = HasFlag(argc, argv, "--threads-only");
  const bool write_scaling_only = HasFlag(argc, argv, "--write-scaling-only");
  const bool branch_commits_only = HasFlag(argc, argv, "--branch-commits-only");
  const bool group_commit_only = HasFlag(argc, argv, "--group-commit-only");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool chaos = HasFlag(argc, argv, "--chaos");
  const bool pipeline = HasFlag(argc, argv, "--pipeline");
  const std::string transport = ParseTransportFlag(argc, argv);
  const std::string disk_fault = ParseDiskFaultFlag(argc, argv);
  std::vector<uint64_t> sizes;
  for (uint64_t n : {10000, 20000, 40000, 80000}) sizes.push_back(n * scale);
  const uint64_t num_ops = 3000;
  const double thetas[] = {0.0, 0.5, 0.9};
  const double write_ratios[] = {0.0, 0.5, 1.0};

  PrintHeader("Figure 6", "YCSB throughput (kops/s) across θ and write ratio");

  if (transport == "socket") {
    // The socket boundary is its own measurement regime (real loopback
    // TCP, real fsyncs): it runs alone so its numbers can never be read
    // as one series with the slept-RTT in-process sections.
    if (disk_fault == "enospc") {
      RunSocketDiskFaultSection(scale, write_threads, smoke);
    } else if (chaos) {
      RunSocketChaosSection(scale, write_threads, smoke);
    } else if (pipeline) {
      RunSocketPipelineSection(scale, write_threads, smoke);
    } else {
      RunSocketCommitSection(scale, write_threads, smoke);
    }
    return 0;
  }
  if (disk_fault != "none") {
    fprintf(stderr,
            "%s: --disk-fault requires --transport=socket (degradation is "
            "asserted through the real wire)\n",
            argv[0]);
    return 2;
  }
  if (chaos) {
    fprintf(stderr,
            "%s: --chaos requires --transport=socket (faults are injected "
            "into the real wire)\n",
            argv[0]);
    return 2;
  }
  if (pipeline) {
    fprintf(stderr,
            "%s: --pipeline requires --transport=socket (depth only exists "
            "on the real wire)\n",
            argv[0]);
    return 2;
  }

  if (smoke) {
    // Tiny end-to-end pass over every threaded section — the TSan CI
    // smoke: races only reachable at bench-scale contention surface here.
    // The group-commit sweep runs both off and on, so the combiner's
    // lanes, window waits, and combined merges all execute under TSan.
    RunThreadedSection(scale, thread_counts, /*smoke=*/true);
    RunWriteScalingSection(scale, write_threads, /*smoke=*/true);
    RunBranchCommitSection(scale, write_threads, /*smoke=*/true);
    RunGroupCommitSection(scale, write_threads, /*smoke=*/true);
    RunCacheShardSection(thread_counts, /*smoke=*/true);
    RunStoreShardSection(write_threads, /*smoke=*/true);
    return 0;
  }
  if (threads_only || write_scaling_only || branch_commits_only ||
      group_commit_only) {
    if (threads_only) {
      RunThreadedSection(scale, thread_counts);
      RunCacheShardSection(thread_counts);
    }
    if (write_scaling_only) {
      RunWriteScalingSection(scale, write_threads);
      RunStoreShardSection(write_threads);
    }
    if (branch_commits_only) {
      RunBranchCommitSection(scale, write_threads);
    }
    if (group_commit_only) {
      RunGroupCommitSection(scale, write_threads);
    }
    return 0;
  }

  for (double theta : thetas) {
    for (double wr : write_ratios) {
      printf("\n[θ=%.1f write_ratio=%.1f]\n", theta, wr);
      printf("%10s %10s %10s %10s %10s\n", "#records", "pos", "mbt", "mpt",
             "mvmb");
      for (uint64_t n : sizes) {
        printf("%10llu", static_cast<unsigned long long>(n));
        YcsbGenerator gen(1);
        auto records = gen.GenerateRecords(n);
        auto ops = gen.GenerateOps(num_ops, n, wr, theta);
        for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
          Hash root = LoadRecords(index.get(), records);
          const double kops = RunOps(index.get(), &root, ops, WriteBatchFor(name, 100));
          printf(" %10.1f", kops);
          fflush(stdout);
        }
        printf("\n");
      }
    }
  }

  RunThreadedSection(scale, thread_counts);
  RunWriteScalingSection(scale, write_threads);
  RunBranchCommitSection(scale, write_threads);
  RunGroupCommitSection(scale, write_threads);
  RunCacheShardSection(thread_counts);
  RunStoreShardSection(write_threads);
  return 0;
}
