// Copyright (c) 2026 The siri Authors. MIT license.
//
// Table 3 — effect of structure parameters on the deduplication ratio:
// POS-Tree node size (512–4096 B), MBT bucket count, MPT mean key length.
// Shape to reproduce: η(POS) falls as nodes grow; η(MBT) rises with more
// buckets (smaller leaves); η(MPT) rises with longer keys (wider tree,
// higher reusable fraction).
//
// NOTE vs the paper: the paper's POS column *increases* node size down the
// table and reports η decreasing; we print the same sweep.

#include "bench/bench_common.h"
#include "metrics/dedup.h"

using namespace siri;
using namespace siri::bench;

namespace {

// Collaboration-style measurement of η for one index: parties share a base
// dataset and apply 50%-overlapping updates (§5.4.2's default setting).
double MeasureEta(ImmutableIndex* index, YcsbGenerator* gen, uint64_t n) {
  CollaborationConfig cfg;
  cfg.base_records = n;
  cfg.insert_records = 2 * cfg.base_records;
  cfg.parties = 4;
  cfg.overlap = 0.5;
  cfg.batch_size = 1000;
  // Retain version histories: page granularity shows up in how much of
  // each intermediate version is reusable, which is where the node-size
  // and key-length trends of Table 3 live.
  cfg.all_versions = true;
  auto roots = RunCollaboration(index, cfg, gen);
  std::vector<PageSet> page_sets;
  for (const auto& party_roots : roots) {
    PageSet pages;
    for (const Hash& r : party_roots) {
      SIRI_CHECK(index->CollectPages(r, &pages).ok());
    }
    page_sets.push_back(std::move(pages));
  }
  auto stats = ComputeDedupStats(index->store(), page_sets);
  SIRI_CHECK(stats.ok());
  return stats->DeduplicationRatio();
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  const uint64_t n = 4000 * scale;

  PrintHeader("Table 3", "structure parameters vs deduplication ratio");

  printf("\nPOS-Tree: node size sweep\n%10s %12s\n", "node(B)", "eta(POS)");
  for (int bits : {9, 10, 11, 12}) {
    auto store = NewInMemoryNodeStore();
    PosTreeOptions opt;
    opt.leaf_pattern_bits = bits;
    PosTree tree(store, opt);
    YcsbGenerator gen(1);
    printf("%10d %12.4f\n", 1 << bits, MeasureEta(&tree, &gen, n));
    fflush(stdout);
  }

  printf("\nMBT: bucket count sweep\n%10s %12s\n", "#buckets", "eta(MBT)");
  for (uint64_t buckets : {4000u, 6000u, 8000u, 10000u}) {
    auto store = NewInMemoryNodeStore();
    MbtOptions opt;
    opt.num_buckets = buckets;
    opt.fanout = 32;
    Mbt mbt(store, opt);
    YcsbGenerator gen(1);
    printf("%10llu %12.4f\n", static_cast<unsigned long long>(buckets),
           MeasureEta(&mbt, &gen, n));
    fflush(stdout);
  }

  printf("\nMPT: mean key length sweep\n%10s %12s\n", "keylen", "eta(MPT)");
  for (size_t min_len : {5u, 8u, 11u, 14u}) {
    auto store = NewInMemoryNodeStore();
    Mpt mpt(store);
    YcsbGenerator gen(1);
    gen.options().key_len_min = min_len;
    gen.options().key_len_max = 15;
    const double mean = (min_len + 15) / 2.0;
    printf("%10.1f %12.4f\n", mean, MeasureEta(&mpt, &gen, n));
    fflush(stdout);
  }
  return 0;
}
