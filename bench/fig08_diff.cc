// Copyright (c) 2026 The siri Authors. MIT license.
//
// Figure 8 — diff latency between two versions holding the same dataset
// loaded in different random orders (the paper loads "two versions of
// data in random order" and diffs them).
// Shape to reproduce: all SIRI structures beat the MVMB+-Tree baseline
// (structural invariance lets them skip shared pages); MBT is fastest
// (purely positional comparison), MPT beats POS-Tree.

#include <algorithm>

#include "bench/bench_common.h"

using namespace siri;
using namespace siri::bench;

int main(int argc, char** argv) {
  const uint64_t scale = ParseScale(argc, argv);
  std::vector<uint64_t> sizes;
  for (uint64_t n : {10000, 20000, 40000, 80000}) sizes.push_back(n * scale);

  PrintHeader("Figure 8", "diff latency between two versions (ms)");
  printf("%10s %10s %10s %10s %10s\n", "#records", "pos", "mbt", "mpt",
         "mvmb");

  for (uint64_t n : sizes) {
    printf("%10llu", static_cast<unsigned long long>(n));
    YcsbGenerator gen(1);
    auto records = gen.GenerateRecords(n);

    // Version B: same records, 5% updated — loaded in a different order.
    auto records_b = records;
    for (uint64_t i = 0; i < n / 20; ++i) {
      records_b[i * 20].value = gen.ValueOf(i * 20, /*version=*/1);
    }
    Rng rng(9);
    for (size_t i = records_b.size(); i > 1; --i) {
      std::swap(records_b[i - 1], records_b[rng.Uniform(i)]);
    }

    for (auto& [name, index] : MakeAllIndexes(NewInMemoryNodeStore())) {
      Hash a = LoadRecords(index.get(), records);
      Hash b = LoadRecords(index.get(), records_b);
      Timer t;
      auto diff = index->Diff(a, b);
      SIRI_CHECK(diff.ok());
      SIRI_CHECK(diff->size() == n / 20);
      printf(" %10.2f", t.ElapsedMillis());
      fflush(stdout);
    }
    printf("\n");
  }
  return 0;
}
