// Copyright (c) 2026 The siri Authors. MIT license.

#include "system/forkbase.h"

#include <chrono>
#include <thread>

#include "common/timer.h"

namespace siri {

NodeCache::NodeCache(uint64_t capacity_bytes, int num_shards)
    : capacity_bytes_(capacity_bytes),
      shards_(num_shards < 1 ? 1 : static_cast<size_t>(num_shards)) {
  // Integer division: with capacity below the shard count every shard gets
  // capacity 0 and behaves as a pass-through (insert, then evict) — the
  // documented capacity-0 semantics.
  const uint64_t per_shard = capacity_bytes_ / shards_.size();
  for (Shard& s : shards_) s.capacity = per_shard;
}

std::shared_ptr<const std::string> NodeCache::Lookup(const Hash& h) {
  Shard& s = ShardFor(h);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(h);
  if (it == s.map.end()) return nullptr;
  // Move to front (most recently used).
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->bytes;
}

void NodeCache::Insert(const Hash& h, std::shared_ptr<const std::string> bytes) {
  Shard& s = ShardFor(h);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(h);
  if (it != s.map.end()) {
    // Content-addressed: same digest, same bytes. Refresh recency so the
    // entry is not evicted as if cold.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.size += bytes->size();
  s.lru.push_front(Entry{h, std::move(bytes)});
  s.map[h] = s.lru.begin();
  while (s.size > s.capacity && !s.lru.empty()) {
    const Entry& victim = s.lru.back();
    s.size -= victim.bytes->size();
    s.map.erase(victim.hash);
    s.lru.pop_back();
  }
}

void NodeCache::Clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.lru.clear();
    s.map.clear();
    s.size = 0;
  }
}

uint64_t NodeCache::size_bytes() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.size;
  }
  return total;
}

ForkbaseClientStore::ForkbaseClientStore(ForkbaseServlet* servlet,
                                         uint64_t cache_bytes,
                                         uint64_t rtt_nanos, RttModel rtt_model)
    : servlet_(servlet),
      cache_(cache_bytes),
      rtt_nanos_(rtt_nanos),
      rtt_model_(rtt_model) {}

void ForkbaseClientStore::ChargeRoundTrip() const {
  if (rtt_nanos_ == 0) return;
  if (rtt_model_ == RttModel::kSleep) {
    // Yield the core: concurrent clients overlap their round trips, which
    // is what makes multi-client read throughput scale on few cores.
    std::this_thread::sleep_for(std::chrono::nanoseconds(rtt_nanos_));
    return;
  }
  Timer t;
  while (t.ElapsedNanos() < rtt_nanos_) {
    // Busy-wait to model the round trip inside throughput measurements.
  }
}

Hash ForkbaseClientStore::Put(Slice bytes) {
  // Writes run server-side in the paper's setup; forward directly.
  return servlet_->store()->Put(bytes);
}

Result<std::shared_ptr<const std::string>> ForkbaseClientStore::Get(
    const Hash& h) {
  if (auto cached = cache_.Lookup(h)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  ChargeRoundTrip();
  auto bytes = servlet_->store()->Get(h);
  if (!bytes.ok()) return bytes;
  remote_gets_.fetch_add(1, std::memory_order_relaxed);
  remote_bytes_.fetch_add((*bytes)->size(), std::memory_order_relaxed);
  cache_.Insert(h, *bytes);
  return bytes;
}

bool ForkbaseClientStore::Contains(const Hash& h) const {
  // A cached node is by construction present on the servlet (it was fetched
  // from there), so answer locally and keep remote accounting faithful to
  // the paper's client-side model.
  if (cache_.Lookup(h) != nullptr) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  ChargeRoundTrip();
  remote_gets_.fetch_add(1, std::memory_order_relaxed);
  return servlet_->store()->Contains(h);
}

Result<uint64_t> ForkbaseClientStore::SizeOf(const Hash& h) const {
  if (auto cached = cache_.Lookup(h)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<uint64_t>(cached->size());
  }
  ChargeRoundTrip();
  remote_gets_.fetch_add(1, std::memory_order_relaxed);
  return servlet_->store()->SizeOf(h);
}

void ForkbaseClientStore::ResetOpCounters() {
  servlet_->store()->ResetOpCounters();
  remote_gets_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  remote_bytes_.store(0, std::memory_order_relaxed);
}

ForkbaseClientStore::RemoteStats ForkbaseClientStore::remote_stats() const {
  RemoteStats out;
  out.remote_gets = remote_gets_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.remote_bytes = remote_bytes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace siri
