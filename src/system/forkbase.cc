// Copyright (c) 2026 The siri Authors. MIT license.

#include "system/forkbase.h"

#include "common/status.h"

namespace siri {

void ForkbaseServlet::RegisterIndex(std::unique_ptr<ImmutableIndex> index) {
  SIRI_CHECK(index != nullptr);
  MutexLock lock(index_mu_);
  indexes_[index->name()] = std::move(index);
}

ImmutableIndex* ForkbaseServlet::IndexFor(const std::string& structure) const {
  MutexLock lock(index_mu_);
  auto it = indexes_.find(structure);
  return it == indexes_.end() ? nullptr : it->second.get();
}

NodeCache::NodeCache(uint64_t capacity_bytes, int num_shards)
    : capacity_bytes_(capacity_bytes),
      shards_(num_shards < 1 ? 1 : static_cast<size_t>(num_shards)) {
  // Integer division: with capacity below the shard count every shard gets
  // capacity 0 and behaves as a pass-through (insert, then evict) — the
  // documented capacity-0 semantics.
  const uint64_t per_shard = capacity_bytes_ / shards_.size();
  for (Shard& s : shards_) s.capacity = per_shard;
}

std::shared_ptr<const std::string> NodeCache::Lookup(const Hash& h) {
  Shard& s = ShardFor(h);
  MutexLock lock(s.mu);
  auto it = s.map.find(h);
  if (it == s.map.end()) return nullptr;
  // Move to front (most recently used).
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->bytes;
}

void NodeCache::Insert(const Hash& h, std::shared_ptr<const std::string> bytes) {
  Shard& s = ShardFor(h);
  MutexLock lock(s.mu);
  auto it = s.map.find(h);
  if (it != s.map.end()) {
    // Content-addressed: same digest, same bytes. Refresh recency so the
    // entry is not evicted as if cold.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.size += bytes->size();
  s.lru.push_front(Entry{h, std::move(bytes)});
  s.map[h] = s.lru.begin();
  while (s.size > s.capacity && !s.lru.empty()) {
    const Entry& victim = s.lru.back();
    s.size -= victim.bytes->size();
    s.map.erase(victim.hash);
    s.lru.pop_back();
  }
}

void NodeCache::Clear() {
  for (Shard& s : shards_) {
    MutexLock lock(s.mu);
    s.lru.clear();
    s.map.clear();
    s.size = 0;
  }
}

uint64_t NodeCache::size_bytes() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    total += s.size;
  }
  return total;
}

ForkbaseClientStore::ForkbaseClientStore(ForkbaseServlet* servlet,
                                         uint64_t cache_bytes,
                                         uint64_t rtt_nanos, RttModel rtt_model)
    : ForkbaseClientStore(std::make_shared<net::InProcessTransport>(
                              servlet, rtt_nanos, rtt_model),
                          cache_bytes) {}

ForkbaseClientStore::ForkbaseClientStore(
    std::shared_ptr<net::Transport> transport, uint64_t cache_bytes)
    : transport_(std::move(transport)), cache_(cache_bytes) {
  // Combiner-aware cache push: nodes the server attaches to Publish acks
  // (already digest-verified by the transport) are write-allocated into
  // the cache — they are the merged pages and commit objects the next
  // commit round would otherwise fetch back one Get at a time.
  transport_->SetPushSink([this](const NodeBatch& pushed) {
    for (const NodeRecord& rec : pushed) cache_.Insert(rec.hash, rec.bytes);
    pushed_nodes_.fetch_add(pushed.size(), std::memory_order_relaxed);
  });
}

ForkbaseClientStore::~ForkbaseClientStore() {
  // The sink captures `this`; the transport is shared and may outlive us.
  transport_->SetPushSink(nullptr);
}

Hash ForkbaseClientStore::Put(Slice bytes) {
  // One node, one upload RPC. Batched commit paths use PutMany instead,
  // which ships the whole staged batch for a single round trip.
  remote_puts_.fetch_add(1, std::memory_order_relaxed);
  auto uploaded = transport_->Put(bytes);
  // NodeStore::Put has no failure channel (an upload's digest is its
  // receipt), so a broken boundary is fatal to this client — matching the
  // embedded deployment, where the store is in-process and cannot fail.
  SIRI_CHECK(uploaded.ok());
  return *uploaded;
}

void ForkbaseClientStore::PutMany(const NodeBatch& batch) {
  if (batch.empty()) return;
  // The whole batch rides one chunk-upload RPC: a commit's dirty
  // root-to-leaf path costs one round trip, not one per node.
  remote_puts_.fetch_add(1, std::memory_order_relaxed);
  const Status uploaded = transport_->PutMany(batch);
  SIRI_CHECK(uploaded.ok());  // see Put: no failure channel
  // Write-allocate: the next commit of this client starts by re-reading
  // the path nodes this one just produced; without caching them each would
  // cost a fresh remote fetch.
  for (const NodeRecord& rec : batch) cache_.Insert(rec.hash, rec.bytes);
}

Result<std::shared_ptr<const std::string>> ForkbaseClientStore::Get(
    const Hash& h) {
  if (auto cached = cache_.Lookup(h)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  // Singleflight: join an in-flight fetch of the same digest if one
  // exists, otherwise become its leader.
  std::shared_ptr<InFlightFetch> flight;
  bool leader = false;
  {
    MutexLock lock(inflight_mu_);
    auto it = inflight_.find(h);
    if (it == inflight_.end()) {
      flight = std::make_shared<InFlightFetch>();
      inflight_.emplace(h, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }
  if (!leader) {
    // Follower: the round trip is already being paid by the leader; wait
    // for its result instead of issuing a duplicate fetch. (Manual wait
    // loop: a predicate lambda would hide the guarded read of done from
    // the thread-safety analysis.)
    MutexLock lock(flight->mu);
    while (!flight->done) flight->cv.wait(lock.native());
    coalesced_gets_.fetch_add(1, std::memory_order_relaxed);
    if (!flight->status.ok()) return flight->status;
    return flight->bytes;
  }

  auto bytes = transport_->Get(h);
  if (bytes.ok()) {
    remote_gets_.fetch_add(1, std::memory_order_relaxed);
    remote_bytes_.fetch_add((*bytes)->size(), std::memory_order_relaxed);
    cache_.Insert(h, *bytes);
  }
  // Publish to followers, then retire the flight so later misses start a
  // fresh fetch (by then the node is normally in the cache anyway).
  {
    MutexLock lock(flight->mu);
    flight->status = bytes.ok() ? Status::OK() : bytes.status();
    if (bytes.ok()) flight->bytes = *bytes;
    flight->done = true;
  }
  flight->cv.notify_all();
  {
    MutexLock lock(inflight_mu_);
    inflight_.erase(h);
  }
  return bytes;
}

bool ForkbaseClientStore::Contains(const Hash& h) const {
  // A cached node is by construction present on the servlet (it was fetched
  // from there), so answer locally and keep remote accounting faithful to
  // the paper's client-side model.
  if (cache_.Lookup(h) != nullptr) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  remote_gets_.fetch_add(1, std::memory_order_relaxed);
  auto present = transport_->Contains(h);
  return present.ok() && *present;
}

Result<uint64_t> ForkbaseClientStore::SizeOf(const Hash& h) const {
  if (auto cached = cache_.Lookup(h)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<uint64_t>(cached->size());
  }
  remote_gets_.fetch_add(1, std::memory_order_relaxed);
  return transport_->SizeOf(h);
}

NodeStore::Stats ForkbaseClientStore::stats() const {
  auto remote = transport_->StoreStats();
  return remote.ok() ? *remote : Stats{};
}

void ForkbaseClientStore::ResetOpCounters() {
  // Best-effort across the boundary: a client that cannot reach the
  // server still zeroes its local counters.
  (void)transport_->ResetServerOpCounters();
  remote_gets_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  remote_bytes_.store(0, std::memory_order_relaxed);
  coalesced_gets_.store(0, std::memory_order_relaxed);
  remote_puts_.store(0, std::memory_order_relaxed);
}

ForkbaseClientStore::RemoteStats ForkbaseClientStore::remote_stats() const {
  RemoteStats out;
  out.remote_gets = remote_gets_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.remote_bytes = remote_bytes_.load(std::memory_order_relaxed);
  out.coalesced_gets = coalesced_gets_.load(std::memory_order_relaxed);
  out.remote_puts = remote_puts_.load(std::memory_order_relaxed);
  out.pushed_nodes = pushed_nodes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace siri
