// Copyright (c) 2026 The siri Authors. MIT license.

#include "system/forkbase.h"

#include "common/timer.h"

namespace siri {

NodeCache::NodeCache(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

std::shared_ptr<const std::string> NodeCache::Lookup(const Hash& h) {
  auto it = map_.find(h);
  if (it == map_.end()) return nullptr;
  // Move to front (most recently used).
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->bytes;
}

void NodeCache::Insert(const Hash& h, std::shared_ptr<const std::string> bytes) {
  if (map_.count(h) > 0) return;
  size_bytes_ += bytes->size();
  lru_.push_front(Entry{h, std::move(bytes)});
  map_[h] = lru_.begin();
  EvictIfNeeded();
}

void NodeCache::EvictIfNeeded() {
  while (size_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    size_bytes_ -= victim.bytes->size();
    map_.erase(victim.hash);
    lru_.pop_back();
  }
}

void NodeCache::Clear() {
  lru_.clear();
  map_.clear();
  size_bytes_ = 0;
}

ForkbaseClientStore::ForkbaseClientStore(ForkbaseServlet* servlet,
                                         uint64_t cache_bytes,
                                         uint64_t rtt_nanos)
    : servlet_(servlet), cache_(cache_bytes), rtt_nanos_(rtt_nanos) {}

Hash ForkbaseClientStore::Put(Slice bytes) {
  // Writes run server-side in the paper's setup; forward directly.
  return servlet_->store()->Put(bytes);
}

Result<std::shared_ptr<const std::string>> ForkbaseClientStore::Get(
    const Hash& h) {
  if (auto cached = cache_.Lookup(h)) {
    ++remote_stats_.cache_hits;
    return cached;
  }
  if (rtt_nanos_ > 0) {
    Timer t;
    while (t.ElapsedNanos() < rtt_nanos_) {
      // Busy-wait to model the round trip inside throughput measurements.
    }
  }
  auto bytes = servlet_->store()->Get(h);
  if (!bytes.ok()) return bytes;
  ++remote_stats_.remote_gets;
  remote_stats_.remote_bytes += (*bytes)->size();
  cache_.Insert(h, *bytes);
  return bytes;
}

bool ForkbaseClientStore::Contains(const Hash& h) const {
  return servlet_->store()->Contains(h);
}

Result<uint64_t> ForkbaseClientStore::SizeOf(const Hash& h) const {
  return servlet_->store()->SizeOf(h);
}

void ForkbaseClientStore::ResetOpCounters() {
  servlet_->store()->ResetOpCounters();
  remote_stats_ = RemoteStats{};
}

}  // namespace siri
