// Copyright (c) 2026 The siri Authors. MIT license.

#include "system/ledger.h"

namespace siri {

Result<Hash> Ledger::AppendBlock(const std::vector<KV>& txs) {
  // Blocks are loaded from scratch. Batch mode hands the whole block to
  // the structure (bottom-up for POS-Tree); per-op mode applies one
  // transaction at a time (the top-down build of the paper's MPT port and
  // B+-tree baseline) — the asymmetry Figure 7(b) measures.
  Hash root = index_->EmptyRoot();
  if (batch_build_) {
    auto r = index_->PutBatch(root, txs);
    if (!r.ok()) return r.status();
    root = *r;
  } else {
    for (const KV& tx : txs) {
      auto r = index_->Put(root, tx.key, tx.value);
      if (!r.ok()) return r.status();
      root = *r;
    }
  }
  if (sync_on_commit_) {
    // Block append is a commit boundary: the root we return must point at
    // pages that survive a crash.
    Status s = index_->store()->Flush();
    if (!s.ok()) return s;
  }
  {
    WriterLock lock(mu_);
    block_roots_.push_back(root);
  }
  return root;
}

Result<std::optional<std::string>> Ledger::Lookup(
    Slice tx_hash, uint64_t* blocks_scanned) const {
  // Walk a snapshot of the chain length: blocks appended after this point
  // are simply not visible to this lookup, which is the usual chain-read
  // semantics. Roots are immutable once pushed, so per-block indexed
  // access under a brief shared lock (push_back may reallocate the
  // vector, so no reference outlives the lock) avoids copying the whole
  // chain on this measured hot path.
  uint64_t num_blocks;
  {
    ReaderLock lock(mu_);
    num_blocks = block_roots_.size();
  }
  uint64_t scanned = 0;
  for (uint64_t i = num_blocks; i-- > 0;) {
    Hash root;
    {
      ReaderLock lock(mu_);
      root = block_roots_[i];
    }
    ++scanned;
    auto value = index_->Get(root, tx_hash, nullptr);
    if (!value.ok()) return value.status();
    if (value->has_value()) {
      if (blocks_scanned) *blocks_scanned = scanned;
      return *value;
    }
  }
  if (blocks_scanned) *blocks_scanned = scanned;
  return std::optional<std::string>{};
}

}  // namespace siri
