// Copyright (c) 2026 The siri Authors. MIT license.
//
// Forkbase-style system layer (§5.6): a storage servlet owning the node
// store, and clients that fetch nodes over an accounted remote boundary
// with a client-side node cache. The paper's system experiment runs one
// servlet and one client over TCP; here the boundary is in-process but
// every remote fetch is counted and can be charged a simulated round-trip
// cost, which reproduces the phenomenon the experiment studies — read
// throughput dominated by remote access, mitigated by caching, with cache
// hit ratios that differ per index structure (large shared nodes are
// re-read more often, fixed-entry MBT nodes less).
//
// Concurrency: one servlet serves K ForkbaseClientStore clients from K
// threads, and a single client may itself be shared by multiple reader
// threads. NodeCache is a sharded LRU (shards keyed by digest prefix,
// one mutex per shard) so concurrent lookups on different shards never
// contend; RemoteStats accounting is lock-free (relaxed atomics).
// Concurrent misses on the same digest are coalesced (singleflight): one
// thread pays the round trip, the others wait for its result, so a shared
// hot set never fetches the same node twice at the same time.
//
// Writes are RPCs too: Put ships one node per round trip, PutMany ships a
// whole commit's staged batch in a single round trip — ForkBase's
// chunk-upload call — which is what makes batched commits cost ≤ 1
// simulated RTT each.
//
// The boundary itself is pluggable since the transport refactor: the
// client store talks to a net::Transport, which is either an
// InProcessTransport over a servlet in this address space (the embedded
// deployment every test and bench above runs, with the simulated RTT) or
// a SocketTransport to a siri-server process (net/socket_transport.h),
// where the round trip is real. Cache, singleflight, and the remote
// accounting stay here — they are client-side concerns either way.

#ifndef SIRI_SYSTEM_FORKBASE_H_
#define SIRI_SYSTEM_FORKBASE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"

#include "index/index.h"
#include "net/transport.h"
#include "store/node_store.h"
#include "version/commit.h"
#include "version/group_commit.h"

namespace siri {

/// \brief Thread-safe LRU cache of nodes, keyed by digest (a client's
/// local node cache).
///
/// Internally sharded: a node lives in the shard selected by its digest
/// prefix, and each shard is an independently-locked LRU with capacity
/// `capacity_bytes / num_shards`. Eviction is therefore per-shard LRU, a
/// close approximation of global LRU for SHA-256-distributed keys. Tests
/// that assert exact global LRU order pass `num_shards = 1`.
class NodeCache {
 public:
  static constexpr int kDefaultShards = 16;

  explicit NodeCache(uint64_t capacity_bytes, int num_shards = kDefaultShards);

  /// Returns the cached bytes and refreshes recency, or nullptr on miss.
  std::shared_ptr<const std::string> Lookup(const Hash& h);

  /// Inserts the node, evicting per-shard LRU victims while over capacity.
  /// A digest already present is touched to the front instead (same bytes:
  /// the store is content-addressed) so a re-inserted entry is hot again.
  void Insert(const Hash& h, std::shared_ptr<const std::string> bytes);

  void Clear();

  uint64_t size_bytes() const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    Hash hash;
    std::shared_ptr<const std::string> bytes;
  };

  struct Shard {
    mutable Mutex mu;
    uint64_t capacity = 0;  // set once at construction, immutable after
    uint64_t size GUARDED_BY(mu) = 0;
    std::list<Entry> lru GUARDED_BY(mu);  // front = most recent
    std::unordered_map<Hash, std::list<Entry>::iterator, HashHasher> map
        GUARDED_BY(mu);
  };

  Shard& ShardFor(const Hash& h) {
    return shards_[h.Prefix64() % shards_.size()];
  }

  uint64_t capacity_bytes_;
  std::vector<Shard> shards_;
};

/// \brief The server side: owns the authoritative store and the branch
/// table. Safe to share across client threads as long as the underlying
/// NodeStore honors its thread-safety contract; the BranchManager is
/// internally thread-safe, so K writer clients may commit to the same
/// branch concurrently — head movement is an optimistic CAS (typed
/// Conflict on a lost race) and the merge retry driver in version/occ.h
/// turns losses into two-parent merge commits.
class ForkbaseServlet {
 public:
  /// \param group_commit tuning for the combining commit queue; the
  ///        defaults give a 200µs publish window. Committers opt in by
  ///        publishing through combiner() instead of CommitWithMerge.
  explicit ForkbaseServlet(NodeStorePtr store,
                           GroupCommitOptions group_commit = {})
      : store_(std::move(store)),
        branches_(store_),
        combiner_(&branches_, std::move(group_commit)) {}

  NodeStore* store() { return store_.get(); }
  const NodeStorePtr& store_ptr() const { return store_; }

  /// The server-side branch table shared by every client.
  BranchManager* branches() { return &branches_; }

  /// The group-commit publish pipeline over branches(): K concurrent
  /// committers of one branch batch into one combined merge + one staged
  /// flush + one head swing (version/group_commit.h). Committers that
  /// want per-commit publishes keep calling CommitWithMerge directly —
  /// both paths are safe concurrently (the combiner is just another OCC
  /// writer).
  CommitCombiner* combiner() { return &combiner_; }

  /// Registers a server-side index (it must be bound to this servlet's
  /// store) under index->name(), replacing any prior registration of that
  /// name. Publish RPCs arriving over a transport merge through the
  /// registered index of the structure they name, so a server must
  /// register each structure its clients commit — with the same
  /// construction options (an MBT's bucket geometry is fixed at
  /// construction and must match the client's). Register before serving:
  /// IndexFor hands out raw pointers that replacement would invalidate.
  void RegisterIndex(std::unique_ptr<ImmutableIndex> index) EXCLUDES(index_mu_);

  /// The registered index for \p structure, or nullptr. The pointer stays
  /// valid while the servlet lives (registrations are not replaced while
  /// serving, per RegisterIndex's contract).
  ImmutableIndex* IndexFor(const std::string& structure) const
      EXCLUDES(index_mu_);

 private:
  NodeStorePtr store_;
  BranchManager branches_;
  CommitCombiner combiner_;
  mutable Mutex index_mu_;
  std::map<std::string, std::unique_ptr<ImmutableIndex>> indexes_
      GUARDED_BY(index_mu_);
};

/// \brief Client-side NodeStore view: cache first, then "remote" fetch.
///
/// Reads executed through this store see the client-server boundary;
/// writes are forwarded (the paper executes writes entirely server-side).
/// Thread-safe: one instance may serve many reader threads.
class ForkbaseClientStore : public NodeStore {
 public:
  struct RemoteStats {
    uint64_t remote_gets = 0;   ///< fetches that had to go to the servlet
    uint64_t cache_hits = 0;    ///< fetches served locally
    uint64_t remote_bytes = 0;  ///< bytes shipped from the servlet
    /// Misses that piggybacked on another thread's in-flight fetch of the
    /// same digest instead of paying their own round trip (singleflight).
    uint64_t coalesced_gets = 0;
    /// Write RPCs issued: one per Put, one per PutMany batch. Batched
    /// commits therefore show ≤ 1 remote_put per commit.
    uint64_t remote_puts = 0;
    /// Nodes the transport pushed into the cache off Publish acks
    /// (combiner-aware cache push) — each one a remote_get this client
    /// did not pay on its next round.
    uint64_t pushed_nodes = 0;

    double HitRatio() const {
      const uint64_t total = remote_gets + cache_hits + coalesced_gets;
      return total == 0
                 ? 0.0
                 : static_cast<double>(cache_hits + coalesced_gets) / total;
    }
  };

  /// Embedded deployment: builds an InProcessTransport over \p servlet.
  /// \param rtt_nanos simulated per-fetch round-trip cost (0 = count only),
  ///        charged per \p rtt_model so throughput numbers include it.
  ForkbaseClientStore(ForkbaseServlet* servlet, uint64_t cache_bytes,
                      uint64_t rtt_nanos = 0,
                      RttModel rtt_model = RttModel::kBusyWait);

  /// Client/server deployment (or tests injecting a transport): the same
  /// cache/singleflight/accounting over any boundary implementation.
  /// Installs this store's NodeCache as the transport's push sink —
  /// nodes a Publish ack carries back (combiner-aware cache push) are
  /// write-allocated exactly like PutMany output.
  ForkbaseClientStore(std::shared_ptr<net::Transport> transport,
                      uint64_t cache_bytes);

  /// Uninstalls the push sink (it captures `this`; the shared transport
  /// may outlive this store).
  ~ForkbaseClientStore() override;

  /// One upload RPC per node: charges a round trip and forwards.
  [[nodiscard]] Hash Put(Slice bytes) override;

  /// One upload RPC per *batch* (ForkBase's chunk-upload call): a staged
  /// commit of any size costs a single simulated round trip.
  void PutMany(const NodeBatch& batch) override;

  /// Cache first, then a remote fetch. Concurrent misses on the same
  /// digest share one round trip (singleflight): the first thread fetches,
  /// the rest wait on its result and count as coalesced_gets.
  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;

  bool Contains(const Hash& h) const override;
  Result<uint64_t> SizeOf(const Hash& h) const override;
  /// The *server* store's counters, fetched over the transport (empty on
  /// a transport error — the boundary's observability is best-effort).
  Stats stats() const override;
  void ResetOpCounters() override;
  Status Flush() override { return transport_->Flush(); }

  /// Consistent-enough snapshot of the remote accounting counters.
  RemoteStats remote_stats() const;
  void ClearCache() { cache_.Clear(); }

  /// The boundary this client talks through (e.g. for its cost stats or
  /// for branch head/publish RPCs alongside the node traffic).
  net::Transport* transport() const { return transport_.get(); }

 private:
  /// One miss being fetched from the servlet; followers block on cv until
  /// the leader publishes the outcome.
  struct InFlightFetch {
    Mutex mu;
    std::condition_variable cv;
    bool done GUARDED_BY(mu) = false;
    Status status GUARDED_BY(mu);
    std::shared_ptr<const std::string> bytes GUARDED_BY(mu);
  };

  std::shared_ptr<net::Transport> transport_;
  mutable NodeCache cache_;  // Lookup refreshes recency, so const paths touch it
  mutable std::atomic<uint64_t> remote_gets_{0};
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> remote_bytes_{0};
  mutable std::atomic<uint64_t> coalesced_gets_{0};
  mutable std::atomic<uint64_t> remote_puts_{0};
  mutable std::atomic<uint64_t> pushed_nodes_{0};
  Mutex inflight_mu_;
  std::unordered_map<Hash, std::shared_ptr<InFlightFetch>, HashHasher>
      inflight_ GUARDED_BY(inflight_mu_);
};

}  // namespace siri

#endif  // SIRI_SYSTEM_FORKBASE_H_
