// Copyright (c) 2026 The siri Authors. MIT license.
//
// Forkbase-style system layer (§5.6): a storage servlet owning the node
// store, and clients that fetch nodes over an accounted remote boundary
// with a client-side node cache. The paper's system experiment runs one
// servlet and one client over TCP; here the boundary is in-process but
// every remote fetch is counted and can be charged a simulated round-trip
// cost, which reproduces the phenomenon the experiment studies — read
// throughput dominated by remote access, mitigated by caching, with cache
// hit ratios that differ per index structure (large shared nodes are
// re-read more often, fixed-entry MBT nodes less).

#ifndef SIRI_SYSTEM_FORKBASE_H_
#define SIRI_SYSTEM_FORKBASE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "store/node_store.h"

namespace siri {

/// \brief LRU cache of nodes, keyed by digest (a client's local node cache).
class NodeCache {
 public:
  explicit NodeCache(uint64_t capacity_bytes);

  std::shared_ptr<const std::string> Lookup(const Hash& h);
  void Insert(const Hash& h, std::shared_ptr<const std::string> bytes);
  void Clear();

  uint64_t size_bytes() const { return size_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    Hash hash;
    std::shared_ptr<const std::string> bytes;
  };

  void EvictIfNeeded();

  uint64_t capacity_bytes_;
  uint64_t size_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Hash, std::list<Entry>::iterator, HashHasher> map_;
};

/// \brief The server side: owns the authoritative store.
class ForkbaseServlet {
 public:
  explicit ForkbaseServlet(NodeStorePtr store) : store_(std::move(store)) {}

  NodeStore* store() { return store_.get(); }
  const NodeStorePtr& store_ptr() const { return store_; }

 private:
  NodeStorePtr store_;
};

/// \brief Client-side NodeStore view: cache first, then "remote" fetch.
///
/// Reads executed through this store see the client-server boundary;
/// writes are forwarded (the paper executes writes entirely server-side).
class ForkbaseClientStore : public NodeStore {
 public:
  struct RemoteStats {
    uint64_t remote_gets = 0;   ///< fetches that had to go to the servlet
    uint64_t cache_hits = 0;    ///< fetches served locally
    uint64_t remote_bytes = 0;  ///< bytes shipped from the servlet

    double HitRatio() const {
      const uint64_t total = remote_gets + cache_hits;
      return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
    }
  };

  /// \param rtt_nanos simulated per-fetch round-trip cost, busy-waited so
  ///        throughput numbers include it (0 = count only).
  ForkbaseClientStore(ForkbaseServlet* servlet, uint64_t cache_bytes,
                      uint64_t rtt_nanos = 0);

  Hash Put(Slice bytes) override;
  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  bool Contains(const Hash& h) const override;
  Result<uint64_t> SizeOf(const Hash& h) const override;
  Stats stats() const override { return servlet_->store()->stats(); }
  void ResetOpCounters() override;
  Status Flush() override { return servlet_->store()->Flush(); }

  const RemoteStats& remote_stats() const { return remote_stats_; }
  void ClearCache() { cache_.Clear(); }

 private:
  ForkbaseServlet* servlet_;
  NodeCache cache_;
  uint64_t rtt_nanos_;
  RemoteStats remote_stats_;
};

}  // namespace siri

#endif  // SIRI_SYSTEM_FORKBASE_H_
