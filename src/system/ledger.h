// Copyright (c) 2026 The siri Authors. MIT license.
//
// Blockchain-ledger simulation for the Ethereum experiments (§5.1.3,
// Figures 7b/12/16): "for each block, we build an index on transaction
// hash for all transactions within that block and store the root hash of
// the tree in a global linked list. ... for lookup operations, it scans
// the linked list for the block containing the transaction, and traverses
// the index to obtain the value."

#ifndef SIRI_SYSTEM_LEDGER_H_
#define SIRI_SYSTEM_LEDGER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "index/index.h"

namespace siri {

/// \brief Chain of per-block transaction indexes over one index structure.
///
/// Thread-safe: concurrent AppendBlock calls serialize only on the chain
/// append itself (the block's index build and its flush happen outside
/// the lock — the store's staged-batch write path needs no coordination),
/// and Lookup walks a consistent snapshot of the chain while appenders
/// keep extending it.
class Ledger {
 public:
  /// \param index the structure used for every per-block index. The ledger
  ///        borrows it; it must outlive the ledger.
  /// \param batch_build build each block's index in one batch (bottom-up
  ///        for POS-Tree). Pass false to apply transactions one by one —
  ///        the top-down build path of the paper's MPT port and
  ///        MVMB+-Tree baseline (§5.3.1's Figure 7b asymmetry).
  /// \param sync_on_commit flush the backing store at every block append,
  ///        so an acknowledged block survives a process crash. Off by
  ///        default: benches measure the in-memory path. With a batched
  ///        build (the index stages the block's nodes and lands them in
  ///        one PutMany append), the flush costs exactly one fsync per
  ///        block.
  explicit Ledger(ImmutableIndex* index, bool batch_build = true,
                  bool sync_on_commit = false)
      : index_(index),
        batch_build_(batch_build),
        sync_on_commit_(sync_on_commit) {}

  /// Builds the per-block index for \p txs and appends its root to the
  /// chain. Returns the block's index root.
  Result<Hash> AppendBlock(const std::vector<KV>& txs);

  /// Looks up a transaction by hash, scanning blocks from the newest to
  /// the oldest (the dominant cost the paper observes for reads).
  /// \p blocks_scanned (optional) reports how many block indexes were
  /// probed.
  Result<std::optional<std::string>> Lookup(Slice tx_hash,
                                            uint64_t* blocks_scanned = nullptr) const;

  /// Snapshot of the chain (copied under the lock: appenders may be
  /// extending it concurrently, so a reference would race).
  std::vector<Hash> block_roots() const {
    ReaderLock lock(mu_);
    return block_roots_;
  }
  uint64_t num_blocks() const {
    ReaderLock lock(mu_);
    return block_roots_.size();
  }

  ImmutableIndex* index() const { return index_; }

 private:
  ImmutableIndex* index_;
  bool batch_build_;
  bool sync_on_commit_;
  mutable SharedMutex mu_;
  std::vector<Hash> block_roots_ GUARDED_BY(mu_);
};

}  // namespace siri

#endif  // SIRI_SYSTEM_LEDGER_H_
