// Copyright (c) 2026 The siri Authors. MIT license.
//
// Helpers shared by the per-structure Diff implementations plus the generic
// Merge built on top of Diff (§4.1.4).

#ifndef SIRI_INDEX_DIFF_H_
#define SIRI_INDEX_DIFF_H_

#include <vector>

#include "index/index.h"

namespace siri {

/// Merge-joins two sorted entry lists into record-level diff entries.
/// Both inputs must be sorted by key and duplicate-free.
void DiffSortedEntries(const std::vector<KV>& left,
                       const std::vector<KV>& right, DiffResult* out);

/// Sorts \p out by key (Diff implementations that emit out of order call
/// this before returning).
void SortDiff(DiffResult* out);

}  // namespace siri

#endif  // SIRI_INDEX_DIFF_H_
