// Copyright (c) 2026 The siri Authors. MIT license.
//
// Read-side operations shared by POS-Tree and MVMB+-Tree, which use the
// same node codec and differ only in how nodes are partitioned on writes.

#ifndef SIRI_INDEX_ORDERED_TREE_OPS_H_
#define SIRI_INDEX_ORDERED_TREE_OPS_H_

#include <functional>
#include <optional>
#include <string>

#include "index/index.h"
#include "index/ordered/node_codec.h"
#include "index/proof.h"
#include "store/node_store.h"

namespace siri {

/// Point lookup by root-to-leaf descent with binary search at each node.
Result<std::optional<std::string>> OrderedTreeGet(NodeStore* store,
                                                  const Hash& root, Slice key,
                                                  LookupStats* stats);

/// In-order enumeration of every record.
Status OrderedTreeScan(NodeStore* store, const Hash& root,
                       const std::function<void(Slice, Slice)>& fn);

/// In-order enumeration of records with lo <= key < hi: one O(log N) seek
/// plus one leaf visit per emitted record.
Status OrderedTreeRangeScan(NodeStore* store, const Hash& root, Slice lo,
                            Slice hi,
                            const std::function<void(Slice, Slice)>& fn);

/// Adds every reachable page digest to \p pages.
Status OrderedTreeCollectPages(NodeStore* store, const Hash& root,
                               PageSet* pages);

/// Merkle (non-)existence proof: the nodes on the lookup path.
Result<Proof> OrderedTreeGetProof(NodeStore* store, const Hash& root,
                                  Slice key);

/// Record-level diff that prunes shared subtrees: two cursors walk the
/// trees in key order and skip, at the highest possible level, any pair of
/// subtrees with equal digests. For structurally invariant trees the cost
/// is O(δ) plus the skipped boundary nodes; for the order-dependent
/// MVMB+-Tree baseline shared-subtree alignment is rare and the walk
/// degrades toward O(N) — the behavior Figure 8 of the paper reports.
Result<DiffResult> OrderedTreeDiff(NodeStore* store, const Hash& a,
                                   const Hash& b);

}  // namespace siri

#endif  // SIRI_INDEX_ORDERED_TREE_OPS_H_
