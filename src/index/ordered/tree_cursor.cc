// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/ordered/tree_cursor.h"

namespace siri {

// ---------------------------------------------------------------------------
// LevelCursor

LevelCursor::LevelCursor(NodeStore* store, const Hash& root, int level,
                         int known_height)
    : store_(store), root_(root), level_(level), height_(known_height) {}

Result<int> LevelCursor::TreeHeight(NodeStore* store, const Hash& root) {
  if (root.IsZero()) return 0;
  int height = 1;
  Hash h = root;
  std::vector<ChildView> children;
  while (true) {
    auto bytes = store->Get(h);
    if (!bytes.ok()) return bytes.status();
    if (IsLeafNode(**bytes)) return height;
    Status s = DecodeInternalViews(**bytes, &children);
    if (!s.ok()) return s;
    if (children.empty()) return Status::Corruption("empty internal node");
    h = children[0].ChildHash();
    ++height;
  }
}

Status LevelCursor::LoadFrame(const Hash& h, Frame* frame) const {
  auto bytes = store_->Get(h);
  if (!bytes.ok()) return bytes.status();
  frame->bytes = *bytes;
  frame->hash = h;
  frame->is_leaf = IsLeafNode(**bytes);
  frame->idx = 0;
  if (frame->is_leaf) {
    return DecodeLeafViews(**bytes, &frame->leaf_entries);
  }
  return DecodeInternalViews(**bytes, &frame->children);
}

Status LevelCursor::SeekToFirst() { return DescendFrom(0, /*leftmost=*/true, Slice()); }

Status LevelCursor::SeekToChunkStart(Slice key) {
  return DescendFrom(0, /*leftmost=*/false, key);
}

Status LevelCursor::DescendFrom(size_t, bool leftmost, Slice key) {
  valid_ = false;
  frames_.clear();
  if (root_.IsZero()) return Status::OK();

  if (height_ < 0) {
    auto h = TreeHeight(store_, root_);
    if (!h.ok()) return h.status();
    height_ = *h;
  }
  if (level_ >= height_) {
    return Status::InvalidArgument("level beyond tree height");
  }

  // The node holding level_ items sits `height_ - 1 - level_` steps below
  // the root... items of level L live in nodes AT level L, and the root is
  // at level height_-1. So we descend (height_ - 1 - level_) times.
  const int steps = height_ - 1 - level_;
  Frame f;
  Status s = LoadFrame(root_, &f);
  if (!s.ok()) return s;
  frames_.push_back(std::move(f));
  for (int d = 0; d < steps; ++d) {
    Frame& top = frames_.back();
    SIRI_CHECK(!top.is_leaf);
    if (top.children.empty()) return Status::Corruption("empty internal node");
    top.idx = leftmost ? 0 : ChildIndexForViews(top.children, key);
    Frame child;
    s = LoadFrame(top.children[top.idx].ChildHash(), &child);
    if (!s.ok()) return s;
    frames_.push_back(std::move(child));
  }
  Frame& target = frames_.back();
  target.idx = 0;  // chunk start
  if (target.size() == 0) return Status::Corruption("empty node");
  valid_ = true;
  RefreshItem();
  return Status::OK();
}

void LevelCursor::RefreshItem() {
  const Frame& target = frames_.back();
  if (target.is_leaf) {
    const LeafView& kv = target.leaf_entries[target.idx];
    item_.key.assign(kv.key.data(), kv.key.size());
    item_.payload.assign(kv.value.data(), kv.value.size());
  } else {
    const ChildView& ce = target.children[target.idx];
    item_.key.assign(ce.key.data(), ce.key.size());
    item_.payload.assign(ce.hash.data(), ce.hash.size());
  }
}

Status LevelCursor::Next() {
  SIRI_CHECK(valid_);
  Frame& target = frames_.back();
  if (target.idx + 1 < target.size()) {
    ++target.idx;
    RefreshItem();
    return Status::OK();
  }
  // Walk up until a frame with a next child, then descend leftmost back to
  // the target level.
  int fi = static_cast<int>(frames_.size()) - 2;
  while (fi >= 0 && frames_[fi].idx + 1 >= frames_[fi].size()) --fi;
  if (fi < 0) {
    valid_ = false;
    return Status::OK();
  }
  ++frames_[fi].idx;
  frames_.resize(fi + 1);
  while (static_cast<int>(frames_.size()) <
         (height_ - level_)) {
    Frame& top = frames_.back();
    Frame child;
    Status s = LoadFrame(top.children[top.idx].ChildHash(), &child);
    if (!s.ok()) return s;
    child.idx = 0;
    frames_.push_back(std::move(child));
  }
  SIRI_CHECK(frames_.back().size() > 0);
  RefreshItem();
  return Status::OK();
}

bool LevelCursor::AtChunkStart() const {
  SIRI_CHECK(valid_);
  return frames_.back().idx == 0;
}

std::string LevelCursor::CurrentChunkFirstKey() const {
  SIRI_CHECK(valid_);
  const Frame& target = frames_.back();
  const Slice key =
      target.is_leaf ? target.leaf_entries[0].key : target.children[0].key;
  return key.ToString();
}

const Hash& LevelCursor::CurrentChunkHash() const {
  SIRI_CHECK(valid_);
  return frames_.back().hash;
}

// ---------------------------------------------------------------------------
// TreeCursor

TreeCursor::TreeCursor(NodeStore* store, const Hash& root)
    : store_(store), root_(root) {}

Status TreeCursor::LoadFrame(const Hash& h, Frame* frame) const {
  auto bytes = store_->Get(h);
  if (!bytes.ok()) return bytes.status();
  frame->bytes = *bytes;
  frame->hash = h;
  frame->is_leaf = IsLeafNode(**bytes);
  frame->idx = 0;
  if (frame->is_leaf) {
    return DecodeLeafViews(**bytes, &frame->leaf_entries);
  }
  return DecodeInternalViews(**bytes, &frame->children);
}

Status TreeCursor::DescendLeftmost(const Hash& h) {
  Hash cur = h;
  while (true) {
    Frame f;
    Status s = LoadFrame(cur, &f);
    if (!s.ok()) return s;
    const bool is_leaf = f.is_leaf;
    if (!is_leaf && f.children.empty()) {
      return Status::Corruption("empty internal node");
    }
    const Hash next = is_leaf ? Hash() : f.children[0].ChildHash();
    frames_.push_back(std::move(f));
    if (is_leaf) break;
    cur = next;
  }
  Frame& leaf = frames_.back();
  if (leaf.leaf_entries.empty()) return Status::Corruption("empty leaf");
  valid_ = true;
  entry_.key = leaf.leaf_entries[0].key.ToString();
  entry_.value = leaf.leaf_entries[0].value.ToString();
  return Status::OK();
}

Status TreeCursor::SeekToFirst() {
  valid_ = false;
  frames_.clear();
  if (root_.IsZero()) return Status::OK();
  return DescendLeftmost(root_);
}

Status TreeCursor::Seek(Slice key) {
  valid_ = false;
  frames_.clear();
  if (root_.IsZero()) return Status::OK();

  Hash cur = root_;
  while (true) {
    Frame f;
    Status s = LoadFrame(cur, &f);
    if (!s.ok()) return s;
    if (f.is_leaf) {
      bool found = false;
      f.idx = LeafLowerBoundViews(f.leaf_entries, key, &found);
      const bool past_end = f.idx >= f.leaf_entries.size();
      frames_.push_back(std::move(f));
      Frame& leaf = frames_.back();
      if (past_end) {
        // All entries in this leaf are < key; advance to the next leaf.
        leaf.idx = leaf.leaf_entries.size() - 1;
        valid_ = true;
        entry_.key = leaf.leaf_entries[leaf.idx].key.ToString();
        entry_.value = leaf.leaf_entries[leaf.idx].value.ToString();
        return Next();
      }
      valid_ = true;
      entry_.key = leaf.leaf_entries[leaf.idx].key.ToString();
      entry_.value = leaf.leaf_entries[leaf.idx].value.ToString();
      return Status::OK();
    }
    if (f.children.empty()) return Status::Corruption("empty internal node");
    f.idx = ChildIndexForViews(f.children, key);
    const Hash next = f.children[f.idx].ChildHash();
    frames_.push_back(std::move(f));
    cur = next;
  }
}

Status TreeCursor::AdvanceFromFrame(size_t frame_idx) {
  int fi = static_cast<int>(frame_idx);
  while (fi >= 0 && frames_[fi].idx + 1 >= frames_[fi].size()) --fi;
  if (fi < 0) {
    valid_ = false;
    frames_.clear();
    return Status::OK();
  }
  ++frames_[fi].idx;
  frames_.resize(fi + 1);
  Frame& top = frames_.back();
  if (top.is_leaf) {
    entry_.key = top.leaf_entries[top.idx].key.ToString();
    entry_.value = top.leaf_entries[top.idx].value.ToString();
    valid_ = true;
    return Status::OK();
  }
  return DescendLeftmost(top.children[top.idx].ChildHash());
}

Status TreeCursor::Next() {
  SIRI_CHECK(valid_);
  Frame& leaf = frames_.back();
  if (leaf.idx + 1 < leaf.leaf_entries.size()) {
    ++leaf.idx;
    entry_.key = leaf.leaf_entries[leaf.idx].key.ToString();
    entry_.value = leaf.leaf_entries[leaf.idx].value.ToString();
    return Status::OK();
  }
  return AdvanceFromFrame(frames_.size() - 1);
}

bool TreeCursor::AtSubtreeStart(int leaf_level) const {
  SIRI_CHECK(valid_);
  if (leaf_level >= static_cast<int>(frames_.size())) return false;
  const size_t fi = frames_.size() - 1 - leaf_level;
  for (size_t j = fi; j < frames_.size(); ++j) {
    if (frames_[j].idx != 0) return false;
  }
  return true;
}

const Hash& TreeCursor::SubtreeHash(int leaf_level) const {
  SIRI_CHECK(valid_);
  SIRI_CHECK(leaf_level < static_cast<int>(frames_.size()));
  return frames_[frames_.size() - 1 - leaf_level].hash;
}

Status TreeCursor::SkipSubtree(int leaf_level) {
  SIRI_CHECK(valid_);
  SIRI_CHECK(leaf_level < static_cast<int>(frames_.size()));
  const size_t fi = frames_.size() - 1 - leaf_level;
  if (fi == 0) {
    // Skipping the whole tree.
    valid_ = false;
    frames_.clear();
    return Status::OK();
  }
  return AdvanceFromFrame(fi - 1);
}

}  // namespace siri
