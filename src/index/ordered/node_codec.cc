// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/ordered/node_codec.h"

#include "common/varint.h"

namespace siri {

void AppendLeafEntryBytes(std::string* out, Slice key, Slice value) {
  PutLengthPrefixed(out, key);
  PutLengthPrefixed(out, value);
}

void AppendChildEntryBytes(std::string* out, Slice key, const Hash& h) {
  PutLengthPrefixed(out, key);
  out->append(reinterpret_cast<const char*>(h.data()), Hash::kSize);
}

std::string EncodeLeafFromPayload(uint64_t entry_count, Slice payload,
                                  uint64_t salt) {
  std::string out;
  out.reserve(payload.size() + 16);
  out.push_back(kLeafTag);
  PutVarint64(&out, salt);
  PutVarint64(&out, entry_count);
  out.append(payload.data(), payload.size());
  return out;
}

std::string EncodeInternalFromPayload(uint64_t entry_count, Slice payload,
                                      uint64_t salt) {
  std::string out;
  out.reserve(payload.size() + 16);
  out.push_back(kInternalTag);
  PutVarint64(&out, salt);
  PutVarint64(&out, entry_count);
  out.append(payload.data(), payload.size());
  return out;
}

std::string EncodeLeaf(const std::vector<KV>& entries, uint64_t salt) {
  std::string payload;
  for (const KV& e : entries) AppendLeafEntryBytes(&payload, e.key, e.value);
  return EncodeLeafFromPayload(entries.size(), payload, salt);
}

std::string EncodeInternal(const std::vector<ChildEntry>& entries,
                           uint64_t salt) {
  std::string payload;
  for (const ChildEntry& e : entries) {
    AppendChildEntryBytes(&payload, e.key, e.hash);
  }
  return EncodeInternalFromPayload(entries.size(), payload, salt);
}

bool IsLeafNode(Slice node) { return !node.empty() && node[0] == kLeafTag; }

Status DecodeLeaf(Slice node, std::vector<KV>* entries) {
  if (node.empty() || node[0] != kLeafTag) {
    return Status::Corruption("not a leaf node");
  }
  node.remove_prefix(1);
  uint64_t salt = 0;
  if (!GetVarint64(&node, &salt)) return Status::Corruption("bad leaf salt");
  uint64_t n = 0;
  if (!GetVarint64(&node, &n)) return Status::Corruption("bad leaf count");
  entries->clear();
  entries->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    KV kv;
    if (!GetLengthPrefixed(&node, &kv.key) ||
        !GetLengthPrefixed(&node, &kv.value)) {
      return Status::Corruption("truncated leaf entry");
    }
    entries->push_back(std::move(kv));
  }
  if (!node.empty()) return Status::Corruption("trailing bytes in leaf");
  return Status::OK();
}

Status DecodeInternal(Slice node, std::vector<ChildEntry>* entries) {
  if (node.empty() || node[0] != kInternalTag) {
    return Status::Corruption("not an internal node");
  }
  node.remove_prefix(1);
  uint64_t salt = 0;
  if (!GetVarint64(&node, &salt)) {
    return Status::Corruption("bad internal salt");
  }
  uint64_t n = 0;
  if (!GetVarint64(&node, &n)) return Status::Corruption("bad internal count");
  entries->clear();
  entries->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ChildEntry e;
    if (!GetLengthPrefixed(&node, &e.key)) {
      return Status::Corruption("truncated internal key");
    }
    if (node.size() < Hash::kSize) {
      return Status::Corruption("truncated child digest");
    }
    e.hash = Hash::FromBytes(node.data());
    node.remove_prefix(Hash::kSize);
    entries->push_back(std::move(e));
  }
  if (!node.empty()) return Status::Corruption("trailing bytes in internal");
  return Status::OK();
}

size_t ChildIndexFor(const std::vector<ChildEntry>& entries, Slice key) {
  // Last entry with entry.key <= key; 0 when key sorts before everything.
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Slice(entries[mid].key).compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

size_t LeafLowerBound(const std::vector<KV>& entries, Slice key, bool* found) {
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Slice(entries[mid].key).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = lo < entries.size() && Slice(entries[lo].key) == key;
  return lo;
}

namespace {

// Parses a length-prefixed field as a view into the input.
bool GetLengthPrefixedView(Slice* in, Slice* out) {
  uint64_t len = 0;
  if (!GetVarint64(in, &len)) return false;
  if (in->size() < len) return false;
  *out = Slice(in->data(), len);
  in->remove_prefix(len);
  return true;
}

}  // namespace

Status DecodeLeafViews(Slice node, std::vector<LeafView>* entries) {
  if (node.empty() || node[0] != kLeafTag) {
    return Status::Corruption("not a leaf node");
  }
  node.remove_prefix(1);
  uint64_t salt = 0, n = 0;
  if (!GetVarint64(&node, &salt) || !GetVarint64(&node, &n)) {
    return Status::Corruption("bad leaf header");
  }
  entries->clear();
  entries->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LeafView v;
    if (!GetLengthPrefixedView(&node, &v.key) ||
        !GetLengthPrefixedView(&node, &v.value)) {
      return Status::Corruption("truncated leaf entry");
    }
    entries->push_back(v);
  }
  if (!node.empty()) return Status::Corruption("trailing bytes in leaf");
  return Status::OK();
}

Status DecodeInternalViews(Slice node, std::vector<ChildView>* entries) {
  if (node.empty() || node[0] != kInternalTag) {
    return Status::Corruption("not an internal node");
  }
  node.remove_prefix(1);
  uint64_t salt = 0, n = 0;
  if (!GetVarint64(&node, &salt) || !GetVarint64(&node, &n)) {
    return Status::Corruption("bad internal header");
  }
  entries->clear();
  entries->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ChildView v;
    if (!GetLengthPrefixedView(&node, &v.key)) {
      return Status::Corruption("truncated internal key");
    }
    if (node.size() < Hash::kSize) {
      return Status::Corruption("truncated child digest");
    }
    v.hash = Slice(node.data(), Hash::kSize);
    node.remove_prefix(Hash::kSize);
    entries->push_back(v);
  }
  if (!node.empty()) return Status::Corruption("trailing bytes in internal");
  return Status::OK();
}

size_t ChildIndexForViews(const std::vector<ChildView>& entries, Slice key) {
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (entries[mid].key.compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

size_t LeafLowerBoundViews(const std::vector<LeafView>& entries, Slice key,
                           bool* found) {
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (entries[mid].key.compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = lo < entries.size() && entries[lo].key == key;
  return lo;
}

}  // namespace siri
