// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/ordered/tree_ops.h"

#include <cmath>

#include "index/ordered/tree_cursor.h"

namespace siri {

Result<std::optional<std::string>> OrderedTreeGet(NodeStore* store,
                                                  const Hash& root, Slice key,
                                                  LookupStats* stats) {
  if (root.IsZero()) return std::optional<std::string>{};
  Hash cur = root;
  std::vector<LeafView> leaf_views;
  std::vector<ChildView> child_views;
  while (true) {
    auto bytes = store->Get(cur);
    if (!bytes.ok()) return bytes.status();
    if (stats) {
      ++stats->depth;
      ++stats->nodes_loaded;
      stats->bytes_loaded += (*bytes)->size();
    }
    if (IsLeafNode(**bytes)) {
      Status s = DecodeLeafViews(**bytes, &leaf_views);
      if (!s.ok()) return s;
      bool found = false;
      const size_t idx = LeafLowerBoundViews(leaf_views, key, &found);
      if (stats && !leaf_views.empty()) {
        stats->entries_scanned += static_cast<uint64_t>(
            std::ceil(std::log2(leaf_views.size() + 1)));
      }
      if (!found) return std::optional<std::string>{};
      return std::optional<std::string>{leaf_views[idx].value.ToString()};
    }
    Status s = DecodeInternalViews(**bytes, &child_views);
    if (!s.ok()) return s;
    if (child_views.empty()) return Status::Corruption("empty internal node");
    cur = child_views[ChildIndexForViews(child_views, key)].ChildHash();
  }
}

Status OrderedTreeScan(NodeStore* store, const Hash& root,
                       const std::function<void(Slice, Slice)>& fn) {
  if (root.IsZero()) return Status::OK();
  auto bytes = store->Get(root);
  if (!bytes.ok()) return bytes.status();
  if (IsLeafNode(**bytes)) {
    std::vector<KV> entries;
    Status s = DecodeLeaf(**bytes, &entries);
    if (!s.ok()) return s;
    for (const KV& e : entries) fn(e.key, e.value);
    return Status::OK();
  }
  std::vector<ChildEntry> children;
  Status s = DecodeInternal(**bytes, &children);
  if (!s.ok()) return s;
  for (const ChildEntry& c : children) {
    s = OrderedTreeScan(store, c.hash, fn);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status OrderedTreeRangeScan(NodeStore* store, const Hash& root, Slice lo,
                            Slice hi,
                            const std::function<void(Slice, Slice)>& fn) {
  TreeCursor cursor(store, root);
  Status s = cursor.Seek(lo);
  if (!s.ok()) return s;
  while (cursor.Valid() && Slice(cursor.key()).compare(hi) < 0) {
    fn(cursor.key(), cursor.value());
    s = cursor.Next();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status OrderedTreeCollectPages(NodeStore* store, const Hash& root,
                               PageSet* pages) {
  if (root.IsZero()) return Status::OK();
  if (!pages->insert(root).second) return Status::OK();  // already visited
  auto bytes = store->Get(root);
  if (!bytes.ok()) return bytes.status();
  if (IsLeafNode(**bytes)) return Status::OK();
  std::vector<ChildEntry> children;
  Status s = DecodeInternal(**bytes, &children);
  if (!s.ok()) return s;
  for (const ChildEntry& c : children) {
    s = OrderedTreeCollectPages(store, c.hash, pages);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<Proof> OrderedTreeGetProof(NodeStore* store, const Hash& root,
                                  Slice key) {
  Proof proof;
  proof.key = key.ToString();
  if (root.IsZero()) return proof;  // empty tree proves absence trivially
  Hash cur = root;
  while (true) {
    auto bytes = store->Get(cur);
    if (!bytes.ok()) return bytes.status();
    proof.nodes.push_back(**bytes);
    if (IsLeafNode(**bytes)) {
      std::vector<KV> entries;
      Status s = DecodeLeaf(**bytes, &entries);
      if (!s.ok()) return s;
      bool found = false;
      const size_t idx = LeafLowerBound(entries, key, &found);
      if (found) proof.value = entries[idx].value;
      return proof;
    }
    std::vector<ChildEntry> children;
    Status s = DecodeInternal(**bytes, &children);
    if (!s.ok()) return s;
    if (children.empty()) return Status::Corruption("empty internal node");
    cur = children[ChildIndexFor(children, key)].hash;
  }
}

Result<DiffResult> OrderedTreeDiff(NodeStore* store, const Hash& a,
                                   const Hash& b) {
  DiffResult out;
  if (a == b) return out;

  TreeCursor ca(store, a);
  TreeCursor cb(store, b);
  Status s = ca.SeekToFirst();
  if (!s.ok()) return s;
  s = cb.SeekToFirst();
  if (!s.ok()) return s;

  while (ca.Valid() && cb.Valid()) {
    // Skip shared subtrees at the highest level where both cursors stand at
    // a subtree start with equal digests.
    bool skipped = false;
    const int max_level =
        std::min(ca.num_levels(), cb.num_levels()) - 1;
    for (int level = max_level; level >= 0; --level) {
      if (ca.AtSubtreeStart(level) && cb.AtSubtreeStart(level) &&
          ca.SubtreeHash(level) == cb.SubtreeHash(level)) {
        s = ca.SkipSubtree(level);
        if (!s.ok()) return s;
        s = cb.SkipSubtree(level);
        if (!s.ok()) return s;
        skipped = true;
        break;
      }
    }
    if (skipped) continue;

    const int c = Slice(ca.key()).compare(Slice(cb.key()));
    if (c == 0) {
      if (ca.value() != cb.value()) {
        out.push_back({ca.key(), ca.value(), cb.value()});
      }
      s = ca.Next();
      if (!s.ok()) return s;
      s = cb.Next();
      if (!s.ok()) return s;
    } else if (c < 0) {
      out.push_back({ca.key(), ca.value(), std::nullopt});
      s = ca.Next();
      if (!s.ok()) return s;
    } else {
      out.push_back({cb.key(), std::nullopt, cb.value()});
      s = cb.Next();
      if (!s.ok()) return s;
    }
  }
  while (ca.Valid()) {
    out.push_back({ca.key(), ca.value(), std::nullopt});
    s = ca.Next();
    if (!s.ok()) return s;
  }
  while (cb.Valid()) {
    out.push_back({cb.key(), std::nullopt, cb.value()});
    s = cb.Next();
    if (!s.ok()) return s;
  }
  return out;
}

}  // namespace siri
