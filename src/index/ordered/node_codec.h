// Copyright (c) 2026 The siri Authors. MIT license.
//
// Serialized node format shared by the ordered tree structures (POS-Tree,
// MVMB+-Tree) and by MBT buckets:
//
//   leaf:     'L' | varint salt | varint n | n * ( lp(key) lp(value) )
//   internal: 'I' | varint salt | varint n | n * ( lp(key) 32-byte digest )
//
// where lp() is a varint length prefix. Keys inside a node are strictly
// increasing; an internal entry's key is the smallest key in its child's
// subtree. The encoding is canonical: one entry sequence has exactly one
// serialization, so equal content implies equal digest — the property the
// deduplication analysis of §4.2 relies on.
//
// The salt is normally 0. The §5.5.2 ablation ("disable Recursively
// Identical") stamps each version's nodes with a distinct salt, which
// defeats content-addressed sharing exactly as the paper's forced
// copy-all-nodes variant does.

#ifndef SIRI_INDEX_ORDERED_NODE_CODEC_H_
#define SIRI_INDEX_ORDERED_NODE_CODEC_H_

#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "crypto/hash.h"
#include "index/index.h"

namespace siri {

constexpr char kLeafTag = 'L';
constexpr char kInternalTag = 'I';

/// Internal-node entry: smallest key of the child subtree plus its digest.
struct ChildEntry {
  std::string key;
  Hash hash;
};

/// Appends one leaf entry in the canonical in-node byte layout. The same
/// bytes are fed to the content-defined chunker, so chunk boundaries are a
/// pure function of entry content.
void AppendLeafEntryBytes(std::string* out, Slice key, Slice value);

/// Appends one internal entry (key + child digest) in canonical layout.
void AppendChildEntryBytes(std::string* out, Slice key, const Hash& h);

/// Builds a full leaf node from concatenated entry bytes.
std::string EncodeLeafFromPayload(uint64_t entry_count, Slice payload,
                                  uint64_t salt = 0);

/// Builds a full internal node from concatenated entry bytes.
std::string EncodeInternalFromPayload(uint64_t entry_count, Slice payload,
                                      uint64_t salt = 0);

std::string EncodeLeaf(const std::vector<KV>& entries, uint64_t salt = 0);
std::string EncodeInternal(const std::vector<ChildEntry>& entries,
                           uint64_t salt = 0);

/// True if \p node carries the leaf tag. Corrupt tags return Corruption via
/// the Decode functions.
bool IsLeafNode(Slice node);

Status DecodeLeaf(Slice node, std::vector<KV>* entries);
Status DecodeInternal(Slice node, std::vector<ChildEntry>* entries);

/// Index of the child to descend into for \p key: the last entry whose key
/// is <= \p key, clamped to 0 (keys below the first entry descend left).
size_t ChildIndexFor(const std::vector<ChildEntry>& entries, Slice key);

/// Binary search for \p key among sorted leaf entries. Returns the index of
/// the first entry >= key ("lower bound"); *found is set if it is an exact
/// match.
size_t LeafLowerBound(const std::vector<KV>& entries, Slice key, bool* found);

// --- Zero-copy decoding ------------------------------------------------
// The read path visits O(log N) nodes per lookup; materializing every
// entry as a heap string would dominate the cost. Views point into the
// serialized node, which callers keep alive via the store's shared_ptr.

struct LeafView {
  Slice key;
  Slice value;
};

struct ChildView {
  Slice key;
  Slice hash;  ///< 32 raw digest bytes inside the node

  Hash ChildHash() const { return Hash::FromBytes(hash.data()); }
};

Status DecodeLeafViews(Slice node, std::vector<LeafView>* entries);
Status DecodeInternalViews(Slice node, std::vector<ChildView>* entries);

size_t ChildIndexForViews(const std::vector<ChildView>& entries, Slice key);
size_t LeafLowerBoundViews(const std::vector<LeafView>& entries, Slice key,
                           bool* found);

}  // namespace siri

#endif  // SIRI_INDEX_ORDERED_NODE_CODEC_H_
