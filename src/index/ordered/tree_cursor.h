// Copyright (c) 2026 The siri Authors. MIT license.
//
// Cursors over ordered Merkle trees (POS-Tree / MVMB+-Tree node format).
//
// TreeCursor iterates leaf entries in key order while exposing the stack of
// nodes above the current entry. That stack is what makes two higher-level
// operations cheap:
//   * Diff can skip a whole shared subtree the moment both cursors stand at
//     the start of subtrees with equal digests (§4.1.3), and
//   * the POS-Tree incremental rebuild walks the items of one level,
//     detecting old chunk boundaries so re-chunking can stop as soon as the
//     new boundaries re-synchronize with the old ones.
//
// LevelCursor generalizes TreeCursor to iterate the item sequence of any
// level: level 0 items are (key, value) records; level L>0 items are
// (key, child digest) pairs.

#ifndef SIRI_INDEX_ORDERED_TREE_CURSOR_H_
#define SIRI_INDEX_ORDERED_TREE_CURSOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "index/ordered/node_codec.h"
#include "store/node_store.h"

namespace siri {

/// An item of one tree level during iteration/rebuild: a record (payload =
/// value) at level 0, or a child reference (payload = 32 raw digest bytes)
/// at higher levels.
struct LevelItem {
  std::string key;
  std::string payload;

  Hash PayloadHash() const { return Hash::FromBytes(payload.data()); }
};

/// \brief Iterates the item sequence of one level of an ordered tree.
class LevelCursor {
 public:
  /// \param level 0 = leaf entries; tree height - 1 = the root's own items.
  /// \param known_height pass the tree height when the caller already has
  ///        it (saves one root-to-leaf descent per cursor).
  LevelCursor(NodeStore* store, const Hash& root, int level,
              int known_height = -1);

  /// Height of the tree (number of node levels). 0 for an empty tree.
  static Result<int> TreeHeight(NodeStore* store, const Hash& root);

  /// Positions the cursor at the first item of the node (chunk) that a
  /// lookup for \p key would reach at this level.
  Status SeekToChunkStart(Slice key);

  /// Positions at the very first item of the level.
  Status SeekToFirst();

  bool Valid() const { return valid_; }

  const LevelItem& item() const { return item_; }

  /// Advances to the next item, crossing node boundaries.
  Status Next();

  /// True when the current item is the first item of its node.
  bool AtChunkStart() const;

  /// First key of the node containing the current item.
  std::string CurrentChunkFirstKey() const;

  /// Digest of the node containing the current item.
  const Hash& CurrentChunkHash() const;

 private:
  // Entries are zero-copy views into `bytes`, which the frame keeps alive.
  struct Frame {
    std::shared_ptr<const std::string> bytes;
    Hash hash;
    bool is_leaf = false;
    std::vector<LeafView> leaf_entries;
    std::vector<ChildView> children;
    size_t idx = 0;

    size_t size() const {
      return is_leaf ? leaf_entries.size() : children.size();
    }
  };

  Status LoadFrame(const Hash& h, Frame* frame) const;
  Status DescendFrom(size_t frame_idx, bool leftmost, Slice key);
  void RefreshItem();

  NodeStore* store_;
  Hash root_;
  int level_;
  int height_ = -1;
  bool valid_ = false;
  std::vector<Frame> frames_;  // frames_[0] = root ... frames_.back() = target
  LevelItem item_;
};

/// \brief In-order cursor over leaf entries with subtree-skip support.
class TreeCursor {
 public:
  TreeCursor(NodeStore* store, const Hash& root);

  Status SeekToFirst();
  Status Seek(Slice key);  ///< first entry with key >= \p key

  bool Valid() const { return valid_; }
  const std::string& key() const { return entry_.key; }
  const std::string& value() const { return entry_.value; }

  Status Next();

  /// Number of node levels on the current path (== tree height).
  int num_levels() const { return static_cast<int>(frames_.size()); }

  /// True when the current entry is the leftmost entry of the subtree
  /// rooted \p leaf_level levels above the leaf (0 = the leaf node itself).
  bool AtSubtreeStart(int leaf_level) const;

  /// Digest of the subtree root \p leaf_level levels above the leaf.
  const Hash& SubtreeHash(int leaf_level) const;

  /// Skips the whole subtree \p leaf_level levels above the leaf, moving to
  /// the first entry after it (or past the end).
  Status SkipSubtree(int leaf_level);

 private:
  // Entries are zero-copy views into `bytes`, which the frame keeps alive.
  struct Frame {
    std::shared_ptr<const std::string> bytes;
    Hash hash;
    bool is_leaf = false;
    std::vector<LeafView> leaf_entries;
    std::vector<ChildView> children;
    size_t idx = 0;

    size_t size() const {
      return is_leaf ? leaf_entries.size() : children.size();
    }
  };

  Status LoadFrame(const Hash& h, Frame* frame) const;
  Status DescendLeftmost(const Hash& h);
  Status AdvanceFromFrame(size_t frame_idx);

  NodeStore* store_;
  Hash root_;
  bool valid_ = false;
  std::vector<Frame> frames_;
  KV entry_;
};

}  // namespace siri

#endif  // SIRI_INDEX_ORDERED_TREE_CURSOR_H_
