// Copyright (c) 2026 The siri Authors. MIT license.
//
// Merkle Patricia Trie (MPT) — §3.4.1: a radix-16 trie with path
// compaction and cryptographic authentication, the state index of
// Ethereum. Four node kinds: branch (16 children + optional value), leaf
// (compressed path + value), extension (compressed path + one child), and
// null. Nodes reference children by digest, giving tamper evidence and
// copy-on-write sharing in one mechanism.
//
// MPT is Structurally Invariant by construction: a record's position is a
// pure function of its key's nibble sequence, so the same record set
// always yields the same trie. Its weakness is tree height: the lookup
// path is bounded by the key length L rather than log_m N (§4.1.1), which
// the experiments surface as lower throughput and higher storage churn for
// long keys (§5.4.1).

#ifndef SIRI_INDEX_MPT_MPT_H_
#define SIRI_INDEX_MPT_MPT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "index/index.h"
#include "index/mpt/nibbles.h"

namespace siri {

/// \brief Merkle Patricia Trie index (SIRI instance).
class Mpt : public ImmutableIndex {
 public:
  explicit Mpt(NodeStorePtr store);

  std::string name() const override { return "mpt"; }

  Result<Hash> PutBatch(const Hash& root, std::vector<KV> kvs) override;
  Result<Hash> DeleteBatch(const Hash& root,
                           std::vector<std::string> keys) override;
  Result<std::optional<std::string>> Get(const Hash& root, Slice key,
                                         LookupStats* stats) const override;
  Result<Proof> GetProof(const Hash& root, Slice key) const override;
  Status CollectPages(const Hash& root, PageSet* pages) const override;
  Status Scan(const Hash& root,
              const std::function<void(Slice, Slice)>& fn) const override;
  Result<DiffResult> Diff(const Hash& a, const Hash& b) const override;
  std::unique_ptr<ImmutableIndex> WithStore(NodeStorePtr store) const override;

 private:
  struct Node;   // decoded node (branch / extension / leaf)
  struct VNode;  // virtual view of a node at a nibble offset (diff helper)

  // The mutation recursion reads and writes through \p store — the staging
  // batch of the enclosing PutBatch/DeleteBatch — so a whole batch's dirty
  // root-to-leaf paths are collected locally and flushed with one PutMany.
  Result<Hash> InsertRec(NodeStore* store, const Hash& node,
                         const uint8_t* path, size_t len, Slice value);
  Result<Hash> DeleteRec(NodeStore* store, const Hash& node,
                         const uint8_t* path, size_t len, bool* changed);
  /// Re-attaches \p prefix in front of the subtree \p child, merging with
  /// the child's own compressed path (used after branch collapse).
  Result<Hash> Reattach(NodeStore* store, const Nibbles& prefix,
                        const Hash& child);

  Status ScanRec(const Hash& node, Nibbles* prefix,
                 const std::function<void(Slice, Slice)>& fn) const;
  Status CollectRec(const Hash& node, PageSet* pages) const;
  Status DiffRec(const std::optional<VNode>& a, const std::optional<VNode>& b,
                 Nibbles* prefix, DiffResult* out) const;

  Result<VNode> LoadVNode(const Hash& h, size_t offset) const;
  Result<std::optional<VNode>> DescendV(const VNode& v, uint8_t nibble) const;
};

}  // namespace siri

#endif  // SIRI_INDEX_MPT_MPT_H_
