// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/mpt/mpt.h"

#include <algorithm>

#include "common/varint.h"
#include "index/diff.h"
#include "store/staging_store.h"

namespace siri {

namespace {
constexpr char kLeafNodeTag = 'l';
constexpr char kExtNodeTag = 'e';
constexpr char kBranchNodeTag = 'n';
}  // namespace

/// Decoded MPT node. Serialized forms:
///   leaf:      'l' | nibble path | lp(value)
///   extension: 'e' | nibble path | 32-byte child digest
///   branch:    'n' | 2-byte child bitmap | 1-byte has_value |
///              [lp(value)] | one 32-byte digest per set bitmap bit
struct Mpt::Node {
  enum class Type { kLeaf, kExt, kBranch };

  Type type = Type::kLeaf;
  Nibbles path;           // leaf/extension compressed path
  std::string value;      // leaf value, or branch value when has_value
  bool has_value = false; // branch only
  Hash child;             // extension target
  Hash children[16];      // branch slots (zero digest = empty)

  int ChildCount() const {
    int n = 0;
    for (const Hash& c : children) {
      if (!c.IsZero()) ++n;
    }
    return n;
  }

  std::string Encode() const {
    std::string out;
    switch (type) {
      case Type::kLeaf:
        out.push_back(kLeafNodeTag);
        EncodeNibblePath(&out, path.data(), path.size());
        PutLengthPrefixed(&out, value);
        break;
      case Type::kExt:
        out.push_back(kExtNodeTag);
        EncodeNibblePath(&out, path.data(), path.size());
        out.append(reinterpret_cast<const char*>(child.data()), Hash::kSize);
        break;
      case Type::kBranch: {
        out.push_back(kBranchNodeTag);
        uint16_t bitmap = 0;
        for (int i = 0; i < 16; ++i) {
          if (!children[i].IsZero()) bitmap |= static_cast<uint16_t>(1u << i);
        }
        out.push_back(static_cast<char>(bitmap & 0xff));
        out.push_back(static_cast<char>(bitmap >> 8));
        out.push_back(has_value ? 1 : 0);
        if (has_value) PutLengthPrefixed(&out, value);
        for (int i = 0; i < 16; ++i) {
          if (!children[i].IsZero()) {
            out.append(reinterpret_cast<const char*>(children[i].data()),
                       Hash::kSize);
          }
        }
        break;
      }
    }
    return out;
  }

  static Result<Node> Decode(Slice in) {
    Node n;
    if (in.empty()) return Status::Corruption("empty MPT node");
    const char tag = in[0];
    in.remove_prefix(1);
    switch (tag) {
      case kLeafNodeTag: {
        n.type = Type::kLeaf;
        if (!DecodeNibblePath(&in, &n.path)) {
          return Status::Corruption("bad leaf path");
        }
        if (!GetLengthPrefixed(&in, &n.value)) {
          return Status::Corruption("bad leaf value");
        }
        break;
      }
      case kExtNodeTag: {
        n.type = Type::kExt;
        if (!DecodeNibblePath(&in, &n.path)) {
          return Status::Corruption("bad ext path");
        }
        if (in.size() < Hash::kSize) {
          return Status::Corruption("bad ext child");
        }
        n.child = Hash::FromBytes(in.data());
        in.remove_prefix(Hash::kSize);
        break;
      }
      case kBranchNodeTag: {
        n.type = Type::kBranch;
        if (in.size() < 3) return Status::Corruption("bad branch header");
        const uint16_t bitmap =
            static_cast<uint8_t>(in[0]) |
            (static_cast<uint16_t>(static_cast<uint8_t>(in[1])) << 8);
        n.has_value = in[2] != 0;
        in.remove_prefix(3);
        if (n.has_value && !GetLengthPrefixed(&in, &n.value)) {
          return Status::Corruption("bad branch value");
        }
        for (int i = 0; i < 16; ++i) {
          if (bitmap & (1u << i)) {
            if (in.size() < Hash::kSize) {
              return Status::Corruption("bad branch child");
            }
            n.children[i] = Hash::FromBytes(in.data());
            in.remove_prefix(Hash::kSize);
          }
        }
        break;
      }
      default:
        return Status::Corruption("unknown MPT node tag");
    }
    if (!in.empty()) return Status::Corruption("trailing MPT bytes");
    return n;
  }
};

namespace mpt_internal {

template <typename NodeT>
Result<NodeT> LoadNodeImpl(NodeStore* store, const Hash& h,
                           LookupStats* stats = nullptr) {
  auto bytes = store->Get(h);
  if (!bytes.ok()) return bytes.status();
  if (stats) {
    ++stats->depth;
    ++stats->nodes_loaded;
    stats->bytes_loaded += (*bytes)->size();
  }
  return NodeT::Decode(**bytes);
}

}  // namespace mpt_internal

// Private-member-friendly alias used throughout this file.
#define LoadNode mpt_internal::LoadNodeImpl<Mpt::Node>

Mpt::Mpt(NodeStorePtr store) : ImmutableIndex(std::move(store)) {}

// ---------------------------------------------------------------------------
// Insert

Result<Hash> Mpt::InsertRec(NodeStore* store, const Hash& node,
                            const uint8_t* path, size_t len, Slice value) {
  if (node.IsZero()) {
    Node leaf;
    leaf.type = Node::Type::kLeaf;
    leaf.path.assign(path, path + len);
    leaf.value = value.ToString();
    return store->Put(leaf.Encode());
  }

  auto loaded = LoadNode(store, node);
  if (!loaded.ok()) return loaded.status();
  Node& n = *loaded;

  switch (n.type) {
    case Node::Type::kLeaf: {
      const size_t common =
          CommonNibblePrefix(n.path.data(), n.path.size(), path, len);
      if (common == n.path.size() && common == len) {
        // Exact key: overwrite the value.
        n.value = value.ToString();
        return store->Put(n.Encode());
      }
      // Diverge: build a branch at the split point.
      Node branch;
      branch.type = Node::Type::kBranch;
      if (common == n.path.size()) {
        branch.has_value = true;
        branch.value = n.value;
      } else {
        Node old_leaf;
        old_leaf.type = Node::Type::kLeaf;
        old_leaf.path.assign(n.path.begin() + common + 1, n.path.end());
        old_leaf.value = n.value;
        branch.children[n.path[common]] = store->Put(old_leaf.Encode());
      }
      if (common == len) {
        branch.has_value = true;
        branch.value = value.ToString();
      } else {
        Node new_leaf;
        new_leaf.type = Node::Type::kLeaf;
        new_leaf.path.assign(path + common + 1, path + len);
        new_leaf.value = value.ToString();
        branch.children[path[common]] = store->Put(new_leaf.Encode());
      }
      Hash branch_hash = store->Put(branch.Encode());
      if (common == 0) return branch_hash;
      Node ext;
      ext.type = Node::Type::kExt;
      ext.path.assign(path, path + common);
      ext.child = branch_hash;
      return store->Put(ext.Encode());
    }

    case Node::Type::kExt: {
      const size_t common =
          CommonNibblePrefix(n.path.data(), n.path.size(), path, len);
      if (common == n.path.size()) {
        // The whole compressed path matches: descend.
        auto child =
            InsertRec(store, n.child, path + common, len - common, value);
        if (!child.ok()) return child.status();
        n.child = *child;
        return store->Put(n.Encode());
      }
      // Split the extension at the divergence point.
      Node branch;
      branch.type = Node::Type::kBranch;
      {
        // Remainder of the extension path below the branch.
        const size_t rest = n.path.size() - common - 1;
        if (rest == 0) {
          branch.children[n.path[common]] = n.child;
        } else {
          Node sub;
          sub.type = Node::Type::kExt;
          sub.path.assign(n.path.begin() + common + 1, n.path.end());
          sub.child = n.child;
          branch.children[n.path[common]] = store->Put(sub.Encode());
        }
      }
      if (common == len) {
        branch.has_value = true;
        branch.value = value.ToString();
      } else {
        Node leaf;
        leaf.type = Node::Type::kLeaf;
        leaf.path.assign(path + common + 1, path + len);
        leaf.value = value.ToString();
        branch.children[path[common]] = store->Put(leaf.Encode());
      }
      Hash branch_hash = store->Put(branch.Encode());
      if (common == 0) return branch_hash;
      Node ext;
      ext.type = Node::Type::kExt;
      ext.path.assign(path, path + common);
      ext.child = branch_hash;
      return store->Put(ext.Encode());
    }

    case Node::Type::kBranch: {
      if (len == 0) {
        n.has_value = true;
        n.value = value.ToString();
        return store->Put(n.Encode());
      }
      auto child =
          InsertRec(store, n.children[path[0]], path + 1, len - 1, value);
      if (!child.ok()) return child.status();
      n.children[path[0]] = *child;
      return store->Put(n.Encode());
    }
  }
  return Status::Corruption("unreachable");
}

// ---------------------------------------------------------------------------
// Delete

Result<Hash> Mpt::Reattach(NodeStore* store, const Nibbles& prefix,
                           const Hash& child) {
  if (prefix.empty()) return child;
  auto loaded = LoadNode(store, child);
  if (!loaded.ok()) return loaded.status();
  Node& c = *loaded;
  switch (c.type) {
    case Node::Type::kLeaf:
    case Node::Type::kExt: {
      // Merge the prefix into the child's own compressed path.
      Nibbles merged = prefix;
      merged.insert(merged.end(), c.path.begin(), c.path.end());
      c.path = std::move(merged);
      return store->Put(c.Encode());
    }
    case Node::Type::kBranch: {
      Node ext;
      ext.type = Node::Type::kExt;
      ext.path = prefix;
      ext.child = child;
      return store->Put(ext.Encode());
    }
  }
  return Status::Corruption("unreachable");
}

Result<Hash> Mpt::DeleteRec(NodeStore* store, const Hash& node,
                            const uint8_t* path, size_t len, bool* changed) {
  *changed = false;
  if (node.IsZero()) return node;  // key absent

  auto loaded = LoadNode(store, node);
  if (!loaded.ok()) return loaded.status();
  Node& n = *loaded;

  switch (n.type) {
    case Node::Type::kLeaf: {
      if (n.path.size() == len &&
          CommonNibblePrefix(n.path.data(), n.path.size(), path, len) == len) {
        *changed = true;
        return Hash::Zero();  // leaf removed
      }
      return node;
    }

    case Node::Type::kExt: {
      if (len < n.path.size() ||
          CommonNibblePrefix(n.path.data(), n.path.size(), path, len) !=
              n.path.size()) {
        return node;  // key not under this extension
      }
      bool child_changed = false;
      auto child = DeleteRec(store, n.child, path + n.path.size(),
                             len - n.path.size(), &child_changed);
      if (!child.ok()) return child.status();
      if (!child_changed) return node;
      *changed = true;
      if (child->IsZero()) return Hash::Zero();  // whole subtree gone
      // The child may have collapsed to a leaf/ext: merge paths.
      return Reattach(store, n.path, *child);
    }

    case Node::Type::kBranch: {
      if (len == 0) {
        if (!n.has_value) return node;  // nothing stored here
        n.has_value = false;
        n.value.clear();
      } else {
        const uint8_t slot = path[0];
        bool child_changed = false;
        auto child = DeleteRec(store, n.children[slot], path + 1, len - 1,
                               &child_changed);
        if (!child.ok()) return child.status();
        if (!child_changed) return node;
        n.children[slot] = *child;
      }
      *changed = true;

      // Normalize the branch after the removal.
      const int child_count = n.ChildCount();
      if (child_count == 0) {
        if (!n.has_value) return Hash::Zero();
        Node leaf;
        leaf.type = Node::Type::kLeaf;
        leaf.value = std::move(n.value);
        return store->Put(leaf.Encode());
      }
      if (child_count == 1 && !n.has_value) {
        // Collapse: merge the lone child into its selecting nibble.
        for (uint8_t i = 0; i < 16; ++i) {
          if (!n.children[i].IsZero()) {
            return Reattach(store, Nibbles{i}, n.children[i]);
          }
        }
      }
      return store->Put(n.Encode());
    }
  }
  return Status::Corruption("unreachable");
}

// ---------------------------------------------------------------------------
// Public write API

Result<Hash> Mpt::PutBatch(const Hash& root, std::vector<KV> kvs) {
  // The whole batch writes into one staging batch: intermediate roots
  // (after each key) live only in the staging buffer, which the recursion
  // reads through; the dirty nodes of the final version are flushed to the
  // backing store in a single PutMany before the root escapes.
  StagingNodeStore staging(store_.get());
  Hash cur = root;
  for (const KV& kv : kvs) {
    const Nibbles path = KeyToNibbles(kv.key);
    auto next = InsertRec(&staging, cur, path.data(), path.size(), kv.value);
    if (!next.ok()) return next.status();
    cur = *next;
  }
  staging.FlushBatch();
  return cur;
}

Result<Hash> Mpt::DeleteBatch(const Hash& root, std::vector<std::string> keys) {
  StagingNodeStore staging(store_.get());
  Hash cur = root;
  for (const std::string& k : keys) {
    const Nibbles path = KeyToNibbles(k);
    bool changed = false;
    auto next = DeleteRec(&staging, cur, path.data(), path.size(), &changed);
    if (!next.ok()) return next.status();
    if (changed) cur = *next;
  }
  staging.FlushBatch();
  return cur;
}

// ---------------------------------------------------------------------------
// Lookup / proof

Result<std::optional<std::string>> Mpt::Get(const Hash& root, Slice key,
                                            LookupStats* stats) const {
  const Nibbles nibbles = KeyToNibbles(key);
  const uint8_t* path = nibbles.data();
  size_t len = nibbles.size();
  Hash cur = root;
  while (true) {
    if (cur.IsZero()) return std::optional<std::string>{};
    auto loaded = LoadNode(store_.get(), cur, stats);
    if (!loaded.ok()) return loaded.status();
    Node& n = *loaded;
    switch (n.type) {
      case Node::Type::kLeaf: {
        if (n.path.size() == len &&
            CommonNibblePrefix(n.path.data(), n.path.size(), path, len) ==
                len) {
          return std::optional<std::string>{std::move(n.value)};
        }
        return std::optional<std::string>{};
      }
      case Node::Type::kExt: {
        if (len < n.path.size() ||
            CommonNibblePrefix(n.path.data(), n.path.size(), path, len) !=
                n.path.size()) {
          return std::optional<std::string>{};
        }
        path += n.path.size();
        len -= n.path.size();
        cur = n.child;
        break;
      }
      case Node::Type::kBranch: {
        if (len == 0) {
          if (n.has_value) {
            return std::optional<std::string>{std::move(n.value)};
          }
          return std::optional<std::string>{};
        }
        cur = n.children[path[0]];
        ++path;
        --len;
        break;
      }
    }
  }
}

Result<Proof> Mpt::GetProof(const Hash& root, Slice key) const {
  Proof proof;
  proof.key = key.ToString();
  const Nibbles nibbles = KeyToNibbles(key);
  const uint8_t* path = nibbles.data();
  size_t len = nibbles.size();
  Hash cur = root;
  while (!cur.IsZero()) {
    auto bytes = store_->Get(cur);
    if (!bytes.ok()) return bytes.status();
    proof.nodes.push_back(**bytes);
    auto decoded = Node::Decode(**bytes);
    if (!decoded.ok()) return decoded.status();
    Node& n = *decoded;
    if (n.type == Node::Type::kLeaf) {
      if (n.path.size() == len &&
          CommonNibblePrefix(n.path.data(), n.path.size(), path, len) == len) {
        proof.value = std::move(n.value);
      }
      return proof;
    }
    if (n.type == Node::Type::kExt) {
      if (len < n.path.size() ||
          CommonNibblePrefix(n.path.data(), n.path.size(), path, len) !=
              n.path.size()) {
        return proof;
      }
      path += n.path.size();
      len -= n.path.size();
      cur = n.child;
      continue;
    }
    // Branch.
    if (len == 0) {
      if (n.has_value) proof.value = std::move(n.value);
      return proof;
    }
    cur = n.children[path[0]];
    ++path;
    --len;
  }
  return proof;
}

// ---------------------------------------------------------------------------
// Scan / collect

Status Mpt::ScanRec(const Hash& node, Nibbles* prefix,
                    const std::function<void(Slice, Slice)>& fn) const {
  if (node.IsZero()) return Status::OK();
  auto loaded = LoadNode(store_.get(), node);
  if (!loaded.ok()) return loaded.status();
  Node& n = *loaded;
  switch (n.type) {
    case Node::Type::kLeaf: {
      prefix->insert(prefix->end(), n.path.begin(), n.path.end());
      fn(NibblesToKey(*prefix), n.value);
      prefix->resize(prefix->size() - n.path.size());
      return Status::OK();
    }
    case Node::Type::kExt: {
      prefix->insert(prefix->end(), n.path.begin(), n.path.end());
      Status s = ScanRec(n.child, prefix, fn);
      prefix->resize(prefix->size() - n.path.size());
      return s;
    }
    case Node::Type::kBranch: {
      if (n.has_value) fn(NibblesToKey(*prefix), n.value);
      for (uint8_t i = 0; i < 16; ++i) {
        if (n.children[i].IsZero()) continue;
        prefix->push_back(i);
        Status s = ScanRec(n.children[i], prefix, fn);
        prefix->pop_back();
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unreachable");
}

Status Mpt::Scan(const Hash& root,
                 const std::function<void(Slice, Slice)>& fn) const {
  Nibbles prefix;
  return ScanRec(root, &prefix, fn);
}

Status Mpt::CollectRec(const Hash& node, PageSet* pages) const {
  if (node.IsZero()) return Status::OK();
  if (!pages->insert(node).second) return Status::OK();
  auto loaded = LoadNode(store_.get(), node);
  if (!loaded.ok()) return loaded.status();
  Node& n = *loaded;
  if (n.type == Node::Type::kExt) return CollectRec(n.child, pages);
  if (n.type == Node::Type::kBranch) {
    for (const Hash& c : n.children) {
      if (c.IsZero()) continue;
      Status s = CollectRec(c, pages);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status Mpt::CollectPages(const Hash& root, PageSet* pages) const {
  return CollectRec(root, pages);
}

// ---------------------------------------------------------------------------
// Diff
//
// Two tries over the same key space are structurally aligned by nibble
// position, but path compaction means the node boundaries may sit at
// different depths. VNode views a stored node at a nibble offset inside
// its compressed path so that both sides can be advanced one nibble at a
// time; equal (digest, offset) pairs prune entire shared subtrees.

struct Mpt::VNode {
  Hash origin;
  size_t offset = 0;  // nibbles of `node.path` already consumed
  Node node;
};

Result<Mpt::VNode> Mpt::LoadVNode(const Hash& h, size_t offset) const {
  auto loaded = LoadNode(store_.get(), h);
  if (!loaded.ok()) return loaded.status();
  VNode v;
  v.origin = h;
  v.offset = offset;
  v.node = std::move(*loaded);
  return v;
}

Result<std::optional<Mpt::VNode>> Mpt::DescendV(const VNode& v,
                                                uint8_t nibble) const {
  const Node& n = v.node;
  switch (n.type) {
    case Node::Type::kLeaf: {
      if (v.offset < n.path.size() && n.path[v.offset] == nibble) {
        VNode next = v;
        ++next.offset;
        return std::optional<VNode>{std::move(next)};
      }
      return std::optional<VNode>{};
    }
    case Node::Type::kExt: {
      if (v.offset < n.path.size()) {
        if (n.path[v.offset] != nibble) return std::optional<VNode>{};
        if (v.offset + 1 == n.path.size()) {
          auto child = LoadVNode(n.child, 0);
          if (!child.ok()) return child.status();
          return std::optional<VNode>{std::move(*child)};
        }
        VNode next = v;
        ++next.offset;
        return std::optional<VNode>{std::move(next)};
      }
      return Status::Corruption("extension exhausted");  // cannot happen
    }
    case Node::Type::kBranch: {
      if (n.children[nibble].IsZero()) return std::optional<VNode>{};
      auto child = LoadVNode(n.children[nibble], 0);
      if (!child.ok()) return child.status();
      return std::optional<VNode>{std::move(*child)};
    }
  }
  return Status::Corruption("unreachable");
}

Status Mpt::DiffRec(const std::optional<VNode>& a, const std::optional<VNode>& b,
                    Nibbles* prefix, DiffResult* out) const {
  if (!a && !b) return Status::OK();
  if (a && b && a->origin == b->origin && a->offset == b->offset) {
    return Status::OK();  // shared subtree
  }

  // Value terminating exactly at this position (if any) on each side.
  auto value_at = [](const std::optional<VNode>& v) -> const std::string* {
    if (!v) return nullptr;
    const Node& n = v->node;
    if (n.type == Node::Type::kLeaf && v->offset == n.path.size()) {
      return &n.value;
    }
    if (n.type == Node::Type::kBranch && n.has_value) return &n.value;
    return nullptr;
  };
  const std::string* va = value_at(a);
  const std::string* vb = value_at(b);
  if (va || vb) {
    if (!va || !vb || *va != *vb) {
      DiffEntry e;
      e.key = NibblesToKey(*prefix);
      if (va) e.left = *va;
      if (vb) e.right = *vb;
      out->push_back(std::move(e));
    }
  }

  // Fast path: leaf nodes are compared wholesale instead of nibble by
  // nibble (keys with the same length lie at the same level, as the paper
  // notes, so leaf-leaf encounters dominate the diff frontier).
  auto emit_record = [&](const VNode& v, bool left_side) {
    const Node& n = v.node;
    Nibbles full = *prefix;
    full.insert(full.end(), n.path.begin() + v.offset, n.path.end());
    DiffEntry e;
    e.key = NibblesToKey(full);
    if (left_side) {
      e.left = n.value;
    } else {
      e.right = n.value;
    }
    out->push_back(std::move(e));
  };
  const bool a_leaf = a && a->node.type == Node::Type::kLeaf;
  const bool b_leaf = b && b->node.type == Node::Type::kLeaf;
  if (a_leaf && b_leaf) {
    // va/vb (values at this exact position) were handled above; what is
    // left are the leaves' remaining paths.
    const Nibbles pa(a->node.path.begin() + a->offset, a->node.path.end());
    const Nibbles pb(b->node.path.begin() + b->offset, b->node.path.end());
    if (pa == pb) {
      if (!pa.empty() && a->node.value != b->node.value) {
        Nibbles full = *prefix;
        full.insert(full.end(), pa.begin(), pa.end());
        out->push_back(
            {NibblesToKey(full), a->node.value, b->node.value});
      }
      return Status::OK();
    }
    if (pa < pb) {
      if (!pa.empty()) emit_record(*a, true);
      if (!pb.empty()) emit_record(*b, false);
    } else {
      if (!pb.empty()) emit_record(*b, false);
      if (!pa.empty()) emit_record(*a, true);
    }
    // Order note: differing-path leaves share this node position, so both
    // keys extend *prefix and the pa/pb comparison yields key order.
    return Status::OK();
  }
  if (a_leaf && !b && a->offset < a->node.path.size()) {
    emit_record(*a, true);
    return Status::OK();
  }
  if (b_leaf && !a && b->offset < b->node.path.size()) {
    emit_record(*b, false);
    return Status::OK();
  }

  // Fast path: two branch nodes compare their children by digest, so a
  // shared child subtree costs zero loads — this is what keeps the MPT
  // diff proportional to the changed paths (§4.1.3).
  if (a && b && a->node.type == Node::Type::kBranch &&
      b->node.type == Node::Type::kBranch) {
    for (uint8_t nibble = 0; nibble < 16; ++nibble) {
      const Hash& ca = a->node.children[nibble];
      const Hash& cb = b->node.children[nibble];
      if (ca == cb) continue;  // shared (or both empty): skip unloaded
      std::optional<VNode> van, vbn;
      if (!ca.IsZero()) {
        auto r = LoadVNode(ca, 0);
        if (!r.ok()) return r.status();
        van = std::move(*r);
      }
      if (!cb.IsZero()) {
        auto r = LoadVNode(cb, 0);
        if (!r.ok()) return r.status();
        vbn = std::move(*r);
      }
      prefix->push_back(nibble);
      Status s = DiffRec(van, vbn, prefix, out);
      prefix->pop_back();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  for (uint8_t nibble = 0; nibble < 16; ++nibble) {
    std::optional<VNode> ca, cb;
    if (a) {
      auto r = DescendV(*a, nibble);
      if (!r.ok()) return r.status();
      ca = std::move(*r);
    }
    if (b) {
      auto r = DescendV(*b, nibble);
      if (!r.ok()) return r.status();
      cb = std::move(*r);
    }
    if (!ca && !cb) continue;
    prefix->push_back(nibble);
    Status s = DiffRec(ca, cb, prefix, out);
    prefix->pop_back();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<DiffResult> Mpt::Diff(const Hash& a, const Hash& b) const {
  DiffResult out;
  if (a == b) return out;
  std::optional<VNode> va, vb;
  if (!a.IsZero()) {
    auto r = LoadVNode(a, 0);
    if (!r.ok()) return r.status();
    va = std::move(*r);
  }
  if (!b.IsZero()) {
    auto r = LoadVNode(b, 0);
    if (!r.ok()) return r.status();
    vb = std::move(*r);
  }
  Nibbles prefix;
  Status s = DiffRec(va, vb, &prefix, &out);
  if (!s.ok()) return s;
  return out;
}

std::unique_ptr<ImmutableIndex> Mpt::WithStore(NodeStorePtr store) const {
  return std::make_unique<Mpt>(std::move(store));
}

}  // namespace siri
