// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/mpt/nibbles.h"

#include "common/status.h"
#include "common/varint.h"

namespace siri {

Nibbles KeyToNibbles(Slice key) {
  Nibbles out;
  out.reserve(key.size() * 2);
  for (size_t i = 0; i < key.size(); ++i) {
    const uint8_t b = static_cast<uint8_t>(key[i]);
    out.push_back(b >> 4);
    out.push_back(b & 0xf);
  }
  return out;
}

std::string NibblesToKey(const Nibbles& nibbles) {
  SIRI_CHECK(nibbles.size() % 2 == 0);
  std::string out;
  out.reserve(nibbles.size() / 2);
  for (size_t i = 0; i < nibbles.size(); i += 2) {
    out.push_back(static_cast<char>((nibbles[i] << 4) | nibbles[i + 1]));
  }
  return out;
}

size_t CommonNibblePrefix(const uint8_t* a, size_t alen, const uint8_t* b,
                          size_t blen) {
  const size_t n = alen < blen ? alen : blen;
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

void EncodeNibblePath(std::string* out, const uint8_t* nibbles, size_t count) {
  PutVarint64(out, count);
  uint8_t cur = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      cur = static_cast<uint8_t>(nibbles[i] << 4);
      if (i + 1 == count) out->push_back(static_cast<char>(cur));
    } else {
      cur |= nibbles[i];
      out->push_back(static_cast<char>(cur));
    }
  }
}

bool DecodeNibblePath(Slice* in, Nibbles* out) {
  uint64_t count = 0;
  if (!GetVarint64(in, &count)) return false;
  const size_t bytes = (count + 1) / 2;
  if (in->size() < bytes) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t b = static_cast<uint8_t>((*in)[i / 2]);
    out->push_back(i % 2 == 0 ? (b >> 4) : (b & 0xf));
  }
  in->remove_prefix(bytes);
  return true;
}

}  // namespace siri
