// Copyright (c) 2026 The siri Authors. MIT license.
//
// Nibble (4-bit character) utilities for the Merkle Patricia Trie. MPT
// splits each key byte into two nibbles, high first, so lexicographic
// order over nibble sequences equals lexicographic order over byte keys
// (§3.4.1's "the key is split into sequential characters, namely nibbles").

#ifndef SIRI_INDEX_MPT_NIBBLES_H_
#define SIRI_INDEX_MPT_NIBBLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace siri {

using Nibbles = std::vector<uint8_t>;

/// Expands a byte key into its nibble sequence (2 nibbles per byte).
Nibbles KeyToNibbles(Slice key);

/// Packs an even-length nibble sequence back into bytes. SIRI_CHECKs that
/// the length is even (every complete key has an even nibble count).
std::string NibblesToKey(const Nibbles& nibbles);

/// Length of the longest common prefix of two nibble spans.
size_t CommonNibblePrefix(const uint8_t* a, size_t alen, const uint8_t* b,
                          size_t blen);

/// Appends a compact path encoding: varint count followed by packed nibble
/// bytes (the equivalent of Ethereum's hex-prefix encoding).
void EncodeNibblePath(std::string* out, const uint8_t* nibbles, size_t count);

/// Parses a compact path encoding, advancing \p in. Returns false on
/// malformed input.
bool DecodeNibblePath(Slice* in, Nibbles* out);

}  // namespace siri

#endif  // SIRI_INDEX_MPT_NIBBLES_H_
