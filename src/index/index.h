// Copyright (c) 2026 The siri Authors. MIT license.
//
// ImmutableIndex — the common API of the four structures the paper studies:
// MPT, MBT, POS-Tree (SIRI instances) and MVMB+-Tree (non-SIRI baseline).
//
// All operations are *functional*: a version of the index is identified by
// its root digest, and updates return the root of a new version while the
// old version stays intact (node-level copy-on-write, §3.4). Versions are
// just Hash values; retaining many versions costs only the pages that
// differ.

#ifndef SIRI_INDEX_INDEX_H_
#define SIRI_INDEX_INDEX_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "crypto/hash.h"
#include "index/proof.h"
#include "store/node_store.h"

namespace siri {

/// A key/value record.
struct KV {
  std::string key;
  std::string value;

  bool operator==(const KV& o) const { return key == o.key && value == o.value; }
};

/// One record-level difference between two versions (§4.1.3).
/// - left only   -> present in the first version only
/// - right only  -> present in the second version only
/// - both        -> present in both but with different values
struct DiffEntry {
  std::string key;
  std::optional<std::string> left;
  std::optional<std::string> right;
};

using DiffResult = std::vector<DiffEntry>;

/// Resolves a merge conflict: both sides changed \p key divergently. In
/// Merge3 a side is nullopt when that side deleted the key, so a
/// delete-vs-modify conflict is distinguishable from a write of the empty
/// string. (Two-way Merge has no base to detect deletions against — it
/// only conflicts on value-vs-value, so both sides are always engaged
/// there.) Returns the winning value, or nullopt to drop the key from the
/// merge result.
using ConflictResolver = std::function<std::optional<std::string>(
    const std::string& key, const std::optional<std::string>& ours,
    const std::optional<std::string>& theirs)>;

/// Per-lookup instrumentation (Figures 9 and 13).
struct LookupStats {
  int depth = 0;             ///< nodes on the traversed root-to-leaf path
  uint64_t nodes_loaded = 0; ///< store fetches
  uint64_t bytes_loaded = 0; ///< bytes fetched from the store
  uint64_t entries_scanned = 0;  ///< in-node entries binary-search touched
};

/// \brief Common interface of all index structures in this library.
class ImmutableIndex {
 public:
  virtual ~ImmutableIndex() = default;

  /// Short structure name ("mpt", "mbt", "pos", "mvmb").
  virtual std::string name() const = 0;

  /// Root digest of the empty index. For MBT this is a real tree of empty
  /// buckets; for the others it is Hash::Zero().
  virtual Hash EmptyRoot() const { return Hash::Zero(); }

  /// Inserts or updates all records in \p kvs, returning the new version
  /// root. Later duplicates in the batch win over earlier ones.
  virtual Result<Hash> PutBatch(const Hash& root, std::vector<KV> kvs) = 0;

  /// Removes all of \p keys (missing keys are ignored).
  virtual Result<Hash> DeleteBatch(const Hash& root,
                                   std::vector<std::string> keys) = 0;

  /// Point lookup; nullopt when the key is absent.
  virtual Result<std::optional<std::string>> Get(
      const Hash& root, Slice key, LookupStats* stats = nullptr) const = 0;

  /// Merkle proof of (non-)existence for \p key under version \p root.
  virtual Result<Proof> GetProof(const Hash& root, Slice key) const = 0;

  /// Inserts every page digest reachable from \p root into \p pages.
  virtual Status CollectPages(const Hash& root, PageSet* pages) const = 0;

  /// Enumerates all records. POS/MVMB/MPT yield keys in lexicographic
  /// order; MBT yields bucket order (sorted within each bucket).
  virtual Status Scan(const Hash& root,
                      const std::function<void(Slice, Slice)>& fn) const = 0;

  /// Enumerates records with lo <= key < hi in key order. The ordered
  /// trees (POS, MVMB) override this with a cursor seek costing
  /// O(log N + results); the default filters a full Scan — which is the
  /// honest cost on MBT, whose hash partitioning destroys key locality.
  virtual Status RangeScan(const Hash& root, Slice lo, Slice hi,
                           const std::function<void(Slice, Slice)>& fn) const;

  /// Record-level difference between two versions (§4.1.3). Exploits node
  /// sharing: identical subtrees are skipped without being loaded.
  virtual Result<DiffResult> Diff(const Hash& a, const Hash& b) const = 0;

  /// Clone bound to a different store; used for proof verification.
  virtual std::unique_ptr<ImmutableIndex> WithStore(NodeStorePtr store) const = 0;

  // --- Conveniences (implemented on top of the virtuals) ---

  Result<Hash> Put(const Hash& root, Slice key, Slice value) {
    return PutBatch(root, {KV{key.ToString(), value.ToString()}});
  }

  Result<Hash> Delete(const Hash& root, Slice key) {
    return DeleteBatch(root, {key.ToString()});
  }

  /// True if the key/value pair of \p proof verifies against \p root.
  /// Re-runs the structure's own lookup logic against a store populated
  /// only with the proof's nodes, checking every digest on the way — the
  /// same procedure a light client would follow.
  bool VerifyProof(const Proof& proof, const Hash& root) const;

  /// Two-way merge of \p ours and \p theirs (§4.1.4): the result contains
  /// every record of both versions. When a key has different values on the
  /// two sides, \p resolver decides; with no resolver the merge aborts
  /// with Status::Conflict, mirroring the paper's "the process must be
  /// interrupted and a selection strategy must be given".
  Result<Hash> Merge(const Hash& ours, const Hash& theirs,
                     ConflictResolver resolver = nullptr);

  /// Three-way merge relative to common ancestor \p base: only records
  /// changed on either side move; a conflict is a key changed differently
  /// on both sides.
  Result<Hash> Merge3(const Hash& ours, const Hash& theirs, const Hash& base,
                      ConflictResolver resolver = nullptr);

  /// Number of records reachable from \p root.
  Result<uint64_t> Count(const Hash& root) const;

  NodeStore* store() const { return store_.get(); }
  const NodeStorePtr& store_ptr() const { return store_; }

 protected:
  explicit ImmutableIndex(NodeStorePtr store) : store_(std::move(store)) {}

  NodeStorePtr store_;
};

}  // namespace siri

#endif  // SIRI_INDEX_INDEX_H_
