// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/diff.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace siri {

void DiffSortedEntries(const std::vector<KV>& left,
                       const std::vector<KV>& right, DiffResult* out) {
  size_t i = 0, j = 0;
  while (i < left.size() || j < right.size()) {
    if (i < left.size() && j < right.size()) {
      const int c = Slice(left[i].key).compare(Slice(right[j].key));
      if (c == 0) {
        if (left[i].value != right[j].value) {
          out->push_back({left[i].key, left[i].value, right[j].value});
        }
        ++i;
        ++j;
      } else if (c < 0) {
        out->push_back({left[i].key, left[i].value, std::nullopt});
        ++i;
      } else {
        out->push_back({right[j].key, std::nullopt, right[j].value});
        ++j;
      }
    } else if (i < left.size()) {
      out->push_back({left[i].key, left[i].value, std::nullopt});
      ++i;
    } else {
      out->push_back({right[j].key, std::nullopt, right[j].value});
      ++j;
    }
  }
}

void SortDiff(DiffResult* out) {
  std::sort(out->begin(), out->end(),
            [](const DiffEntry& a, const DiffEntry& b) { return a.key < b.key; });
}

bool ImmutableIndex::VerifyProof(const Proof& proof, const Hash& root) const {
  auto proof_store = std::make_shared<ProofNodeStore>(proof);
  auto verifier = WithStore(proof_store);
  auto got = verifier->Get(root, proof.key);
  if (!got.ok()) return false;  // path broken: missing/tampered node
  return *got == proof.value;
}

Result<Hash> ImmutableIndex::Merge(const Hash& ours, const Hash& theirs,
                                   ConflictResolver resolver) {
  auto diff = Diff(ours, theirs);
  if (!diff.ok()) return diff.status();

  std::vector<KV> to_put;
  std::vector<std::string> to_delete;
  for (const DiffEntry& e : *diff) {
    if (e.left && e.right) {
      if (!resolver) {
        return Status::Conflict("key '" + e.key +
                                "' differs and no resolver was supplied");
      }
      auto winner = resolver(e.key, e.left, e.right);
      if (winner) {
        to_put.push_back({e.key, std::move(*winner)});
      } else {
        to_delete.push_back(e.key);  // resolver dropped the key entirely
      }
    } else if (e.right) {
      to_put.push_back({e.key, *e.right});
    }
    // e.left only: record exists only in ours; Merge keeps it.
  }
  auto after_put = PutBatch(ours, std::move(to_put));
  if (!after_put.ok()) return after_put.status();
  if (to_delete.empty()) return after_put;
  return DeleteBatch(*after_put, std::move(to_delete));
}

Result<Hash> ImmutableIndex::Merge3(const Hash& ours, const Hash& theirs,
                                    const Hash& base,
                                    ConflictResolver resolver) {
  auto ours_diff = Diff(base, ours);      // base -> ours changes
  if (!ours_diff.ok()) return ours_diff.status();
  auto theirs_diff = Diff(base, theirs);  // base -> theirs changes
  if (!theirs_diff.ok()) return theirs_diff.status();

  // Index ours' changes by key for conflict detection.
  std::vector<KV> to_put;
  std::vector<std::string> to_delete;
  size_t i = 0;
  for (const DiffEntry& t : *theirs_diff) {
    // Advance over ours-changes with smaller keys (they are already in ours).
    while (i < ours_diff->size() && (*ours_diff)[i].key < t.key) ++i;
    const bool ours_changed_same_key =
        i < ours_diff->size() && (*ours_diff)[i].key == t.key;

    if (!ours_changed_same_key) {
      // Only theirs changed this key: take theirs.
      if (t.right) {
        to_put.push_back({t.key, *t.right});
      } else {
        to_delete.push_back(t.key);  // theirs deleted it
      }
      continue;
    }

    const DiffEntry& o = (*ours_diff)[i];
    // Both sides changed the key. Identical change: nothing to do.
    const std::optional<std::string>& ours_new = o.right;
    const std::optional<std::string>& theirs_new = t.right;
    if (ours_new == theirs_new) continue;
    if (!resolver) {
      return Status::Conflict("key '" + t.key +
                              "' changed on both sides and no resolver was "
                              "supplied");
    }
    // Pass the optionals through: a deleting side stays nullopt instead of
    // being conflated with an empty-string write.
    auto winner = resolver(t.key, ours_new, theirs_new);
    if (winner) {
      to_put.push_back({t.key, std::move(*winner)});
    } else {
      to_delete.push_back(t.key);
    }
  }

  auto after_put = PutBatch(ours, std::move(to_put));
  if (!after_put.ok()) return after_put.status();
  if (to_delete.empty()) return after_put;
  return DeleteBatch(*after_put, std::move(to_delete));
}

Status ImmutableIndex::RangeScan(
    const Hash& root, Slice lo, Slice hi,
    const std::function<void(Slice, Slice)>& fn) const {
  // Default: filter a full scan. Collect-then-sort so MBT's bucket order
  // still yields sorted range output.
  std::vector<KV> hits;
  Status s = Scan(root, [&](Slice k, Slice v) {
    if (k.compare(lo) >= 0 && k.compare(hi) < 0) {
      hits.push_back(KV{k.ToString(), v.ToString()});
    }
  });
  if (!s.ok()) return s;
  std::sort(hits.begin(), hits.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });
  for (const KV& kv : hits) fn(kv.key, kv.value);
  return Status::OK();
}

Result<uint64_t> ImmutableIndex::Count(const Hash& root) const {
  uint64_t n = 0;
  Status s = Scan(root, [&n](Slice, Slice) { ++n; });
  if (!s.ok()) return s;
  return n;
}

}  // namespace siri
