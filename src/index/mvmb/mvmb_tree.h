// Copyright (c) 2026 The siri Authors. MIT license.
//
// Multi-Version Merkle B+-Tree (MVMB+-Tree) — the paper's non-SIRI
// baseline (§5.2): an immutable B+-tree with tamper evidence, obtained by
// replacing child pointers with the cryptographic digests of the children
// and applying node-level copy-on-write. Node boundaries follow the usual
// B+-tree overflow/split discipline, so — unlike the SIRI structures — the
// shape depends on the order in which records were inserted (Figure 2),
// which caps how many pages two independently built instances can share.

#ifndef SIRI_INDEX_MVMB_MVMB_TREE_H_
#define SIRI_INDEX_MVMB_MVMB_TREE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "index/index.h"
#include "index/ordered/node_codec.h"

namespace siri {

/// \brief Tuning knobs; the default targets ~1 KB nodes as in §5.
struct MvmbTreeOptions {
  /// Serialized node size that triggers a split.
  size_t max_node_bytes = 1024;
};

/// \brief Immutable Merkle B+-tree baseline.
///
/// Deletions do not rebalance: underfull nodes persist until empty, which
/// is the common copy-on-write B-tree trade-off (rebalancing would rewrite
/// sibling paths in every version).
class MvmbTree : public ImmutableIndex {
 public:
  explicit MvmbTree(NodeStorePtr store, MvmbTreeOptions options = {});

  std::string name() const override { return "mvmb"; }

  Result<Hash> PutBatch(const Hash& root, std::vector<KV> kvs) override;
  Result<Hash> DeleteBatch(const Hash& root,
                           std::vector<std::string> keys) override;
  Result<std::optional<std::string>> Get(const Hash& root, Slice key,
                                         LookupStats* stats) const override;
  Result<Proof> GetProof(const Hash& root, Slice key) const override;
  Status CollectPages(const Hash& root, PageSet* pages) const override;
  Status Scan(const Hash& root,
              const std::function<void(Slice, Slice)>& fn) const override;
  Status RangeScan(const Hash& root, Slice lo, Slice hi,
                   const std::function<void(Slice, Slice)>& fn) const override;
  Result<DiffResult> Diff(const Hash& a, const Hash& b) const override;
  std::unique_ptr<ImmutableIndex> WithStore(NodeStorePtr store) const override;

  /// Bulk load from records sorted by key (bottom-up, each node written
  /// once). The resulting shape still differs from incrementally built
  /// trees, as expected for a non-SIRI structure.
  Result<Hash> BuildFromSorted(const std::vector<KV>& entries);

  const MvmbTreeOptions& options() const { return options_; }

 private:
  struct Edit {
    std::string key;
    std::optional<std::string> value;
  };

  // Mutation helpers read and write through \p store — the staging batch
  // of the enclosing PutBatch/DeleteBatch/BuildFromSorted — so one commit's
  // nodes are flushed to the backing store with a single PutMany.

  /// Rewrites the subtree under \p node applying \p edits; returns the
  /// replacement child entries (several if the node split, none if it
  /// emptied).
  Result<std::vector<ChildEntry>> UpdateRec(NodeStore* store, const Hash& node,
                                            const std::vector<Edit>& edits);

  /// Packs sorted leaf entries into one or more leaf nodes of at most
  /// max_node_bytes each.
  std::vector<ChildEntry> WriteLeaves(NodeStore* store,
                                      const std::vector<KV>& entries);

  /// Packs child entries into internal nodes, stacking levels until a
  /// single root remains.
  Result<Hash> BuildRoot(NodeStore* store, std::vector<ChildEntry> children);

  Result<Hash> ApplyEdits(const Hash& root, std::vector<Edit> edits);

  MvmbTreeOptions options_;
};

}  // namespace siri

#endif  // SIRI_INDEX_MVMB_MVMB_TREE_H_
