// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/mvmb/mvmb_tree.h"

#include <algorithm>

#include "index/ordered/tree_ops.h"
#include "store/staging_store.h"

namespace siri {

namespace {

uint64_t LeafEntryBytes(const KV& e) {
  return e.key.size() + e.value.size() + 10;  // + length prefixes (approx)
}

uint64_t ChildEntryBytes(const ChildEntry& e) {
  return e.key.size() + Hash::kSize + 5;
}

/// Splits sorted entries into byte-balanced groups of at most
/// max_bytes each (at least one entry per group). The grouping depends
/// only on this node's entry list — but which entries share a node depends
/// on insertion history, which is what makes the structure order-dependent.
template <typename T, typename SizeFn>
std::vector<std::vector<T>> PackGroups(std::vector<T> entries, SizeFn size_of,
                                       uint64_t max_bytes) {
  std::vector<std::vector<T>> groups;
  uint64_t total = 0;
  for (const T& e : entries) total += size_of(e);
  if (entries.empty()) return groups;
  const uint64_t num_groups = std::max<uint64_t>(
      1, (total + max_bytes - 1) / max_bytes);
  const uint64_t target = (total + num_groups - 1) / num_groups;

  std::vector<T> cur;
  uint64_t cur_bytes = 0;
  for (T& e : entries) {
    const uint64_t sz = size_of(e);
    if (!cur.empty() && cur_bytes + sz > target) {
      groups.push_back(std::move(cur));
      cur.clear();
      cur_bytes = 0;
    }
    cur_bytes += sz;
    cur.push_back(std::move(e));
  }
  if (!cur.empty()) groups.push_back(std::move(cur));
  return groups;
}

}  // namespace

MvmbTree::MvmbTree(NodeStorePtr store, MvmbTreeOptions options)
    : ImmutableIndex(std::move(store)), options_(options) {}

std::vector<ChildEntry> MvmbTree::WriteLeaves(NodeStore* store,
                                              const std::vector<KV>& entries) {
  std::vector<ChildEntry> out;
  if (entries.empty()) return out;
  auto groups = PackGroups(entries, LeafEntryBytes, options_.max_node_bytes);
  out.reserve(groups.size());
  for (const auto& group : groups) {
    ChildEntry ce;
    ce.key = group.front().key;
    ce.hash = store->Put(EncodeLeaf(group));
    out.push_back(std::move(ce));
  }
  return out;
}

Result<Hash> MvmbTree::BuildRoot(NodeStore* store,
                                 std::vector<ChildEntry> children) {
  if (children.empty()) return Hash::Zero();
  while (children.size() > 1) {
    auto groups =
        PackGroups(std::move(children), ChildEntryBytes, options_.max_node_bytes);
    std::vector<ChildEntry> next;
    next.reserve(groups.size());
    for (const auto& group : groups) {
      ChildEntry ce;
      ce.key = group.front().key;
      ce.hash = store->Put(EncodeInternal(group));
      next.push_back(std::move(ce));
    }
    children = std::move(next);
  }
  return children[0].hash;
}

Result<std::vector<ChildEntry>> MvmbTree::UpdateRec(
    NodeStore* store, const Hash& node, const std::vector<Edit>& edits) {
  auto bytes = store->Get(node);
  if (!bytes.ok()) return bytes.status();

  if (IsLeafNode(**bytes)) {
    std::vector<KV> entries;
    Status s = DecodeLeaf(**bytes, &entries);
    if (!s.ok()) return s;

    // Merge-join entries with sorted edits.
    std::vector<KV> merged;
    merged.reserve(entries.size() + edits.size());
    size_t i = 0;
    for (const Edit& e : edits) {
      while (i < entries.size() && Slice(entries[i].key).compare(e.key) < 0) {
        merged.push_back(std::move(entries[i++]));
      }
      if (i < entries.size() && entries[i].key == e.key) ++i;  // overwritten
      if (e.value) merged.push_back(KV{e.key, *e.value});
    }
    while (i < entries.size()) merged.push_back(std::move(entries[i++]));
    return WriteLeaves(store, merged);
  }

  std::vector<ChildEntry> children;
  Status s = DecodeInternal(**bytes, &children);
  if (!s.ok()) return s;
  if (children.empty()) return Status::Corruption("empty internal node");

  // Partition edits among children: edits with key < children[1].key go to
  // child 0 (including keys below children[0].key), and so on.
  std::vector<ChildEntry> updated;
  updated.reserve(children.size());
  size_t e = 0;
  for (size_t c = 0; c < children.size(); ++c) {
    const bool last = c + 1 == children.size();
    std::vector<Edit> child_edits;
    while (e < edits.size() &&
           (last ||
            Slice(edits[e].key).compare(children[c + 1].key) < 0)) {
      child_edits.push_back(edits[e++]);
    }
    if (child_edits.empty()) {
      updated.push_back(children[c]);
      continue;
    }
    auto replacement = UpdateRec(store, children[c].hash, child_edits);
    if (!replacement.ok()) return replacement.status();
    for (ChildEntry& r : *replacement) updated.push_back(std::move(r));
  }

  if (updated.empty()) return std::vector<ChildEntry>{};
  auto groups =
      PackGroups(std::move(updated), ChildEntryBytes, options_.max_node_bytes);
  std::vector<ChildEntry> out;
  out.reserve(groups.size());
  for (const auto& group : groups) {
    ChildEntry ce;
    ce.key = group.front().key;
    ce.hash = store->Put(EncodeInternal(group));
    out.push_back(std::move(ce));
  }
  return out;
}

Result<Hash> MvmbTree::ApplyEdits(const Hash& root, std::vector<Edit> edits) {
  if (edits.empty()) return root;
  std::stable_sort(edits.begin(), edits.end(),
                   [](const Edit& a, const Edit& b) { return a.key < b.key; });
  std::vector<Edit> unique;
  unique.reserve(edits.size());
  for (Edit& e : edits) {
    if (!unique.empty() && unique.back().key == e.key) {
      unique.back() = std::move(e);
    } else {
      unique.push_back(std::move(e));
    }
  }

  // One staging batch per edit batch: every node the rebuild produces is
  // flushed to the backing store with a single PutMany.
  StagingNodeStore staging(store_.get());

  if (root.IsZero()) {
    std::vector<KV> entries;
    for (Edit& e : unique) {
      if (e.value) entries.push_back(KV{std::move(e.key), std::move(*e.value)});
    }
    auto built = BuildRoot(&staging, WriteLeaves(&staging, entries));
    if (built.ok()) staging.FlushBatch();
    return built;
  }

  auto replacement = UpdateRec(&staging, root, unique);
  if (!replacement.ok()) return replacement.status();
  Result<Hash> built =
      replacement->size() == 1
          ? Result<Hash>((*replacement)[0].hash)
          : replacement->empty() ? Result<Hash>(Hash::Zero())
                                 : BuildRoot(&staging, std::move(*replacement));
  if (built.ok()) staging.FlushBatch();
  return built;
}

Result<Hash> MvmbTree::PutBatch(const Hash& root, std::vector<KV> kvs) {
  std::vector<Edit> edits;
  edits.reserve(kvs.size());
  for (KV& kv : kvs) {
    edits.push_back(Edit{std::move(kv.key), std::move(kv.value)});
  }
  return ApplyEdits(root, std::move(edits));
}

Result<Hash> MvmbTree::DeleteBatch(const Hash& root,
                                   std::vector<std::string> keys) {
  std::vector<Edit> edits;
  edits.reserve(keys.size());
  for (std::string& k : keys) edits.push_back(Edit{std::move(k), std::nullopt});
  return ApplyEdits(root, std::move(edits));
}

Result<Hash> MvmbTree::BuildFromSorted(const std::vector<KV>& entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (!(Slice(entries[i - 1].key) < Slice(entries[i].key))) {
      return Status::InvalidArgument("entries not sorted/unique");
    }
  }
  StagingNodeStore staging(store_.get());
  auto built = BuildRoot(&staging, WriteLeaves(&staging, entries));
  if (built.ok()) staging.FlushBatch();
  return built;
}

Result<std::optional<std::string>> MvmbTree::Get(const Hash& root, Slice key,
                                                 LookupStats* stats) const {
  return OrderedTreeGet(store_.get(), root, key, stats);
}

Result<Proof> MvmbTree::GetProof(const Hash& root, Slice key) const {
  return OrderedTreeGetProof(store_.get(), root, key);
}

Status MvmbTree::CollectPages(const Hash& root, PageSet* pages) const {
  return OrderedTreeCollectPages(store_.get(), root, pages);
}

Status MvmbTree::Scan(const Hash& root,
                      const std::function<void(Slice, Slice)>& fn) const {
  return OrderedTreeScan(store_.get(), root, fn);
}

Status MvmbTree::RangeScan(const Hash& root, Slice lo, Slice hi,
                           const std::function<void(Slice, Slice)>& fn) const {
  return OrderedTreeRangeScan(store_.get(), root, lo, hi, fn);
}

Result<DiffResult> MvmbTree::Diff(const Hash& a, const Hash& b) const {
  return OrderedTreeDiff(store_.get(), a, b);
}

std::unique_ptr<ImmutableIndex> MvmbTree::WithStore(NodeStorePtr store) const {
  return std::make_unique<MvmbTree>(std::move(store), options_);
}

}  // namespace siri
