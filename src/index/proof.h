// Copyright (c) 2026 The siri Authors. MIT license.
//
// Merkle proofs. A proof for key k under version root r is the sequence of
// serialized nodes on the lookup path from r to the node answering the
// query. A verifier that trusts only the 32-byte digest r can re-execute
// the lookup over these nodes, checking that each fetched node hashes to
// the digest that referenced it (§2.3).

#ifndef SIRI_INDEX_PROOF_H_
#define SIRI_INDEX_PROOF_H_

#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "crypto/hash.h"
#include "store/node_store.h"

namespace siri {

/// \brief Self-contained (non-)existence proof for one key.
struct Proof {
  std::string key;
  /// Claimed value; nullopt claims the key is absent.
  std::optional<std::string> value;
  /// Serialized nodes on the lookup path, root first.
  std::vector<std::string> nodes;

  /// Total serialized size — the paper's "proof of data" footprint.
  uint64_t ByteSize() const;
};

/// \brief Read-only store view backed solely by a proof's nodes.
///
/// Get(h) succeeds only if some proof node hashes to exactly h, so any
/// tampering with a node makes it unreachable and verification fails.
/// Thread-safe (NodeStore contract): one proof store may back concurrent
/// verifier threads.
class ProofNodeStore : public NodeStore {
 public:
  explicit ProofNodeStore(const Proof& proof);

  /// Accepts writes so that verifiers with constructor-built skeletons
  /// (MBT's empty tree) can operate; a tampered proof node still fails
  /// verification because lookups address nodes by digest.
  [[nodiscard]] Hash Put(Slice bytes) override EXCLUDES(mu_);
  /// Batched variant: one lock acquisition for a whole staged batch (MBT
  /// verifiers flush their skeleton in one call).
  void PutMany(const NodeBatch& batch) override EXCLUDES(mu_);
  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override
      EXCLUDES(mu_);
  bool Contains(const Hash& h) const override EXCLUDES(mu_);
  Result<uint64_t> SizeOf(const Hash& h) const override EXCLUDES(mu_);
  Stats stats() const override EXCLUDES(mu_);
  void ResetOpCounters() override {}

 private:
  mutable Mutex mu_;
  std::unordered_map<Hash, std::shared_ptr<const std::string>, HashHasher>
      nodes_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace siri

#endif  // SIRI_INDEX_PROOF_H_
