// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/proof.h"

#include "crypto/sha256.h"

namespace siri {

uint64_t Proof::ByteSize() const {
  uint64_t total = key.size();
  if (value) total += value->size();
  for (const auto& n : nodes) total += n.size();
  return total;
}

ProofNodeStore::ProofNodeStore(const Proof& proof) {
  for (const auto& bytes : proof.nodes) {
    const Hash h = Sha256::Digest(bytes);
    nodes_.emplace(h, std::make_shared<const std::string>(bytes));
    ++stats_.unique_nodes;
    stats_.unique_bytes += bytes.size();
  }
}

Hash ProofNodeStore::Put(Slice bytes) {
  const Hash h = Sha256::Digest(bytes);
  MutexLock lock(mu_);
  auto it = nodes_.find(h);
  if (it == nodes_.end()) {
    nodes_.emplace(h, std::make_shared<const std::string>(bytes.ToString()));
    ++stats_.unique_nodes;
    stats_.unique_bytes += bytes.size();
  }
  return h;
}

void ProofNodeStore::PutMany(const NodeBatch& batch) {
  MutexLock lock(mu_);
  for (const NodeRecord& rec : batch) {
    auto [it, inserted] = nodes_.emplace(rec.hash, rec.bytes);
    if (inserted) {
      ++stats_.unique_nodes;
      stats_.unique_bytes += it->second->size();
    }
  }
}

Result<std::shared_ptr<const std::string>> ProofNodeStore::Get(const Hash& h) {
  MutexLock lock(mu_);
  ++stats_.gets;
  auto it = nodes_.find(h);
  if (it == nodes_.end()) {
    return Status::NotFound("proof does not cover node " + h.ToHex());
  }
  stats_.get_bytes += it->second->size();
  return it->second;
}

bool ProofNodeStore::Contains(const Hash& h) const {
  MutexLock lock(mu_);
  return nodes_.count(h) > 0;
}

Result<uint64_t> ProofNodeStore::SizeOf(const Hash& h) const {
  MutexLock lock(mu_);
  auto it = nodes_.find(h);
  if (it == nodes_.end()) return Status::NotFound();
  return static_cast<uint64_t>(it->second->size());
}

NodeStore::Stats ProofNodeStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace siri
