// Copyright (c) 2026 The siri Authors. MIT license.
//
// Pattern-Oriented-Split Tree (POS-Tree), the Forkbase index of §3.4.3: a
// probabilistically balanced search tree whose node boundaries come from
// content-defined chunking. The data layer is the sorted record sequence,
// partitioned wherever a rolling hash over the serialized bytes matches a
// bit pattern; each internal layer holds (split key, child digest) pairs
// and is partitioned by testing the child digests against the pattern
// directly. Because every boundary is a pure function of the data below
// it, the tree is Structurally Invariant: the same record set produces the
// same tree regardless of update order, so any two versions share every
// page outside the δ region — the property the deduplication analysis of
// §4.2.2 quantifies.
//
// Updates are incremental: only the chunks containing edits are re-chunked,
// and re-chunking stops as soon as the new boundaries re-synchronize with
// the old ones (typically within one or two chunks), giving the
// O(m log_m N) update bound of §4.1.2.

#ifndef SIRI_INDEX_POS_POS_TREE_H_
#define SIRI_INDEX_POS_POS_TREE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "index/index.h"
#include "index/ordered/tree_cursor.h"
#include "index/pos/chunker.h"

namespace siri {

/// \brief Tuning knobs for POS-Tree; defaults target ~1 KB nodes as in §5.
struct PosTreeOptions {
  /// Rolling-hash window width for the data layer (bytes).
  size_t window_size = 48;
  /// Data-layer boundary pattern width: expected leaf ≈ 2^leaf_pattern_bits
  /// bytes.
  int leaf_pattern_bits = 10;
  /// Internal-layer pattern width: expected fanout ≈ 2^internal_pattern_bits
  /// children.
  int internal_pattern_bits = 5;
  /// Hard cap on leaf size in bytes (0 = unlimited, the paper's default).
  size_t max_chunk_bytes = 0;

  /// Prolly-tree mode (Noms, §5.6.2): internal layers are chunked by
  /// sliding a rolling hash over the serialized (key, digest) entries
  /// instead of testing the digests directly — the extra hash computations
  /// are the write-path overhead the paper measures.
  bool prolly_internal = false;

  /// §5.5.1 ablation: chunk the data layer at a fixed size instead of by
  /// pattern, so the structure depends on update order (not SI).
  bool disable_structurally_invariant = false;

  /// §5.5.2 ablation: stamp every version's nodes with a unique salt so no
  /// page is ever shared between versions (not RI).
  bool disable_recursively_identical = false;

  static PosTreeOptions Default() { return {}; }

  /// Noms default setup used by Figure 22: 4 KB nodes, 67-byte window.
  static PosTreeOptions Prolly() {
    PosTreeOptions o;
    o.prolly_internal = true;
    o.window_size = 67;
    o.leaf_pattern_bits = 12;
    o.internal_pattern_bits = 12;  // CDC over entry bytes, ~4 KB nodes
    return o;
  }

  static PosTreeOptions NonStructurallyInvariant() {
    PosTreeOptions o;
    o.disable_structurally_invariant = true;
    return o;
  }

  static PosTreeOptions NonRecursivelyIdentical() {
    PosTreeOptions o;
    o.disable_recursively_identical = true;
    return o;
  }
};

/// \brief POS-Tree index (SIRI instance).
class PosTree : public ImmutableIndex {
 public:
  explicit PosTree(NodeStorePtr store, PosTreeOptions options = {});

  std::string name() const override {
    return options_.prolly_internal ? "prolly" : "pos";
  }

  Result<Hash> PutBatch(const Hash& root, std::vector<KV> kvs) override;
  Result<Hash> DeleteBatch(const Hash& root,
                           std::vector<std::string> keys) override;
  Result<std::optional<std::string>> Get(const Hash& root, Slice key,
                                         LookupStats* stats) const override;
  Result<Proof> GetProof(const Hash& root, Slice key) const override;
  Status CollectPages(const Hash& root, PageSet* pages) const override;
  Status Scan(const Hash& root,
              const std::function<void(Slice, Slice)>& fn) const override;
  Status RangeScan(const Hash& root, Slice lo, Slice hi,
                   const std::function<void(Slice, Slice)>& fn) const override;
  Result<DiffResult> Diff(const Hash& a, const Hash& b) const override;
  std::unique_ptr<ImmutableIndex> WithStore(NodeStorePtr store) const override;

  /// Bottom-up batched build from records sorted by key — the paper's
  /// batching technique that makes block loading (Figure 7b) fast: every
  /// node is created and hashed exactly once.
  Result<Hash> BuildFromSorted(const std::vector<KV>& entries);

  const PosTreeOptions& options() const { return options_; }

 private:
  /// One record edit: value set = upsert, unset = delete.
  struct Edit {
    std::string key;
    std::optional<std::string> value;
  };

  std::unique_ptr<Chunker> MakeLeafChunker() const;
  std::unique_ptr<Chunker> MakeInternalChunker() const;
  uint64_t NodeSalt() const;

  Result<Hash> ApplyEdits(const Hash& root, std::vector<Edit> edits);
  Result<Hash> FullRebuild(const Hash& root, const std::vector<Edit>& edits);
  /// Writes the emitted nodes through \p store — the enclosing mutation's
  /// staging batch, so a commit's nodes are flushed together via PutMany.
  Result<Hash> BuildFromItems(NodeStore* store, std::vector<LevelItem> items,
                              bool leaf_items);

  PosTreeOptions options_;
  uint64_t version_counter_ = 0;  // salt source for the non-RI ablation
};

}  // namespace siri

#endif  // SIRI_INDEX_POS_POS_TREE_H_
