// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/pos/chunker.h"

#include "common/status.h"

namespace siri {

namespace {
uint64_t MaskForBits(int bits) {
  SIRI_CHECK(bits > 0 && bits < 64);
  return (uint64_t{1} << bits) - 1;
}
}  // namespace

// ---------------------------------------------------------------------------
// ContentDefinedChunker

ContentDefinedChunker::ContentDefinedChunker(size_t window_size,
                                             int pattern_bits,
                                             size_t max_chunk_bytes,
                                             size_t min_items)
    : window_size_(window_size),
      pattern_bits_(pattern_bits),
      max_chunk_bytes_(max_chunk_bytes),
      min_items_(min_items),
      mask_(MaskForBits(pattern_bits)),
      rolling_(window_size) {}

void ContentDefinedChunker::Reset() {
  rolling_.Reset();
  chunk_bytes_ = 0;
  chunk_items_ = 0;
}

bool ContentDefinedChunker::Feed(Slice item_bytes, const Hash*) {
  ++chunk_items_;
  chunk_bytes_ += item_bytes.size();

  bool hit = false;
  for (size_t i = 0; i < item_bytes.size(); ++i) {
    const uint64_t fp = rolling_.Roll(static_cast<uint8_t>(item_bytes[i]));
    if (rolling_.Primed() && (fp & mask_) == mask_) {
      hit = true;
      break;  // state becomes irrelevant: the caller resets at the boundary
    }
  }
  if (chunk_items_ < min_items_) return false;
  if (hit) return true;
  return max_chunk_bytes_ != 0 && chunk_bytes_ >= max_chunk_bytes_;
}

std::unique_ptr<Chunker> ContentDefinedChunker::Clone() const {
  return std::make_unique<ContentDefinedChunker>(window_size_, pattern_bits_,
                                                 max_chunk_bytes_, min_items_);
}

// ---------------------------------------------------------------------------
// HashPatternChunker

HashPatternChunker::HashPatternChunker(int pattern_bits, size_t min_items)
    : pattern_bits_(pattern_bits),
      min_items_(min_items),
      mask_(MaskForBits(pattern_bits)) {}

void HashPatternChunker::Reset() { chunk_items_ = 0; }

bool HashPatternChunker::Feed(Slice, const Hash* child_hash) {
  SIRI_CHECK(child_hash != nullptr);
  ++chunk_items_;
  if (chunk_items_ < min_items_) return false;
  return (child_hash->Prefix64() & mask_) == mask_;
}

std::unique_ptr<Chunker> HashPatternChunker::Clone() const {
  return std::make_unique<HashPatternChunker>(pattern_bits_, min_items_);
}

// ---------------------------------------------------------------------------
// FixedFanoutChunker

FixedFanoutChunker::FixedFanoutChunker(size_t fanout) : fanout_(fanout) {
  SIRI_CHECK(fanout_ >= 2);
}

void FixedFanoutChunker::Reset() { chunk_items_ = 0; }

bool FixedFanoutChunker::Feed(Slice, const Hash*) {
  ++chunk_items_;
  return chunk_items_ >= fanout_;
}

std::unique_ptr<Chunker> FixedFanoutChunker::Clone() const {
  return std::make_unique<FixedFanoutChunker>(fanout_);
}

}  // namespace siri
