// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/pos/pos_tree.h"

#include <algorithm>

#include "index/ordered/tree_ops.h"
#include "store/staging_store.h"

namespace siri {

namespace {

/// A contiguous range replacement in the item sequence of one tree level:
/// old items with lo <= key < hi are dropped and `items` take their place.
/// Record upserts/deletes are splices over [key, key+'\0'); the chunks
/// emitted while rebuilding level L become one splice over level L+1's
/// item sequence.
struct Splice {
  std::string lo;
  std::optional<std::string> hi;  // exclusive; nullopt = to end of level
  std::vector<LevelItem> items;
};

/// Lexicographic successor used to make a single-key splice.
std::string KeySuccessor(const std::string& key) {
  std::string s = key;
  s.push_back('\0');
  return s;
}

/// \brief Per-update read memoizer. One batch's splice runs repeatedly
/// descend from the root, re-reading the same upper-level nodes; memoizing
/// them for the duration of one PutBatch turns O(runs · height) store
/// fetches into O(touched nodes) — this is what makes batched POS-Tree
/// writes competitive (§5.2's "batching techniques").
class MemoizingStore : public NodeStore {
 public:
  explicit MemoizingStore(NodeStore* base) : base_(base) {}

  [[nodiscard]] Hash Put(Slice bytes) override {
    const Hash h = base_->Put(bytes);
    // Freshly written nodes are often re-read by the next level's rebuild.
    auto it = memo_.find(h);
    if (it == memo_.end()) {
      memo_.emplace(h, std::make_shared<const std::string>(bytes.ToString()));
    }
    return h;
  }

  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override {
    auto it = memo_.find(h);
    if (it != memo_.end()) return it->second;
    auto bytes = base_->Get(h);
    if (!bytes.ok()) return bytes;
    memo_.emplace(h, *bytes);
    return bytes;
  }

  bool Contains(const Hash& h) const override {
    return memo_.count(h) > 0 || base_->Contains(h);
  }
  Result<uint64_t> SizeOf(const Hash& h) const override {
    return base_->SizeOf(h);
  }
  Stats stats() const override { return base_->stats(); }
  void ResetOpCounters() override { base_->ResetOpCounters(); }

 private:
  NodeStore* base_;
  std::unordered_map<Hash, std::shared_ptr<const std::string>, HashHasher>
      memo_;
};

/// \brief Accumulates level items, cutting nodes where the chunker fires.
class ChunkBuilder {
 public:
  ChunkBuilder(NodeStore* store, Chunker* chunker, bool leaf_level,
               uint64_t salt)
      : store_(store), chunker_(chunker), leaf_(leaf_level), salt_(salt) {}

  void Add(const LevelItem& item) {
    if (pending_ == 0) first_key_ = item.key;
    std::string item_bytes;
    const Hash* hash_ptr = nullptr;
    Hash child_hash;
    if (leaf_) {
      AppendLeafEntryBytes(&item_bytes, item.key, item.payload);
    } else {
      child_hash = item.PayloadHash();
      AppendChildEntryBytes(&item_bytes, item.key, child_hash);
      hash_ptr = &child_hash;
    }
    payload_.append(item_bytes);
    ++pending_;
    if (chunker_->Feed(item_bytes, hash_ptr)) Cut();
  }

  /// Forces a final boundary for a trailing partial chunk.
  void Flush() {
    if (pending_ > 0) Cut();
  }

  /// True when the last item added completed a chunk.
  bool AtBoundary() const { return pending_ == 0; }

  std::vector<LevelItem>& emitted() { return emitted_; }

 private:
  void Cut() {
    const std::string node =
        leaf_ ? EncodeLeafFromPayload(pending_, payload_, salt_)
              : EncodeInternalFromPayload(pending_, payload_, salt_);
    const Hash h = store_->Put(node);
    LevelItem out;
    out.key = std::move(first_key_);
    out.payload.assign(reinterpret_cast<const char*>(h.data()), Hash::kSize);
    emitted_.push_back(std::move(out));
    payload_.clear();
    pending_ = 0;
    first_key_.clear();
    chunker_->Reset();
  }

  NodeStore* store_;
  Chunker* chunker_;
  const bool leaf_;
  const uint64_t salt_;
  std::string payload_;
  std::string first_key_;
  size_t pending_ = 0;
  std::vector<LevelItem> emitted_;
};

/// Rebuilds the nodes of one level under a set of sorted, disjoint splices.
/// Only the chunks from the first edited chunk of each cluster to the point
/// where new boundaries re-synchronize with old ones are re-chunked; the
/// rest of the level is reused verbatim. Returns the splices describing the
/// resulting change to the parent level's item sequence.
/// \param force_local_boundaries non-SI ablation (§5.5.1): instead of
///        re-chunking until the new boundaries re-synchronize with the old
///        ones, force a cut at the first old chunk boundary past the edits.
///        Chunk boundaries are then inherited from history, which is what
///        makes the resulting structure insertion-order dependent.
Result<std::vector<Splice>> RebuildLevel(NodeStore* store, const Hash& root,
                                         int level, int height,
                                         bool leaf_level,
                                         const std::vector<Splice>& splices,
                                         Chunker* chunker, uint64_t salt,
                                         bool force_local_boundaries) {
  std::vector<Splice> out;
  LevelCursor cursor(store, root, level, height);

  // First key of the chunk a lookup for `key` reaches at this level.
  // Cached per splice: the sync check re-asks at every boundary until the
  // run closes.
  size_t probe_si = static_cast<size_t>(-1);
  std::string probe_key;
  auto chunk_key_containing = [&](size_t si,
                                  Slice key) -> Result<std::string> {
    if (probe_si == si) return probe_key;
    LevelCursor probe(store, root, level, height);
    Status s = probe.SeekToChunkStart(key);
    if (!s.ok()) return s;
    SIRI_CHECK(probe.Valid());
    probe_si = si;
    probe_key = probe.CurrentChunkFirstKey();
    return probe_key;
  };

  size_t si = 0;
  while (si < splices.size()) {
    Status s = cursor.SeekToChunkStart(splices[si].lo);
    if (!s.ok()) return s;
    SIRI_CHECK(cursor.Valid());

    Splice run;
    run.lo = cursor.CurrentChunkFirstKey();
    chunker->Reset();
    ChunkBuilder builder(store, chunker, leaf_level, salt);

    bool run_done = false;
    while (!run_done) {
      const bool have_old = cursor.Valid();

      // Enter the next splice once the cursor reaches (or passes) its lo.
      if (si < splices.size() &&
          (!have_old ||
           Slice(splices[si].lo).compare(cursor.item().key) <= 0)) {
        for (const LevelItem& item : splices[si].items) builder.Add(item);
        const auto& hi = splices[si].hi;
        while (cursor.Valid() &&
               (!hi || Slice(cursor.item().key).compare(*hi) < 0)) {
          s = cursor.Next();  // old item replaced by the splice
          if (!s.ok()) return s;
        }
        ++si;
        continue;
      }

      if (!have_old) {
        builder.Flush();
        run.hi = std::nullopt;  // reached the end of the level
        run_done = true;
        break;
      }

      builder.Add(cursor.item());
      s = cursor.Next();
      if (!s.ok()) return s;

      // Boundary re-synchronization: we just cut a chunk exactly where an
      // old chunk begins, and no pending splice touches the region before
      // the next edit — everything beyond is bitwise identical, reuse it.
      if (cursor.Valid() && cursor.AtChunkStart()) {
        bool want_close = false;
        if (si >= splices.size()) {
          want_close = true;
        } else if (Slice(splices[si].lo).compare(cursor.item().key) <= 0) {
          // The next splice is due at this exact position (its lo sits in
          // the gap before the cursor's item); the next iteration consumes
          // it, so the run must stay open.
        } else {
          auto probe = chunk_key_containing(si, splices[si].lo);
          if (!probe.ok()) return probe.status();
          // Close unless the next splice lives in the chunk we just
          // entered; then it is cheaper to keep the run open.
          want_close = *probe != cursor.CurrentChunkFirstKey();
        }
        if (want_close) {
          if (!builder.AtBoundary() && force_local_boundaries) {
            builder.Flush();  // forced split at the inherited boundary
          }
          if (builder.AtBoundary()) {
            run.hi = cursor.CurrentChunkFirstKey();
            run_done = true;
          }
        }
      }
    }
    run.items = std::move(builder.emitted());
    out.push_back(std::move(run));
  }
  return out;
}

/// Applies sorted, disjoint splices to a fully materialized item list (used
/// for the top level, whose items all live in the root node).
std::vector<LevelItem> ApplySplices(std::vector<LevelItem> items,
                                    const std::vector<Splice>& splices) {
  std::vector<LevelItem> out;
  out.reserve(items.size());
  size_t i = 0;
  for (const Splice& sp : splices) {
    while (i < items.size() && Slice(items[i].key).compare(sp.lo) < 0) {
      out.push_back(std::move(items[i++]));
    }
    for (const LevelItem& item : sp.items) out.push_back(item);
    while (i < items.size() &&
           (!sp.hi || Slice(items[i].key).compare(*sp.hi) < 0)) {
      ++i;  // dropped
    }
  }
  while (i < items.size()) out.push_back(std::move(items[i++]));
  return out;
}

}  // namespace

PosTree::PosTree(NodeStorePtr store, PosTreeOptions options)
    : ImmutableIndex(std::move(store)), options_(options) {}

std::unique_ptr<Chunker> PosTree::MakeLeafChunker() const {
  if (options_.disable_structurally_invariant) {
    // Effectively unmatchable pattern + hard size cap = fixed-size chunking,
    // which reintroduces the boundary-shifting problem (§5.5.1).
    return std::make_unique<ContentDefinedChunker>(options_.window_size, 48,
                                                   1024, 1);
  }
  return std::make_unique<ContentDefinedChunker>(
      options_.window_size, options_.leaf_pattern_bits,
      options_.max_chunk_bytes, 1);
}

std::unique_ptr<Chunker> PosTree::MakeInternalChunker() const {
  if (options_.prolly_internal) {
    // Prolly tree (Noms): internal layers re-hash the serialized entries
    // through the sliding window instead of reusing the child digests.
    return std::make_unique<ContentDefinedChunker>(
        options_.window_size, options_.internal_pattern_bits, 0, 2);
  }
  return std::make_unique<HashPatternChunker>(options_.internal_pattern_bits,
                                              2);
}

uint64_t PosTree::NodeSalt() const {
  return options_.disable_recursively_identical ? version_counter_ : 0;
}

Result<Hash> PosTree::BuildFromItems(NodeStore* store,
                                     std::vector<LevelItem> items,
                                     bool leaf_items) {
  if (items.empty()) return Hash::Zero();
  if (!leaf_items && items.size() == 1) {
    return items[0].PayloadHash();  // collapse: canonical root is the child
  }
  const uint64_t salt = NodeSalt();
  bool leaf = leaf_items;
  std::vector<LevelItem> current = std::move(items);
  while (true) {
    auto chunker = leaf ? MakeLeafChunker() : MakeInternalChunker();
    chunker->Reset();
    ChunkBuilder builder(store, chunker.get(), leaf, salt);
    for (const LevelItem& item : current) builder.Add(item);
    builder.Flush();
    std::vector<LevelItem>& chunks = builder.emitted();
    SIRI_CHECK(!chunks.empty());
    if (chunks.size() == 1) return chunks[0].PayloadHash();
    current = std::move(chunks);
    leaf = false;
  }
}

Result<Hash> PosTree::BuildFromSorted(const std::vector<KV>& entries) {
  std::vector<LevelItem> items;
  items.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0 && !(Slice(entries[i - 1].key) < Slice(entries[i].key))) {
      return Status::InvalidArgument("entries not sorted/unique");
    }
    items.push_back(LevelItem{entries[i].key, entries[i].value});
  }
  if (options_.disable_recursively_identical) ++version_counter_;
  StagingNodeStore staging(store_.get());
  auto built = BuildFromItems(&staging, std::move(items), /*leaf_items=*/true);
  if (built.ok()) staging.FlushBatch();
  return built;
}

Result<Hash> PosTree::FullRebuild(const Hash& root,
                                  const std::vector<Edit>& edits) {
  std::vector<KV> entries;
  Status s = Scan(root, [&entries](Slice k, Slice v) {
    entries.push_back(KV{k.ToString(), v.ToString()});
  });
  if (!s.ok()) return s;

  std::vector<LevelItem> items;
  items.reserve(entries.size() + edits.size());
  size_t i = 0;
  for (const Edit& e : edits) {
    while (i < entries.size() && Slice(entries[i].key).compare(e.key) < 0) {
      items.push_back(LevelItem{std::move(entries[i].key),
                                std::move(entries[i].value)});
      ++i;
    }
    if (i < entries.size() && entries[i].key == e.key) ++i;  // replaced
    if (e.value) items.push_back(LevelItem{e.key, *e.value});
  }
  for (; i < entries.size(); ++i) {
    items.push_back(
        LevelItem{std::move(entries[i].key), std::move(entries[i].value)});
  }
  StagingNodeStore staging(store_.get());
  auto built = BuildFromItems(&staging, std::move(items), /*leaf_items=*/true);
  if (built.ok()) staging.FlushBatch();
  return built;
}

Result<Hash> PosTree::ApplyEdits(const Hash& root, std::vector<Edit> edits) {
  if (edits.empty()) return root;

  // Sort and deduplicate, keeping the last write per key.
  std::stable_sort(edits.begin(), edits.end(),
                   [](const Edit& a, const Edit& b) { return a.key < b.key; });
  std::vector<Edit> unique;
  unique.reserve(edits.size());
  for (Edit& e : edits) {
    if (!unique.empty() && unique.back().key == e.key) {
      unique.back() = std::move(e);
    } else {
      unique.push_back(std::move(e));
    }
  }

  if (options_.disable_recursively_identical) {
    ++version_counter_;
    return FullRebuild(root, unique);
  }

  // Every node this mutation produces is staged locally and flushed with
  // one PutMany once the new root is known (see staging_store.h).
  StagingNodeStore staging(store_.get());

  if (root.IsZero()) {
    std::vector<LevelItem> items;
    for (Edit& e : unique) {
      if (e.value) items.push_back(LevelItem{std::move(e.key), std::move(*e.value)});
    }
    auto built = BuildFromItems(&staging, std::move(items), /*leaf_items=*/true);
    if (built.ok()) staging.FlushBatch();
    return built;
  }

  auto height = LevelCursor::TreeHeight(store_.get(), root);
  if (!height.ok()) return height.status();
  const int h = *height;
  SIRI_CHECK(h >= 1);

  std::vector<Splice> splices;
  splices.reserve(unique.size());
  for (Edit& e : unique) {
    Splice sp;
    sp.lo = e.key;
    sp.hi = KeySuccessor(e.key);
    if (e.value) sp.items.push_back(LevelItem{std::move(e.key), std::move(*e.value)});
    splices.push_back(std::move(sp));
  }

  auto leaf_chunker = MakeLeafChunker();
  auto internal_chunker = MakeInternalChunker();
  const uint64_t salt = NodeSalt();

  MemoizingStore memo(&staging);
  for (int level = 0; level <= h - 2; ++level) {
    Chunker* ck = level == 0 ? leaf_chunker.get() : internal_chunker.get();
    const bool force_local =
        level == 0 && options_.disable_structurally_invariant;
    auto next = RebuildLevel(&memo, root, level, h, level == 0, splices, ck,
                             salt, force_local);
    if (!next.ok()) return next.status();
    splices = std::move(*next);
  }

  // Top level: the root node's own items, fully materialized.
  auto bytes = memo.Get(root);
  if (!bytes.ok()) return bytes.status();
  const bool top_is_leaf = IsLeafNode(**bytes);
  SIRI_CHECK(top_is_leaf == (h == 1));
  std::vector<LevelItem> items;
  if (top_is_leaf) {
    std::vector<KV> entries;
    Status s = DecodeLeaf(**bytes, &entries);
    if (!s.ok()) return s;
    for (KV& e : entries) {
      items.push_back(LevelItem{std::move(e.key), std::move(e.value)});
    }
  } else {
    std::vector<ChildEntry> children;
    Status s = DecodeInternal(**bytes, &children);
    if (!s.ok()) return s;
    for (ChildEntry& c : children) {
      LevelItem item;
      item.key = std::move(c.key);
      item.payload.assign(reinterpret_cast<const char*>(c.hash.data()),
                          Hash::kSize);
      items.push_back(std::move(item));
    }
  }
  items = ApplySplices(std::move(items), splices);
  auto built = BuildFromItems(&memo, std::move(items), top_is_leaf);
  if (built.ok()) staging.FlushBatch();
  return built;
}

Result<Hash> PosTree::PutBatch(const Hash& root, std::vector<KV> kvs) {
  std::vector<Edit> edits;
  edits.reserve(kvs.size());
  for (KV& kv : kvs) {
    edits.push_back(Edit{std::move(kv.key), std::move(kv.value)});
  }
  return ApplyEdits(root, std::move(edits));
}

Result<Hash> PosTree::DeleteBatch(const Hash& root,
                                  std::vector<std::string> keys) {
  std::vector<Edit> edits;
  edits.reserve(keys.size());
  for (std::string& k : keys) {
    edits.push_back(Edit{std::move(k), std::nullopt});
  }
  return ApplyEdits(root, std::move(edits));
}

Result<std::optional<std::string>> PosTree::Get(const Hash& root, Slice key,
                                                LookupStats* stats) const {
  return OrderedTreeGet(store_.get(), root, key, stats);
}

Result<Proof> PosTree::GetProof(const Hash& root, Slice key) const {
  return OrderedTreeGetProof(store_.get(), root, key);
}

Status PosTree::CollectPages(const Hash& root, PageSet* pages) const {
  return OrderedTreeCollectPages(store_.get(), root, pages);
}

Status PosTree::Scan(const Hash& root,
                     const std::function<void(Slice, Slice)>& fn) const {
  return OrderedTreeScan(store_.get(), root, fn);
}

Status PosTree::RangeScan(const Hash& root, Slice lo, Slice hi,
                          const std::function<void(Slice, Slice)>& fn) const {
  return OrderedTreeRangeScan(store_.get(), root, lo, hi, fn);
}

Result<DiffResult> PosTree::Diff(const Hash& a, const Hash& b) const {
  return OrderedTreeDiff(store_.get(), a, b);
}

std::unique_ptr<ImmutableIndex> PosTree::WithStore(NodeStorePtr store) const {
  return std::make_unique<PosTree>(std::move(store), options_);
}

}  // namespace siri
