// Copyright (c) 2026 The siri Authors. MIT license.
//
// Chunkers decide where POS-Tree places node boundaries (§3.4.3). A chunker
// consumes the items of one tree level in order and answers, after each
// item, whether a node boundary should be placed. Crucially, a chunker's
// verdict depends only on the items since the previous boundary — never on
// node identities of the previous tree version — which is exactly what
// makes the resulting structure *Structurally Invariant*: the same data
// always yields the same tree, no matter the order of the updates that
// produced it.
//
// Three families:
//  * ContentDefinedChunker — slides a Rabin-style rolling hash over the
//    serialized item bytes; a boundary is declared where the fingerprint's
//    low `pattern_bits` bits are all ones. Used for the data (leaf) layer,
//    and for *all* layers in Prolly-tree mode (the Noms design compared in
//    §5.6.2).
//  * HashPatternChunker — tests the low bits of each child's cryptographic
//    digest directly. Used for POS-Tree internal layers: "we directly use
//    the hashes to match the boundary pattern instead of repeatedly
//    computing the hashes within a sliding window".
//  * FixedFanoutChunker — boundary every N items; only used by tests as a
//    degenerate reference.
//
// A max_chunk_bytes cap turns the leaf chunker into (almost) fixed-size
// chunking when combined with an unmatchable pattern — that is how the
// §5.5.1 ablation disables the Structurally Invariant property.

#ifndef SIRI_INDEX_POS_CHUNKER_H_
#define SIRI_INDEX_POS_CHUNKER_H_

#include <cstdint>
#include <memory>

#include "common/slice.h"
#include "crypto/hash.h"
#include "crypto/rolling_hash.h"

namespace siri {

/// \brief Boundary decision function over a stream of level items.
class Chunker {
 public:
  virtual ~Chunker() = default;

  /// Forgets all state; the next item starts a fresh chunk.
  virtual void Reset() = 0;

  /// Ingests one item. \p item_bytes is the item's canonical serialization;
  /// \p child_hash is non-null for internal-level items. Returns true if a
  /// chunk boundary belongs right after this item.
  virtual bool Feed(Slice item_bytes, const Hash* child_hash) = 0;

  /// Deep copy (each level of a rebuild owns an independent chunker).
  virtual std::unique_ptr<Chunker> Clone() const = 0;
};

/// \brief Rolling-hash chunker for content-defined boundaries.
class ContentDefinedChunker : public Chunker {
 public:
  /// \param window_size sliding-window width in bytes.
  /// \param pattern_bits boundary when the low pattern_bits bits of the
  ///        fingerprint are all ones; expected chunk size ~2^pattern_bits
  ///        bytes past the window.
  /// \param max_chunk_bytes force a boundary once the chunk reaches this
  ///        many bytes (0 = unlimited).
  /// \param min_items suppress boundaries until the chunk holds at least
  ///        this many items (used to guarantee fanout >= 2 on internal
  ///        levels so tree construction terminates).
  ContentDefinedChunker(size_t window_size, int pattern_bits,
                        size_t max_chunk_bytes = 0, size_t min_items = 1);

  void Reset() override;
  bool Feed(Slice item_bytes, const Hash* child_hash) override;
  std::unique_ptr<Chunker> Clone() const override;

  uint64_t mask() const { return mask_; }

 private:
  const size_t window_size_;
  const int pattern_bits_;
  const size_t max_chunk_bytes_;
  const size_t min_items_;
  const uint64_t mask_;
  RollingHash rolling_;
  size_t chunk_bytes_ = 0;
  size_t chunk_items_ = 0;
};

/// \brief Child-digest pattern chunker for POS-Tree internal layers.
class HashPatternChunker : public Chunker {
 public:
  /// \param pattern_bits boundary when the low bits of the child digest are
  ///        all ones; expected fanout ~2^pattern_bits.
  /// \param min_items minimum children per node (>= 2 guarantees that every
  ///        level strictly shrinks, so the build terminates canonically).
  explicit HashPatternChunker(int pattern_bits, size_t min_items = 2);

  void Reset() override;
  bool Feed(Slice item_bytes, const Hash* child_hash) override;
  std::unique_ptr<Chunker> Clone() const override;

 private:
  const int pattern_bits_;
  const size_t min_items_;
  const uint64_t mask_;
  size_t chunk_items_ = 0;
};

/// \brief Boundary every fixed number of items (test reference only).
class FixedFanoutChunker : public Chunker {
 public:
  explicit FixedFanoutChunker(size_t fanout);

  void Reset() override;
  bool Feed(Slice item_bytes, const Hash* child_hash) override;
  std::unique_ptr<Chunker> Clone() const override;

 private:
  const size_t fanout_;
  size_t chunk_items_ = 0;
};

}  // namespace siri

#endif  // SIRI_INDEX_POS_CHUNKER_H_
