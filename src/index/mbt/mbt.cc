// Copyright (c) 2026 The siri Authors. MIT license.

#include "index/mbt/mbt.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/timer.h"
#include "common/varint.h"
#include "crypto/sha256.h"
#include "index/diff.h"
#include "index/ordered/node_codec.h"
#include "store/staging_store.h"

namespace siri {

namespace {

constexpr char kMbtInternalTag = 'B';

// Internal node: 'B' | varint n | n * 32-byte child digest. Children are
// positional — MBT needs no split keys because the bucket index fully
// determines the path.
std::string EncodeMbtInternal(const std::vector<Hash>& children) {
  std::string out;
  out.reserve(2 + children.size() * Hash::kSize);
  out.push_back(kMbtInternalTag);
  PutVarint64(&out, children.size());
  for (const Hash& h : children) {
    out.append(reinterpret_cast<const char*>(h.data()), Hash::kSize);
  }
  return out;
}

Status DecodeMbtInternal(Slice node, std::vector<Hash>* children) {
  if (node.empty() || node[0] != kMbtInternalTag) {
    return Status::Corruption("not an MBT internal node");
  }
  node.remove_prefix(1);
  uint64_t n = 0;
  if (!GetVarint64(&node, &n)) return Status::Corruption("bad MBT count");
  if (node.size() != n * Hash::kSize) {
    return Status::Corruption("bad MBT internal size");
  }
  children->clear();
  children->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    children->push_back(Hash::FromBytes(node.data() + i * Hash::kSize));
  }
  return Status::OK();
}

}  // namespace

Mbt::Mbt(NodeStorePtr store, MbtOptions options)
    : ImmutableIndex(std::move(store)), options_(options) {
  SIRI_CHECK(options_.num_buckets >= 1);
  SIRI_CHECK(options_.fanout >= 2);
  ComputeShape();
  empty_root_ = BuildEmptyTree();
}

void Mbt::ComputeShape() {
  level_size_.clear();
  level_size_.push_back(options_.num_buckets);
  while (level_size_.back() > 1) {
    level_size_.push_back(
        (level_size_.back() + options_.fanout - 1) / options_.fanout);
  }
  // A single bucket still gets one internal root above it so that the root
  // is always an internal node.
  if (level_size_.size() == 1) level_size_.push_back(1);
  num_levels_ = static_cast<int>(level_size_.size()) - 1;
}

Hash Mbt::BuildEmptyTree() {
  // The empty skeleton is O(num_buckets / fanout) internal nodes; stage
  // them and flush once so constructing an Mbt costs one store batch.
  StagingNodeStore staging(store_.get());
  const Hash empty_bucket = staging.Put(EncodeLeaf({}));
  std::vector<Hash> prev(level_size_[0], empty_bucket);
  Hash root = empty_bucket;
  for (int level = 1; level <= num_levels_; ++level) {
    std::vector<Hash> cur;
    cur.reserve(level_size_[level]);
    for (uint64_t j = 0; j < level_size_[level]; ++j) {
      const uint64_t lo = j * options_.fanout;
      const uint64_t hi = std::min<uint64_t>(lo + options_.fanout, prev.size());
      std::vector<Hash> children(prev.begin() + lo, prev.begin() + hi);
      cur.push_back(staging.Put(EncodeMbtInternal(children)));
    }
    root = cur[0];
    prev = std::move(cur);
  }
  staging.FlushBatch();
  return root;
}

uint64_t Mbt::BucketIndexOf(Slice key) const {
  return Sha256::Digest(key).Prefix64() % options_.num_buckets;
}

Status Mbt::LoadPathTo(
    const Hash& root, uint64_t bucket,
    std::vector<std::pair<Hash, std::shared_ptr<const std::string>>>* path,
    LookupStats* stats) const {
  // The traversal path is a "trivial reverse simulation of the complete
  // multi-way search tree": node index at level i is bucket / fanout^i.
  Hash cur = root;
  for (int level = num_levels_; level >= 0; --level) {
    auto bytes = store_->Get(cur);
    if (!bytes.ok()) return bytes.status();
    if (stats) {
      ++stats->depth;
      ++stats->nodes_loaded;
      stats->bytes_loaded += (*bytes)->size();
    }
    path->emplace_back(cur, *bytes);
    if (level == 0) break;
    std::vector<Hash> children;
    Status s = DecodeMbtInternal(**bytes, &children);
    if (!s.ok()) return s;
    uint64_t div = 1;
    for (int i = 1; i < level; ++i) div *= options_.fanout;
    const uint64_t child_global = bucket / div;         // index at level-1
    const uint64_t node_global = child_global / options_.fanout;  // at level
    const uint64_t slot = child_global - node_global * options_.fanout;
    if (slot >= children.size()) {
      return Status::Corruption("MBT child slot out of range");
    }
    cur = children[slot];
  }
  return Status::OK();
}

Result<std::optional<std::string>> Mbt::Get(const Hash& root, Slice key,
                                            LookupStats* stats) const {
  const Hash r = root.IsZero() ? empty_root_ : root;
  const uint64_t bucket = BucketIndexOf(key);
  std::vector<std::pair<Hash, std::shared_ptr<const std::string>>> path;
  Status s = LoadPathTo(r, bucket, &path, stats);
  if (!s.ok()) return s;
  std::vector<KV> entries;
  s = DecodeLeaf(*path.back().second, &entries);
  if (!s.ok()) return s;
  bool found = false;
  const size_t idx = LeafLowerBound(entries, key, &found);
  if (stats && !entries.empty()) {
    stats->entries_scanned += static_cast<uint64_t>(
        std::max<size_t>(1, static_cast<size_t>(std::log2(entries.size() + 1))));
  }
  if (!found) return std::optional<std::string>{};
  return std::optional<std::string>{entries[idx].value};
}

Result<std::optional<std::string>> Mbt::GetBreakdown(const Hash& root,
                                                     Slice key,
                                                     uint64_t* load_nanos,
                                                     uint64_t* scan_nanos) const {
  const Hash r = root.IsZero() ? empty_root_ : root;
  // "Load" is the tree traversal and node fetches; "scan" is everything
  // proportional to the bucket contents (materializing entries + binary
  // search) — the term that grows as N/B (§4.1.1, Figure 13).
  Timer load_timer;
  const uint64_t bucket = BucketIndexOf(key);
  std::vector<std::pair<Hash, std::shared_ptr<const std::string>>> path;
  Status s = LoadPathTo(r, bucket, &path, nullptr);
  if (!s.ok()) return s;
  *load_nanos = load_timer.ElapsedNanos();

  Timer scan_timer;
  std::vector<KV> entries;
  s = DecodeLeaf(*path.back().second, &entries);
  if (!s.ok()) return s;
  bool found = false;
  const size_t idx = LeafLowerBound(entries, key, &found);
  *scan_nanos = scan_timer.ElapsedNanos();
  if (!found) return std::optional<std::string>{};
  return std::optional<std::string>{entries[idx].value};
}

Result<Hash> Mbt::PutBatch(const Hash& root, std::vector<KV> kvs) {
  const Hash r = root.IsZero() ? empty_root_ : root;
  if (kvs.empty()) return r;

  // All new buckets and internal nodes of this batch are staged and
  // flushed in one PutMany after the new root is computed. Reads during
  // the rebuild (LoadPathTo) only touch nodes of the old version, which
  // are already resident in the backing store.
  StagingNodeStore staging(store_.get());

  // Group edits (upserts) by bucket.
  std::map<uint64_t, std::vector<KV>> by_bucket;
  for (KV& kv : kvs) {
    by_bucket[BucketIndexOf(kv.key)].push_back(std::move(kv));
  }

  std::map<uint64_t, Hash> changed;  // bucket index -> new digest
  for (auto& [bucket, edits] : by_bucket) {
    std::vector<std::pair<Hash, std::shared_ptr<const std::string>>> path;
    Status s = LoadPathTo(r, bucket, &path, nullptr);
    if (!s.ok()) return s;
    std::vector<KV> entries;
    s = DecodeLeaf(*path.back().second, &entries);
    if (!s.ok()) return s;

    // Later writes in the batch win; entries stay sorted.
    std::stable_sort(edits.begin(), edits.end(),
                     [](const KV& a, const KV& b) { return a.key < b.key; });
    std::vector<KV> merged;
    merged.reserve(entries.size() + edits.size());
    size_t i = 0;
    for (size_t j = 0; j < edits.size(); ++j) {
      if (j + 1 < edits.size() && edits[j + 1].key == edits[j].key) continue;
      while (i < entries.size() &&
             Slice(entries[i].key).compare(edits[j].key) < 0) {
        merged.push_back(std::move(entries[i++]));
      }
      if (i < entries.size() && entries[i].key == edits[j].key) ++i;
      merged.push_back(std::move(edits[j]));
    }
    while (i < entries.size()) merged.push_back(std::move(entries[i++]));

    const Hash new_bucket = staging.Put(EncodeLeaf(merged));
    if (new_bucket != path.back().first) changed[bucket] = new_bucket;
  }
  if (changed.empty()) {
    staging.FlushBatch();  // dup records only; keeps put accounting intact
    return r;
  }

  // Recompute the Merkle path bottom-up, level by level.
  std::map<uint64_t, Hash> level_changed = std::move(changed);
  Hash new_root = r;
  for (int level = 1; level <= num_levels_; ++level) {
    std::map<uint64_t, Hash> parent_changed;
    auto it = level_changed.begin();
    while (it != level_changed.end()) {
      const uint64_t parent = it->first / options_.fanout;
      // Fetch the old parent node by walking from the (old) root.
      uint64_t bucket_of_parent = parent;
      for (int i = 0; i < level; ++i) bucket_of_parent *= options_.fanout;
      bucket_of_parent = std::min<uint64_t>(bucket_of_parent,
                                            options_.num_buckets - 1);
      std::vector<std::pair<Hash, std::shared_ptr<const std::string>>> path;
      Status s = LoadPathTo(r, bucket_of_parent, &path, nullptr);
      if (!s.ok()) return s;
      // path[0]=root(level num_levels_) ... path[num_levels_-level] = parent.
      const auto& parent_node = path[num_levels_ - level];
      std::vector<Hash> children;
      s = DecodeMbtInternal(*parent_node.second, &children);
      if (!s.ok()) return s;
      // Apply every changed child that belongs to this parent.
      while (it != level_changed.end() &&
             it->first / options_.fanout == parent) {
        const uint64_t slot = it->first % options_.fanout;
        SIRI_CHECK(slot < children.size());
        children[slot] = it->second;
        ++it;
      }
      const Hash new_node = staging.Put(EncodeMbtInternal(children));
      if (new_node != parent_node.first) parent_changed[parent] = new_node;
      if (level == num_levels_) new_root = new_node;
    }
    level_changed = std::move(parent_changed);
    if (level_changed.empty()) {
      staging.FlushBatch();
      return r;  // everything collapsed to no-op
    }
  }
  staging.FlushBatch();
  return new_root;
}

Result<Hash> Mbt::DeleteBatch(const Hash& root, std::vector<std::string> keys) {
  const Hash r = root.IsZero() ? empty_root_ : root;
  if (keys.empty()) return r;

  StagingNodeStore staging(store_.get());

  std::map<uint64_t, std::vector<std::string>> by_bucket;
  for (std::string& k : keys) {
    by_bucket[BucketIndexOf(k)].push_back(std::move(k));
  }

  std::map<uint64_t, Hash> changed;
  for (auto& [bucket, dels] : by_bucket) {
    std::vector<std::pair<Hash, std::shared_ptr<const std::string>>> path;
    Status s = LoadPathTo(r, bucket, &path, nullptr);
    if (!s.ok()) return s;
    std::vector<KV> entries;
    s = DecodeLeaf(*path.back().second, &entries);
    if (!s.ok()) return s;
    std::sort(dels.begin(), dels.end());
    std::vector<KV> kept;
    kept.reserve(entries.size());
    for (KV& e : entries) {
      if (!std::binary_search(dels.begin(), dels.end(), e.key)) {
        kept.push_back(std::move(e));
      }
    }
    if (kept.size() == entries.size()) continue;  // nothing deleted
    changed[bucket] = staging.Put(EncodeLeaf(kept));
  }
  if (changed.empty()) return r;

  // Reuse the upward propagation from PutBatch by inlining the same logic.
  std::map<uint64_t, Hash> level_changed = std::move(changed);
  Hash new_root = r;
  for (int level = 1; level <= num_levels_; ++level) {
    std::map<uint64_t, Hash> parent_changed;
    auto it = level_changed.begin();
    while (it != level_changed.end()) {
      const uint64_t parent = it->first / options_.fanout;
      uint64_t bucket_of_parent = parent;
      for (int i = 0; i < level; ++i) bucket_of_parent *= options_.fanout;
      bucket_of_parent = std::min<uint64_t>(bucket_of_parent,
                                            options_.num_buckets - 1);
      std::vector<std::pair<Hash, std::shared_ptr<const std::string>>> path;
      Status s = LoadPathTo(r, bucket_of_parent, &path, nullptr);
      if (!s.ok()) return s;
      const auto& parent_node = path[num_levels_ - level];
      std::vector<Hash> children;
      s = DecodeMbtInternal(*parent_node.second, &children);
      if (!s.ok()) return s;
      while (it != level_changed.end() &&
             it->first / options_.fanout == parent) {
        const uint64_t slot = it->first % options_.fanout;
        SIRI_CHECK(slot < children.size());
        children[slot] = it->second;
        ++it;
      }
      const Hash new_node = staging.Put(EncodeMbtInternal(children));
      if (new_node != parent_node.first) parent_changed[parent] = new_node;
      if (level == num_levels_) new_root = new_node;
    }
    level_changed = std::move(parent_changed);
    if (level_changed.empty()) {
      staging.FlushBatch();
      return r;
    }
  }
  staging.FlushBatch();
  return new_root;
}

Result<Proof> Mbt::GetProof(const Hash& root, Slice key) const {
  const Hash r = root.IsZero() ? empty_root_ : root;
  Proof proof;
  proof.key = key.ToString();
  const uint64_t bucket = BucketIndexOf(key);
  std::vector<std::pair<Hash, std::shared_ptr<const std::string>>> path;
  Status s = LoadPathTo(r, bucket, &path, nullptr);
  if (!s.ok()) return s;
  for (const auto& [h, bytes] : path) proof.nodes.push_back(*bytes);
  std::vector<KV> entries;
  s = DecodeLeaf(*path.back().second, &entries);
  if (!s.ok()) return s;
  bool found = false;
  const size_t idx = LeafLowerBound(entries, key, &found);
  if (found) proof.value = entries[idx].value;
  return proof;
}

Status Mbt::CollectRec(const Hash& node, int level, PageSet* pages) const {
  if (!pages->insert(node).second) return Status::OK();
  if (level == 0) return Status::OK();
  auto bytes = store_->Get(node);
  if (!bytes.ok()) return bytes.status();
  std::vector<Hash> children;
  Status s = DecodeMbtInternal(**bytes, &children);
  if (!s.ok()) return s;
  for (const Hash& c : children) {
    s = CollectRec(c, level - 1, pages);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status Mbt::CollectPages(const Hash& root, PageSet* pages) const {
  const Hash r = root.IsZero() ? empty_root_ : root;
  return CollectRec(r, num_levels_, pages);
}

Status Mbt::ScanRec(const Hash& node, int level,
                    const std::function<void(Slice, Slice)>& fn) const {
  auto bytes = store_->Get(node);
  if (!bytes.ok()) return bytes.status();
  if (level == 0) {
    std::vector<KV> entries;
    Status s = DecodeLeaf(**bytes, &entries);
    if (!s.ok()) return s;
    for (const KV& e : entries) fn(e.key, e.value);
    return Status::OK();
  }
  std::vector<Hash> children;
  Status s = DecodeMbtInternal(**bytes, &children);
  if (!s.ok()) return s;
  for (const Hash& c : children) {
    s = ScanRec(c, level - 1, fn);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status Mbt::Scan(const Hash& root,
                 const std::function<void(Slice, Slice)>& fn) const {
  const Hash r = root.IsZero() ? empty_root_ : root;
  return ScanRec(r, num_levels_, fn);
}

Status Mbt::DiffRec(const Hash& a, const Hash& b, int level,
                    DiffResult* out) const {
  if (a == b) return Status::OK();  // shared subtree: skip without loading
  if (level == 0) {
    auto ba = store_->Get(a);
    if (!ba.ok()) return ba.status();
    auto bb = store_->Get(b);
    if (!bb.ok()) return bb.status();
    std::vector<KV> ea, eb;
    Status s = DecodeLeaf(**ba, &ea);
    if (!s.ok()) return s;
    s = DecodeLeaf(**bb, &eb);
    if (!s.ok()) return s;
    DiffSortedEntries(ea, eb, out);
    return Status::OK();
  }
  auto ba = store_->Get(a);
  if (!ba.ok()) return ba.status();
  auto bb = store_->Get(b);
  if (!bb.ok()) return bb.status();
  std::vector<Hash> ca, cb;
  Status s = DecodeMbtInternal(**ba, &ca);
  if (!s.ok()) return s;
  s = DecodeMbtInternal(**bb, &cb);
  if (!s.ok()) return s;
  if (ca.size() != cb.size()) {
    return Status::InvalidArgument(
        "MBT diff requires identical capacity/fanout");
  }
  for (size_t i = 0; i < ca.size(); ++i) {
    s = DiffRec(ca[i], cb[i], level - 1, out);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<DiffResult> Mbt::Diff(const Hash& a, const Hash& b) const {
  const Hash ra = a.IsZero() ? empty_root_ : a;
  const Hash rb = b.IsZero() ? empty_root_ : b;
  DiffResult out;
  Status s = DiffRec(ra, rb, num_levels_, &out);
  if (!s.ok()) return s;
  SortDiff(&out);
  return out;
}

std::unique_ptr<ImmutableIndex> Mbt::WithStore(NodeStorePtr store) const {
  return std::make_unique<Mbt>(std::move(store), options_);
}

}  // namespace siri
