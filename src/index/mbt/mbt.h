// Copyright (c) 2026 The siri Authors. MIT license.
//
// Merkle Bucket Tree (MBT) — §3.4.2: a Merkle tree of fanout `m` built
// over a hash table of `B` buckets (Hyperledger Fabric 0.6's state index,
// made immutable and given lookup logic, as in the paper's §5.2). Records
// hash to buckets; within a bucket they are kept sorted. Capacity and
// fanout are fixed for the lifetime of the structure, so the tree skeleton
// is static: only node *contents* change. Lookups compute the bucket index
// and then walk the root-to-bucket path derived arithmetically from it.
//
// MBT is trivially Structurally Invariant (a record's position depends
// only on its key hash), but its buckets grow as N/B, which is what drives
// its O(log_m B + N/B) lookup/update bound (§4.1) and its poor
// deduplication at large N (§5.4).

#ifndef SIRI_INDEX_MBT_MBT_H_
#define SIRI_INDEX_MBT_MBT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "index/index.h"

namespace siri {

/// \brief MBT shape parameters; fixed at construction (paper §3.4.2).
struct MbtOptions {
  /// Number of buckets ("capacity" in the paper).
  uint64_t num_buckets = 8192;
  /// Children per internal node ("fanout").
  uint64_t fanout = 32;
};

/// \brief Merkle Bucket Tree index (SIRI instance).
class Mbt : public ImmutableIndex {
 public:
  explicit Mbt(NodeStorePtr store, MbtOptions options = {});

  std::string name() const override { return "mbt"; }

  /// MBT's empty version is a real tree of B empty buckets (one shared
  /// empty-bucket page plus one node per level, thanks to deduplication).
  Hash EmptyRoot() const override { return empty_root_; }

  Result<Hash> PutBatch(const Hash& root, std::vector<KV> kvs) override;
  Result<Hash> DeleteBatch(const Hash& root,
                           std::vector<std::string> keys) override;
  Result<std::optional<std::string>> Get(const Hash& root, Slice key,
                                         LookupStats* stats) const override;
  Result<Proof> GetProof(const Hash& root, Slice key) const override;
  Status CollectPages(const Hash& root, PageSet* pages) const override;
  Status Scan(const Hash& root,
              const std::function<void(Slice, Slice)>& fn) const override;
  Result<DiffResult> Diff(const Hash& a, const Hash& b) const override;
  std::unique_ptr<ImmutableIndex> WithStore(NodeStorePtr store) const override;

  /// Figure 13 instrumentation: separates path traversal + bucket load time
  /// from the in-bucket binary-search scan time.
  Result<std::optional<std::string>> GetBreakdown(const Hash& root, Slice key,
                                                  uint64_t* load_nanos,
                                                  uint64_t* scan_nanos) const;

  const MbtOptions& options() const { return options_; }

  /// Bucket index for a key: hash(key) % B.
  uint64_t BucketIndexOf(Slice key) const;

  /// Number of internal levels above the buckets.
  int num_levels() const { return num_levels_; }

 private:
  /// Per-level node counts: level_size_[0] = B (buckets),
  /// level_size_[i] = ceil(level_size_[i-1] / fanout); the last is 1.
  void ComputeShape();
  Hash BuildEmptyTree();

  /// Loads the internal path from root to the bucket, returning the node
  /// digests visited; path[0] is the root, path.back() is the bucket.
  Status LoadPathTo(const Hash& root, uint64_t bucket,
                    std::vector<std::pair<Hash, std::shared_ptr<const std::string>>>*
                        path,
                    LookupStats* stats) const;

  Status CollectRec(const Hash& node, int level, PageSet* pages) const;
  Status ScanRec(const Hash& node, int level,
                 const std::function<void(Slice, Slice)>& fn) const;
  Status DiffRec(const Hash& a, const Hash& b, int level,
                 DiffResult* out) const;

  MbtOptions options_;
  std::vector<uint64_t> level_size_;  // nodes per level, bottom (buckets) up
  int num_levels_ = 0;                // internal levels (excludes buckets)
  Hash empty_root_;
};

}  // namespace siri

#endif  // SIRI_INDEX_MBT_MBT_H_
