// Copyright (c) 2026 The siri Authors. MIT license.

#include "crypto/hash_pool.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace siri {

int Sha256Pool::DefaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;  // single-core host: inline hashing is optimal
  return static_cast<int>(std::min(hw - 1, 4u));
}

Sha256Pool::Sha256Pool(int workers) {
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Sha256Pool::~Sha256Pool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

Sha256Pool& Sha256Pool::Shared() {
  static Sha256Pool* pool = new Sha256Pool();  // leaked: outlives all users
  return *pool;
}

void Sha256Pool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      // Manual wait loop: a predicate lambda would hide the guarded reads
      // of stop_/queue_ from the thread-safety analysis.
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock.native());
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task.fn();
  }
}

void Sha256Pool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  // One shared cursor: workers and the caller pull indexes until drained.
  // Chunked claiming (grab a run of indexes per fetch) would cut contention
  // further, but page digests are ~1-2µs each, so a relaxed fetch_add per
  // page is already noise.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto done = std::make_shared<std::atomic<size_t>>(0);
  auto done_mu = std::make_shared<std::mutex>();
  auto done_cv = std::make_shared<std::condition_variable>();

  auto drain = [next, done, done_mu, done_cv, n, fn] {
    size_t finished = 0;
    for (;;) {
      const size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
      ++finished;
    }
    if (finished > 0 &&
        done->fetch_add(finished, std::memory_order_acq_rel) + finished == n) {
      std::lock_guard<std::mutex> lock(*done_mu);
      done_cv->notify_all();
    }
  };

  const size_t helpers = std::min(threads_.size(), n > 0 ? n - 1 : 0);
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < helpers; ++i) queue_.push_back(Task{drain});
  }
  if (helpers > 0) cv_.notify_all();

  drain();  // the caller digests its own share

  std::unique_lock<std::mutex> lock(*done_mu);
  done_cv->wait(lock, [&] { return done->load(std::memory_order_acquire) == n; });
}

std::vector<Hash> Sha256Pool::DigestAllSlices(const std::vector<Slice>& pages) {
  std::vector<Hash> out(pages.size());
  const size_t inline_threshold =
      threads_.empty() ? SIZE_MAX : kMinPagesPerWorker * 2;
  if (pages.size() < inline_threshold) {
    inline_jobs_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < pages.size(); ++i) {
      out[i] = Sha256::Digest(pages[i]);
    }
    return out;
  }
  jobs_.fetch_add(1, std::memory_order_relaxed);
  pages_.fetch_add(pages.size(), std::memory_order_relaxed);
  ParallelFor(pages.size(),
              [&](size_t i) { out[i] = Sha256::Digest(pages[i]); });
  return out;
}

std::vector<Hash> Sha256Pool::DigestAll(
    const std::vector<std::shared_ptr<const std::string>>& pages) {
  std::vector<Slice> slices;
  slices.reserve(pages.size());
  for (const auto& p : pages) slices.emplace_back(*p);
  return DigestAllSlices(slices);
}

Sha256Pool::Stats Sha256Pool::stats() const {
  Stats s;
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.inline_jobs = inline_jobs_.load(std::memory_order_relaxed);
  s.pages = pages_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace siri
