// Copyright (c) 2026 The siri Authors. MIT license.
//
// Hash — the 32-byte cryptographic digest that identifies every node (page)
// in the content-addressed store. All four indexes reference children by
// Hash instead of by pointer; this is what makes copy-on-write node sharing
// and tamper evidence fall out of the same mechanism.

#ifndef SIRI_CRYPTO_HASH_H_
#define SIRI_CRYPTO_HASH_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "common/slice.h"

namespace siri {

/// \brief 32-byte digest (SHA-256 output). Value type, totally ordered.
class Hash {
 public:
  static constexpr size_t kSize = 32;

  Hash() { bytes_.fill(0); }

  static Hash FromBytes(const void* data) {
    Hash h;
    std::memcpy(h.bytes_.data(), data, kSize);
    return h;
  }

  /// All-zero digest; used as the "null child" / empty-tree sentinel.
  static Hash Zero() { return Hash(); }

  bool IsZero() const {
    for (uint8_t b : bytes_) {
      if (b != 0) return false;
    }
    return true;
  }

  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }

  Slice AsSlice() const {
    return Slice(reinterpret_cast<const char*>(bytes_.data()), kSize);
  }

  std::string ToHex() const;

  bool operator==(const Hash& o) const { return bytes_ == o.bytes_; }
  bool operator!=(const Hash& o) const { return bytes_ != o.bytes_; }
  bool operator<(const Hash& o) const { return bytes_ < o.bytes_; }

  /// First 8 bytes as little-endian uint64 — convenient non-crypto fingerprint
  /// for hashing into unordered containers and for chunk-boundary tests.
  uint64_t Prefix64() const {
    uint64_t v;
    std::memcpy(&v, bytes_.data(), sizeof(v));
    return v;
  }

 private:
  std::array<uint8_t, kSize> bytes_;
};

struct HashHasher {
  size_t operator()(const Hash& h) const {
    return static_cast<size_t>(h.Prefix64());
  }
};

}  // namespace siri

#endif  // SIRI_CRYPTO_HASH_H_
