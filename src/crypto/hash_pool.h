// Copyright (c) 2026 The siri Authors. MIT license.
//
// Sha256Pool — a small worker pool that digests a batch of independent
// pages in parallel. A commit's SHA-256 work is embarrassingly parallel
// (every staged page is hashed independently), but the index write paths
// produce pages one at a time, so the per-page digest stays on the writer
// thread. Batch consumers are different: landing a version-transfer pack,
// replaying a log on startup, and bulk-staging pages all hold many
// undigested pages at once — those go through DigestAll here and use every
// core.
//
// Digests are bit-identical to the serial path: each worker runs the same
// Sha256::Digest over the same bytes; only the schedule changes. Small
// batches (below kMinPagesPerWorker per worker) are digested inline on the
// calling thread, so the pool never slows down the single-page regime.

#ifndef SIRI_CRYPTO_HASH_POOL_H_
#define SIRI_CRYPTO_HASH_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "crypto/hash.h"

namespace siri {

/// \brief Fixed-size SHA-256 worker pool. Thread-safe: any number of
/// threads may call DigestAll concurrently; jobs are split into per-worker
/// slices and the calling thread digests its own share while the workers
/// chew the rest (the caller never just blocks).
class Sha256Pool {
 public:
  /// Pages per worker below which a batch is digested inline — spawning a
  /// cross-thread job for a handful of ~1 KB pages costs more than hashing
  /// them.
  static constexpr size_t kMinPagesPerWorker = 16;

  struct Stats {
    uint64_t jobs = 0;         ///< DigestAll calls that used the workers
    uint64_t inline_jobs = 0;  ///< DigestAll calls digested on the caller
    uint64_t pages = 0;        ///< pages digested through the pool workers
  };

  /// \param workers worker threads (0 = everything inline; default picks
  ///        a small pool sized to the host, capped at 4 — hashing is only
  ///        one stage of a commit, it should not own the machine).
  explicit Sha256Pool(int workers = DefaultWorkers());
  ~Sha256Pool();

  Sha256Pool(const Sha256Pool&) = delete;
  Sha256Pool& operator=(const Sha256Pool&) = delete;

  /// Digests pages[i] into out[i] for every i, bit-identical to calling
  /// Sha256::Digest(pages[i]) serially. Splits the batch across the
  /// workers when it is large enough to pay for the handoff.
  std::vector<Hash> DigestAll(
      const std::vector<std::shared_ptr<const std::string>>& pages);

  /// Variant over raw slices (the pages must outlive the call).
  std::vector<Hash> DigestAllSlices(const std::vector<Slice>& pages);

  int workers() const { return static_cast<int>(threads_.size()); }
  Stats stats() const;

  /// Process-wide shared pool (lazily constructed, never destroyed before
  /// exit). Batch consumers use this so the whole process pays for one set
  /// of worker threads.
  static Sha256Pool& Shared();

  static int DefaultWorkers();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void WorkerLoop();

  /// Runs fn(i) for i in [0, n) across the workers + the calling thread;
  /// returns when every index is done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  std::vector<std::thread> threads_;
  Mutex mu_;
  std::condition_variable cv_;
  std::vector<Task> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;

  mutable std::atomic<uint64_t> jobs_{0};
  mutable std::atomic<uint64_t> inline_jobs_{0};
  mutable std::atomic<uint64_t> pages_{0};
};

}  // namespace siri

#endif  // SIRI_CRYPTO_HASH_POOL_H_
