// Copyright (c) 2026 The siri Authors. MIT license.
//
// Rolling hash over a fixed-size byte window — the "Rabin fingerprint" of
// the paper's §3.4.3. POS-Tree slides this window over the serialized data
// layer and declares a chunk boundary wherever the fingerprint matches a
// bit pattern (e.g. the low 8 bits all set). We implement buzhash (cyclic
// polynomial hashing): identical content-defined-boundary behavior to
// Rabin fingerprinting with cheaper updates.

#ifndef SIRI_CRYPTO_ROLLING_HASH_H_
#define SIRI_CRYPTO_ROLLING_HASH_H_

#include <cstdint>
#include <cstddef>

namespace siri {

/// \brief Buzhash rolling hash over a window of fixed size.
class RollingHash {
 public:
  /// \param window_size number of bytes the fingerprint covers. The paper's
  /// Noms comparison uses 67 bytes; POS-Tree defaults to 48.
  explicit RollingHash(size_t window_size);

  /// Feeds one byte, evicting the oldest byte once the window is full.
  /// Returns the fingerprint after ingestion.
  uint64_t Roll(uint8_t in);

  /// Current fingerprint value.
  uint64_t value() const { return hash_; }

  /// True once at least window_size bytes have been ingested.
  bool Primed() const { return filled_; }

  /// Clears all state so the hasher can scan a fresh byte stream.
  void Reset();

  size_t window_size() const { return window_size_; }

 private:
  size_t window_size_;
  uint64_t hash_ = 0;
  size_t pos_ = 0;
  bool filled_ = false;
  // Ring buffer of the bytes currently inside the window.
  static constexpr size_t kMaxWindow = 256;
  uint8_t window_[kMaxWindow];
};

/// Byte-indexed random table shared by all RollingHash instances; exposed so
/// tests can verify its statistical properties.
const uint64_t* BuzhashTable();

}  // namespace siri

#endif  // SIRI_CRYPTO_ROLLING_HASH_H_
