// Copyright (c) 2026 The siri Authors. MIT license.
//
// Clean-room SHA-256 (FIPS 180-4). This is the tamper-evidence substrate:
// every index node is serialized and digested through this module, and a
// version's root digest commits to the entire tree.

#ifndef SIRI_CRYPTO_SHA256_H_
#define SIRI_CRYPTO_SHA256_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "crypto/hash.h"

namespace siri {

/// \brief Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(Slice s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The context must be Reset() before
  /// reuse.
  Hash Finish();

  /// One-shot convenience.
  static Hash Digest(Slice data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace siri

#endif  // SIRI_CRYPTO_SHA256_H_
