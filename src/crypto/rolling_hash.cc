// Copyright (c) 2026 The siri Authors. MIT license.

#include "crypto/rolling_hash.h"

#include "common/random.h"
#include "common/status.h"

namespace siri {

namespace {

uint64_t* BuildTable() {
  static uint64_t table[256];
  uint64_t seed = 0xb422afa164dULL;  // arbitrary fixed seed: table must be
                                     // identical across runs and processes.
  for (int i = 0; i < 256; ++i) table[i] = SplitMix64(&seed);
  return table;
}

inline uint64_t Rotl64(uint64_t x, int k) {
  k &= 63;
  if (k == 0) return x;
  return (x << k) | (x >> (64 - k));
}

}  // namespace

const uint64_t* BuzhashTable() {
  static const uint64_t* table = BuildTable();
  return table;
}

RollingHash::RollingHash(size_t window_size) : window_size_(window_size) {
  SIRI_CHECK(window_size_ > 0 && window_size_ <= kMaxWindow);
  Reset();
}

void RollingHash::Reset() {
  hash_ = 0;
  pos_ = 0;
  filled_ = false;
}

uint64_t RollingHash::Roll(uint8_t in) {
  const uint64_t* t = BuzhashTable();
  if (filled_) {
    const uint8_t out = window_[pos_];
    // Remove the contribution of the evicted byte: it has been rotated
    // window_size_ times since insertion.
    hash_ = Rotl64(hash_, 1) ^ Rotl64(t[out], static_cast<int>(window_size_)) ^
            t[in];
  } else {
    hash_ = Rotl64(hash_, 1) ^ t[in];
  }
  window_[pos_] = in;
  pos_ = (pos_ + 1) % window_size_;
  if (pos_ == 0 && !filled_) filled_ = true;
  return hash_;
}

}  // namespace siri
