// Copyright (c) 2026 The siri Authors. MIT license.
//
// YCSB-style key/value dataset and operation-stream generation matching the
// paper's Table 2: keys of 5–15 bytes, values averaging 256 bytes, read /
// write / mixed workloads under Zipfian skew θ ∈ {0, 0.5, 0.9}, multi-party
// overlap workloads, and batched execution.

#ifndef SIRI_WORKLOAD_YCSB_H_
#define SIRI_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "index/index.h"

namespace siri {

/// \brief Dataset-shape parameters (Table 2 defaults).
struct YcsbOptions {
  uint64_t num_records = 100000;
  size_t key_len_min = 5;
  size_t key_len_max = 15;
  size_t value_len_avg = 256;
};

/// One operation of a generated workload.
struct YcsbOp {
  enum class Type { kRead, kWrite };
  Type type;
  std::string key;
  std::string value;  // writes only
};

/// \brief Deterministic YCSB-style generator.
class YcsbGenerator {
 public:
  explicit YcsbGenerator(uint64_t seed = 42);

  /// Generates \p n unique records with Table 2 key/value geometry. Keys
  /// are unique, unsorted (hash-ordered); the same (seed, n, namespace)
  /// always yields the same records.
  std::vector<KV> GenerateRecords(uint64_t n, const std::string& ns = "");

  /// Key of record \p i in namespace \p ns (matches GenerateRecords).
  std::string KeyOf(uint64_t i, const std::string& ns = "") const;
  /// Value of record \p i (fresh version \p version of that record).
  std::string ValueOf(uint64_t i, uint64_t version,
                      const std::string& ns = "") const;

  /// Operation stream of \p num_ops over records [0, n): read/write mix
  /// \p write_ratio, Zipfian skew \p theta.
  std::vector<YcsbOp> GenerateOps(uint64_t num_ops, uint64_t n,
                                  double write_ratio, double theta,
                                  const std::string& ns = "");

  /// Multi-party overlap workloads (§5.4.2): \p parties record sets of
  /// size \p n where an \p overlap_ratio fraction of records (keys AND
  /// values) is common to all parties and the rest is party-private.
  std::vector<std::vector<KV>> GenerateOverlapSets(int parties, uint64_t n,
                                                   double overlap_ratio);

  YcsbOptions& options() { return options_; }

 private:
  YcsbOptions options_;
  uint64_t seed_;
};

/// Splits \p kvs into batches of \p batch_size (last batch may be short).
std::vector<std::vector<KV>> SplitIntoBatches(std::vector<KV> kvs,
                                              size_t batch_size);

}  // namespace siri

#endif  // SIRI_WORKLOAD_YCSB_H_
