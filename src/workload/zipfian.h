// Copyright (c) 2026 The siri Authors. MIT license.
//
// Zipfian item-selection generator, following the standard YCSB
// construction (Gray et al.'s rejection-free method). θ = 0 degenerates to
// the uniform distribution; θ → 1 concentrates the mass on a small hot
// set, the skew axis of Figure 6/10 of the paper.

#ifndef SIRI_WORKLOAD_ZIPFIAN_H_
#define SIRI_WORKLOAD_ZIPFIAN_H_

#include <cstdint>

#include "common/random.h"

namespace siri {

/// \brief Draws items in [0, n) with Zipfian skew θ.
class ZipfianGenerator {
 public:
  /// \param n number of items.
  /// \param theta skew in [0, 1); 0 = uniform.
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 12345);

  /// Next item index; the most popular item is scattered via FNV hashing so
  /// hot keys are spread over the key space (YCSB's "scrambled" variant).
  uint64_t Next();

  /// Next item without scrambling (item 0 is the hottest).
  uint64_t NextRank();

  double theta() const { return theta_; }
  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
  Rng rng_;
};

}  // namespace siri

#endif  // SIRI_WORKLOAD_ZIPFIAN_H_
