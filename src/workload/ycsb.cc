// Copyright (c) 2026 The siri Authors. MIT license.

#include "workload/ycsb.h"

#include <algorithm>

#include "common/hex.h"
#include "crypto/sha256.h"
#include "workload/zipfian.h"

namespace siri {

namespace {

// Derives an independent 64-bit stream from (seed, tag, i).
uint64_t DeriveSeed(uint64_t seed, const std::string& tag, uint64_t i) {
  uint64_t s = seed;
  for (char c : tag) s = s * 0x100000001b3ULL + static_cast<uint8_t>(c);
  s ^= i * 0x9e3779b97f4a7c15ULL;
  SplitMix64(&s);
  return SplitMix64(&s);
}

}  // namespace

YcsbGenerator::YcsbGenerator(uint64_t seed) : seed_(seed) {}

std::string YcsbGenerator::KeyOf(uint64_t i, const std::string& ns) const {
  Rng rng(DeriveSeed(seed_, "key:" + ns, i));
  const size_t len = options_.key_len_min +
                     rng.Uniform(options_.key_len_max - options_.key_len_min + 1);
  // "user"-style prefix-free keys: hex of a per-record hash, truncated to
  // the drawn length; collisions across the 64-bit space are negligible
  // but we suffix the index to guarantee uniqueness.
  std::string base = rng.AlphaNum(len);
  // Guarantee uniqueness by folding the record index into the tail.
  std::string idx;
  uint64_t v = i;
  do {
    idx.push_back("0123456789abcdefghijklmnopqrstuv"[v % 32]);
    v /= 32;
  } while (v > 0);
  if (idx.size() >= base.size()) return idx;
  base.replace(base.size() - idx.size(), idx.size(), idx);
  return base;
}

std::string YcsbGenerator::ValueOf(uint64_t i, uint64_t version,
                                   const std::string& ns) const {
  Rng rng(DeriveSeed(seed_, "val:" + ns, i * 1000003 + version));
  // Lengths uniform in [avg/2, 3*avg/2] — mean = value_len_avg.
  const size_t avg = options_.value_len_avg;
  const size_t len = avg / 2 + rng.Uniform(avg + 1);
  return rng.AlphaNum(len);
}

std::vector<KV> YcsbGenerator::GenerateRecords(uint64_t n,
                                               const std::string& ns) {
  std::vector<KV> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(KV{KeyOf(i, ns), ValueOf(i, 0, ns)});
  }
  return out;
}

std::vector<YcsbOp> YcsbGenerator::GenerateOps(uint64_t num_ops, uint64_t n,
                                               double write_ratio, double theta,
                                               const std::string& ns) {
  std::vector<YcsbOp> ops;
  ops.reserve(num_ops);
  ZipfianGenerator zipf(n, theta, DeriveSeed(seed_, "zipf:" + ns, num_ops));
  Rng rng(DeriveSeed(seed_, "ops:" + ns, num_ops));
  for (uint64_t op = 0; op < num_ops; ++op) {
    const uint64_t record = zipf.Next();
    YcsbOp o;
    if (rng.Bernoulli(write_ratio)) {
      o.type = YcsbOp::Type::kWrite;
      o.key = KeyOf(record, ns);
      o.value = ValueOf(record, 1 + op, ns);  // fresh version per write
    } else {
      o.type = YcsbOp::Type::kRead;
      o.key = KeyOf(record, ns);
    }
    ops.push_back(std::move(o));
  }
  return ops;
}

std::vector<std::vector<KV>> YcsbGenerator::GenerateOverlapSets(
    int parties, uint64_t n, double overlap_ratio) {
  std::vector<std::vector<KV>> out;
  out.reserve(parties);
  const uint64_t shared = static_cast<uint64_t>(n * overlap_ratio);
  for (int p = 0; p < parties; ++p) {
    std::vector<KV> records;
    records.reserve(n);
    for (uint64_t i = 0; i < shared; ++i) {
      records.push_back(KV{KeyOf(i, "shared"), ValueOf(i, 0, "shared")});
    }
    const std::string ns = "party" + std::to_string(p);
    for (uint64_t i = shared; i < n; ++i) {
      records.push_back(KV{KeyOf(i, ns), ValueOf(i, 0, ns)});
    }
    out.push_back(std::move(records));
  }
  return out;
}

std::vector<std::vector<KV>> SplitIntoBatches(std::vector<KV> kvs,
                                              size_t batch_size) {
  std::vector<std::vector<KV>> out;
  if (batch_size == 0) batch_size = kvs.size();
  for (size_t i = 0; i < kvs.size(); i += batch_size) {
    const size_t end = std::min(kvs.size(), i + batch_size);
    out.emplace_back(std::make_move_iterator(kvs.begin() + i),
                     std::make_move_iterator(kvs.begin() + end));
  }
  return out;
}

}  // namespace siri
