// Copyright (c) 2026 The siri Authors. MIT license.
//
// Recursive Length Prefix (RLP) encoding — Ethereum's canonical object
// serialization, used here to synthesize realistic raw-transaction values
// for the Ethereum experiments (§5.1.3). Implements the full encoding
// rules for byte strings and (nested) lists.

#ifndef SIRI_WORKLOAD_RLP_H_
#define SIRI_WORKLOAD_RLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace siri {

/// Encodes a byte string per RLP:
///  - single byte < 0x80 encodes as itself;
///  - strings up to 55 bytes get a 0x80+len prefix;
///  - longer strings get 0xb7+len-of-len then the big-endian length.
std::string RlpEncodeString(Slice s);

/// Encodes an unsigned integer as its minimal big-endian byte string
/// (0 encodes as the empty string), then as an RLP string.
std::string RlpEncodeUint(uint64_t v);

/// Wraps already-encoded items into an RLP list (0xc0 / 0xf7 prefixes).
std::string RlpEncodeList(const std::vector<std::string>& encoded_items);

/// Decodes the top-level RLP item in \p in. Returns false on malformed
/// input. For strings, \p payload receives the bytes and \p is_list is
/// false; for lists, \p payload receives the concatenated encoded items.
bool RlpDecode(Slice in, bool* is_list, std::string* payload);

}  // namespace siri

#endif  // SIRI_WORKLOAD_RLP_H_
