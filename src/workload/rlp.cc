// Copyright (c) 2026 The siri Authors. MIT license.

#include "workload/rlp.h"

namespace siri {

namespace {

std::string BigEndianLength(uint64_t len) {
  std::string out;
  while (len > 0) {
    out.insert(out.begin(), static_cast<char>(len & 0xff));
    len >>= 8;
  }
  return out;
}

std::string EncodeWithPrefix(uint8_t short_base, uint8_t long_base, Slice payload) {
  std::string out;
  if (payload.size() <= 55) {
    out.push_back(static_cast<char>(short_base + payload.size()));
  } else {
    const std::string len_bytes = BigEndianLength(payload.size());
    out.push_back(static_cast<char>(long_base + len_bytes.size()));
    out.append(len_bytes);
  }
  out.append(payload.data(), payload.size());
  return out;
}

}  // namespace

std::string RlpEncodeString(Slice s) {
  if (s.size() == 1 && static_cast<uint8_t>(s[0]) < 0x80) {
    return std::string(1, s[0]);
  }
  return EncodeWithPrefix(0x80, 0xb7, s);
}

std::string RlpEncodeUint(uint64_t v) {
  std::string bytes = BigEndianLength(v);  // minimal big-endian; 0 -> ""
  return RlpEncodeString(bytes);
}

std::string RlpEncodeList(const std::vector<std::string>& encoded_items) {
  std::string payload;
  for (const auto& item : encoded_items) payload.append(item);
  return EncodeWithPrefix(0xc0, 0xf7, payload);
}

bool RlpDecode(Slice in, bool* is_list, std::string* payload) {
  if (in.empty()) return false;
  const uint8_t b = static_cast<uint8_t>(in[0]);
  if (b < 0x80) {
    *is_list = false;
    *payload = std::string(1, in[0]);
    return in.size() == 1;
  }
  auto decode_span = [&](uint8_t short_base, uint8_t long_base) -> bool {
    uint64_t len = 0;
    size_t header = 1;
    if (b <= short_base + 55) {
      len = b - short_base;
    } else {
      const size_t len_of_len = b - long_base;
      if (len_of_len == 0 || len_of_len > 8 || in.size() < 1 + len_of_len) {
        return false;
      }
      for (size_t i = 0; i < len_of_len; ++i) {
        len = (len << 8) | static_cast<uint8_t>(in[1 + i]);
      }
      header = 1 + len_of_len;
    }
    if (in.size() != header + len) return false;
    payload->assign(in.data() + header, len);
    return true;
  };
  if (b < 0xc0) {
    *is_list = false;
    return decode_span(0x80, 0xb7);
  }
  *is_list = true;
  return decode_span(0xc0, 0xf7);
}

}  // namespace siri
