// Copyright (c) 2026 The siri Authors. MIT license.

#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/hex.h"
#include "common/random.h"
#include "crypto/sha256.h"
#include "workload/rlp.h"

namespace siri {

namespace {

uint64_t Derive(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b * 0xc2b2ae3d27d4eb4fULL);
  SplitMix64(&s);
  return SplitMix64(&s);
}

// Words used to synthesize URL-ish titles and abstract-ish prose.
constexpr const char* kWords[] = {
    "history",  "science",   "river",    "empire",   "battle",  "novel",
    "physics",  "music",     "island",   "football", "election","museum",
    "language", "railway",   "painting", "computer", "theory",  "bridge",
    "festival", "university","mountain", "dynasty",  "protocol","species",
    "district", "cathedral", "harbor",   "galaxy",   "treaty",  "algebra"};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

}  // namespace

// ---------------------------------------------------------------------------
// WikiDataset

WikiDataset::WikiDataset(uint64_t num_pages, uint64_t seed)
    : num_pages_(num_pages), seed_(seed) {}

std::string WikiDataset::KeyOf(uint64_t page) const {
  Rng rng(Derive(seed_, page, 0xa11ce));
  std::string key = "https://en.wikipedia.org/wiki/";
  // Draw a title whose length yields total key lengths of 31–298 bytes with
  // an average around 50, as the paper reports.
  const size_t target =
      1 + std::min<size_t>(268, static_cast<size_t>(
                                    -20.0 * std::log(1.0 - rng.NextDouble())));
  while (key.size() - 30 < target) {
    key += kWords[rng.Uniform(kNumWords)];
    key.push_back('_');
  }
  key += std::to_string(page);  // uniqueness
  if (key.size() > 298) key.resize(298);
  return key;
}

std::string WikiDataset::ValueOf(uint64_t page, uint64_t version) const {
  Rng rng(Derive(seed_, page, 0xbee + version));
  // Abstract lengths 1–1036 bytes, average ≈ 96 (exponential, clipped).
  const size_t target = 1 + std::min<size_t>(
      1035,
      static_cast<size_t>(-95.0 * std::log(1.0 - rng.NextDouble())));
  std::string value;
  value.reserve(target + 12);
  while (value.size() < target) {
    value += kWords[rng.Uniform(kNumWords)];
    value.push_back(' ');
  }
  value.resize(target);
  return value;
}

std::vector<KV> WikiDataset::InitialRecords() const {
  std::vector<KV> out;
  out.reserve(num_pages_);
  for (uint64_t p = 0; p < num_pages_; ++p) {
    out.push_back(KV{KeyOf(p), ValueOf(p, 0)});
  }
  return out;
}

std::vector<KV> WikiDataset::VersionEdits(uint64_t version,
                                          double update_ratio) const {
  SIRI_CHECK(version >= 1);
  Rng rng(Derive(seed_, 0xed17, version));
  const uint64_t num_edits =
      std::max<uint64_t>(1, static_cast<uint64_t>(num_pages_ * update_ratio));
  std::vector<KV> out;
  out.reserve(num_edits);
  for (uint64_t i = 0; i < num_edits; ++i) {
    const uint64_t page = rng.Uniform(num_pages_);
    out.push_back(KV{KeyOf(page), ValueOf(page, version)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// EthDataset

EthDataset::EthDataset(uint64_t seed) : seed_(seed) {}

std::vector<EthTransaction> EthDataset::Block(uint64_t number,
                                              uint64_t txs_per_block) const {
  std::vector<EthTransaction> out;
  out.reserve(txs_per_block);
  for (uint64_t t = 0; t < txs_per_block; ++t) {
    Rng rng(Derive(seed_, number, t));

    // Long-tailed data-field size: mostly plain transfers (no payload),
    // some contract calls, rare huge deployments — yielding value sizes in
    // [100, 57738] with an average around 532 bytes, as in the paper.
    size_t data_len = 0;
    const double roll = rng.NextDouble();
    if (roll > 0.999) {
      data_len = 20000 + rng.Uniform(37000);
    } else if (roll > 0.7) {
      data_len = static_cast<size_t>(
          -800.0 * std::log(1.0 - rng.NextDouble()));
      data_len = std::min<size_t>(data_len, 16384);
    }

    std::vector<std::string> fields;
    fields.push_back(RlpEncodeUint(rng.Uniform(1000000)));         // nonce
    fields.push_back(
        RlpEncodeUint((1 + rng.Uniform(500)) * 1000000000ULL));    // gas price
    fields.push_back(RlpEncodeUint(21000 + rng.Uniform(700000)));  // gas limit
    fields.push_back(RlpEncodeString(rng.Bytes(20)));              // to
    fields.push_back(RlpEncodeUint(rng.Next()));                   // value
    fields.push_back(RlpEncodeString(rng.Bytes(data_len)));        // data
    fields.push_back(RlpEncodeUint(27 + rng.Uniform(2)));          // v
    fields.push_back(RlpEncodeString(rng.Bytes(32)));              // r
    fields.push_back(RlpEncodeString(rng.Bytes(32)));              // s
    std::string rlp = RlpEncodeList(fields);
    // Pad tiny transactions up to the paper's 100-byte minimum.
    if (rlp.size() < 100) {
      fields[5] = RlpEncodeString(rng.Bytes(data_len + (100 - rlp.size())));
      rlp = RlpEncodeList(fields);
    }

    EthTransaction tx;
    tx.hash = Sha256::Digest(rlp).ToHex();  // 64-char hex key
    tx.rlp = std::move(rlp);
    out.push_back(std::move(tx));
  }
  return out;
}

std::vector<KV> EthDataset::BlockRecords(uint64_t number,
                                         uint64_t txs_per_block) const {
  std::vector<KV> out;
  auto txs = Block(number, txs_per_block);
  out.reserve(txs.size());
  for (EthTransaction& tx : txs) {
    out.push_back(KV{std::move(tx.hash), std::move(tx.rlp)});
  }
  return out;
}

}  // namespace siri
