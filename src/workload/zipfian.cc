// Copyright (c) 2026 The siri Authors. MIT license.

#include "workload/zipfian.h"

#include <cmath>

#include "common/status.h"

namespace siri {

namespace {
// 64-bit FNV-1a over the integer's bytes, used to scramble hot items.
uint64_t Fnv64(uint64_t v) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  SIRI_CHECK(n_ > 0);
  SIRI_CHECK(theta_ >= 0 && theta_ < 1);
  if (theta_ == 0) {
    zetan_ = zeta2_ = alpha_ = eta_ = 0;
    return;
  }
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianGenerator::NextRank() {
  if (theta_ == 0) return rng_.Uniform(n_);
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

uint64_t ZipfianGenerator::Next() {
  uint64_t rank = NextRank();
  if (rank >= n_) rank = n_ - 1;
  if (theta_ == 0) return rank;
  return Fnv64(rank) % n_;
}

}  // namespace siri
