// Copyright (c) 2026 The siri Authors. MIT license.
//
// Synthetic stand-ins for the paper's two real-world datasets (§5.1.2,
// §5.1.3). The experiments exercise only the datasets' key/value length
// distributions and their version-to-version change rates, so generators
// that reproduce that geometry preserve every benchmark's shape (see
// DESIGN.md §4 for the substitution rationale):
//
//  * WIKI — page-abstract dumps: URL keys 31–298 bytes (avg ≈ 50), plain
//    text values 1–1036 bytes (avg ≈ 96), evolved over many versions.
//  * ETH — raw transactions: 64-byte (hex) transaction-hash keys, RLP
//    encoded values of 100–57738 bytes (avg ≈ 532, long tailed), grouped
//    into blocks; each block is a version.

#ifndef SIRI_WORKLOAD_DATASETS_H_
#define SIRI_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/index.h"

namespace siri {

/// \brief Wikipedia-abstract-shaped dataset with versioned edits.
class WikiDataset {
 public:
  explicit WikiDataset(uint64_t num_pages, uint64_t seed = 7);

  /// All records of the initial version.
  std::vector<KV> InitialRecords() const;

  /// Record-level edits from version v-1 to version v: a deterministic
  /// fraction of pages get rewritten abstracts, a few new pages appear.
  std::vector<KV> VersionEdits(uint64_t version, double update_ratio) const;

  std::string KeyOf(uint64_t page) const;
  std::string ValueOf(uint64_t page, uint64_t version) const;

  uint64_t num_pages() const { return num_pages_; }

 private:
  uint64_t num_pages_;
  uint64_t seed_;
};

/// One synthetic Ethereum transaction.
struct EthTransaction {
  std::string hash;  ///< 64-char hex transaction hash (the index key)
  std::string rlp;   ///< RLP-encoded raw transaction (the value)
};

/// \brief Ethereum-transaction-shaped dataset grouped into blocks.
class EthDataset {
 public:
  explicit EthDataset(uint64_t seed = 11);

  /// Transactions of block \p number; \p txs_per_block per block. Values
  /// follow the paper's long-tailed size distribution (100 B – 57.7 KB,
  /// average ≈ 532 B).
  std::vector<EthTransaction> Block(uint64_t number,
                                    uint64_t txs_per_block = 200) const;

  /// As key/value records for index ingestion.
  std::vector<KV> BlockRecords(uint64_t number,
                               uint64_t txs_per_block = 200) const;

 private:
  uint64_t seed_;
};

}  // namespace siri

#endif  // SIRI_WORKLOAD_DATASETS_H_
