// Copyright (c) 2026 The siri Authors. MIT license.

#include "metrics/dedup.h"

#include <cstdio>

namespace siri {

std::string DedupStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "dedup=%.4f sharing=%.4f union=%llu nodes (%llu B) "
                "total=%llu nodes (%llu B)",
                DeduplicationRatio(), NodeSharingRatio(),
                static_cast<unsigned long long>(union_nodes),
                static_cast<unsigned long long>(union_bytes),
                static_cast<unsigned long long>(total_nodes),
                static_cast<unsigned long long>(total_bytes));
  return buf;
}

Result<DedupStats> ComputeDedupStats(NodeStore* store,
                                     const std::vector<PageSet>& page_sets) {
  DedupStats stats;
  PageSet all;
  for (const PageSet& pages : page_sets) {
    stats.total_nodes += pages.size();
    for (const Hash& h : pages) {
      auto size = store->SizeOf(h);
      if (!size.ok()) return size.status();
      stats.total_bytes += *size;
      if (all.insert(h).second) {
        stats.union_bytes += *size;
      }
    }
  }
  stats.union_nodes = all.size();
  return stats;
}

Result<DedupStats> ComputeDedupStatsForRoots(const ImmutableIndex& index,
                                             const std::vector<Hash>& roots) {
  std::vector<PageSet> sets;
  sets.reserve(roots.size());
  for (const Hash& root : roots) {
    PageSet pages;
    Status s = index.CollectPages(root, &pages);
    if (!s.ok()) return s;
    sets.push_back(std::move(pages));
  }
  return ComputeDedupStats(index.store(), sets);
}

Result<StorageFootprint> ComputeFootprint(const ImmutableIndex& index,
                                          const std::vector<Hash>& roots) {
  PageSet all;
  for (const Hash& root : roots) {
    Status s = index.CollectPages(root, &all);
    if (!s.ok()) return s;
  }
  StorageFootprint fp;
  fp.nodes = all.size();
  for (const Hash& h : all) {
    auto size = index.store()->SizeOf(h);
    if (!size.ok()) return size.status();
    fp.bytes += *size;
  }
  return fp;
}

}  // namespace siri
