// Copyright (c) 2026 The siri Authors. MIT license.
//
// Space-efficiency metrics of §4.2 and §5.4:
//
//   deduplication ratio  η(S) = 1 - byte(∪ P_i) / Σ byte(P_i)
//   node sharing ratio         = 1 - |∪ P_i| / Σ |P_i|
//
// where P_i is the page (node) set of instance/version i and byte() is the
// serialized size. Page sets are collected from index roots via
// ImmutableIndex::CollectPages, so the ratios are exact, not sampled.

#ifndef SIRI_METRICS_DEDUP_H_
#define SIRI_METRICS_DEDUP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/index.h"
#include "store/node_store.h"

namespace siri {

/// \brief Exact page-sharing statistics across a set of index versions.
struct DedupStats {
  uint64_t union_nodes = 0;   ///< |P_1 ∪ ... ∪ P_k|
  uint64_t union_bytes = 0;   ///< byte(P_1 ∪ ... ∪ P_k)
  uint64_t total_nodes = 0;   ///< Σ |P_i|
  uint64_t total_bytes = 0;   ///< Σ byte(P_i)

  double DeduplicationRatio() const {
    return total_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(union_bytes) / total_bytes;
  }
  double NodeSharingRatio() const {
    return total_nodes == 0
               ? 0.0
               : 1.0 - static_cast<double>(union_nodes) / total_nodes;
  }

  std::string ToString() const;
};

/// Computes the exact stats for the given page sets, using \p store for
/// page sizes.
Result<DedupStats> ComputeDedupStats(NodeStore* store,
                                     const std::vector<PageSet>& page_sets);

/// Collects the page set of every root through \p index and computes the
/// stats in one call.
Result<DedupStats> ComputeDedupStatsForRoots(const ImmutableIndex& index,
                                             const std::vector<Hash>& roots);

/// Storage footprint of a set of versions: the union page set's bytes and
/// node count (what a store retaining exactly those versions must keep).
struct StorageFootprint {
  uint64_t nodes = 0;
  uint64_t bytes = 0;
};

Result<StorageFootprint> ComputeFootprint(const ImmutableIndex& index,
                                          const std::vector<Hash>& roots);

}  // namespace siri

#endif  // SIRI_METRICS_DEDUP_H_
