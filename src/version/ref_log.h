// Copyright (c) 2026 The siri Authors. MIT license.
//
// RefLog — a sidecar append-only log of branch-head movements, kept next
// to the FileNodeStore page log. Pages are content-addressed, so the page
// log alone recovers every commit ever flushed — but not which commit each
// branch pointed at. Appending one small record per head swing makes
// branches crash-durable like the pages they reference: a restart replays
// the ref log, takes the last record per branch (a zero head is a deletion
// tombstone), and reseeds the BranchManager.
//
// Record framing mirrors the page log: `varint len | SHA-256(payload) |
// payload`, payload = `varint name-len | name | 32-byte head`. Replay
// verifies each record's digest and truncates at the first torn or corrupt
// record, recovering the longest valid prefix; the truncation itself is an
// atomic rewrite (temp file + rename + parent-dir fsync via
// Env::RenameAndSyncDir), so a crash mid-recovery can never lose the
// valid prefix or resurrect the torn tail.
//
// All file I/O flows through Options::env (io/env.h), so io::FaultEnv can
// inject disk faults and power cuts here exactly as it does in the page
// log.
//
// Durability: every append is write+flush (survives process death, e.g.
// the fork/_exit crash tests); Options::fsync_each upgrades that to a
// per-swing fsync (survives power loss), and Sync() lets callers batch
// that cost at their own boundaries. Appends happen after the page store
// flush in the commit path, so a recovered head never points ahead of the
// recovered pages. Like FileNodeStore, the first failed append, flush, or
// fsync latches a sticky error (DiskStatus()): later appends fail fast —
// no head record can land after a torn one — and no later fsync
// retroactively claims durability.

#ifndef SIRI_VERSION_REF_LOG_H_
#define SIRI_VERSION_REF_LOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "crypto/hash.h"
#include "io/env.h"

namespace siri {

/// \brief Append-only branch-head journal with digest-verified replay.
class RefLog {
 public:
  struct Options {
    /// fsync after every append (power-loss durability per swing). Off by
    /// default: appends are flushed to the OS, and Sync() batches the
    /// fsync.
    bool fsync_each = false;
    /// File system to run on; null means io::Env::Default(). Must
    /// outlive the log.
    io::Env* env = nullptr;
  };

  /// Opens (or creates) the ref log at \p path, replaying existing
  /// records. Torn or corrupt tails are truncated, not fatal.
  static Status Open(const std::string& path, const Options& opts,
                     std::shared_ptr<RefLog>* out);

  ~RefLog();

  /// Appends one head movement. Thread-safe. Fails fast with the sticky
  /// error once one is latched.
  Status Append(const std::string& name, const Hash& head) EXCLUDES(mu_);

  /// Appends a deletion tombstone for \p name.
  Status AppendDelete(const std::string& name) {
    return Append(name, Hash::Zero());
  }

  /// fsyncs everything appended so far.
  Status Sync() EXCLUDES(mu_);

  /// The sticky disk error: OK until the first failed append/flush/fsync,
  /// that failure's typed Status afterwards. Never resets (reopen to
  /// recover) — mirrors FileNodeStore::DiskStatus.
  Status DiskStatus() const EXCLUDES(mu_);

  /// Branch heads recovered at open: last record per name, tombstones
  /// removed. Snapshot of open time — later appends don't show up here.
  const std::map<std::string, Hash>& recovered_heads() const {
    return recovered_;
  }

  /// Records dropped during replay (torn tail / digest mismatch).
  uint64_t recovered_truncations() const { return truncations_; }

  const std::string& path() const { return path_; }

 private:
  RefLog(io::Env* env, std::string path,
         std::unique_ptr<io::WritableFile> file, Options opts);
  Status Replay() EXCLUDES(mu_);

  /// Atomically replaces the log with \p len bytes of \p data (temp file
  /// + fsync + RenameAndSyncDir) and reopens the append handle — the
  /// compact/rewrite primitive replay's truncation uses.
  Status RewriteLog(const char* data, size_t len) REQUIRES(mu_);

  io::Env* const env_;
  std::string path_;
  mutable Mutex mu_;
  std::unique_ptr<io::WritableFile> file_ GUARDED_BY(mu_);
  Status io_error_ GUARDED_BY(mu_);
  Options opts_;
  // Written once by Replay (under mu_, before the log is shared), then
  // immutable — which is why the const-ref accessors above are lock-free.
  std::map<std::string, Hash> recovered_;
  uint64_t truncations_ = 0;
};

}  // namespace siri

#endif  // SIRI_VERSION_REF_LOG_H_
