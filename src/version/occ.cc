// Copyright (c) 2026 The siri Authors. MIT license.

#include "version/occ.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "crypto/sha256.h"
#include "store/node_store.h"
#include "store/staging_store.h"

namespace siri {

uint64_t MergeBackoffMicros(const MergeCommitOptions& opts, int ordinal) {
  if (opts.backoff_init_micros == 0) return 0;
  // Clamp the exponent: a handful of doublings saturates any sane
  // backoff_max, and an unclamped shift would be UB at large ordinals.
  const int doublings = std::min(std::max(ordinal, 0), 20);
  return std::min(opts.backoff_init_micros << doublings,
                  opts.backoff_max_micros);
}

Result<Hash> MergeBaseRoot(BranchManager* mgr, ImmutableIndex* index,
                           const std::optional<Hash>& expected_head,
                           const Hash& actual_head) {
  if (!expected_head) return index->EmptyRoot();
  Hash base_hash = *expected_head;
  auto fast_forward = mgr->IsAncestor(*expected_head, actual_head);
  if (!fast_forward.ok()) return fast_forward.status();
  if (!*fast_forward) {
    auto mb = mgr->MergeBase(*expected_head, actual_head);
    if (!mb.ok()) return mb.status();
    base_hash = *mb;
  }
  auto mb_commit = mgr->ReadCommit(base_hash);
  if (!mb_commit.ok()) return mb_commit.status();
  return mb_commit->root;
}

Result<bool> CommitAlreadyApplied(BranchManager* mgr, const Hash& head,
                                  const Hash& target,
                                  uint64_t target_sequence) {
  PageSet seen;
  std::vector<Hash> stack = {head};
  while (!stack.empty()) {
    const Hash h = stack.back();
    stack.pop_back();
    if (h == target) return true;
    if (!seen.insert(h).second) continue;
    auto c = mgr->ReadCommit(h);
    if (!c.ok()) return c.status();
    // Sequences strictly dominate parents, so a commit at or below the
    // target's sequence cannot hold it anywhere in its ancestry — the
    // target itself was compared above, before pruning.
    if (c->sequence > target_sequence) {
      for (const Hash& p : c->parents) stack.push_back(p);
    }
  }
  return false;
}

Result<MergeCommitResult> CommitWithMerge(
    BranchManager* mgr, ImmutableIndex* index, const std::string& branch,
    const Hash& new_root, const std::string& author,
    const std::string& message, const std::optional<Hash>& expected_head,
    const MergeCommitOptions& opts) {
  MergeCommitResult out;
  NodeStore* merge_store = index->store();
  NodeStore* commit_store = opts.commit_store ? opts.commit_store : merge_store;

  // Fast path: nobody moved the head since the caller read it. The commit
  // object ships through the caller's store (one upload RPC / one append)
  // and the head CAS flushes it before swinging.
  CasResult r = mgr->CommitOnBranchIf(branch, expected_head, new_root, author,
                                      message, commit_store);
  if (r.ok()) {
    out.head = out.commit = r.commit;
    return out;
  }

  // Our side of every merge attempt is fixed: the content commit of
  // new_root on top of expected_head. It is re-staged per attempt (same
  // bytes, same digest — content addressing makes that free) so a dropped
  // attempt leaves nothing behind.
  Commit ours;
  ours.root = new_root;
  ours.author = author;
  ours.message = message;
  if (expected_head) {
    ours.parents.push_back(*expected_head);
    auto base_commit = mgr->ReadCommit(*expected_head);
    if (!base_commit.ok()) return base_commit.status();
    ours.sequence = base_commit->sequence + 1;
  }
  const std::string ours_bytes = ours.Encode();
  const Hash ours_digest = Sha256::Digest(ours_bytes);

  for (int retry = 0; retry < opts.max_retries; ++retry) {
    if (!r.status.IsConflict()) return r.status;
    ++out.cas_failures;
    const Hash actual = r.conflict->actual_head;
    mgr->RecordMergeRetry(branch);
    if (opts.on_retry) opts.on_retry(retry, actual);
    if (retry > 0) {
      const uint64_t us = MergeBackoffMicros(opts, retry - 1);
      if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
    }

    // Exactly-once under lost acks: this call may be the replay of a
    // publish whose original execution landed but whose ack never made
    // it back. The content commit is deterministic, so if its digest is
    // already reachable from the head that won, there is nothing left to
    // do — re-merging would double-apply. Checking inside the conflict
    // loop is what makes it race-free: whichever of original and replay
    // loses the head CAS re-enters here and observes the other's landing.
    auto applied = CommitAlreadyApplied(mgr, actual, ours_digest,
                                        ours.sequence);
    if (!applied.ok()) return applied.status();
    if (*applied) {
      out.head = actual;
      out.commit = ours_digest;
      out.already_applied = true;
      return out;
    }

    auto winner = mgr->ReadCommit(actual);
    if (!winner.ok()) return winner.status();

    // The merge base: lowest common ancestor of what we built on and what
    // won (O(divergence) in the normal race — see MergeBaseRoot). This
    // matters because a contended branch runs one merge attempt per lost
    // race.
    auto base_root = MergeBaseRoot(mgr, index, expected_head, actual);
    if (!base_root.ok()) return base_root.status();

    // Stage the whole attempt — merged index pages and both commit
    // objects — over the store the index is bound to. A lost CAS drops
    // the staging store unflushed: zero writes, zero RPCs, zero fsyncs.
    auto staging = std::make_shared<StagingNodeStore>(merge_store);
    auto merge_index = index->WithStore(staging);
    auto merged =
        merge_index->Merge3(new_root, winner->root, *base_root, opts.resolver);
    if (!merged.ok()) return merged.status();

    const Hash ours_hash = staging->Put(ours_bytes);
    Commit merge_commit;
    merge_commit.root = *merged;
    merge_commit.parents = {actual, ours_hash};  // first parent: the winner
    merge_commit.author = author;
    merge_commit.message = "merge: " + message;
    merge_commit.sequence = std::max(winner->sequence, ours.sequence) + 1;
    const Hash merge_hash = staging->Put(merge_commit.Encode());

    // Capture the staged set before the CAS: landing flushes the staging
    // store and clears its batch, and the publish-ack cache push needs
    // exactly these nodes.
    auto staged = std::make_shared<NodeBatch>(staging->staged_batch());
    r = mgr->CompareAndSwapHead(branch, actual, merge_hash, staging.get());
    if (r.ok()) {
      out.head = merge_hash;
      out.commit = ours_hash;
      ++out.merge_commits;
      out.staged = std::move(staged);
      return out;
    }
  }
  if (!r.status.IsConflict()) return r.status;
  return Status::Conflict("branch '" + branch + "' still contended after " +
                          std::to_string(opts.max_retries) + " merge retries");
}

}  // namespace siri
