// Copyright (c) 2026 The siri Authors. MIT license.

#include "version/transfer.h"

#include <algorithm>

#include "common/varint.h"
#include "store/staging_store.h"

namespace siri {

namespace {
constexpr char kPackMagic[] = "SIRIPACK1";
}  // namespace

Result<VersionPack> PackVersions(const ImmutableIndex& index,
                                 const std::vector<Hash>& roots,
                                 const std::vector<Hash>& have) {
  PageSet wanted;
  for (const Hash& r : roots) {
    Status s = index.CollectPages(r, &wanted);
    if (!s.ok()) return s;
  }
  PageSet known;
  for (const Hash& r : have) {
    Status s = index.CollectPages(r, &known);
    if (!s.ok()) return s;
  }

  VersionPack pack;
  pack.roots = roots;
  pack.bytes.append(kPackMagic);
  uint64_t count = 0;
  std::string body;
  for (const Hash& page : wanted) {
    if (known.count(page) > 0) continue;  // receiver already has it
    auto bytes = index.store()->Get(page);
    if (!bytes.ok()) return bytes.status();
    PutLengthPrefixed(&body, **bytes);
    ++count;
  }
  PutVarint64(&pack.bytes, count);
  pack.bytes.append(body);
  return pack;
}

Status UnpackVersions(const VersionPack& pack, NodeStore* store) {
  Slice in(pack.bytes);
  const size_t magic_len = sizeof(kPackMagic) - 1;
  if (in.size() < magic_len ||
      Slice(in.data(), magic_len) != Slice(kPackMagic)) {
    return Status::Corruption("bad pack magic");
  }
  in.remove_prefix(magic_len);
  uint64_t count = 0;
  if (!GetVarint64(&in, &count)) return Status::Corruption("bad pack count");
  // Digest every page up front (content addressing implies and verifies
  // the digests) — a pack is exactly the many-independent-pages batch the
  // SHA-256 pool exists for, so bulk-stage through PutPages (which
  // digests large batches in parallel) and land the whole pack with one
  // PutMany: receiving a version costs one store batch instead of one
  // locked Put per page.
  std::vector<std::shared_ptr<const std::string>> pages;
  // `count` is untrusted input: bound the pre-validation reservation by a
  // small constant so a corrupt varint cannot force a large allocation
  // (vector growth handles genuinely bigger packs).
  pages.reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
  for (uint64_t i = 0; i < count; ++i) {
    std::string page;
    if (!GetLengthPrefixed(&in, &page)) {
      return Status::Corruption("truncated pack page");
    }
    pages.push_back(std::make_shared<const std::string>(std::move(page)));
  }
  if (!in.empty()) return Status::Corruption("trailing pack bytes");
  StagingNodeStore staging(store);
  staging.PutPages(pages);
  staging.FlushBatch();
  return Status::OK();
}

}  // namespace siri
