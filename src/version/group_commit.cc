// Copyright (c) 2026 The siri Authors. MIT license.

#include "version/group_commit.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "crypto/sha256.h"
#include "store/staging_store.h"

namespace siri {

namespace {

// The combined commit's parents are [head] + one content commit per
// member, and commit objects decode at most 16 parents — so a batch can
// hold 1..15 members. Clamping here (instead of trusting the caller)
// keeps a bad config from writing an undecodable head or hanging the
// gather loop.
GroupCommitOptions ClampOptions(GroupCommitOptions opts) {
  if (opts.max_batch < 1) opts.max_batch = 1;
  if (opts.max_batch > 15) opts.max_batch = 15;
  return opts;
}

}  // namespace

CommitCombiner::CommitCombiner(BranchManager* mgr, GroupCommitOptions opts)
    : mgr_(mgr), opts_(ClampOptions(std::move(opts))) {}

CommitCombiner::~CommitCombiner() { Shutdown(); }

bool CommitCombiner::IdleLocked() const {
  for (const auto& [name, lane] : lanes_) {
    // users covers threads whose request is already done but which are
    // still inside Publish (e.g. blocked reacquiring the mutex after a
    // completion wakeup): the combiner is not idle — and must not be
    // destroyed — until they have left the lane.
    if (lane.leader_active || !lane.queue.empty() || lane.users > 0) {
      return false;
    }
  }
  return true;
}

void CommitCombiner::Shutdown() {
  MutexLock lock(mu_);
  shutdown_ = true;
  // Requests already queued keep draining — each has an owner thread
  // driving it through the lane — so shutting down just means waiting for
  // the lanes to empty. New Publish calls bypass the queue from now on.
  // (Manual wait loop: a predicate lambda would hide the IdleLocked()
  // call from the thread-safety analysis.)
  while (!IdleLocked()) drain_cv_.wait(lock.native());
}

CommitCombiner::Stats CommitCombiner::stats() const {
  Stats s;
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.combined_commits = combined_commits_.load(std::memory_order_relaxed);
  s.solo_commits = solo_commits_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.max_batch_seen = max_batch_seen_.load(std::memory_order_relaxed);
  return s;
}

void CommitCombiner::RunBatch(const std::vector<Request*>& batch) {
  // One publish writes parents = [head] + one content commit per member;
  // commit objects decode at most 16 parents. Publish gathers at most
  // max_batch and PublishCombined chunks, so this is a programming-error
  // backstop, not a reachable state.
  SIRI_CHECK(batch.size() <= static_cast<size_t>(opts_.max_batch));
  if (batch.size() == 1) {
    // Solo publish: the individual retry driver IS the fast path — no
    // combined wrapper, no window, no extra commit object. The lane stays
    // held while this runs, so committers arriving during the flush pile
    // up and form the next (combined) batch.
    Request* r = batch[0];
    const PublishSpec& s = *r->spec;
    r->result = CommitWithMerge(mgr_, s.index, s.branch, s.new_root, s.author,
                                s.message, s.expected_head, opts_.merge);
    // A replay whose original already landed executed nothing — keeping
    // it out of the count is what makes solo+combined+fallbacks equal
    // the number of commits actually applied (exactly-once accounting).
    if (!(r->result->ok() && (*r->result)->already_applied)) {
      solo_commits_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  const std::string& branch = batch[0]->spec->branch;
  ImmutableIndex* index = batch[0]->spec->index;
  auto fail_all = [](const std::vector<Request*>& reqs, const Status& st) {
    for (Request* r : reqs) {
      if (!r->result && !r->fallback) r->result = Result<MergeCommitResult>(st);
    }
  };

  // Members that neither errored nor fell back yet; a lost head CAS (an
  // outside writer swung the head mid-combine) re-runs the combine for
  // exactly these.
  std::vector<Request*> pending(batch.begin(), batch.end());
  const int max_attempts = std::max(1, opts_.merge.max_retries);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      const uint64_t us = MergeBackoffMicros(opts_.merge, attempt - 2);
      if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
    }

    // The head everyone merges onto this attempt (nullopt: creation race).
    std::optional<Hash> head;
    {
      auto h = mgr_->Head(branch);
      if (h.ok()) {
        head = *h;
      } else if (!h.status().IsNotFound()) {
        fail_all(pending, h.status());
        return;
      }
    }
    Hash acc_root = index->EmptyRoot();
    uint64_t max_seq = 0;
    if (head) {
      auto hc = mgr_->ReadCommit(*head);
      if (!hc.ok()) {
        fail_all(pending, hc.status());
        return;
      }
      acc_root = hc->root;
      max_seq = hc->sequence;
    }

    // One shared staging batch for the whole publish: every merged page
    // and every commit object lands in ONE PutMany and ONE flush at the
    // head CAS below.
    auto staging = std::make_shared<StagingNodeStore>(index->store());

    // The combine folds each member's (small) delta onto the accumulated
    // chain — Merge3(acc, member, base) applies only the member's keys,
    // not the whole chain's. That makes the accumulated side "ours" at
    // the Merge3 layer, the opposite of CommitWithMerge, where the
    // committer is "ours" — so the user resolver is adapted to see the
    // member as "ours": an asymmetric resolver decides identically
    // whether a commit lands through the combiner or an individual retry.
    ConflictResolver member_resolver;
    if (opts_.merge.resolver) {
      const ConflictResolver& user = opts_.merge.resolver;
      member_resolver = [&user](const std::string& key,
                                const std::optional<std::string>& acc_side,
                                const std::optional<std::string>& member_side) {
        return user(key, member_side, acc_side);
      };
    }
    std::vector<Request*> landed;
    std::vector<Hash> content_hashes;
    // Content digests staged this attempt → the member that staged them.
    // A second member with the same digest is the replay of the first
    // (content commits are deterministic), caught below.
    std::unordered_map<Hash, Request*, HashHasher> batch_digests;
    // (replay, original) pairs whose replay acks the original's landing.
    std::vector<std::pair<Request*, Request*>> twins;

    for (Request* r : pending) {
      const PublishSpec& s = *r->spec;
      // The member's content commit, preserving its own lineage — exactly
      // the commit the individual path would have written. Built (and its
      // parent read) BEFORE any merge work so every fallible step is
      // behind us once pages flow into the shared batch: a member that
      // fails writes zero pages.
      Commit ours;
      ours.root = s.new_root;
      ours.author = s.author;
      ours.message = s.message;
      if (s.expected_head) {
        ours.parents.push_back(*s.expected_head);
        auto parent = mgr_->ReadCommit(*s.expected_head);
        if (!parent.ok()) {
          r->result = Result<MergeCommitResult>(parent.status());
          continue;
        }
        ours.sequence = parent->sequence + 1;
      }
      const std::string ours_bytes = ours.Encode();
      const Hash ours_digest = Sha256::Digest(ours_bytes);

      // Exactly-once under lost acks, mirroring the individual retry
      // driver: a member with a STALE expectation may be the replay of a
      // publish that already executed (its ack was lost mid-flight). The
      // content commit is deterministic, so history reachability decides.
      // An expectation that still matches the head is provably
      // un-applied — a landing would have moved the head — so the walk
      // costs nothing on the uncontended path.
      if (head && s.expected_head != head) {
        auto applied =
            CommitAlreadyApplied(mgr_, *head, ours_digest, ours.sequence);
        if (!applied.ok()) {
          r->result = Result<MergeCommitResult>(applied.status());
          continue;
        }
        if (*applied) {
          MergeCommitResult mr;
          mr.head = *head;
          mr.commit = ours_digest;
          mr.cas_failures = attempt - 1;
          mr.already_applied = true;
          r->result = Result<MergeCommitResult>(std::move(mr));
          continue;
        }
      }
      // The replay can also land in the SAME batch as its original (the
      // original was still queued behind an in-flight publish when the
      // replay arrived). Stage the content commit once, ack both —
      // folding it twice would double-count and write a combined commit
      // with duplicate parents.
      auto twin = batch_digests.find(ours_digest);
      if (twin != batch_digests.end()) {
        twins.emplace_back(r, twin->second);
        continue;
      }

      // Base of this member's delta: the merge base of what it built on
      // and the branch history it is folding into.
      Hash base_root = index->EmptyRoot();
      if (head) {
        auto br = MergeBaseRoot(mgr_, index, s.expected_head, *head);
        if (!br.ok()) {
          r->result = Result<MergeCommitResult>(br.status());
          continue;
        }
        base_root = *br;
      }

      Hash merged_root;
      if (acc_root == base_root) {
        merged_root = s.new_root;  // fast-forward: nothing landed since base
      } else if (s.new_root == base_root) {
        merged_root = acc_root;  // empty delta: nothing of ours to fold in
      } else {
        // Nested per-member staging: a member that conflicts mid-merge is
        // dropped WITH its partial pages — a failed combine member writes
        // zero pages to the shared batch, let alone the store.
        auto nested = std::make_shared<StagingNodeStore>(staging.get());
        auto nested_index = index->WithStore(nested);
        auto merged = nested_index->Merge3(acc_root, s.new_root, base_root,
                                           member_resolver);
        if (!merged.ok()) {
          if (merged.status().IsConflict()) {
            // This member races another member of its own batch on a key:
            // send it to the individual CommitWithMerge retry, where the
            // per-commit conflict surface (and resolver) applies. (The
            // fallback counter is bumped at the retry site — Publish /
            // PublishCombined — once the retry proves it actually
            // executed rather than deduplicating a replay.)
            r->fallback = true;
          } else {
            r->result = Result<MergeCommitResult>(merged.status());
          }
          continue;
        }
        nested->FlushBatch();  // relays pre-digested records; no re-hash
        merged_root = *merged;
      }

      r->content = staging->Put(ours_bytes);
      content_hashes.push_back(r->content);
      batch_digests.emplace(ours_digest, r);
      max_seq = std::max(max_seq, ours.sequence);
      acc_root = merged_root;
      landed.push_back(r);
    }

    if (landed.empty()) return;  // every member conflicted or errored

    // The combined commit: parents = [prior head, content_1 … content_K].
    // A batch that shrank to one member whose expectation still matches
    // the head needs no wrapper — that is just the plain fast path.
    Hash desired;
    int wrapper = 0;
    if (landed.size() == 1 && landed[0]->spec->expected_head == head) {
      desired = landed[0]->content;
    } else {
      Commit combined;
      combined.root = acc_root;
      if (head) combined.parents.push_back(*head);
      combined.parents.insert(combined.parents.end(), content_hashes.begin(),
                              content_hashes.end());
      combined.author = "group-commit";
      combined.message =
          "combine: " + std::to_string(landed.size()) + " commits";
      combined.sequence = max_seq + 1;
      desired = staging->Put(combined.Encode());
      wrapper = 1;
    }

    // Capture the staged set before the CAS flushes and clears it: the
    // publish-ack cache push ships this batch — the nodes every losing
    // committer re-reads next round — back to the clients.
    auto staged = std::make_shared<const NodeBatch>(staging->staged_batch());
    // One head swing for the whole batch. CompareAndSwapHead pre-checks,
    // flushes the staged batch (ONE PutMany + ONE store flush), re-checks
    // and swings — durability precedes visibility, exactly like the
    // per-commit path.
    CasResult cas =
        mgr_->CompareAndSwapHead(branch, head, desired, staging.get());
    if (cas.ok()) {
      for (Request* r : landed) {
        MergeCommitResult mr;
        mr.head = desired;
        mr.commit = r->content;
        mr.cas_failures = attempt - 1;
        mr.merge_commits = wrapper;
        mr.staged = staged;
        r->result = Result<MergeCommitResult>(std::move(mr));
      }
      // Twins ack their original's landing: same commit, same head, but
      // no second execution — they stay out of the landed count below.
      for (auto& [replay, original] : twins) {
        MergeCommitResult mr;
        mr.head = desired;
        mr.commit = original->content;
        mr.cas_failures = attempt - 1;
        mr.merge_commits = wrapper;
        mr.staged = staged;
        mr.already_applied = true;
        replay->result = Result<MergeCommitResult>(std::move(mr));
      }
      publishes_.fetch_add(1, std::memory_order_relaxed);
      if (landed.size() >= 2) {
        combined_commits_.fetch_add(landed.size(), std::memory_order_relaxed);
        mgr_->RecordCombinedCommits(branch, landed.size());
      } else {
        solo_commits_.fetch_add(1, std::memory_order_relaxed);
      }
      uint64_t seen = max_batch_seen_.load(std::memory_order_relaxed);
      while (seen < landed.size() &&
             !max_batch_seen_.compare_exchange_weak(
                 seen, landed.size(), std::memory_order_relaxed)) {
      }
      return;
    }
    if (!cas.status.IsConflict()) {
      fail_all(landed, cas.status);
      return;
    }
    // An outside writer swung the head mid-combine. The staged attempt is
    // dropped (or, if the re-check after the flush lost, is harmless
    // content-addressed garbage); re-combine the clean members against
    // the new head. Twins rejoin as ordinary members — against the new
    // head their original may dedup them (or land them) afresh.
    pending = std::move(landed);
    for (auto& tw : twins) pending.push_back(tw.first);
  }
  // Batch retries exhausted against outside writers: every remaining
  // member retries individually, where per-commit backoff applies.
  for (Request* r : pending) {
    if (r->result || r->fallback) continue;
    r->fallback = true;
  }
}

Result<MergeCommitResult> CommitCombiner::Publish(const PublishSpec& spec) {
  Request req;
  req.spec = &spec;
  {
    MutexLock lock(mu_);
    if (!shutdown_) {
      Lane& lane = lanes_[spec.branch];
      ++lane.users;
      lane.queue.push_back(&req);
      // A leader gathering inside its publish window learns of us now.
      if (lane.leader_active) lane.cv.notify_all();
      while (!req.done) {
        if (!lane.leader_active && lane.queue.front() == &req) {
          lane.leader_active = true;
          // Wait-a-little: a leader with company holds the door open for
          // stragglers up to the window; a solo committer publishes
          // immediately and never waits.
          if (opts_.window_micros > 0 && lane.queue.size() > 1 &&
              lane.queue.size() < static_cast<size_t>(opts_.max_batch)) {
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(opts_.window_micros);
            while (lane.queue.size() < static_cast<size_t>(opts_.max_batch) &&
                   lane.cv.wait_until(lock.native(), deadline) !=
                       std::cv_status::timeout) {
            }
          }
          std::vector<Request*> group;
          while (!lane.queue.empty() &&
                 group.size() < static_cast<size_t>(opts_.max_batch)) {
            group.push_back(lane.queue.front());
            lane.queue.pop_front();
          }
          lock.Unlock();
          RunBatch(group);
          lock.Lock();
          for (Request* r : group) r->done = true;
          lane.leader_active = false;
          lane.cv.notify_all();
          drain_cv_.notify_all();
          break;  // our own request led from the front, so it is done
        }
        lane.cv.wait(lock.native());
      }
      // Last thread out of an idle lane erases it, so the lane map does
      // not grow with every branch name ever published. Anyone still
      // queued or leading keeps it alive (their wait sits on its cv).
      // Shutdown's drain predicate counts users too, so it learns of the
      // exit here.
      if (--lane.users == 0 && lane.queue.empty() && !lane.leader_active) {
        lanes_.erase(spec.branch);
        drain_cv_.notify_all();
      }
    }
  }
  if (req.done && !req.fallback) return std::move(*req.result);
  // Shutdown, or this member fell out of its combined batch: individual
  // CommitWithMerge retry on the caller's own thread — same semantics,
  // just uncombined.
  auto res = CommitWithMerge(mgr_, spec.index, spec.branch, spec.new_root,
                             spec.author, spec.message, spec.expected_head,
                             opts_.merge);
  // Counted here, not where the member fell out of its batch: a fallback
  // whose retry discovered the commit already applied (a lost-ack replay)
  // executed nothing, and must stay out of the executed-commit tally.
  if (req.fallback && !(res.ok() && res->already_applied)) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  return res;
}

std::vector<Result<MergeCommitResult>> CommitCombiner::PublishCombined(
    const std::vector<PublishSpec>& specs) {
  std::vector<Request> requests(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SIRI_CHECK(specs[i].branch == specs[0].branch);
    requests[i].spec = &specs[i];
  }
  // Chain of maximal batches: one publish holds at most max_batch
  // members (the 16-parent commit format), so an oversized spec vector
  // lands as several combined commits, later chunks chaining on the
  // head the earlier ones swung.
  for (size_t start = 0; start < requests.size();
       start += static_cast<size_t>(opts_.max_batch)) {
    const size_t end = std::min(
        requests.size(), start + static_cast<size_t>(opts_.max_batch));
    std::vector<Request*> group;
    group.reserve(end - start);
    for (size_t i = start; i < end; ++i) group.push_back(&requests[i]);
    RunBatch(group);
  }

  std::vector<Result<MergeCommitResult>> out;
  out.reserve(requests.size());
  for (Request& r : requests) {
    if (r.result) {
      out.push_back(std::move(*r.result));
      continue;
    }
    const PublishSpec& s = *r.spec;
    auto res = CommitWithMerge(mgr_, s.index, s.branch, s.new_root, s.author,
                               s.message, s.expected_head, opts_.merge);
    if (r.fallback && !(res.ok() && res->already_applied)) {
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
    out.push_back(std::move(res));
  }
  return out;
}

}  // namespace siri
