// Copyright (c) 2026 The siri Authors. MIT license.
//
// Version transfer: pack the pages of one or more versions into a
// self-verifying byte stream and unpack them into another store. This is
// the mechanism behind Figure 1's "transmission time" — shipping a new
// version to a replica costs only the pages the receiver doesn't already
// have (the sender can subtract a base version's page set).

#ifndef SIRI_VERSION_TRANSFER_H_
#define SIRI_VERSION_TRANSFER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/hash.h"
#include "index/index.h"
#include "store/node_store.h"

namespace siri {

/// \brief A packed set of pages plus the version roots they support.
struct VersionPack {
  std::vector<Hash> roots;
  std::string bytes;  ///< serialized pages

  uint64_t ByteSize() const { return bytes.size(); }
};

/// Packs every page reachable from \p roots through \p index, minus the
/// pages reachable from \p have (the receiver's known versions).
Result<VersionPack> PackVersions(const ImmutableIndex& index,
                                 const std::vector<Hash>& roots,
                                 const std::vector<Hash>& have = {});

/// Unpacks into \p store, verifying every page digest. After a successful
/// unpack (plus the pages of `have`), each packed root is fully readable.
Status UnpackVersions(const VersionPack& pack, NodeStore* store);

}  // namespace siri

#endif  // SIRI_VERSION_TRANSFER_H_
