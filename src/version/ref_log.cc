// Copyright (c) 2026 The siri Authors. MIT license.

#include "version/ref_log.h"

#include <cstring>

#include "common/record_io.h"
#include "common/slice.h"
#include "common/varint.h"
#include "crypto/sha256.h"

namespace siri {

namespace {

constexpr char kRefMagic[] = "SIRIREF\x01";
constexpr size_t kRefMagicSize = 8;

// payload = `varint name-len | name | 32-byte head`.
std::string EncodePayload(const std::string& name, const Hash& head) {
  std::string payload;
  PutLengthPrefixed(&payload, name);
  payload.append(reinterpret_cast<const char*>(head.data()), Hash::kSize);
  return payload;
}

bool DecodePayload(Slice payload, std::string* name, Hash* head) {
  if (!GetLengthPrefixed(&payload, name)) return false;
  if (payload.size() != Hash::kSize) return false;
  *head = Hash::FromBytes(payload.data());
  return true;
}

// One framed record from *in (advancing it), via the framing shared with
// the page log (common/record_io.h). Returns false when the remaining
// bytes do not frame a whole record; sets *verified false on a digest
// mismatch (record framed but corrupt).
bool ReadFramed(Slice* in, std::string* payload, bool* verified) {
  Hash stored;
  if (!ReadDigestRecord(in, payload, &stored)) return false;
  *verified = Sha256::Digest(*payload) == stored;
  return true;
}

}  // namespace

RefLog::RefLog(io::Env* env, std::string path,
               std::unique_ptr<io::WritableFile> file, Options opts)
    : env_(env), path_(std::move(path)), file_(std::move(file)),
      opts_(opts) {}

RefLog::~RefLog() = default;

Status RefLog::Open(const std::string& path, const Options& opts,
                    std::shared_ptr<RefLog>* out) {
  io::Env* env = opts.env != nullptr ? opts.env : io::Env::Default();
  std::unique_ptr<io::WritableFile> f;
  Status s = env->NewWritableFile(path, /*truncate=*/false, &f);
  if (!s.ok()) return s;
  std::shared_ptr<RefLog> log(new RefLog(env, path, std::move(f), opts));
  s = log->Replay();
  if (!s.ok()) return s;
  *out = std::move(log);
  return Status::OK();
}

Status RefLog::RewriteLog(const char* data, size_t len) {
  const std::string tmp = path_ + ".tmp";
  std::unique_ptr<io::WritableFile> f;
  Status s = env_->NewWritableFile(tmp, /*truncate=*/true, &f);
  if (!s.ok()) return s;
  if (len > 0) s = f->Append(Slice(data, len));
  if (s.ok()) s = f->Sync();
  f.reset();
  if (!s.ok()) {
    (void)env_->DeleteFile(tmp);
    return s;
  }
  // Rename + parent-directory fsync: without the dir fsync a power cut
  // after this rewrite can roll the directory back to the old inode —
  // resurrecting the torn tail and orphaning every head swing fsynced
  // into the rewritten file.
  s = env_->RenameAndSyncDir(tmp, path_);
  if (!s.ok()) return s;
  std::unique_ptr<io::WritableFile> fresh;
  s = env_->NewWritableFile(path_, /*truncate=*/false, &fresh);
  if (!s.ok()) return s;
  file_ = std::move(fresh);
  return Status::OK();
}

Status RefLog::Replay() {
  // Open() calls this before the log is shared; the lock keeps the
  // guarded-field contract on file_ uniform.
  MutexLock lock(mu_);
  std::string contents;
  Status read = env_->ReadFileToString(path_, &contents);
  if (!read.ok()) return read;

  Slice in(contents);
  if (in.size() < kRefMagicSize) {
    // Fresh (or torn-header) log: stamp a clean header. No heads existed
    // in a sub-header file, so nothing is dropped.
    if (std::memcmp(in.data(), kRefMagic, in.size()) != 0) {
      return Status::Corruption("unrecognized ref log in " + path_);
    }
    return RewriteLog(kRefMagic, kRefMagicSize);
  }
  if (std::memcmp(in.data(), kRefMagic, kRefMagicSize) != 0) {
    return Status::Corruption("unrecognized ref log in " + path_);
  }
  in.remove_prefix(kRefMagicSize);

  const char* valid_end = in.data();
  while (!in.empty()) {
    std::string payload;
    bool verified = false;
    std::string name;
    Hash head;
    const bool framed = ReadFramed(&in, &payload, &verified);
    if (!framed || !verified || !DecodePayload(payload, &name, &head)) {
      // First bad record: drop it and everything after it, counting each
      // dropped record once — the corrupt (or torn partial) record
      // itself, every complete record past it, and a final partial tail.
      ++truncations_;
      if (framed) {
        // `in` already sits past the corrupt record; walk the rest.
        while (!in.empty()) {
          ++truncations_;
          std::string rest;
          bool rest_ok = false;
          if (!ReadFramed(&in, &rest, &rest_ok)) break;
        }
      }
      break;
    }
    valid_end = in.data();
    if (head.IsZero()) {
      recovered_.erase(name);  // deletion tombstone
    } else {
      recovered_[name] = head;
    }
  }

  if (truncations_ > 0) {
    // Rewrite the file back to the valid prefix (atomically — temp +
    // rename + dir fsync) so future appends are framed cleanly and a
    // crash mid-recovery cannot resurrect the torn tail.
    const size_t keep = static_cast<size_t>(valid_end - contents.data());
    Status s = RewriteLog(contents.data(), keep);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status RefLog::Append(const std::string& name, const Hash& head) {
  const std::string payload = EncodePayload(name, head);
  std::string record;
  AppendDigestRecord(&record, Sha256::Digest(payload), payload);

  MutexLock lock(mu_);
  if (!io_error_.ok()) {
    // Sticky failure: a record appended now could land after a torn one
    // and bury it mid-file, beyond what replay's truncation recovers.
    return io_error_;
  }
  Status s = file_->Append(record);
  // Flush so the record survives process death (_exit skips stdio
  // cleanup); fsync_each upgrades to power-loss durability per swing.
  if (s.ok()) s = file_->Flush();
  if (s.ok() && opts_.fsync_each) s = file_->Sync();
  if (!s.ok()) {
    if (io_error_.ok()) io_error_ = s;
    return io_error_;
  }
  return Status::OK();
}

Status RefLog::Sync() {
  MutexLock lock(mu_);
  if (!io_error_.ok()) return io_error_;
  Status s = file_->Sync();
  if (!s.ok()) {
    // A failed fsync may have discarded the dirty bytes; no later fsync
    // can cover them, so the error is permanent for this handle.
    if (io_error_.ok()) io_error_ = s;
    return io_error_;
  }
  return Status::OK();
}

Status RefLog::DiskStatus() const {
  MutexLock lock(mu_);
  return io_error_;
}

}  // namespace siri
