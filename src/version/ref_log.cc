// Copyright (c) 2026 The siri Authors. MIT license.

#include "version/ref_log.h"

#include <unistd.h>

#include <cstring>

#include "common/record_io.h"
#include "common/slice.h"
#include "common/varint.h"
#include "crypto/sha256.h"

namespace siri {

namespace {

constexpr char kRefMagic[] = "SIRIREF\x01";
constexpr size_t kRefMagicSize = 8;

// payload = `varint name-len | name | 32-byte head`.
std::string EncodePayload(const std::string& name, const Hash& head) {
  std::string payload;
  PutLengthPrefixed(&payload, name);
  payload.append(reinterpret_cast<const char*>(head.data()), Hash::kSize);
  return payload;
}

bool DecodePayload(Slice payload, std::string* name, Hash* head) {
  if (!GetLengthPrefixed(&payload, name)) return false;
  if (payload.size() != Hash::kSize) return false;
  *head = Hash::FromBytes(payload.data());
  return true;
}

// One framed record from *in (advancing it), via the framing shared with
// the page log (common/record_io.h). Returns false when the remaining
// bytes do not frame a whole record; sets *verified false on a digest
// mismatch (record framed but corrupt).
bool ReadFramed(Slice* in, std::string* payload, bool* verified) {
  Hash stored;
  if (!ReadDigestRecord(in, payload, &stored)) return false;
  *verified = Sha256::Digest(*payload) == stored;
  return true;
}

}  // namespace

RefLog::RefLog(std::string path, FILE* file, Options opts)
    : path_(std::move(path)), file_(file), opts_(opts) {}

RefLog::~RefLog() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status RefLog::Open(const std::string& path, const Options& opts,
                    std::shared_ptr<RefLog>* out) {
  FILE* f = std::fopen(path.c_str(), "a+b");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " + strerror(errno));
  }
  std::shared_ptr<RefLog> log(new RefLog(path, f, opts));
  Status s = log->Replay();
  if (!s.ok()) return s;
  *out = std::move(log);
  return Status::OK();
}

Status RefLog::Replay() {
  // Open() calls this before the log is shared; the lock keeps the
  // guarded-field contract on file_ uniform.
  MutexLock lock(mu_);
  std::fseek(file_, 0, SEEK_END);
  const long end = std::ftell(file_);
  if (end < 0) return Status::IOError("ftell failed");
  std::rewind(file_);

  std::string contents;
  contents.resize(static_cast<size_t>(end));
  if (end > 0 &&
      std::fread(contents.data(), 1, contents.size(), file_) !=
          contents.size()) {
    return Status::IOError("short read replaying " + path_);
  }

  Slice in(contents);
  if (in.size() < kRefMagicSize) {
    // Fresh (or torn-header) log: stamp a clean header. No heads existed
    // in a sub-header file, so nothing is dropped.
    if (std::memcmp(in.data(), kRefMagic, in.size()) != 0) {
      return Status::Corruption("unrecognized ref log in " + path_);
    }
    FILE* fresh = std::fopen(path_.c_str(), "wb");
    if (fresh == nullptr) return Status::IOError("cannot restamp " + path_);
    if (std::fwrite(kRefMagic, 1, kRefMagicSize, fresh) != kRefMagicSize ||
        std::fflush(fresh) != 0) {
      std::fclose(fresh);
      return Status::IOError("cannot write ref header to " + path_);
    }
    std::fclose(fresh);
    FILE* reopened = std::fopen(path_.c_str(), "a+b");
    if (reopened == nullptr) return Status::IOError("cannot reopen " + path_);
    std::fclose(file_);
    file_ = reopened;
    return Status::OK();
  }
  if (std::memcmp(in.data(), kRefMagic, kRefMagicSize) != 0) {
    return Status::Corruption("unrecognized ref log in " + path_);
  }
  in.remove_prefix(kRefMagicSize);

  const char* valid_end = in.data();
  while (!in.empty()) {
    std::string payload;
    bool verified = false;
    std::string name;
    Hash head;
    const bool framed = ReadFramed(&in, &payload, &verified);
    if (!framed || !verified || !DecodePayload(payload, &name, &head)) {
      // First bad record: drop it and everything after it, counting each
      // dropped record once — the corrupt (or torn partial) record
      // itself, every complete record past it, and a final partial tail.
      ++truncations_;
      if (framed) {
        // `in` already sits past the corrupt record; walk the rest.
        while (!in.empty()) {
          ++truncations_;
          std::string rest;
          bool rest_ok = false;
          if (!ReadFramed(&in, &rest, &rest_ok)) break;
        }
      }
      break;
    }
    valid_end = in.data();
    if (head.IsZero()) {
      recovered_.erase(name);  // deletion tombstone
    } else {
      recovered_[name] = head;
    }
  }

  if (truncations_ > 0) {
    // Truncate the file back to the valid prefix so future appends are
    // framed cleanly.
    const long keep = static_cast<long>(valid_end - contents.data());
    if (truncate(path_.c_str(), keep) != 0) {
      return Status::IOError("cannot truncate " + path_);
    }
    FILE* reopened = std::fopen(path_.c_str(), "a+b");
    if (reopened == nullptr) return Status::IOError("cannot reopen " + path_);
    std::fclose(file_);
    file_ = reopened;
  }
  std::fseek(file_, 0, SEEK_END);
  return Status::OK();
}

Status RefLog::Append(const std::string& name, const Hash& head) {
  const std::string payload = EncodePayload(name, head);
  std::string record;
  AppendDigestRecord(&record, Sha256::Digest(payload), payload);

  MutexLock lock(mu_);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("ref log append failed");
  }
  // fflush so the record survives process death (_exit skips stdio
  // cleanup); fsync_each upgrades to power-loss durability per swing.
  if (std::fflush(file_) != 0) return Status::IOError("ref log fflush failed");
  if (opts_.fsync_each && fsync(fileno(file_)) != 0) {
    return Status::IOError("ref log fsync failed");
  }
  return Status::OK();
}

Status RefLog::Sync() {
  MutexLock lock(mu_);
  if (std::fflush(file_) != 0) return Status::IOError("ref log fflush failed");
  if (fsync(fileno(file_)) != 0) {
    return Status::IOError("ref log fsync failed");
  }
  return Status::OK();
}

}  // namespace siri
