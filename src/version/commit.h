// Copyright (c) 2026 The siri Authors. MIT license.
//
// Commit objects and branch management — the "forkable application"
// surface of Forkbase (§2.1, §5.6): named branches over index versions,
// with a tamper-evident commit history. A commit is itself a node in the
// content-addressed store, so history is deduplicated, shareable, and
// verifiable exactly like index pages:
//
//   commit = { index root digest, parent commit digests, author, message,
//              logical timestamp }
//
// The commit digest commits to the entire reachable history (a Merkle
// DAG, as in git).

#ifndef SIRI_VERSION_COMMIT_H_
#define SIRI_VERSION_COMMIT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/hash.h"
#include "store/node_store.h"

namespace siri {

/// \brief One node of the version DAG.
struct Commit {
  Hash root;                  ///< index version this commit points at
  std::vector<Hash> parents;  ///< zero (initial), one (linear), two (merge)
  std::string author;
  std::string message;
  uint64_t sequence = 0;      ///< logical clock (max(parents)+1)

  /// Canonical serialization (stable across processes).
  std::string Encode() const;
  static Result<Commit> Decode(Slice bytes);
};

/// \brief Branch heads + commit storage over a NodeStore.
///
/// Not thread-safe; guard externally if shared.
class BranchManager {
 public:
  explicit BranchManager(NodeStorePtr store) : store_(std::move(store)) {}

  /// Writes a commit object; returns its digest.
  Result<Hash> WriteCommit(const Commit& commit);

  /// Loads a commit by digest.
  Result<Commit> ReadCommit(const Hash& commit_hash) const;

  /// Creates a branch pointing at \p commit_hash. Fails if it exists.
  Status CreateBranch(const std::string& name, const Hash& commit_hash);

  /// Moves an existing branch head.
  Status MoveBranch(const std::string& name, const Hash& commit_hash);

  Status DeleteBranch(const std::string& name);

  /// Head commit digest of \p name, or NotFound.
  Result<Hash> Head(const std::string& name) const;

  std::vector<std::string> ListBranches() const;

  /// Convenience: commit \p new_root on top of branch \p name (creating
  /// the branch at an initial commit if absent) and advance the head.
  Result<Hash> CommitOnBranch(const std::string& name, const Hash& new_root,
                              const std::string& author,
                              const std::string& message);

  /// Walks history from \p from (newest first), up to \p limit commits.
  Result<std::vector<std::pair<Hash, Commit>>> Log(const Hash& from,
                                                   size_t limit = 64) const;

  /// Lowest common ancestor of two commits — the natural base for
  /// ImmutableIndex::Merge3. NotFound when histories are unrelated.
  Result<Hash> MergeBase(const Hash& a, const Hash& b) const;

  /// True if \p ancestor is reachable from \p descendant.
  Result<bool> IsAncestor(const Hash& ancestor, const Hash& descendant) const;

 private:
  NodeStorePtr store_;
  std::map<std::string, Hash> branches_;
};

}  // namespace siri

#endif  // SIRI_VERSION_COMMIT_H_
