// Copyright (c) 2026 The siri Authors. MIT license.
//
// Commit objects and branch management — the "forkable application"
// surface of Forkbase (§2.1, §5.6): named branches over index versions,
// with a tamper-evident commit history. A commit is itself a node in the
// content-addressed store, so history is deduplicated, shareable, and
// verifiable exactly like index pages:
//
//   commit = { index root digest, parent commit digests, author, message,
//              logical timestamp }
//
// The commit digest commits to the entire reachable history (a Merkle
// DAG, as in git).
//
// Concurrency: branch heads move by optimistic concurrency control. The
// head table is sharded (per-shard mutex, shard keyed by branch name) and
// every head movement is a compare-and-swap: CommitOnBranchIf /
// CompareAndSwapHead fail with a typed Conflict carrying the head that
// actually won instead of clobbering a concurrent committer. The merge
// retry driver on top of the CAS primitives lives in version/occ.h.

#ifndef SIRI_VERSION_COMMIT_H_
#define SIRI_VERSION_COMMIT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "crypto/hash.h"
#include "store/node_store.h"
#include "version/ref_log.h"

namespace siri {

/// \brief One node of the version DAG.
struct Commit {
  Hash root;                  ///< index version this commit points at
  std::vector<Hash> parents;  ///< zero (initial), one (linear), two (merge)
  std::string author;
  std::string message;
  uint64_t sequence = 0;      ///< logical clock (max(parents)+1)

  /// Canonical serialization (stable across processes).
  std::string Encode() const;
  static Result<Commit> Decode(Slice bytes);
};

/// \brief Typed conflict payload of a failed head CAS: the head commit
/// that actually won the race (what the loser must merge against).
struct HeadConflict {
  Hash actual_head;
};

/// \brief Outcome of an optimistic branch-head operation. Exactly one of
/// three shapes:
///   - ok():                  `commit` is the new head digest
///   - status.IsConflict():   `conflict` carries the winning head
///   - any other error:       IO/corruption/NotFound from the store walk
///
/// [[nodiscard]]: dropping a CasResult discards both the conflict signal
/// and the error — a silent lost update. Callers that genuinely race for
/// side effects must say so with a (void) cast and a comment.
struct [[nodiscard]] CasResult {
  Status status;
  Hash commit;                          ///< new head; valid iff status.ok()
  std::optional<HeadConflict> conflict; ///< set iff status.IsConflict()

  bool ok() const { return status.ok(); }

  static CasResult Committed(const Hash& h) {
    CasResult r;
    r.commit = h;
    return r;
  }
  static CasResult Conflicted(const Hash& actual) {
    CasResult r;
    r.status = Status::Conflict("branch head moved: now " + actual.ToHex());
    r.conflict = HeadConflict{actual};
    return r;
  }
  static CasResult Error(Status s) {
    CasResult r;
    r.status = std::move(s);
    return r;
  }
};

/// \brief Per-branch optimistic-concurrency counters.
struct BranchStats {
  uint64_t commits = 0;        ///< successful head movements
  uint64_t cas_failures = 0;   ///< attempts that lost the head race
  uint64_t merge_retries = 0;  ///< merge-commit retries driven by OCC
  /// Commits that landed as part of a multi-committer combined publish
  /// (version/group_commit.h): a batch of K ≥ 2 adds K. commits counts
  /// head *movements*, so commits_per_fsync > 1 shows up here, not there.
  uint64_t combined_commits = 0;
};

/// \brief Branch heads + commit storage over a NodeStore.
///
/// Internally thread-safe: the head table is sharded by branch name, each
/// shard guarded by its own mutex, so concurrent commits to different
/// branches never contend and commits to one branch serialize only on the
/// pointer swing itself (the expensive parts — staging, hashing, the
/// store flush — happen outside the shard lock).
class BranchManager {
 public:
  static constexpr int kShards = 8;

  explicit BranchManager(NodeStorePtr store) : store_(std::move(store)) {}

  /// Writes a commit object; returns its digest.
  Result<Hash> WriteCommit(const Commit& commit);

  /// Loads a commit by digest.
  Result<Commit> ReadCommit(const Hash& commit_hash) const;

  /// Creates a branch pointing at \p commit_hash. Fails if it exists.
  Status CreateBranch(const std::string& name, const Hash& commit_hash);

  /// Moves an existing branch head unconditionally (administrative reset;
  /// concurrent committers may lose silently — prefer CompareAndSwapHead).
  Status MoveBranch(const std::string& name, const Hash& commit_hash);

  Status DeleteBranch(const std::string& name);

  /// Head commit digest of \p name, or NotFound.
  Result<Hash> Head(const std::string& name) const;

  std::vector<std::string> ListBranches() const;

  /// Optimistic head update: moves \p name from \p expected to \p desired
  /// atomically. \p expected == nullopt means "the branch must not exist
  /// yet" (creation CAS). On a lost race the result is a typed Conflict
  /// carrying the head that won; per-branch cas_failures is bumped.
  ///
  /// \p flush_first (optional) is flushed after the head is confirmed to
  /// still match but before it is swung — the durability point of a
  /// commit. Losers therefore drop their staged batch without paying the
  /// flush, and a failed flush leaves the head untouched. The flush runs
  /// outside the shard lock, so concurrent committers overlap their
  /// fsyncs/upload RPCs; the unlucky loser of the re-check after the
  /// flush pays one wasted (harmless, content-addressed) flush.
  CasResult CompareAndSwapHead(const std::string& name,
                               const std::optional<Hash>& expected,
                               const Hash& desired,
                               NodeStore* flush_first = nullptr);

  /// Optimistic commit: writes a commit of \p new_root whose parent is
  /// \p expected_head (none for a creation) and CASes the branch head to
  /// it. A stale expectation fails with a typed Conflict at a fail-fast
  /// pre-check, before anything is written or flushed; only a head that
  /// moves *during* the attempt can orphan one already-written commit
  /// object (harmless content-addressed garbage, never a flush a loser
  /// pays at the pre-check).
  ///
  /// \p write_through (optional) is the store the commit object is written
  /// to and flushed through (e.g. a client-side store so the upload is
  /// accounted as one RPC, or a StagingNodeStore so the commit object
  /// joins a larger staged batch). Defaults to the manager's own store.
  CasResult CommitOnBranchIf(const std::string& name,
                             const std::optional<Hash>& expected_head,
                             const Hash& new_root, const std::string& author,
                             const std::string& message,
                             NodeStore* write_through = nullptr);

  /// Convenience: commit \p new_root on top of branch \p name (creating
  /// the branch at an initial commit if absent) and advance the head.
  /// Thread-safe: internally retries the head CAS, chaining on top of
  /// whichever commit won, so concurrent callers never lose a commit
  /// object (though their roots are not merged — use CommitWithMerge in
  /// version/occ.h for that).
  Result<Hash> CommitOnBranch(const std::string& name, const Hash& new_root,
                              const std::string& author,
                              const std::string& message);

  /// Counters for \p name (zeros when the branch is unknown). The
  /// snapshot is internally consistent per branch.
  BranchStats branch_stats(const std::string& name) const;

  /// Called by the OCC retry driver when a lost CAS turns into a merge
  /// attempt, so contention is observable per branch.
  void RecordMergeRetry(const std::string& name);

  /// Called by the group-commit combiner when a batch of \p count ≥ 2
  /// committers lands as one publish, so the combining win is observable
  /// per branch (branch_stats().combined_commits).
  void RecordCombinedCommits(const std::string& name, uint64_t count);

  /// Attaches a sidecar ref log (version/ref_log.h) at \p path: heads
  /// recovered from the log seed the table (names already present keep
  /// their in-memory head; recovered heads whose commit the store does
  /// not contain — the page log was truncated further back — are
  /// skipped), and every subsequent head movement is mirrored into the
  /// log before it becomes visible, making branches crash-durable
  /// alongside the pages. Attach before sharing the manager across
  /// threads; attaching twice replaces the log.
  Status AttachRefLog(const std::string& path,
                      const RefLog::Options& opts = {});

  /// fsyncs the attached ref log (OK when none is attached).
  Status SyncRefs();

  /// The attached ref log, or nullptr.
  RefLog* ref_log() const { return ref_log_.get(); }

  /// Walks history from \p from (newest first), up to \p limit commits.
  Result<std::vector<std::pair<Hash, Commit>>> Log(const Hash& from,
                                                   size_t limit = 64) const;

  /// Lowest common ancestor of two commits — the natural base for
  /// ImmutableIndex::Merge3. NotFound when histories are unrelated.
  Result<Hash> MergeBase(const Hash& a, const Hash& b) const;

  /// True if \p ancestor is reachable from \p descendant.
  Result<bool> IsAncestor(const Hash& ancestor, const Hash& descendant) const;

  NodeStore* store() const { return store_.get(); }
  const NodeStorePtr& store_ptr() const { return store_; }

 private:
  struct BranchEntry {
    Hash head;
    BranchStats stats;
  };

  struct Shard {
    mutable Mutex mu;
    std::map<std::string, BranchEntry> branches GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& name) const {
    return shards_[std::hash<std::string>{}(name) % kShards];
  }

  /// Locked head read: nullopt when the branch does not exist.
  std::optional<Hash> LoadHead(const std::string& name) const;

  /// The one check-and-swing primitive behind every CAS path. Under the
  /// shard lock: verifies the branch head matches \p expected — bumping
  /// cas_failures and producing the typed Conflict (or NotFound when
  /// \p expected names a branch that no longer exists) on mismatch — and,
  /// when \p swing_to is non-null, moves the head there and counts the
  /// commit. A null \p swing_to is a pure pre-check.
  CasResult CheckAndSwingHead(const std::string& name,
                              const std::optional<Hash>& expected,
                              const Hash* swing_to);

  NodeStorePtr store_;
  mutable Shard shards_[kShards];
  // Set once by AttachRefLog (before concurrent use); appends are
  // internally locked. Head movements append under the shard lock, so the
  // log's per-branch record order matches the head order.
  std::shared_ptr<RefLog> ref_log_;
};

}  // namespace siri

#endif  // SIRI_VERSION_COMMIT_H_
