// Copyright (c) 2026 The siri Authors. MIT license.

#include "version/commit.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/varint.h"

namespace siri {

namespace {
constexpr char kCommitTag = 'C';
}  // namespace

std::string Commit::Encode() const {
  std::string out;
  out.push_back(kCommitTag);
  out.append(reinterpret_cast<const char*>(root.data()), Hash::kSize);
  PutVarint64(&out, parents.size());
  for (const Hash& p : parents) {
    out.append(reinterpret_cast<const char*>(p.data()), Hash::kSize);
  }
  PutLengthPrefixed(&out, author);
  PutLengthPrefixed(&out, message);
  PutVarint64(&out, sequence);
  return out;
}

Result<Commit> Commit::Decode(Slice bytes) {
  Commit c;
  if (bytes.empty() || bytes[0] != kCommitTag) {
    return Status::Corruption("not a commit object");
  }
  bytes.remove_prefix(1);
  if (bytes.size() < Hash::kSize) return Status::Corruption("short commit");
  c.root = Hash::FromBytes(bytes.data());
  bytes.remove_prefix(Hash::kSize);
  uint64_t n = 0;
  if (!GetVarint64(&bytes, &n) || n > 16) {
    return Status::Corruption("bad parent count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (bytes.size() < Hash::kSize) return Status::Corruption("short parent");
    c.parents.push_back(Hash::FromBytes(bytes.data()));
    bytes.remove_prefix(Hash::kSize);
  }
  if (!GetLengthPrefixed(&bytes, &c.author) ||
      !GetLengthPrefixed(&bytes, &c.message) ||
      !GetVarint64(&bytes, &c.sequence)) {
    return Status::Corruption("truncated commit");
  }
  if (!bytes.empty()) return Status::Corruption("trailing commit bytes");
  return c;
}

Result<Hash> BranchManager::WriteCommit(const Commit& commit) {
  return store_->Put(commit.Encode());
}

Result<Commit> BranchManager::ReadCommit(const Hash& commit_hash) const {
  auto bytes = store_->Get(commit_hash);
  if (!bytes.ok()) return bytes.status();
  return Commit::Decode(**bytes);
}

Status BranchManager::CreateBranch(const std::string& name,
                                   const Hash& commit_hash) {
  if (branches_.count(name) > 0) {
    return Status::InvalidArgument("branch exists: " + name);
  }
  branches_[name] = commit_hash;
  return Status::OK();
}

Status BranchManager::MoveBranch(const std::string& name,
                                 const Hash& commit_hash) {
  auto it = branches_.find(name);
  if (it == branches_.end()) return Status::NotFound("branch " + name);
  it->second = commit_hash;
  return Status::OK();
}

Status BranchManager::DeleteBranch(const std::string& name) {
  if (branches_.erase(name) == 0) return Status::NotFound("branch " + name);
  return Status::OK();
}

Result<Hash> BranchManager::Head(const std::string& name) const {
  auto it = branches_.find(name);
  if (it == branches_.end()) return Status::NotFound("branch " + name);
  return it->second;
}

std::vector<std::string> BranchManager::ListBranches() const {
  std::vector<std::string> out;
  out.reserve(branches_.size());
  for (const auto& [name, head] : branches_) out.push_back(name);
  return out;
}

Result<Hash> BranchManager::CommitOnBranch(const std::string& name,
                                           const Hash& new_root,
                                           const std::string& author,
                                           const std::string& message) {
  Commit c;
  c.root = new_root;
  c.author = author;
  c.message = message;
  auto head = Head(name);
  if (head.ok()) {
    c.parents.push_back(*head);
    auto parent = ReadCommit(*head);
    if (!parent.ok()) return parent.status();
    c.sequence = parent->sequence + 1;
  }
  auto hash = WriteCommit(c);
  if (!hash.ok()) return hash;
  // Commit boundary: the commit is acknowledged to the caller, so its
  // pages (index nodes + the commit object) must survive a crash. A
  // no-op for in-memory stores; on a file store this is the single fsync
  // of the commit (the index nodes arrived as one batched append, and a
  // clean store skips the syscall entirely). Flush before moving the head
  // so a failed flush leaves the branch untouched and the caller can
  // safely retry.
  Status flushed = store_->Flush();
  if (!flushed.ok()) return flushed;
  if (head.ok()) {
    Status s = MoveBranch(name, *hash);
    if (!s.ok()) return s;
  } else {
    Status s = CreateBranch(name, *hash);
    if (!s.ok()) return s;
  }
  return hash;
}

Result<std::vector<std::pair<Hash, Commit>>> BranchManager::Log(
    const Hash& from, size_t limit) const {
  // Newest-first walk by sequence number (handles merge commits).
  auto cmp = [](const std::pair<Hash, Commit>& a,
                const std::pair<Hash, Commit>& b) {
    return a.second.sequence < b.second.sequence;
  };
  std::priority_queue<std::pair<Hash, Commit>,
                      std::vector<std::pair<Hash, Commit>>, decltype(cmp)>
      frontier(cmp);
  PageSet seen;
  auto push = [&](const Hash& h) -> Status {
    if (!seen.insert(h).second) return Status::OK();
    auto c = ReadCommit(h);
    if (!c.ok()) return c.status();
    frontier.push({h, std::move(*c)});
    return Status::OK();
  };
  Status s = push(from);
  if (!s.ok()) return s;

  std::vector<std::pair<Hash, Commit>> out;
  while (!frontier.empty() && out.size() < limit) {
    auto [h, c] = frontier.top();
    frontier.pop();
    for (const Hash& p : c.parents) {
      s = push(p);
      if (!s.ok()) return s;
    }
    out.emplace_back(h, std::move(c));
  }
  return out;
}

Result<bool> BranchManager::IsAncestor(const Hash& ancestor,
                                       const Hash& descendant) const {
  PageSet seen;
  std::vector<Hash> stack = {descendant};
  while (!stack.empty()) {
    const Hash h = stack.back();
    stack.pop_back();
    if (h == ancestor) return true;
    if (!seen.insert(h).second) continue;
    auto c = ReadCommit(h);
    if (!c.ok()) return c.status();
    for (const Hash& p : c->parents) stack.push_back(p);
  }
  return false;
}

Result<Hash> BranchManager::MergeBase(const Hash& a, const Hash& b) const {
  // Collect a's ancestry, then walk b newest-first until a hit.
  PageSet a_ancestry;
  {
    std::vector<Hash> stack = {a};
    while (!stack.empty()) {
      const Hash h = stack.back();
      stack.pop_back();
      if (!a_ancestry.insert(h).second) continue;
      auto c = ReadCommit(h);
      if (!c.ok()) return c.status();
      for (const Hash& p : c->parents) stack.push_back(p);
    }
  }
  // Newest-first on b's side so we return the *lowest* common ancestor.
  auto log = Log(b, std::numeric_limits<size_t>::max());
  if (!log.ok()) return log.status();
  for (const auto& [h, c] : *log) {
    if (a_ancestry.count(h) > 0) return h;
  }
  return Status::NotFound("no common ancestor");
}

}  // namespace siri
