// Copyright (c) 2026 The siri Authors. MIT license.

#include "version/commit.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/varint.h"

namespace siri {

namespace {
constexpr char kCommitTag = 'C';
}  // namespace

std::string Commit::Encode() const {
  std::string out;
  out.push_back(kCommitTag);
  out.append(reinterpret_cast<const char*>(root.data()), Hash::kSize);
  PutVarint64(&out, parents.size());
  for (const Hash& p : parents) {
    out.append(reinterpret_cast<const char*>(p.data()), Hash::kSize);
  }
  PutLengthPrefixed(&out, author);
  PutLengthPrefixed(&out, message);
  PutVarint64(&out, sequence);
  return out;
}

Result<Commit> Commit::Decode(Slice bytes) {
  Commit c;
  if (bytes.empty() || bytes[0] != kCommitTag) {
    return Status::Corruption("not a commit object");
  }
  bytes.remove_prefix(1);
  if (bytes.size() < Hash::kSize) return Status::Corruption("short commit");
  c.root = Hash::FromBytes(bytes.data());
  bytes.remove_prefix(Hash::kSize);
  uint64_t n = 0;
  if (!GetVarint64(&bytes, &n) || n > 16) {
    return Status::Corruption("bad parent count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (bytes.size() < Hash::kSize) return Status::Corruption("short parent");
    c.parents.push_back(Hash::FromBytes(bytes.data()));
    bytes.remove_prefix(Hash::kSize);
  }
  if (!GetLengthPrefixed(&bytes, &c.author) ||
      !GetLengthPrefixed(&bytes, &c.message) ||
      !GetVarint64(&bytes, &c.sequence)) {
    return Status::Corruption("truncated commit");
  }
  if (!bytes.empty()) return Status::Corruption("trailing commit bytes");
  return c;
}

Result<Hash> BranchManager::WriteCommit(const Commit& commit) {
  return store_->Put(commit.Encode());
}

Result<Commit> BranchManager::ReadCommit(const Hash& commit_hash) const {
  auto bytes = store_->Get(commit_hash);
  if (!bytes.ok()) return bytes.status();
  return Commit::Decode(**bytes);
}

Status BranchManager::CreateBranch(const std::string& name,
                                   const Hash& commit_hash) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto [it, inserted] = shard.branches.try_emplace(name);
  if (!inserted) return Status::InvalidArgument("branch exists: " + name);
  if (ref_log_) {
    Status logged = ref_log_->Append(name, commit_hash);
    if (!logged.ok()) {
      shard.branches.erase(it);
      return logged;
    }
  }
  it->second.head = commit_hash;
  return Status::OK();
}

Status BranchManager::MoveBranch(const std::string& name,
                                 const Hash& commit_hash) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto it = shard.branches.find(name);
  if (it == shard.branches.end()) return Status::NotFound("branch " + name);
  if (ref_log_) {
    Status logged = ref_log_->Append(name, commit_hash);
    if (!logged.ok()) return logged;
  }
  it->second.head = commit_hash;
  return Status::OK();
}

Status BranchManager::DeleteBranch(const std::string& name) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto it = shard.branches.find(name);
  if (it == shard.branches.end()) return Status::NotFound("branch " + name);
  if (ref_log_) {
    Status logged = ref_log_->AppendDelete(name);
    if (!logged.ok()) return logged;
  }
  shard.branches.erase(it);
  return Status::OK();
}

Status BranchManager::AttachRefLog(const std::string& path,
                                   const RefLog::Options& opts) {
  std::shared_ptr<RefLog> log;
  Status s = RefLog::Open(path, opts, &log);
  if (!s.ok()) return s;
  for (const auto& [name, head] : log->recovered_heads()) {
    // A recovered head whose commit the page store does not contain means
    // the page log was truncated further back than the ref log — skip it
    // rather than resurrect a dangling branch.
    if (!store_->Contains(head)) continue;
    Shard& shard = ShardFor(name);
    MutexLock lock(shard.mu);
    auto [it, inserted] = shard.branches.try_emplace(name);
    if (inserted) it->second.head = head;
  }
  ref_log_ = std::move(log);
  return Status::OK();
}

Status BranchManager::SyncRefs() {
  return ref_log_ ? ref_log_->Sync() : Status::OK();
}

std::optional<Hash> BranchManager::LoadHead(const std::string& name) const {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto it = shard.branches.find(name);
  if (it == shard.branches.end()) return std::nullopt;
  return it->second.head;
}

Result<Hash> BranchManager::Head(const std::string& name) const {
  auto head = LoadHead(name);
  if (!head) return Status::NotFound("branch " + name);
  return *head;
}

std::vector<std::string> BranchManager::ListBranches() const {
  std::vector<std::string> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [name, entry] : shard.branches) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

BranchStats BranchManager::branch_stats(const std::string& name) const {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto it = shard.branches.find(name);
  return it == shard.branches.end() ? BranchStats{} : it->second.stats;
}

void BranchManager::RecordMergeRetry(const std::string& name) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto it = shard.branches.find(name);
  if (it != shard.branches.end()) ++it->second.stats.merge_retries;
}

void BranchManager::RecordCombinedCommits(const std::string& name,
                                          uint64_t count) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto it = shard.branches.find(name);
  if (it != shard.branches.end()) it->second.stats.combined_commits += count;
}

CasResult BranchManager::CheckAndSwingHead(const std::string& name,
                                           const std::optional<Hash>& expected,
                                           const Hash* swing_to) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto it = shard.branches.find(name);
  const bool exists = it != shard.branches.end();
  if (exists != expected.has_value() ||
      (exists && it->second.head != *expected)) {
    if (exists) {
      ++it->second.stats.cas_failures;
      return CasResult::Conflicted(it->second.head);
    }
    return CasResult::Error(Status::NotFound("branch " + name));
  }
  if (swing_to == nullptr) {
    return CasResult::Committed(expected ? *expected : Hash());
  }
  // Mirror the movement into the ref log (when attached) before making it
  // visible, so a recovered head is never newer than the in-memory one
  // was. A failed append leaves the head untouched.
  if (ref_log_) {
    Status logged = ref_log_->Append(name, *swing_to);
    if (!logged.ok()) return CasResult::Error(std::move(logged));
  }
  auto& entry = exists ? it->second : shard.branches[name];
  entry.head = *swing_to;
  ++entry.stats.commits;
  return CasResult::Committed(*swing_to);
}

CasResult BranchManager::CompareAndSwapHead(const std::string& name,
                                            const std::optional<Hash>& expected,
                                            const Hash& desired,
                                            NodeStore* flush_first) {
  if (!flush_first) {
    // Nothing to make durable: check and swing in one lock acquisition.
    return CheckAndSwingHead(name, expected, &desired);
  }
  // Fast pre-check so a doomed attempt fails before paying the flush: its
  // staged batch is dropped without a single store write or fsync.
  CasResult pre = CheckAndSwingHead(name, expected, nullptr);
  if (!pre.ok()) return pre;
  // Durability before visibility, outside the shard lock so concurrent
  // committers (of this and other branches) overlap their flushes.
  Status flushed = flush_first->Flush();
  if (!flushed.ok()) return CasResult::Error(flushed);
  // Re-check and swing. A head moved during the flush costs the loser one
  // wasted flush (content-addressed garbage), never a lost update.
  return CheckAndSwingHead(name, expected, &desired);
}

CasResult BranchManager::CommitOnBranchIf(const std::string& name,
                                          const std::optional<Hash>& expected_head,
                                          const Hash& new_root,
                                          const std::string& author,
                                          const std::string& message,
                                          NodeStore* write_through) {
  // Fail fast before producing any bytes: a stale expectation costs zero
  // store writes, zero RPCs, zero fsyncs.
  CasResult pre = CheckAndSwingHead(name, expected_head, nullptr);
  if (!pre.ok()) return pre;

  Commit c;
  c.root = new_root;
  c.author = author;
  c.message = message;
  if (expected_head) {
    c.parents.push_back(*expected_head);
    auto parent = ReadCommit(*expected_head);
    if (!parent.ok()) return CasResult::Error(parent.status());
    c.sequence = parent->sequence + 1;
  }
  NodeStore* sink = write_through ? write_through : store_.get();
  const Hash hash = sink->Put(c.Encode());
  return CompareAndSwapHead(name, expected_head, hash, sink);
}

Result<Hash> BranchManager::CommitOnBranch(const std::string& name,
                                           const Hash& new_root,
                                           const std::string& author,
                                           const std::string& message) {
  for (;;) {
    CasResult r = CommitOnBranchIf(name, LoadHead(name), new_root, author,
                                   message);
    if (r.ok()) return r.commit;
    // Lost the race: chain the commit on top of whichever head won. The
    // root still overrides (single-writer semantics preserved); merging
    // roots is CommitWithMerge's job.
    if (!r.status.IsConflict()) return r.status;
  }
}

Result<std::vector<std::pair<Hash, Commit>>> BranchManager::Log(
    const Hash& from, size_t limit) const {
  // Newest-first walk by sequence number (handles merge commits).
  auto cmp = [](const std::pair<Hash, Commit>& a,
                const std::pair<Hash, Commit>& b) {
    return a.second.sequence < b.second.sequence;
  };
  std::priority_queue<std::pair<Hash, Commit>,
                      std::vector<std::pair<Hash, Commit>>, decltype(cmp)>
      frontier(cmp);
  PageSet seen;
  auto push = [&](const Hash& h) -> Status {
    if (!seen.insert(h).second) return Status::OK();
    auto c = ReadCommit(h);
    if (!c.ok()) return c.status();
    frontier.push({h, std::move(*c)});
    return Status::OK();
  };
  Status s = push(from);
  if (!s.ok()) return s;

  std::vector<std::pair<Hash, Commit>> out;
  while (!frontier.empty() && out.size() < limit) {
    auto [h, c] = frontier.top();
    frontier.pop();
    for (const Hash& p : c.parents) {
      s = push(p);
      if (!s.ok()) return s;
    }
    out.emplace_back(h, std::move(c));
  }
  return out;
}

Result<bool> BranchManager::IsAncestor(const Hash& ancestor,
                                       const Hash& descendant) const {
  PageSet seen;
  std::vector<Hash> stack = {descendant};
  while (!stack.empty()) {
    const Hash h = stack.back();
    stack.pop_back();
    if (h == ancestor) return true;
    if (!seen.insert(h).second) continue;
    auto c = ReadCommit(h);
    if (!c.ok()) return c.status();
    for (const Hash& p : c->parents) stack.push_back(p);
  }
  return false;
}

Result<Hash> BranchManager::MergeBase(const Hash& a, const Hash& b) const {
  // Collect a's ancestry, then walk b newest-first until a hit.
  PageSet a_ancestry;
  {
    std::vector<Hash> stack = {a};
    while (!stack.empty()) {
      const Hash h = stack.back();
      stack.pop_back();
      if (!a_ancestry.insert(h).second) continue;
      auto c = ReadCommit(h);
      if (!c.ok()) return c.status();
      for (const Hash& p : c->parents) stack.push_back(p);
    }
  }
  // Newest-first on b's side so we return the *lowest* common ancestor.
  auto log = Log(b, std::numeric_limits<size_t>::max());
  if (!log.ok()) return log.status();
  for (const auto& [h, c] : *log) {
    if (a_ancestry.count(h) > 0) return h;
  }
  return Status::NotFound("no common ancestor");
}

}  // namespace siri
