// Copyright (c) 2026 The siri Authors. MIT license.
//
// Group-commit publish pipeline: a combining commit queue per branch.
//
// PR 4's contention benches exposed the single-branch ceiling: commits on
// one hot branch land at most once per (merge CPU + flush), because the
// winner's flush sits inside the OCC race window and every loser pays a
// full Merge3 retry. The combiner lifts that ceiling by *batching the
// publish*: when K committers race one branch, one of them (the leader)
// folds all K staged deltas into a single combined merge chain, writes one
// content commit per committer plus one combined commit whose parents are
// [prior head, content_1 … content_K], and lands the whole thing with ONE
// PutMany, ONE flush (= one fsync / one upload RPC), and ONE head swing.
// Throughput then scales with the batch size instead of serializing per
// winner.
//
// Batching discipline:
//   - A solo committer never waits: with nobody else queued, the leader
//     publishes immediately (the fast path is exactly CommitWithMerge).
//   - With company, the leader waits a short publish window
//     (GroupCommitOptions::window_micros) for stragglers, then publishes.
//     Committers arriving while a publish is in flight queue up and form
//     the next batch — the in-flight publish is itself a natural window.
//   - A committer whose delta conflicts inside the combined merge (or
//     whose merge hard-fails) is dropped from the batch and falls back to
//     an individual CommitWithMerge retry on its own thread; its partial
//     merge output is staged in a nested batch that is discarded, so a
//     failed combine member writes zero pages.
//
// The combiner has no threads of its own — leaders are committer threads —
// so construction is free and shutdown only means draining waiters.

#ifndef SIRI_VERSION_GROUP_COMMIT_H_
#define SIRI_VERSION_GROUP_COMMIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "index/index.h"
#include "version/commit.h"
#include "version/occ.h"

namespace siri {

/// \brief Tuning for the combining commit queue.
struct GroupCommitOptions {
  /// How long a leader that has company waits for stragglers before
  /// publishing, in microseconds. A solo committer never waits. 0 turns
  /// the window off (in-flight publishes still batch arrivals).
  uint64_t window_micros = 200;
  /// Most committers combined into one publish. The combined commit's
  /// parents are [prior head] + one content commit per committer, and
  /// commit objects decode at most 16 parents, so the ceiling is 15 —
  /// the combiner clamps out-of-range values into [1, 15].
  int max_batch = 15;
  /// Knobs for the merge work: resolver for divergent keys (applies to
  /// the combined merge chain too), retry/backoff for the individual
  /// CommitWithMerge fallback.
  MergeCommitOptions merge;
};

/// \brief One committer's publish request: everything CommitWithMerge
/// takes, as a value the combiner can queue.
///
/// \c index must be bound to the store the new root's nodes live in; all
/// committers of one branch must publish through indexes of the same
/// structure over the same store (the combiner merges their deltas through
/// the first request's index).
struct PublishSpec {
  ImmutableIndex* index = nullptr;
  std::string branch;
  Hash new_root;
  std::string author;
  std::string message;
  std::optional<Hash> expected_head;  ///< head the committer built on
};

/// \brief Per-branch combining commit queue over a BranchManager.
///
/// Thread-safe. Different branches publish in parallel (one lane each);
/// within a lane one leader at a time runs the combine.
class CommitCombiner {
 public:
  /// Counters of commits actually EXECUTED: a lost-ack replay that found
  /// its original already landed (MergeCommitResult::already_applied)
  /// counts in none of them, so solo + combined + fallbacks equals the
  /// number of distinct commits applied — the server side of the
  /// exactly-once publish contract.
  struct Stats {
    uint64_t publishes = 0;         ///< combined head swings that landed
    uint64_t combined_commits = 0;  ///< commits landed in batches of ≥ 2
    uint64_t solo_commits = 0;      ///< requests published alone (fast path)
    uint64_t fallbacks = 0;         ///< combine members executed via the
                                    ///< individual retry
    uint64_t max_batch_seen = 0;    ///< largest batch landed so far
  };

  explicit CommitCombiner(BranchManager* mgr, GroupCommitOptions opts = {});
  ~CommitCombiner();

  CommitCombiner(const CommitCombiner&) = delete;
  CommitCombiner& operator=(const CommitCombiner&) = delete;

  /// Publishes one commit, combining with concurrent committers of the
  /// same branch when possible. Blocks until the commit landed (result's
  /// `head` is the branch head containing it) or failed for this committer
  /// (e.g. Conflict with no resolver). Semantically equivalent to
  /// CommitWithMerge — only the batching differs.
  Result<MergeCommitResult> Publish(const PublishSpec& spec) EXCLUDES(mu_);

  /// Deterministic single-threaded combine of \p specs — exactly what a
  /// leader does with a gathered batch, including running the individual
  /// CommitWithMerge fallback for members that conflicted inside the
  /// combined merge. More than max_batch specs publish as a chain of
  /// maximal batches (the 16-parent commit format caps one publish).
  /// All specs must name the same branch. Test and inspection entry;
  /// results are index-aligned with \p specs.
  std::vector<Result<MergeCommitResult>> PublishCombined(
      const std::vector<PublishSpec>& specs);

  /// Drains the queue: blocks until every enqueued request has completed,
  /// then routes future Publish calls straight to CommitWithMerge
  /// (uncombined but still correct). Idempotent.
  void Shutdown() EXCLUDES(mu_);

  Stats stats() const;
  const GroupCommitOptions& options() const { return opts_; }
  BranchManager* manager() const { return mgr_; }

 private:
  struct Request {
    const PublishSpec* spec = nullptr;
    bool done = false;
    /// Set instead of `result` when this member must retry individually
    /// (combined-merge conflict, batch retries exhausted, or solo fast
    /// path — which IS the individual path).
    bool fallback = false;
    Hash content;  ///< this member's content commit, once staged
    std::optional<Result<MergeCommitResult>> result;
  };

  struct Lane {
    std::deque<Request*> queue;
    bool leader_active = false;
    /// Threads currently inside Publish for this lane (queued, leading,
    /// or about to exit). The last one out erases the lane, so the map
    /// does not grow forever with short-lived branch names.
    int users = 0;
    std::condition_variable cv;
  };

  /// Runs one gathered batch (same branch) to completion: combined merge
  /// chain, one staged flush, one head CAS; marks each request's result or
  /// fallback. Called without mu_ held; `done` flags are set by the
  /// caller under mu_.
  void RunBatch(const std::vector<Request*>& batch) EXCLUDES(mu_);

  /// True when no lane has queued or in-flight work.
  bool IdleLocked() const REQUIRES(mu_);

  BranchManager* mgr_;
  const GroupCommitOptions opts_;

  mutable Mutex mu_;
  // node-based map: Lanes stay pinned while threads wait on their cv.
  std::unordered_map<std::string, Lane> lanes_ GUARDED_BY(mu_);
  std::condition_variable drain_cv_;
  bool shutdown_ GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> publishes_{0};
  std::atomic<uint64_t> combined_commits_{0};
  std::atomic<uint64_t> solo_commits_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> max_batch_seen_{0};
};

}  // namespace siri

#endif  // SIRI_VERSION_GROUP_COMMIT_H_
