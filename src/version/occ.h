// Copyright (c) 2026 The siri Authors. MIT license.
//
// Optimistic concurrent branch commits (the paper's §2.1/§5.6 collaboration
// story made multi-writer). CommitWithMerge is the retry driver over
// BranchManager's head-CAS primitives:
//
//   1. try to CAS the branch head to a commit of the caller's new root;
//   2. on a typed Conflict, load the head that won, find the merge base,
//      run ImmutableIndex::Merge3 against the winner's root, write a
//      two-parent merge commit, and CAS again — with bounded backoff.
//
// Every merge attempt stages its nodes (merged index pages + both commit
// objects) in a StagingNodeStore over the caller's store, so an attempt
// that loses the next CAS is dropped wholesale: zero store writes, zero
// upload RPCs, zero fsyncs. Only the attempt that wins the head race pays
// one PutMany and one Flush.

#ifndef SIRI_VERSION_OCC_H_
#define SIRI_VERSION_OCC_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/status.h"
#include "index/index.h"
#include "version/commit.h"

namespace siri {

/// \brief Tuning and hooks for CommitWithMerge.
struct MergeCommitOptions {
  /// Lost-CAS merge retries before giving up with Conflict.
  int max_retries = 8;
  /// Exponential backoff before each merge retry: attempt k sleeps
  /// min(backoff_init_micros << k, backoff_max_micros); 0 disables.
  uint64_t backoff_init_micros = 50;
  uint64_t backoff_max_micros = 5000;
  /// Resolves keys changed divergently on both sides during Merge3. With
  /// none, such a commit race fails with Status::Conflict (the paper's
  /// "a selection strategy must be given").
  ConflictResolver resolver;
  /// Store the fast-path commit object ships through (default: the
  /// index's store). Letting this differ from the index's binding is the
  /// ForkBase deployment split: the client pays one upload RPC for its
  /// content commit while merge retries run where \p index is bound —
  /// typically server-side, next to the nodes they must read.
  NodeStore* commit_store = nullptr;
  /// Test/observability hook, called before each merge retry with the
  /// retry ordinal (0-based) and the head that won the lost CAS. Tests
  /// use it to drive deterministic interleavings (e.g. landing another
  /// commit to force a second retry).
  std::function<void(int retry, const Hash& winner)> on_retry;
};

/// \brief What CommitWithMerge did.
struct MergeCommitResult {
  Hash head;              ///< branch head after the call
  Hash commit;            ///< the author's content commit (== head when the
                          ///< first CAS won; a merge parent otherwise)
  int cas_failures = 0;   ///< head races lost along the way
  int merge_commits = 0;  ///< two-parent commits written (0 = clean commit)
  /// The nodes this publish landed (merged index pages + commit objects),
  /// captured on the contended paths only — a clean fast-path commit wrote
  /// nothing the author does not already hold, so it stays null. The
  /// server's publish ack ships this back to the client (the
  /// combiner-aware cache push): it is exactly the node set a losing
  /// committer re-reads next round.
  std::shared_ptr<const NodeBatch> staged;
  /// True when the publish's deterministic content commit was ALREADY in
  /// the branch history — this call executed nothing and wrote nothing;
  /// `head`/`commit` just point at the earlier landing. That happens when
  /// a lost-ack publish is replayed after the original execution landed
  /// (the transport's exactly-once resolution can probe "absent" while
  /// the original is still inside its combine window / CAS retries).
  /// Callers keeping executed-commit accounting must not count these.
  bool already_applied = false;
};

/// Commits \p new_root — built on top of \p expected_head's root — to
/// \p branch, auto-merging past concurrent winners. \p expected_head is
/// the head the caller read before building \p new_root (nullopt when
/// creating the branch). \p index must be bound to the store the new
/// root's nodes live in; merge attempts stage through that same store,
/// so with a client-side store the whole merge ships as one upload RPC.
///
/// First-committer-wins: the commit that lands first keeps its root
/// untouched; the loser's retry produces a merge commit whose parents are
/// [winner, loser's content commit] and whose root is
/// Merge3(loser, winner, base). Returns Conflict when retries are
/// exhausted or a key conflict has no resolver.
Result<MergeCommitResult> CommitWithMerge(
    BranchManager* mgr, ImmutableIndex* index, const std::string& branch,
    const Hash& new_root, const std::string& author,
    const std::string& message, const std::optional<Hash>& expected_head,
    const MergeCommitOptions& opts = {});

/// Backoff before the (ordinal+1)-th merge retry, per \p opts:
/// min(backoff_init << ordinal, backoff_max), with the shift clamped so
/// a large retry count cannot shift past the word width (UB). Returns 0
/// when backoff is disabled. Shared by the per-commit retry driver and
/// the group-commit combiner so the two retry loops cannot drift.
uint64_t MergeBackoffMicros(const MergeCommitOptions& opts, int ordinal);

/// Root of the merge base between what a committer built on
/// (\p expected_head; nullopt = built from the empty index) and
/// \p actual_head, the commit that actually won the branch race. In the
/// normal race the winner descends from expected_head, so the base IS the
/// old head — IsAncestor confirms that in O(divergence) steps instead of
/// MergeBase's O(history) ancestry collection; an administrative head
/// reset (winner not a descendant) falls back to the full MergeBase walk.
/// Shared by the per-commit retry driver above and the group-commit
/// combiner (version/group_commit.h).
Result<Hash> MergeBaseRoot(BranchManager* mgr, ImmutableIndex* index,
                           const std::optional<Hash>& expected_head,
                           const Hash& actual_head);

/// Whether \p target — a content commit known to carry sequence
/// \p target_sequence — is already reachable from \p head. Commit
/// sequences strictly dominate every parent (version/commit.h), so the
/// walk descends only through commits whose sequence exceeds the
/// target's: O(commits landed since the target's parent), the same order
/// as the merge-base probe, NOT O(history). This is the server side of
/// exactly-once publishes: a content commit is deterministic in
/// (root, expected_head, author, message), so "is the replay's commit
/// reachable from the head" decides applied-vs-absent race-free — the
/// head CAS serializes every landing against this read. Shared by the
/// per-commit retry driver and the group-commit combiner.
Result<bool> CommitAlreadyApplied(BranchManager* mgr, const Hash& head,
                                  const Hash& target,
                                  uint64_t target_sequence);

}  // namespace siri

#endif  // SIRI_VERSION_OCC_H_
