// Copyright (c) 2026 The siri Authors. MIT license.
//
// Clang Thread Safety Analysis annotations — the compile-time concurrency
// contract layer. Every mutex-owning type in siri declares which fields a
// lock guards (GUARDED_BY), which private helpers assume the lock is held
// (REQUIRES on the *Locked() methods), and which public entry points must
// be called without it (EXCLUDES). Under Clang with -Wthread-safety (the
// SIRI_THREAD_SAFETY CMake option, on in the asan/tsan presets), touching
// a guarded field unlocked or taking a lock recursively is a *compile
// error*; the TSan CI job then only has to catch what the static analysis
// cannot express. Under other compilers every macro expands to nothing.
//
// The macro set follows the Abseil/LevelDB convention, applied to the
// annotated wrappers in common/mutex.h (std primitives carry no
// capability attributes under libstdc++, so std::mutex +
// std::lock_guard are invisible to the analysis — use siri::Mutex +
// siri::MutexLock instead).

#ifndef SIRI_COMMON_THREAD_ANNOTATIONS_H_
#define SIRI_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SIRI_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SIRI_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define CAPABILITY(x) SIRI_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose lifetime equals holding a capability.
#define SCOPED_CAPABILITY SIRI_THREAD_ANNOTATION__(scoped_lockable)

/// Field access requires holding the given mutex(es).
#define GUARDED_BY(x) SIRI_THREAD_ANNOTATION__(guarded_by(x))

/// Dereferencing this pointer requires holding the given mutex(es).
#define PT_GUARDED_BY(x) SIRI_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares a required lock ordering between capabilities.
#define ACQUIRED_BEFORE(...) \
  SIRI_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SIRI_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The caller must hold the mutex(es) exclusively / shared.
#define REQUIRES(...) \
  SIRI_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SIRI_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the mutex(es) and does not release them.
#define ACQUIRE(...) \
  SIRI_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SIRI_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases mutex(es) the caller held on entry.
#define RELEASE(...) \
  SIRI_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SIRI_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  SIRI_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// The function acquires the mutex(es) iff it returns the given value.
#define TRY_ACQUIRE(...) \
  SIRI_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SIRI_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the mutex(es) — the annotation for public
/// entry points of internally-locked types (catches self-deadlock).
#define EXCLUDES(...) SIRI_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. a lock taken by a caller through a callback).
#define ASSERT_CAPABILITY(x) SIRI_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  SIRI_THREAD_ANNOTATION__(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SIRI_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function intentionally breaks the declared contract
/// (single-threaded setup paths, fork-after-lock tricks). Every use needs
/// a justifying comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  SIRI_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SIRI_COMMON_THREAD_ANNOTATIONS_H_
