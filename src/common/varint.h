// Copyright (c) 2026 The siri Authors. MIT license.
//
// LEB128-style varint plus length-prefixed string encoding. Used by every
// index's node serializer so that byte(p) — the serialized size of a page —
// is well defined and identical across structures.

#ifndef SIRI_COMMON_VARINT_H_
#define SIRI_COMMON_VARINT_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace siri {

/// Appends \p v to \p dst as a base-128 varint (1–10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

/// Parses a varint from the front of \p in, advancing it. Returns false on
/// truncated or malformed input.
bool GetVarint64(Slice* in, uint64_t* v);

/// Appends a varint length prefix followed by the raw bytes of \p s.
void PutLengthPrefixed(std::string* dst, Slice s);

/// Parses a length-prefixed string from the front of \p in, advancing it.
bool GetLengthPrefixed(Slice* in, std::string* out);

/// Fixed-width little-endian 32-bit integer, for positional fields.
void PutFixed32(std::string* dst, uint32_t v);
bool GetFixed32(Slice* in, uint32_t* v);

}  // namespace siri

#endif  // SIRI_COMMON_VARINT_H_
