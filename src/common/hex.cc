// Copyright (c) 2026 The siri Authors. MIT license.

#include "common/hex.h"

namespace siri {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}  // namespace

std::string HexEncode(Slice in) {
  std::string out;
  out.reserve(in.size() * 2);
  for (size_t i = 0; i < in.size(); ++i) {
    const unsigned char b = static_cast<unsigned char>(in[i]);
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

int HexDigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool HexDecode(Slice hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  std::string decoded;
  decoded.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexDigitValue(hex[i]);
    const int lo = HexDigitValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    decoded.push_back(static_cast<char>((hi << 4) | lo));
  }
  *out = std::move(decoded);
  return true;
}

}  // namespace siri
