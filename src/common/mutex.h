// Copyright (c) 2026 The siri Authors. MIT license.
//
// Annotated drop-in wrappers around the std synchronization primitives.
// Clang Thread Safety Analysis works on *capability attributes*, and
// libstdc++'s std::mutex / std::lock_guard carry none — locking through
// them is invisible to the analysis. siri::Mutex / siri::SharedMutex are
// std primitives wearing CAPABILITY attributes, and siri::MutexLock /
// siri::ReaderLock are the SCOPED_CAPABILITY guards that make an
// acquisition visible for the scope it covers.
//
// Condition variables keep working: MutexLock wraps a real
// std::unique_lock<std::mutex>, exposed via native(), so
// `cv.wait(lock.native())` is exactly the std wait (the analysis treats
// the capability as held across the wait, which matches what the caller
// observes: the lock is held again when wait returns). There is no
// Await-style wrapper surface to migrate to.
//
// Convention (enforced by -Wthread-safety under the SIRI_THREAD_SAFETY
// build): fields are GUARDED_BY(mu_), private helpers that assume the
// lock are named *Locked() and annotated REQUIRES(mu_), and public entry
// points of internally-locked types are annotated EXCLUDES(mu_).

#ifndef SIRI_COMMON_MUTEX_H_
#define SIRI_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace siri {

/// \brief std::mutex with capability attributes.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The underlying std primitive, for std::unique_lock/condition_variable
  /// interop (MutexLock uses it; nothing else should).
  std::mutex& std_mutex() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief std::shared_mutex with capability attributes (reader/writer).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief Scoped exclusive lock over a Mutex (the annotated
/// std::unique_lock). Supports mid-scope Unlock()/Lock() — the
/// wait-a-little window pattern — and condition-variable waits through
/// native().
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.std_mutex()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (e.g. to sleep a publish window).
  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

  /// The std lock for condition_variable::wait. The analysis considers
  /// the capability held across the wait, which is what the caller sees:
  /// wait returns with the lock reacquired.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// \brief Scoped exclusive lock over a SharedMutex (writer side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief Scoped shared lock over a SharedMutex (reader side).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace siri

#endif  // SIRI_COMMON_MUTEX_H_
