// Copyright (c) 2026 The siri Authors. MIT license.

#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace siri {

void Histogram::Record(double v) {
  values_.push_back(v);
  sorted_ = false;
  ++count_;
  sum_ += v;
}

void Histogram::Merge(const Histogram& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Clear() {
  values_.clear();
  sorted_ = true;
  count_ = 0;
  sum_ = 0;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  if (values_.empty()) return 0;
  EnsureSorted();
  return values_.front();
}

double Histogram::max() const {
  if (values_.empty()) return 0;
  EnsureSorted();
  return values_.back();
}

double Histogram::mean() const { return count_ == 0 ? 0 : sum_ / count_; }

double Histogram::Percentile(double q) const {
  if (values_.empty()) return 0;
  EnsureSorted();
  if (q <= 0) return values_.front();
  if (q >= 1) return values_.back();
  const double pos = q * (values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - lo;
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

std::vector<Histogram::Bucket> Histogram::FixedBuckets(int num_buckets) const {
  std::vector<Bucket> out;
  if (values_.empty() || num_buckets <= 0) return out;
  EnsureSorted();
  const double lo = values_.front();
  const double hi = values_.back();
  const double width = (hi > lo) ? (hi - lo) / num_buckets : 1.0;
  out.resize(num_buckets);
  for (int i = 0; i < num_buckets; ++i) {
    out[i].lo = lo + i * width;
    out[i].hi = lo + (i + 1) * width;
    out[i].count = 0;
  }
  for (double v : values_) {
    int idx = static_cast<int>((v - lo) / width);
    if (idx >= num_buckets) idx = num_buckets - 1;
    if (idx < 0) idx = 0;
    ++out[idx].count;
  }
  return out;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(),
                Percentile(0.50), Percentile(0.95), Percentile(0.99), min(),
                max());
  return buf;
}

uint64_t CountHistogram::total() const {
  uint64_t t = 0;
  for (const auto& [v, c] : counts_) t += c;
  return t;
}

std::string CountHistogram::ToString() const {
  std::string out;
  char buf[64];
  for (const auto& [v, c] : counts_) {
    std::snprintf(buf, sizeof(buf), "%lld:%llu ",
                  static_cast<long long>(v),
                  static_cast<unsigned long long>(c));
    out += buf;
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace siri
