// Copyright (c) 2026 The siri Authors. MIT license.

#ifndef SIRI_COMMON_HEX_H_
#define SIRI_COMMON_HEX_H_

#include <string>

#include "common/slice.h"

namespace siri {

/// Encodes \p in as lowercase hex (two chars per byte).
std::string HexEncode(Slice in);

/// Decodes lowercase/uppercase hex. Returns false on odd length or invalid
/// characters; \p out is untouched on failure.
bool HexDecode(Slice hex, std::string* out);

/// Value of one hex digit, or -1 if the character is not a hex digit.
int HexDigitValue(char c);

}  // namespace siri

#endif  // SIRI_COMMON_HEX_H_
