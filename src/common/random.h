// Copyright (c) 2026 The siri Authors. MIT license.
//
// Deterministic PRNGs. All workload generation routes through Rng so that
// every experiment in bench/ is exactly reproducible from its seed.

#ifndef SIRI_COMMON_RANDOM_H_
#define SIRI_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace siri {

/// splitmix64 — used to seed and to derive independent streams.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5441b1dec0de5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(&sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). \p n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi].
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability \p p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random byte string of length \p n (all 256 byte values possible).
  std::string Bytes(size_t n) {
    std::string out;
    out.reserve(n);
    while (out.size() < n) {
      uint64_t w = Next();
      for (int i = 0; i < 8 && out.size() < n; ++i) {
        out.push_back(static_cast<char>(w & 0xff));
        w >>= 8;
      }
    }
    return out;
  }

  /// Random printable-ASCII string of length \p n (letters and digits).
  std::string AlphaNum(size_t n) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
    }
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace siri

#endif  // SIRI_COMMON_RANDOM_H_
