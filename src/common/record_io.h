// Copyright (c) 2026 The siri Authors. MIT license.
//
// Shared framing of digest-carrying log records: `varint payload-length |
// 32-byte SHA-256 digest | payload`. Both append-only logs — the page log
// (store/file_store.cc) and the branch-head ref log (version/ref_log.cc)
// — use this exact frame, so the subtle bounds logic (a corrupt varint
// can decode to a length near UINT64_MAX, and a naive `kSize + len` check
// would wrap) lives in one place. Digest *verification* stays with the
// caller: the page log verifies against the payload, the ref log verifies
// inline during replay.

#ifndef SIRI_COMMON_RECORD_IO_H_
#define SIRI_COMMON_RECORD_IO_H_

#include <string>

#include "common/slice.h"
#include "common/varint.h"
#include "crypto/hash.h"

namespace siri {

/// Parses one framed record from *in (advancing it) into *payload and
/// *stored. Returns false when the remaining bytes do not frame a whole
/// record (torn tail / corrupt length). Does NOT verify the digest.
inline bool ReadDigestRecord(Slice* in, std::string* payload, Hash* stored) {
  uint64_t len = 0;
  if (!GetVarint64(in, &len)) return false;
  if (in->size() < Hash::kSize || in->size() - Hash::kSize < len) return false;
  *stored = Hash::FromBytes(in->data());
  in->remove_prefix(Hash::kSize);
  payload->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

/// Serializes one `varint len | digest | payload` record into \p out.
inline void AppendDigestRecord(std::string* out, const Hash& digest,
                               Slice payload) {
  PutVarint64(out, payload.size());
  out->append(reinterpret_cast<const char*>(digest.data()), Hash::kSize);
  out->append(payload.data(), payload.size());
}

}  // namespace siri

#endif  // SIRI_COMMON_RECORD_IO_H_
