// Copyright (c) 2026 The siri Authors. MIT license.
//
// Latency / height histograms backing the distribution figures of the paper
// (Figures 9–12). Values are recorded exactly (no bucketing error) and the
// bucketed view is produced on demand, matching the paper's plots of
// "#records per latency range".

#ifndef SIRI_COMMON_HISTOGRAM_H_
#define SIRI_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace siri {

/// \brief Exact-value histogram with percentile queries and fixed-width
/// bucketing for plot output.
class Histogram {
 public:
  void Record(double v);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }

  /// Value at quantile \p q in [0, 1]; interpolates between samples.
  double Percentile(double q) const;

  struct Bucket {
    double lo;      // inclusive lower bound
    double hi;      // exclusive upper bound (last bucket inclusive)
    uint64_t count;
  };

  /// Splits [min, max] into \p num_buckets fixed-width buckets.
  std::vector<Bucket> FixedBuckets(int num_buckets) const;

  /// One-line summary used by bench output.
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  uint64_t count_ = 0;
  double sum_ = 0;
};

/// \brief Integer counter histogram (e.g. tree heights: height -> #ops).
class CountHistogram {
 public:
  void Record(int64_t v) { ++counts_[v]; }
  const std::map<int64_t, uint64_t>& counts() const { return counts_; }
  uint64_t total() const;
  std::string ToString() const;

 private:
  std::map<int64_t, uint64_t> counts_;
};

}  // namespace siri

#endif  // SIRI_COMMON_HISTOGRAM_H_
