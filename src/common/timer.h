// Copyright (c) 2026 The siri Authors. MIT license.

#ifndef SIRI_COMMON_TIMER_H_
#define SIRI_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace siri {

/// \brief Monotonic wall-clock stopwatch used by the bench harness.
class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in nanoseconds.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace siri

#endif  // SIRI_COMMON_TIMER_H_
