// Copyright (c) 2026 The siri Authors. MIT license.

#include "common/varint.h"

namespace siri {

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<const char*>(buf), n);
}

bool GetVarint64(Slice* in, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !in->empty(); shift += 7) {
    const unsigned char byte = static_cast<unsigned char>((*in)[0]);
    in->remove_prefix(1);
    if (shift == 63) {
      // Tenth byte: only bit 63 is left, so a continuation bit or any
      // payload above 1 would silently shift bits out — reject instead.
      if (byte > 1) return false;
      result |= static_cast<uint64_t>(byte) << shift;
      *v = result;
      return true;
    }
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *v = result;
      return true;
    }
  }
  return false;
}

void PutLengthPrefixed(std::string* dst, Slice s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

bool GetLengthPrefixed(Slice* in, std::string* out) {
  uint64_t len = 0;
  if (!GetVarint64(in, &len)) return false;
  if (in->size() < len) return false;
  out->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

bool GetFixed32(Slice* in, uint32_t* v) {
  if (in->size() < 4) return false;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  in->remove_prefix(4);
  return true;
}

}  // namespace siri
