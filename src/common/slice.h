// Copyright (c) 2026 The siri Authors. MIT license.
//
// A Slice is a cheap, non-owning view over a contiguous byte sequence, in the
// spirit of rocksdb::Slice. Keys and values throughout the library are raw
// byte strings; Slice lets the index layers pass them around without copying.

#ifndef SIRI_COMMON_SLICE_H_
#define SIRI_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace siri {

/// \brief Non-owning view over a byte sequence.
///
/// The referenced storage must outlive the Slice. Comparison is
/// lexicographic on unsigned bytes, which matches the ordering used by every
/// index in this library.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(strlen(s)) {}               // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t n) const {
    assert(n < size_);
    return data_[n];
  }

  /// Drops the first \p n bytes from the view.
  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way lexicographic comparison on unsigned bytes.
  int compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) r = -1;
      else if (size_ > b.size_) r = +1;
    }
    return r;
  }

  bool starts_with(const Slice& x) const {
    return size_ >= x.size_ && memcmp(data_, x.data_, x.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace siri

#endif  // SIRI_COMMON_SLICE_H_
