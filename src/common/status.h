// Copyright (c) 2026 The siri Authors. MIT license.
//
// Lightweight Status / Result types for fallible operations, following the
// convention used by LevelDB/RocksDB and Apache Arrow: library code returns
// Status instead of throwing, and SIRI_CHECK guards internal invariants.

#ifndef SIRI_COMMON_STATUS_H_
#define SIRI_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace siri {

/// \brief Outcome of a fallible operation.
///
/// [[nodiscard]]: a dropped Status is a swallowed error — every caller
/// must check it, or cast to (void) with a comment saying why the error
/// genuinely cannot matter.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kConflict = 4,        // merge conflict requiring user resolution
    kNotSupported = 5,
    kIOError = 6,
    kResourceExhausted = 7,  // server over capacity; back off and retry
    kUnavailable = 8,        // retry policy exhausted; the op may not have run
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kConflict: name = "Conflict"; break;
      case Code::kNotSupported: name = "NotSupported"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
      case Code::kUnavailable: name = "Unavailable"; break;
    }
    return msg_.empty() ? std::string(name) : std::string(name) + ": " + msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// \brief Either a value or an error Status. [[nodiscard]] like Status:
/// dropping a Result drops the error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace siri

/// Aborts the process when an internal invariant is violated. These are
/// programming errors, not recoverable conditions, so there is no Status.
#define SIRI_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SIRI_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define SIRI_CHECK_OK(expr)                                                \
  do {                                                                     \
    const ::siri::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                       \
      std::fprintf(stderr, "SIRI_CHECK_OK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__, _st.ToString().c_str());            \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // SIRI_COMMON_STATUS_H_
