// Copyright (c) 2026 The siri Authors. MIT license.

#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/varint.h"

namespace siri {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

Result<int> DialOnce(const std::string& host, int port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("connect");
    close(fd);
    return s;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

SocketTransport::SocketTransport(int fd, Options opts)
    : opts_(opts), fd_(fd), decoder_(opts.max_frame_bytes) {}

Status SocketTransport::Connect(const std::string& host, int port,
                                std::shared_ptr<SocketTransport>* out,
                                Options opts) {
  auto fd = DialOnce(host, port);
  for (int waited_ms = 0; !fd.ok() && waited_ms < opts.connect_retry_ms;
       waited_ms += 50) {
    // A forked client can outrun the server's bind; retry briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fd = DialOnce(host, port);
  }
  if (!fd.ok()) return fd.status();
  std::shared_ptr<SocketTransport> t(new SocketTransport(*fd, opts));
  // Version handshake up front: a non-siri peer or skewed server turns
  // into a typed error here instead of a hung or garbled first RPC.
  Request hello;
  hello.type = MsgType::kHello;
  hello.version = kWireVersion;
  auto ack = t->Call(hello);
  if (!ack.ok()) return ack.status();
  *out = std::move(t);
  return Status::OK();
}

SocketTransport::~SocketTransport() { Close(); }

void SocketTransport::Close() {
  MutexLock lock(mu_);
  CloseLocked();
}

void SocketTransport::CloseLocked() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status SocketTransport::SendFrame(Slice frame) {
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      off += static_cast<size_t>(n);
      bytes_sent_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status SocketTransport::ReadResponse(std::string* payload) {
  for (;;) {
    auto next = decoder_.Next(payload);
    if (!next.ok()) return next.status();  // corrupt stream: caller closes
    if (*next) return Status::OK();
    char buf[64 * 1024];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      bytes_received_.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection mid-response");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<std::string> SocketTransport::Call(const Request& req) {
  const std::string frame = EncodeFrame(EncodeRequest(req));
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  if (fd_ < 0) return Status::IOError("transport closed");
  Status sent = SendFrame(frame);
  if (!sent.ok()) {
    CloseLocked();
    return sent;
  }
  std::string payload;
  Status read = ReadResponse(&payload);
  if (!read.ok()) {
    CloseLocked();
    return read;
  }
  Status app;
  std::string body;
  Status decoded = DecodeResponse(payload, &app, &body);
  if (!decoded.ok()) {
    // The response itself is garbage: the stream cannot be trusted again.
    CloseLocked();
    return decoded;
  }
  if (!app.ok()) return app;
  return body;
}

Result<std::shared_ptr<const std::string>> SocketTransport::Get(
    const Hash& h) {
  Request req;
  req.type = MsgType::kGet;
  req.hash = h;
  auto body = Call(req);
  if (!body.ok()) return body.status();
  return std::make_shared<const std::string>(std::move(*body));
}

Result<bool> SocketTransport::Contains(const Hash& h) {
  Request req;
  req.type = MsgType::kContains;
  req.hash = h;
  auto body = Call(req);
  if (!body.ok()) return body.status();
  if (body->size() != 1) return Status::Corruption("contains body");
  return (*body)[0] != 0;
}

Result<uint64_t> SocketTransport::SizeOf(const Hash& h) {
  Request req;
  req.type = MsgType::kSizeOf;
  req.hash = h;
  auto body = Call(req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  uint64_t size = 0;
  if (!GetVarint64(&in, &size) || !in.empty()) {
    return Status::Corruption("sizeof body");
  }
  return size;
}

Result<Hash> SocketTransport::Put(Slice bytes) {
  Request req;
  req.type = MsgType::kPut;
  req.bytes.assign(bytes.data(), bytes.size());
  auto body = Call(req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  Hash h;
  if (!GetHash(&in, &h) || !in.empty()) return Status::Corruption("put body");
  return h;
}

Status SocketTransport::PutMany(const NodeBatch& batch) {
  if (batch.empty()) return Status::OK();
  Request req;
  req.type = MsgType::kPutMany;
  req.batch = batch;  // shares the node byte buffers, no copy
  return Call(req).status();
}

Status SocketTransport::Flush() {
  Request req;
  req.type = MsgType::kFlush;
  return Call(req).status();
}

Result<NodeStore::Stats> SocketTransport::StoreStats() {
  Request req;
  req.type = MsgType::kStoreStats;
  auto body = Call(req);
  if (!body.ok()) return body.status();
  NodeStore::Stats s;
  Status decoded = DecodeStoreStatsBody(*body, &s);
  if (!decoded.ok()) return decoded;
  return s;
}

Status SocketTransport::ResetServerOpCounters() {
  Request req;
  req.type = MsgType::kResetCounters;
  return Call(req).status();
}

Result<Hash> SocketTransport::Head(const std::string& branch) {
  Request req;
  req.type = MsgType::kHead;
  req.branch = branch;
  auto body = Call(req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  Hash h;
  if (!GetHash(&in, &h) || !in.empty()) {
    return Status::Corruption("head body");
  }
  return h;
}

Result<PublishResult> SocketTransport::Publish(const PublishRequest& pub) {
  Request req;
  req.type = MsgType::kPublish;
  req.structure = pub.structure;
  req.branch = pub.branch;
  req.new_root = pub.new_root;
  req.author = pub.author;
  req.message = pub.message;
  req.expected_head = pub.expected_head;
  auto body = Call(req);
  if (!body.ok()) return body.status();
  WirePublishResult wire;
  Status decoded = DecodePublishResultBody(*body, &wire);
  if (!decoded.ok()) return decoded;
  PublishResult out;
  out.head = wire.head;
  out.commit = wire.commit;
  out.cas_failures = wire.cas_failures;
  out.merge_commits = wire.merge_commits;
  return out;
}

Result<BranchStats> SocketTransport::GetBranchStats(const std::string& branch) {
  Request req;
  req.type = MsgType::kBranchStats;
  req.branch = branch;
  auto body = Call(req);
  if (!body.ok()) return body.status();
  BranchStats s;
  Status decoded = DecodeBranchStatsBody(*body, &s);
  if (!decoded.ok()) return decoded;
  return s;
}

Result<std::vector<std::string>> SocketTransport::ListBranches() {
  Request req;
  req.type = MsgType::kListBranches;
  auto body = Call(req);
  if (!body.ok()) return body.status();
  std::vector<std::string> branches;
  Status decoded = DecodeStringListBody(*body, &branches);
  if (!decoded.ok()) return decoded;
  return branches;
}

Transport::Stats SocketTransport::stats() const {
  Stats out;
  out.rpcs = rpcs_.load(std::memory_order_relaxed);
  out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  out.syscalls = syscalls_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace net
}  // namespace siri
