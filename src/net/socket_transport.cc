// Copyright (c) 2026 The siri Authors. MIT license.

#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <set>
#include <thread>

#include "common/varint.h"
#include "crypto/sha256.h"

namespace siri {
namespace net {

namespace {

// Commit objects fetched while resolving an ambiguous publish. A branch
// cannot gain more than (writers × retry budget) commits during one
// resolution window, so a walk this deep means the client is hopelessly
// behind — give up with Unavailable rather than chase the head forever.
constexpr size_t kPublishResolveBudget = 512;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

Result<int> DialOnce(const std::string& host, int port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("connect");
    close(fd);
    return s;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Non-blocking from here on: every send/recv is paired with a poll that
  // honors the per-RPC deadline instead of blocking indefinitely.
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const Status s = Errno("fcntl(O_NONBLOCK)");
    close(fd);
    return s;
  }
  return fd;
}

/// Handshake failures worth re-dialing for: the wire broke (IO) or the
/// server is shedding load (ResourceExhausted). Typed application rejects
/// — version skew above all — are deterministic and fail fast.
bool RetriableHandshake(const Status& s) {
  return s.code() == Status::Code::kIOError || s.IsResourceExhausted();
}

void SleepMicros(uint64_t micros) {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace

SocketTransport::SocketTransport(std::string host, int port, int fd,
                                 Options opts)
    : opts_(std::move(opts)),
      host_(std::move(host)),
      port_(port),
      fd_(fd),
      decoder_(opts_.max_frame_bytes),
      jitter_rng_(opts_.retry.jitter_seed) {}

Status SocketTransport::Connect(const std::string& host, int port,
                                std::shared_ptr<SocketTransport>* out,
                                Options opts) {
  auto fd = DialOnce(host, port);
  for (int waited_ms = 0; !fd.ok() && waited_ms < opts.connect_retry_ms;
       waited_ms += 50) {
    // A forked client can outrun the server's bind; retry briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fd = DialOnce(host, port);
  }
  if (!fd.ok()) return fd.status();
  std::shared_ptr<SocketTransport> t(
      new SocketTransport(host, port, *fd, opts));
  // Version handshake up front: a non-siri peer or skewed server turns
  // into a typed error here instead of a hung or garbled first RPC.
  Status hs;
  {
    MutexLock lock(t->mu_);
    hs = t->HandshakeLocked();
  }
  const int max_attempts = std::max(1, opts.retry.max_attempts);
  for (int attempt = 1; !hs.ok() && opts.auto_reconnect &&
                        attempt < max_attempts && RetriableHandshake(hs);
       ++attempt) {
    t->retries_.fetch_add(1, std::memory_order_relaxed);
    t->BackoffSleep(attempt);
    MutexLock lock(t->mu_);
    hs = t->ReconnectLocked();
  }
  if (!hs.ok()) return hs;
  *out = std::move(t);
  return Status::OK();
}

SocketTransport::~SocketTransport() { Close(); }

void SocketTransport::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  CloseLocked();
}

void SocketTransport::CloseLocked() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

SocketTransport::TimePoint SocketTransport::DeadlineFromNow() const {
  if (opts_.rpc_timeout_ms <= 0) return TimePoint::max();
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(opts_.rpc_timeout_ms);
}

Status SocketTransport::WaitReadyLocked(short events, TimePoint deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != TimePoint::max()) {
      const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
      if (remain <= 0) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        return Status::IOError("rpc deadline exceeded (" +
                               std::to_string(opts_.rpc_timeout_ms) + "ms)");
      }
      timeout_ms = static_cast<int>(std::min<int64_t>(remain, INT32_MAX));
    }
    pollfd p{};
    p.fd = fd_;
    p.events = events;
    const int r = poll(&p, 1, timeout_ms);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    // Readiness includes error/hangup revents: return OK and let the next
    // send/recv surface the precise errno.
    if (r > 0) return Status::OK();
    if (r == 0) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("rpc deadline exceeded (" +
                             std::to_string(opts_.rpc_timeout_ms) + "ms)");
    }
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

Status SocketTransport::SendBytesLocked(Slice bytes, TimePoint deadline) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      off += static_cast<size_t>(n);
      bytes_sent_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = WaitReadyLocked(POLLOUT, deadline);
      if (!ready.ok()) return ready;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status SocketTransport::ReadResponseLocked(std::string* payload,
                                           TimePoint deadline) {
  for (;;) {
    auto next = decoder_.Next(payload);
    if (!next.ok()) return next.status();  // corrupt stream: caller closes
    if (*next) return Status::OK();
    char buf[64 * 1024];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      bytes_received_.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection mid-response");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = WaitReadyLocked(POLLIN, deadline);
      if (!ready.ok()) return ready;
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status SocketTransport::ExchangeLocked(const Request& req, TimePoint deadline,
                                       Status* app, std::string* body,
                                       bool* sent_fully) {
  *sent_fully = false;
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  FaultAction fault;
  if (opts_.fault) fault = opts_.fault->Next();

  if (fault.kind == FaultKind::kResetBeforeSend) {
    CloseLocked();
    return Status::IOError("injected fault: connection reset before send");
  }
  if (fault.kind == FaultKind::kDelaySend) SleepMicros(fault.delay_micros);

  std::string frame = EncodeFrame(EncodeRequest(req));
  if (fault.kind == FaultKind::kCorruptFrame) {
    // Flip a payload byte (never the length varint, which could leave the
    // server waiting forever): the digest check rejects deterministically.
    frame.back() = static_cast<char>(frame.back() ^ 0x01);
  }
  if (fault.kind == FaultKind::kShortWrite) {
    // Half a frame can never execute — the length prefix promises bytes
    // that will not come — so the send outcome genuinely does not matter.
    (void)SendBytesLocked(Slice(frame.data(), frame.size() / 2), deadline);
    CloseLocked();
    return Status::IOError("injected fault: short write");
  }

  Status sent = SendBytesLocked(frame, deadline);
  if (!sent.ok()) {
    // Nothing or a torn prefix left the socket; either way the server can
    // never decode this request, so it is provably not executed.
    CloseLocked();
    return sent;
  }
  *sent_fully = true;

  if (fault.kind == FaultKind::kResetAfterSend) {
    CloseLocked();
    return Status::IOError("injected fault: connection reset after send");
  }
  if (fault.kind == FaultKind::kDelayRecv) SleepMicros(fault.delay_micros);

  std::string payload;
  Status read = ReadResponseLocked(&payload, deadline);
  if (!read.ok()) {
    CloseLocked();
    return read;
  }
  Status decoded = DecodeResponse(payload, app, body);
  if (!decoded.ok()) {
    // The response itself is garbage: the stream cannot be trusted again.
    CloseLocked();
    return decoded;
  }
  return Status::OK();
}

Status SocketTransport::HandshakeLocked() {
  Request hello;
  hello.type = MsgType::kHello;
  hello.version = kWireVersion;
  Status app;
  std::string body;
  bool sent_fully = false;
  Status s = ExchangeLocked(hello, DeadlineFromNow(), &app, &body, &sent_fully);
  if (!s.ok()) return s;
  if (!app.ok()) {
    CloseLocked();
    return app;
  }
  return Status::OK();
}

Status SocketTransport::ReconnectLocked() {
  CloseLocked();
  auto fd = DialOnce(host_, port_);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  // A fresh connection starts a fresh stream: stale half-frames from the
  // old one must never prefix the new one's responses.
  decoder_ = FrameDecoder(opts_.max_frame_bytes);
  Status hs = HandshakeLocked();
  if (!hs.ok()) {
    CloseLocked();
    return hs;
  }
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

SocketTransport::AttemptResult SocketTransport::CallOnce(const Request& req) {
  MutexLock lock(mu_);
  AttemptResult out;
  if (closed_) {
    out.permanent = true;
    out.error = Status::IOError("transport closed");
    return out;
  }
  if (fd_ < 0) {
    if (!opts_.auto_reconnect) {
      out.permanent = true;
      out.error = Status::IOError("transport closed");
      return out;
    }
    Status rc = ReconnectLocked();
    if (!rc.ok()) {
      out.error = std::move(rc);  // not executed: no connection to send on
      return out;
    }
  }
  Status app;
  std::string body;
  bool sent_fully = false;
  Status s = ExchangeLocked(req, DeadlineFromNow(), &app, &body, &sent_fully);
  if (!s.ok()) {
    out.kind = sent_fully ? AttemptResult::Kind::kAmbiguous
                          : AttemptResult::Kind::kNotExecuted;
    out.error = std::move(s);
    return out;
  }
  if (IsBadFrameReject(app)) {
    // The server rejected the frame without executing it and is about to
    // drop the connection; beat it to the close so the next attempt
    // starts on a fresh dial.
    CloseLocked();
    out.kind = AttemptResult::Kind::kNotExecuted;
    out.error = std::move(app);
    return out;
  }
  if (app.IsResourceExhausted()) {
    // Overload shed: the server refused before executing and closes the
    // connection after the reject. Back off and re-dial.
    CloseLocked();
    out.kind = AttemptResult::Kind::kNotExecuted;
    out.error = std::move(app);
    return out;
  }
  out.kind = AttemptResult::Kind::kResponded;
  out.app = std::move(app);
  out.body = std::move(body);
  return out;
}

void SocketTransport::BackoffSleep(int attempt) {
  int64_t delay_ms = std::max(1, opts_.retry.backoff_init_ms);
  const int64_t cap = std::max<int64_t>(delay_ms, opts_.retry.backoff_max_ms);
  for (int i = 1; i < attempt && delay_ms < cap; ++i) delay_ms *= 2;
  delay_ms = std::min(delay_ms, cap);
  uint64_t draw;
  {
    MutexLock lock(mu_);
    draw = jitter_rng_.Next();
  }
  // Jitter into [delay/2, delay] so a fleet of clients spreads its retries.
  const int64_t low = delay_ms / 2;
  const int64_t sleep_ms =
      low + static_cast<int64_t>(draw % static_cast<uint64_t>(delay_ms - low + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

Result<std::string> SocketTransport::CallIdempotent(const Request& req) {
  const int max_attempts = std::max(1, opts_.retry.max_attempts);
  Status last = Status::IOError("no wire attempt made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      BackoffSleep(attempt);
    }
    AttemptResult r = CallOnce(req);
    if (r.kind == AttemptResult::Kind::kResponded) {
      if (!r.app.ok()) return r.app;
      return std::move(r.body);
    }
    last = std::move(r.error);
    // The whole surface routed through here is idempotent (reads, plus
    // content-addressed writes a replay re-stores byte-identically), so
    // both not-executed and ambiguous attempts are safe to replay.
    if (r.permanent || !opts_.auto_reconnect) return last;
  }
  return Status::Unavailable("retry policy exhausted after " +
                             std::to_string(max_attempts) +
                             " attempts; last: " + last.ToString());
}

Result<std::shared_ptr<const std::string>> SocketTransport::Get(
    const Hash& h) {
  Request req;
  req.type = MsgType::kGet;
  req.hash = h;
  auto body = CallIdempotent(req);
  if (!body.ok()) return body.status();
  return std::make_shared<const std::string>(std::move(*body));
}

Result<bool> SocketTransport::Contains(const Hash& h) {
  Request req;
  req.type = MsgType::kContains;
  req.hash = h;
  auto body = CallIdempotent(req);
  if (!body.ok()) return body.status();
  if (body->size() != 1) return Status::Corruption("contains body");
  return (*body)[0] != 0;
}

Result<uint64_t> SocketTransport::SizeOf(const Hash& h) {
  Request req;
  req.type = MsgType::kSizeOf;
  req.hash = h;
  auto body = CallIdempotent(req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  uint64_t size = 0;
  if (!GetVarint64(&in, &size) || !in.empty()) {
    return Status::Corruption("sizeof body");
  }
  return size;
}

Result<Hash> SocketTransport::Put(Slice bytes) {
  Request req;
  req.type = MsgType::kPut;
  req.bytes.assign(bytes.data(), bytes.size());
  auto body = CallIdempotent(req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  Hash h;
  if (!GetHash(&in, &h) || !in.empty()) return Status::Corruption("put body");
  return h;
}

Status SocketTransport::PutMany(const NodeBatch& batch) {
  if (batch.empty()) return Status::OK();
  Request req;
  req.type = MsgType::kPutMany;
  req.batch = batch;  // shares the node byte buffers, no copy
  return CallIdempotent(req).status();
}

Status SocketTransport::Flush() {
  Request req;
  req.type = MsgType::kFlush;
  return CallIdempotent(req).status();
}

Result<NodeStore::Stats> SocketTransport::StoreStats() {
  Request req;
  req.type = MsgType::kStoreStats;
  auto body = CallIdempotent(req);
  if (!body.ok()) return body.status();
  NodeStore::Stats s;
  Status decoded = DecodeStoreStatsBody(*body, &s);
  if (!decoded.ok()) return decoded;
  return s;
}

Status SocketTransport::ResetServerOpCounters() {
  Request req;
  req.type = MsgType::kResetCounters;
  return CallIdempotent(req).status();
}

Result<Hash> SocketTransport::Head(const std::string& branch) {
  Request req;
  req.type = MsgType::kHead;
  req.branch = branch;
  auto body = CallIdempotent(req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  Hash h;
  if (!GetHash(&in, &h) || !in.empty()) {
    return Status::Corruption("head body");
  }
  return h;
}

Result<std::optional<PublishResult>> SocketTransport::CheckPublishApplied(
    const PublishRequest& pub) {
  // Reconstruct the content commit the server builds for this request
  // (version/occ.cc): root + [expected_head] + author/message, sequence =
  // parent.sequence + 1 (0 for a branch creation). Commits are
  // content-addressed, so its digest is decidable client-side.
  Commit want;
  want.root = pub.new_root;
  want.author = pub.author;
  want.message = pub.message;
  if (pub.expected_head.has_value()) {
    want.parents.push_back(*pub.expected_head);
    Request preq;
    preq.type = MsgType::kGet;
    preq.hash = *pub.expected_head;
    auto parent_bytes = CallIdempotent(preq);
    if (!parent_bytes.ok()) return parent_bytes.status();
    auto parent = Commit::Decode(*parent_bytes);
    if (!parent.ok()) return parent.status();
    want.sequence = parent->sequence + 1;
  }
  const Hash target = Sha256::Digest(want.Encode());

  Request hreq;
  hreq.type = MsgType::kHead;
  hreq.branch = pub.branch;
  auto head_body = CallIdempotent(hreq);
  if (!head_body.ok()) {
    if (head_body.status().IsNotFound()) {
      // No branch, no commit: a creation publish did not land and a
      // publish onto a since-deleted branch certainly did not.
      return std::optional<PublishResult>();
    }
    return head_body.status();
  }
  Slice in(*head_body);
  Hash head;
  if (!GetHash(&in, &head) || !in.empty()) {
    return Status::Corruption("head body");
  }

  // Walk the DAG from the head looking for the target digest. Parents
  // carry strictly smaller sequence numbers than their children, so any
  // node at or below the target's sequence that is not the target itself
  // cannot have the target in its ancestry — prune there. NOTE: a mere
  // Contains(target) would NOT do: an orphaned commit object (written,
  // lost the CAS, never merged) lives in the content-addressed store
  // without being history, and mistaking it for "applied" loses an acked
  // update.
  std::deque<Hash> frontier{head};
  std::set<std::string> visited{head.ToHex()};
  size_t budget = kPublishResolveBudget;
  while (!frontier.empty()) {
    const Hash h = frontier.front();
    frontier.pop_front();
    if (h == target) {
      PublishResult out;
      out.head = head;
      out.commit = target;
      return std::optional<PublishResult>(out);
    }
    if (budget == 0) {
      return Status::Unavailable(
          "publish resolution budget exhausted walking branch '" + pub.branch +
          "'; cannot prove whether the publish applied");
    }
    --budget;
    Request creq;
    creq.type = MsgType::kGet;
    creq.hash = h;
    auto bytes = CallIdempotent(creq);
    if (!bytes.ok()) return bytes.status();
    auto c = Commit::Decode(*bytes);
    if (!c.ok()) return c.status();
    if (c->sequence > want.sequence) {
      for (const Hash& p : c->parents) {
        if (visited.insert(p.ToHex()).second) frontier.push_back(p);
      }
    }
  }
  return std::optional<PublishResult>();  // provably absent: replay is safe
}

Result<PublishResult> SocketTransport::Publish(const PublishRequest& pub) {
  Request req;
  req.type = MsgType::kPublish;
  req.structure = pub.structure;
  req.branch = pub.branch;
  req.new_root = pub.new_root;
  req.author = pub.author;
  req.message = pub.message;
  req.expected_head = pub.expected_head;

  const int max_attempts = std::max(1, opts_.retry.max_attempts);
  Status last = Status::IOError("no wire attempt made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      BackoffSleep(attempt);
    }
    AttemptResult r = CallOnce(req);
    if (r.kind == AttemptResult::Kind::kResponded) {
      if (!r.app.ok()) return r.app;
      WirePublishResult wire;
      Status decoded = DecodePublishResultBody(r.body, &wire);
      if (!decoded.ok()) return decoded;
      PublishResult out;
      out.head = wire.head;
      out.commit = wire.commit;
      out.cas_failures = wire.cas_failures;
      out.merge_commits = wire.merge_commits;
      return out;
    }
    last = std::move(r.error);
    if (r.permanent || !opts_.auto_reconnect) return last;
    if (r.kind == AttemptResult::Kind::kAmbiguous) {
      // Lost ack: the publish may have applied. Blind replay would land a
      // duplicate (degenerate merge) commit, so resolve by inspecting the
      // branch head first; only a *proven* not-applied is replayed.
      //
      // One inspection is not proof: the server executes a fully-received
      // frame when a worker drains the (now dead) connection, which races
      // an immediate head check — "absent" taken too early would replay a
      // publish that is just about to apply. Demand two agreeing absent
      // verdicts a backoff apart before falling through to the replay.
      for (int probe = 0; probe < 2; ++probe) {
        auto resolved = CheckPublishApplied(pub);
        if (!resolved.ok()) return resolved.status();
        if (resolved->has_value()) return **resolved;
        if (probe == 0) BackoffSleep(attempt + 1);
      }
    }
  }
  return Status::Unavailable("publish retry policy exhausted after " +
                             std::to_string(max_attempts) +
                             " attempts; last: " + last.ToString());
}

Result<BranchStats> SocketTransport::GetBranchStats(const std::string& branch) {
  Request req;
  req.type = MsgType::kBranchStats;
  req.branch = branch;
  auto body = CallIdempotent(req);
  if (!body.ok()) return body.status();
  BranchStats s;
  Status decoded = DecodeBranchStatsBody(*body, &s);
  if (!decoded.ok()) return decoded;
  return s;
}

Result<std::vector<std::string>> SocketTransport::ListBranches() {
  Request req;
  req.type = MsgType::kListBranches;
  auto body = CallIdempotent(req);
  if (!body.ok()) return body.status();
  std::vector<std::string> branches;
  Status decoded = DecodeStringListBody(*body, &branches);
  if (!decoded.ok()) return decoded;
  return branches;
}

Transport::Stats SocketTransport::stats() const {
  Stats out;
  out.rpcs = rpcs_.load(std::memory_order_relaxed);
  out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  out.syscalls = syscalls_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.reconnects = reconnects_.load(std::memory_order_relaxed);
  out.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace net
}  // namespace siri
