// Copyright (c) 2026 The siri Authors. MIT license.

#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <set>
#include <thread>

#include "common/varint.h"
#include "crypto/sha256.h"

namespace siri {
namespace net {

namespace {

// Commit objects fetched while resolving an ambiguous publish. A branch
// cannot gain more than (writers × retry budget) commits during one
// resolution window, so a walk this deep means the client is hopelessly
// behind — give up with Unavailable rather than chase the head forever.
constexpr size_t kPublishResolveBudget = 512;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

Status DeadlineError(int timeout_ms) {
  return Status::IOError("rpc deadline exceeded (" +
                         std::to_string(timeout_ms) + "ms)");
}

bool IsDeadlineError(const Status& s) {
  return s.code() == Status::Code::kIOError &&
         s.message().compare(0, 21, "rpc deadline exceeded") == 0;
}

Result<int> DialOnce(const std::string& host, int port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("connect");
    close(fd);
    return s;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Non-blocking from here on: every send/recv is paired with a poll that
  // honors the per-attempt deadline instead of blocking indefinitely.
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const Status s = Errno("fcntl(O_NONBLOCK)");
    close(fd);
    return s;
  }
  return fd;
}

/// Handshake failures worth re-dialing for: the wire broke (IO) or the
/// server is shedding load (ResourceExhausted). Typed application rejects
/// — an unservable version above all — are deterministic and fail fast.
bool RetriableHandshake(const Status& s) {
  return s.code() == Status::Code::kIOError || s.IsResourceExhausted();
}

/// A pre-negotiation server's Hello reject: it could not serve the
/// advertised version but is still listening — worth one downgrade retry.
bool IsVersionMismatchReject(const Status& s) {
  return s.IsInvalidArgument() &&
         s.message().find("wire version mismatch") != std::string::npos;
}

}  // namespace

SocketTransport::SocketTransport(std::string host, int port, int fd,
                                 Options opts)
    : opts_(std::move(opts)),
      host_(std::move(host)),
      port_(port),
      fd_(fd),
      decoder_(opts_.max_frame_bytes),
      jitter_rng_(opts_.retry.jitter_seed) {}

Status SocketTransport::Connect(const std::string& host, int port,
                                std::shared_ptr<SocketTransport>* out,
                                Options opts) {
  auto fd = DialOnce(host, port);
  for (int waited_ms = 0; !fd.ok() && waited_ms < opts.connect_retry_ms;
       waited_ms += 50) {
    // A forked client can outrun the server's bind; retry briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fd = DialOnce(host, port);
  }
  if (!fd.ok()) return fd.status();
  std::shared_ptr<SocketTransport> t(
      new SocketTransport(host, port, *fd, opts));
  // Version handshake up front: a non-siri peer or unservable version
  // skew turns into a typed error here instead of a hung or garbled
  // first RPC.
  Status hs;
  {
    MutexLock lock(t->mu_);
    t->connecting_ = true;
    hs = t->HandshakeLocked(lock);
    t->connecting_ = false;
  }
  const int max_attempts = std::max(1, opts.retry.max_attempts);
  for (int attempt = 1; !hs.ok() && opts.auto_reconnect &&
                        attempt < max_attempts && RetriableHandshake(hs);
       ++attempt) {
    t->retries_.fetch_add(1, std::memory_order_relaxed);
    t->BackoffSleep(attempt);
    MutexLock lock(t->mu_);
    t->connecting_ = true;
    hs = t->ReconnectLocked(lock);
    t->connecting_ = false;
  }
  if (!hs.ok()) return hs;
  *out = std::move(t);
  return Status::OK();
}

SocketTransport::~SocketTransport() { Close(); }

void SocketTransport::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  CloseAndFailAllLocked(Status::IOError("transport closed"));
}

void SocketTransport::SetPushSink(PushSink sink) {
  MutexLock lock(sink_mu_);
  push_sink_ = std::move(sink);
}

uint32_t SocketTransport::negotiated_wire_version() const {
  MutexLock lock(mu_);
  return wire_version_;
}

void SocketTransport::CloseLocked() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  ++conn_epoch_;
  decoder_ = FrameDecoder(opts_.max_frame_bytes);
}

void SocketTransport::CloseAndFailAllLocked(const Status& error) {
  CloseLocked();
  for (auto& [corr, rpc] : pending_) {
    if (!rpc->done && !rpc->failed) {
      rpc->failed = true;
      rpc->error = error;
    }
  }
  cv_.notify_all();
}

SocketTransport::TimePoint SocketTransport::DeadlineFromNow() const {
  if (opts_.rpc_timeout_ms <= 0) return TimePoint::max();
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(opts_.rpc_timeout_ms);
}

int SocketTransport::EffectiveMaxInflightLocked() const {
  if (wire_version_ < 2) return 1;  // no correlation ids on the wire
  return std::max(1, opts_.max_inflight);
}

Status SocketTransport::PollUnlocked(MutexLock& lock, int fd, short events,
                                     TimePoint deadline) {
  int timeout_ms = -1;
  if (deadline != TimePoint::max()) {
    const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
    if (remain <= 0) return DeadlineError(opts_.rpc_timeout_ms);
    timeout_ms = static_cast<int>(std::min<int64_t>(remain, INT32_MAX));
  }
  pollfd p{};
  p.fd = fd;
  p.events = events;
  lock.Unlock();
  const int r = poll(&p, 1, timeout_ms);
  const int saved_errno = errno;
  lock.Lock();
  syscalls_.fetch_add(1, std::memory_order_relaxed);
  // Readiness includes error/hangup revents: return OK and let the next
  // send/recv surface the precise errno.
  if (r > 0) return Status::OK();
  if (r == 0) return DeadlineError(opts_.rpc_timeout_ms);
  if (saved_errno == EINTR) return Status::OK();  // re-check, maybe re-poll
  errno = saved_errno;
  return Errno("poll");
}

void SocketTransport::SleepUnlocked(MutexLock& lock, uint64_t micros) {
  if (micros == 0) return;
  lock.Unlock();
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
  lock.Lock();
}

Status SocketTransport::SendFrameLocked(MutexLock& lock,
                                        const std::string& frame, size_t limit,
                                        TimePoint deadline) {
  const uint64_t epoch = conn_epoch_;
  size_t off = 0;
  while (off < limit) {
    // Whole-attempt deadline, re-checked every iteration: a peer that
    // accepts one byte per call (no EAGAIN ever) must still time out.
    if (deadline != TimePoint::max() &&
        std::chrono::steady_clock::now() >= deadline) {
      return DeadlineError(opts_.rpc_timeout_ms);
    }
    const ssize_t n = send(fd_, frame.data() + off, limit - off, MSG_NOSIGNAL);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      off += static_cast<size_t>(n);
      bytes_sent_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      // send() returning 0 on a stream socket is not progress and not
      // EAGAIN; errno is stale here. Treating it as retriable would spin
      // forever — classify as a wire failure (the caller tears down, and
      // the torn/sent boundary decides executed-ness).
      return Status::IOError("send returned 0 (connection unusable)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = PollUnlocked(lock, fd_, POLLOUT, deadline);
      // The connection may have been torn down by another thread (a
      // fault on its RPC, an explicit Close) while we polled unlocked.
      if (conn_epoch_ != epoch) {
        return Status::IOError("connection reset during send");
      }
      if (!ready.ok()) return ready;
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

void SocketTransport::HandleDeadlineMissLocked(PendingRpc* self) {
  deadline_misses_.fetch_add(1, std::memory_order_relaxed);
  const Status miss = DeadlineError(opts_.rpc_timeout_ms);
  if (wire_version_ >= 2 && self->sent_fully && fd_ >= 0) {
    // v2: the request is whole on the wire and the response stream is
    // framed per correlation id — abandon just this id. The owner
    // deregisters it on exit, so the late response is discarded on
    // arrival; every other in-flight RPC keeps its healthy connection.
    self->failed = true;
    self->error = miss;
    return;
  }
  // v1 (no ids: the next response on the stream would be misattributed)
  // or a mid-send miss (torn frame): the stream cannot be resynced.
  CloseAndFailAllLocked(miss);
}

void SocketTransport::ReadLoopLocked(MutexLock& lock, PendingRpc* self,
                                     TimePoint deadline) {
  const uint64_t epoch = conn_epoch_;
  std::string payload;
  for (;;) {
    if (self->done || self->failed) return;
    if (conn_epoch_ != epoch) return;  // torn down while we polled
    // Dispatch every complete frame already buffered.
    for (;;) {
      auto next = decoder_.Next(&payload);
      if (!next.ok()) {
        CloseAndFailAllLocked(next.status());
        return;
      }
      if (!*next) break;
      Status app;
      std::string body;
      uint64_t corr = 0;
      Status dec = DecodeResponse(payload, &app, &body, wire_version_, &corr);
      if (!dec.ok()) {
        // The response itself is garbage: the stream cannot be trusted.
        CloseAndFailAllLocked(dec);
        return;
      }
      auto it = pending_.find(corr);
      if (it != pending_.end() && !it->second->done && !it->second->failed) {
        it->second->app = std::move(app);
        it->second->body = std::move(body);
        it->second->done = true;
      }
      // else: a late response for an abandoned (deadline-missed)
      // correlation id — discard; the stream stays in sync.
      cv_.notify_all();
      if (self->done || self->failed) return;
    }
    char buf[64 * 1024];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      bytes_received_.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      CloseAndFailAllLocked(
          Status::IOError("server closed the connection mid-response"));
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = PollUnlocked(lock, fd_, POLLIN, deadline);
      if (conn_epoch_ != epoch) return;
      if (!ready.ok()) {
        if (IsDeadlineError(ready)) {
          HandleDeadlineMissLocked(self);
        } else {
          CloseAndFailAllLocked(ready);
        }
        return;
      }
      continue;
    }
    if (errno == EINTR) continue;
    CloseAndFailAllLocked(Errno("recv"));
    return;
  }
}

Status SocketTransport::ReadHandshakeResponseLocked(MutexLock& lock,
                                                    std::string* payload,
                                                    TimePoint deadline) {
  const uint64_t epoch = conn_epoch_;
  for (;;) {
    auto next = decoder_.Next(payload);
    if (!next.ok()) return next.status();
    if (*next) return Status::OK();
    char buf[64 * 1024];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      bytes_received_.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection mid-response");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = PollUnlocked(lock, fd_, POLLIN, deadline);
      if (conn_epoch_ != epoch) {
        return Status::IOError("connection reset during handshake");
      }
      if (!ready.ok()) return ready;
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status SocketTransport::HandshakeLocked(MutexLock& lock) {
  // The Hello exchange is always v1-shaped: it happens before the
  // version is known (net/wire.h). Exclusive access to the connection is
  // guaranteed by connecting_, so no pending/corr machinery is involved.
  wire_version_ = 1;
  uint32_t advertise = kWireVersion;
  for (int round = 0; round < 2; ++round) {
    rpcs_.fetch_add(1, std::memory_order_relaxed);
    FaultAction fault;
    if (opts_.fault) fault = opts_.fault->Next();
    const TimePoint deadline = DeadlineFromNow();

    if (fault.kind == FaultKind::kResetBeforeSend) {
      CloseLocked();
      return Status::IOError("injected fault: connection reset before send");
    }
    if (fault.kind == FaultKind::kDelaySend) {
      SleepUnlocked(lock, fault.delay_micros);
      if (fd_ < 0) return Status::IOError("connection reset during handshake");
    }

    Request hello;
    hello.type = MsgType::kHello;
    hello.version = advertise;
    std::string frame = EncodeFrame(EncodeRequest(hello, /*wire_version=*/1));
    if (fault.kind == FaultKind::kCorruptFrame) {
      frame.back() = static_cast<char>(frame.back() ^ 0x01);
    }
    if (fault.kind == FaultKind::kShortWrite) {
      const size_t limit =
          fault.short_write_offset == UINT64_MAX
              ? frame.size() / 2
              : std::min<size_t>(fault.short_write_offset, frame.size());
      (void)SendFrameLocked(lock, frame, limit, deadline);
      CloseLocked();
      return Status::IOError("injected fault: short write");
    }

    Status sent = SendFrameLocked(lock, frame, frame.size(), deadline);
    if (!sent.ok()) {
      if (IsDeadlineError(sent)) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      CloseLocked();
      return sent;
    }
    if (fault.kind == FaultKind::kResetAfterSend) {
      CloseLocked();
      return Status::IOError("injected fault: connection reset after send");
    }
    if (fault.kind == FaultKind::kDelayRecv) {
      SleepUnlocked(lock, fault.delay_micros);
      if (fd_ < 0) return Status::IOError("connection reset during handshake");
    }

    std::string payload;
    Status read = ReadHandshakeResponseLocked(lock, &payload, deadline);
    if (!read.ok()) {
      if (IsDeadlineError(read)) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      CloseLocked();
      return read;
    }
    Status app;
    std::string body;
    Status decoded = DecodeResponse(payload, &app, &body, /*wire_version=*/1);
    if (!decoded.ok()) {
      CloseLocked();
      return decoded;
    }
    if (!app.ok()) {
      if (IsVersionMismatchReject(app) && advertise > kMinWireVersion) {
        // A pre-negotiation server rejects any version but its own — and
        // keeps the connection open after the typed reject. Downgrade to
        // the floor and offer again (one more wire attempt).
        advertise = kMinWireVersion;
        continue;
      }
      CloseLocked();
      return app;
    }
    // Negotiate: the response body carries the server's verdict as a
    // varint — a negotiating server answers min(client, server); a
    // pre-negotiation server echoes its own (single) version, which
    // taking the min handles identically. An empty body is an ancient
    // peer: treat as v1.
    uint64_t server_version = 1;
    if (!body.empty()) {
      Slice in(body);
      if (!GetVarint64(&in, &server_version) || !in.empty() ||
          server_version == 0 || server_version > UINT32_MAX) {
        CloseLocked();
        return Status::Corruption("malformed hello response body");
      }
    }
    wire_version_ = NegotiateWireVersion(
        advertise, static_cast<uint32_t>(server_version));
    if (wire_version_ < kMinWireVersion) {
      CloseLocked();
      return Status::InvalidArgument(
          "wire version mismatch: negotiated v" +
          std::to_string(wire_version_) + ", client floor v" +
          std::to_string(kMinWireVersion));
    }
    return Status::OK();
  }
  CloseLocked();
  return Status::InvalidArgument("wire version negotiation failed");
}

Status SocketTransport::ReconnectLocked(MutexLock& lock) {
  CloseLocked();
  lock.Unlock();
  auto fd = DialOnce(host_, port_);
  lock.Lock();
  if (!fd.ok()) return fd.status();
  if (closed_) {  // raced an explicit Close while dialing unlocked
    close(*fd);
    return Status::IOError("transport closed");
  }
  fd_ = *fd;
  // A fresh connection starts a fresh stream: stale half-frames from the
  // old one must never prefix the new one's responses.
  decoder_ = FrameDecoder(opts_.max_frame_bytes);
  Status hs = HandshakeLocked(lock);
  if (!hs.ok()) {
    CloseLocked();
    return hs;
  }
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

SocketTransport::AttemptResult SocketTransport::CallOnce(Request* req) {
  // One monotonic budget for the whole attempt: admission + reconnect +
  // send + receive. Dribbling progress never resets it.
  const TimePoint deadline = DeadlineFromNow();
  MutexLock lock(mu_);
  AttemptResult out;

  // --- admission: a live connection, a free slot, the sender token ----
  for (;;) {
    if (closed_) {
      out.permanent = true;
      out.error = Status::IOError("transport closed");
      return out;
    }
    if (fd_ < 0) {
      if (!opts_.auto_reconnect) {
        out.permanent = true;
        out.error = Status::IOError("transport closed");
        return out;
      }
      // Reconnect only once the dead connection's RPCs have drained —
      // their owners wake immediately (CloseAndFailAll marked them) and
      // deregister, so this is a brief window, not a stall.
      if (!connecting_ && !sender_active_ && !reader_active_ &&
          pending_.empty()) {
        connecting_ = true;
        Status rc = ReconnectLocked(lock);
        connecting_ = false;
        cv_.notify_all();
        if (!rc.ok()) {
          out.error = std::move(rc);  // not executed: nothing to send on
          return out;
        }
        continue;  // re-evaluate admission on the fresh connection
      }
    } else if (!connecting_ && !sender_active_ &&
               inflight_ < EffectiveMaxInflightLocked()) {
      break;  // admitted
    }
    if (deadline == TimePoint::max()) {
      cv_.wait(lock.native());
    } else if (cv_.wait_until(lock.native(), deadline) ==
               std::cv_status::timeout) {
      // Timed out before sending a byte: a deadline miss, but provably
      // not executed — the cheapest kind to retry.
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      out.error = DeadlineError(opts_.rpc_timeout_ms);
      return out;
    }
  }

  // --- claim the slot, register the correlation id, send -------------
  sender_active_ = true;
  ++inflight_;
  PendingRpc rpc;
  rpc.corr = wire_version_ >= 2 ? next_corr_++ : 0;
  req->corr_id = rpc.corr;
  pending_[rpc.corr] = &rpc;
  rpcs_.fetch_add(1, std::memory_order_relaxed);

  FaultAction fault;
  if (opts_.fault) fault = opts_.fault->Next();

  if (fault.kind == FaultKind::kResetBeforeSend) {
    CloseAndFailAllLocked(
        Status::IOError("injected fault: connection reset before send"));
  } else {
    if (fault.kind == FaultKind::kDelaySend) {
      SleepUnlocked(lock, fault.delay_micros);
    }
    if (!rpc.failed && fd_ >= 0) {
      std::string frame = EncodeFrame(EncodeRequest(*req, wire_version_));
      if (fault.kind == FaultKind::kCorruptFrame) {
        // Flip a payload byte (never the length varint, which could
        // leave the server waiting forever): the digest check rejects
        // deterministically.
        frame.back() = static_cast<char>(frame.back() ^ 0x01);
      }
      if (fault.kind == FaultKind::kShortWrite) {
        // A torn frame can never execute — the length prefix promises
        // bytes that will not come — so a mid-frame tear is provably not
        // executed whatever the send outcome. The scripted offset pins
        // the tear exactly; an offset at (or clamped to) the full frame
        // size delivered everything and must classify as a lost ack, not
        // a torn send.
        const size_t limit =
            fault.short_write_offset == UINT64_MAX
                ? frame.size() / 2
                : std::min<size_t>(fault.short_write_offset, frame.size());
        const Status sent = SendFrameLocked(lock, frame, limit, deadline);
        if (sent.ok() && limit == frame.size()) rpc.sent_fully = true;
        CloseAndFailAllLocked(Status::IOError("injected fault: short write"));
      } else {
        Status sent = SendFrameLocked(lock, frame, frame.size(), deadline);
        if (sent.ok()) {
          rpc.sent_fully = true;
          if (fault.kind == FaultKind::kResetAfterSend) {
            CloseAndFailAllLocked(Status::IOError(
                "injected fault: connection reset after send"));
          }
        } else if (!rpc.failed) {
          // Nothing or a torn prefix left the socket; either way the
          // server can never decode this request — not executed. The
          // torn stream position is unrecoverable for everyone.
          if (IsDeadlineError(sent)) {
            deadline_misses_.fetch_add(1, std::memory_order_relaxed);
          }
          CloseAndFailAllLocked(sent);
        }
      }
    } else if (!rpc.failed) {
      rpc.failed = true;
      rpc.error = Status::IOError("connection reset during send");
    }
  }
  sender_active_ = false;
  cv_.notify_all();

  if (rpc.sent_fully && fault.kind == FaultKind::kDelayRecv) {
    SleepUnlocked(lock, fault.delay_micros);
  }

  // --- await the matching response -----------------------------------
  while (!rpc.done && !rpc.failed) {
    if (!reader_active_) {
      reader_active_ = true;
      ReadLoopLocked(lock, &rpc, deadline);
      reader_active_ = false;
      cv_.notify_all();
      continue;
    }
    if (deadline == TimePoint::max()) {
      cv_.wait(lock.native());
    } else if (cv_.wait_until(lock.native(), deadline) ==
               std::cv_status::timeout) {
      HandleDeadlineMissLocked(&rpc);
      break;
    }
  }

  // --- deregister and classify ---------------------------------------
  pending_.erase(rpc.corr);
  --inflight_;
  cv_.notify_all();

  if (rpc.failed) {
    out.kind = rpc.sent_fully ? AttemptResult::Kind::kAmbiguous
                              : AttemptResult::Kind::kNotExecuted;
    out.error = std::move(rpc.error);
    return out;
  }
  if (IsBadFrameReject(rpc.app)) {
    // The server rejected the frame without executing it and is about to
    // drop the connection; beat it to the close so the next attempt
    // starts on a fresh dial. (Everything else in flight fails with it —
    // a garbled stream has no per-id blast radius.)
    CloseAndFailAllLocked(
        Status::IOError("connection dropped after server frame reject"));
    out.kind = AttemptResult::Kind::kNotExecuted;
    out.error = std::move(rpc.app);
    return out;
  }
  if (rpc.app.IsResourceExhausted() && !IsDegradedReject(rpc.app)) {
    // Overload shed: the server refused before executing and closes the
    // connection after the reject. Back off and re-dial. A degraded-store
    // reject (kDegradedPrefix) is NOT this case: the server's disk fault
    // is sticky, so the typed error goes straight to the caller below —
    // retrying against a read-only server is a hang with extra steps.
    CloseAndFailAllLocked(
        Status::IOError("connection dropped after overload reject"));
    out.kind = AttemptResult::Kind::kNotExecuted;
    out.error = std::move(rpc.app);
    return out;
  }
  out.kind = AttemptResult::Kind::kResponded;
  out.app = std::move(rpc.app);
  out.body = std::move(rpc.body);
  return out;
}

void SocketTransport::BackoffSleep(int attempt) {
  int64_t delay_ms = std::max(1, opts_.retry.backoff_init_ms);
  const int64_t cap = std::max<int64_t>(delay_ms, opts_.retry.backoff_max_ms);
  for (int i = 1; i < attempt && delay_ms < cap; ++i) delay_ms *= 2;
  delay_ms = std::min(delay_ms, cap);
  uint64_t draw;
  {
    MutexLock lock(mu_);
    draw = jitter_rng_.Next();
  }
  // Jitter into [delay/2, delay] so a fleet of clients spreads its retries.
  const int64_t low = delay_ms / 2;
  const int64_t sleep_ms =
      low + static_cast<int64_t>(draw % static_cast<uint64_t>(delay_ms - low + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

Result<std::string> SocketTransport::CallIdempotent(Request* req) {
  const int max_attempts = std::max(1, opts_.retry.max_attempts);
  Status last = Status::IOError("no wire attempt made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      BackoffSleep(attempt);
    }
    AttemptResult r = CallOnce(req);
    if (r.kind == AttemptResult::Kind::kResponded) {
      if (!r.app.ok()) return r.app;
      return std::move(r.body);
    }
    last = std::move(r.error);
    // The whole surface routed through here is idempotent (reads, plus
    // content-addressed writes a replay re-stores byte-identically), so
    // both not-executed and ambiguous attempts are safe to replay.
    if (r.permanent || !opts_.auto_reconnect) return last;
  }
  return Status::Unavailable("retry policy exhausted after " +
                             std::to_string(max_attempts) +
                             " attempts; last: " + last.ToString());
}

Result<std::shared_ptr<const std::string>> SocketTransport::Get(
    const Hash& h) {
  Request req;
  req.type = MsgType::kGet;
  req.hash = h;
  auto body = CallIdempotent(&req);
  if (!body.ok()) return body.status();
  return std::make_shared<const std::string>(std::move(*body));
}

Result<bool> SocketTransport::Contains(const Hash& h) {
  Request req;
  req.type = MsgType::kContains;
  req.hash = h;
  auto body = CallIdempotent(&req);
  if (!body.ok()) return body.status();
  if (body->size() != 1) return Status::Corruption("contains body");
  return (*body)[0] != 0;
}

Result<uint64_t> SocketTransport::SizeOf(const Hash& h) {
  Request req;
  req.type = MsgType::kSizeOf;
  req.hash = h;
  auto body = CallIdempotent(&req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  uint64_t size = 0;
  if (!GetVarint64(&in, &size) || !in.empty()) {
    return Status::Corruption("sizeof body");
  }
  return size;
}

Result<Hash> SocketTransport::Put(Slice bytes) {
  Request req;
  req.type = MsgType::kPut;
  req.bytes.assign(bytes.data(), bytes.size());
  auto body = CallIdempotent(&req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  Hash h;
  if (!GetHash(&in, &h) || !in.empty()) return Status::Corruption("put body");
  return h;
}

Status SocketTransport::PutMany(const NodeBatch& batch) {
  if (batch.empty()) return Status::OK();
  Request req;
  req.type = MsgType::kPutMany;
  req.batch = batch;  // shares the node byte buffers, no copy
  return CallIdempotent(&req).status();
}

Status SocketTransport::Flush() {
  Request req;
  req.type = MsgType::kFlush;
  return CallIdempotent(&req).status();
}

Result<NodeStore::Stats> SocketTransport::StoreStats() {
  Request req;
  req.type = MsgType::kStoreStats;
  auto body = CallIdempotent(&req);
  if (!body.ok()) return body.status();
  NodeStore::Stats s;
  Status decoded = DecodeStoreStatsBody(*body, &s);
  if (!decoded.ok()) return decoded;
  return s;
}

Status SocketTransport::ResetServerOpCounters() {
  Request req;
  req.type = MsgType::kResetCounters;
  return CallIdempotent(&req).status();
}

Result<Hash> SocketTransport::Head(const std::string& branch) {
  Request req;
  req.type = MsgType::kHead;
  req.branch = branch;
  auto body = CallIdempotent(&req);
  if (!body.ok()) return body.status();
  Slice in(*body);
  Hash h;
  if (!GetHash(&in, &h) || !in.empty()) {
    return Status::Corruption("head body");
  }
  return h;
}

void SocketTransport::DeliverPush(const NodeBatch& pushed) {
  if (pushed.empty()) return;
  // The socket is a trust boundary: re-digest every pushed record and
  // drop mismatches — a corrupt (or malicious) server must not be able
  // to poison the client's content-addressed cache.
  NodeBatch verified;
  verified.reserve(pushed.size());
  uint64_t bytes = 0;
  for (const NodeRecord& rec : pushed) {
    if (rec.bytes == nullptr) continue;
    if (Sha256::Digest(*rec.bytes) != rec.hash) continue;
    bytes += rec.bytes->size();
    verified.push_back(rec);
  }
  if (verified.empty()) return;
  PushSink sink;
  {
    MutexLock lock(sink_mu_);
    sink = push_sink_;
  }
  if (!sink) return;
  sink(verified);
  pushed_nodes_.fetch_add(verified.size(), std::memory_order_relaxed);
  pushed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

Result<std::optional<PublishResult>> SocketTransport::CheckPublishApplied(
    const PublishRequest& pub) {
  // Reconstruct the content commit the server builds for this request
  // (version/occ.cc): root + [expected_head] + author/message, sequence =
  // parent.sequence + 1 (0 for a branch creation). Commits are
  // content-addressed, so its digest is decidable client-side.
  Commit want;
  want.root = pub.new_root;
  want.author = pub.author;
  want.message = pub.message;
  if (pub.expected_head.has_value()) {
    want.parents.push_back(*pub.expected_head);
    Request preq;
    preq.type = MsgType::kGet;
    preq.hash = *pub.expected_head;
    auto parent_bytes = CallIdempotent(&preq);
    if (!parent_bytes.ok()) return parent_bytes.status();
    auto parent = Commit::Decode(*parent_bytes);
    if (!parent.ok()) return parent.status();
    want.sequence = parent->sequence + 1;
  }
  const Hash target = Sha256::Digest(want.Encode());

  Request hreq;
  hreq.type = MsgType::kHead;
  hreq.branch = pub.branch;
  auto head_body = CallIdempotent(&hreq);
  if (!head_body.ok()) {
    if (head_body.status().IsNotFound()) {
      // No branch, no commit: a creation publish did not land and a
      // publish onto a since-deleted branch certainly did not.
      return std::optional<PublishResult>();
    }
    return head_body.status();
  }
  Slice in(*head_body);
  Hash head;
  if (!GetHash(&in, &head) || !in.empty()) {
    return Status::Corruption("head body");
  }

  // Walk the DAG from the head looking for the target digest. Parents
  // carry strictly smaller sequence numbers than their children, so any
  // node at or below the target's sequence that is not the target itself
  // cannot have the target in its ancestry — prune there. NOTE: a mere
  // Contains(target) would NOT do: an orphaned commit object (written,
  // lost the CAS, never merged) lives in the content-addressed store
  // without being history, and mistaking it for "applied" loses an acked
  // update.
  std::deque<Hash> frontier{head};
  std::set<std::string> visited{head.ToHex()};
  size_t budget = kPublishResolveBudget;
  while (!frontier.empty()) {
    const Hash h = frontier.front();
    frontier.pop_front();
    if (h == target) {
      PublishResult out;
      out.head = head;
      out.commit = target;
      return std::optional<PublishResult>(out);
    }
    if (budget == 0) {
      return Status::Unavailable(
          "publish resolution budget exhausted walking branch '" + pub.branch +
          "'; cannot prove whether the publish applied");
    }
    --budget;
    Request creq;
    creq.type = MsgType::kGet;
    creq.hash = h;
    auto bytes = CallIdempotent(&creq);
    if (!bytes.ok()) return bytes.status();
    auto c = Commit::Decode(*bytes);
    if (!c.ok()) return c.status();
    if (c->sequence > want.sequence) {
      for (const Hash& p : c->parents) {
        if (visited.insert(p.ToHex()).second) frontier.push_back(p);
      }
    }
  }
  return std::optional<PublishResult>();  // provably absent: replay is safe
}

Result<PublishResult> SocketTransport::Publish(const PublishRequest& pub) {
  Request req;
  req.type = MsgType::kPublish;
  req.structure = pub.structure;
  req.branch = pub.branch;
  req.new_root = pub.new_root;
  req.author = pub.author;
  req.message = pub.message;
  req.expected_head = pub.expected_head;
  // Cache push is v2-only on the wire; setting the flag on a v1
  // connection is harmless (it is simply not encoded), so no lock here.
  req.want_push = opts_.cache_push;

  const int max_attempts = std::max(1, opts_.retry.max_attempts);
  Status last = Status::IOError("no wire attempt made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      BackoffSleep(attempt);
    }
    AttemptResult r = CallOnce(&req);
    if (r.kind == AttemptResult::Kind::kResponded) {
      if (!r.app.ok()) return r.app;
      WirePublishResult wire;
      Status decoded =
          DecodePublishResultBody(r.body, &wire, negotiated_wire_version());
      if (!decoded.ok()) return decoded;
      DeliverPush(wire.pushed);
      PublishResult out;
      out.head = wire.head;
      out.commit = wire.commit;
      out.cas_failures = wire.cas_failures;
      out.merge_commits = wire.merge_commits;
      return out;
    }
    last = std::move(r.error);
    if (r.permanent || !opts_.auto_reconnect) return last;
    if (r.kind == AttemptResult::Kind::kAmbiguous) {
      // Lost ack: the publish may have applied. Blind replay would land a
      // duplicate (degenerate merge) commit, so resolve by inspecting the
      // branch head first; only a *proven* not-applied is replayed.
      //
      // One inspection is not proof: the server executes a fully-received
      // frame when a worker drains the (now dead) connection, which races
      // an immediate head check — "absent" taken too early would replay a
      // publish that is just about to apply. Demand two agreeing absent
      // verdicts a backoff apart before falling through to the replay.
      for (int probe = 0; probe < 2; ++probe) {
        auto resolved = CheckPublishApplied(pub);
        if (!resolved.ok()) return resolved.status();
        if (resolved->has_value()) return **resolved;
        if (probe == 0) BackoffSleep(attempt + 1);
      }
    }
  }
  return Status::Unavailable("publish retry policy exhausted after " +
                             std::to_string(max_attempts) +
                             " attempts; last: " + last.ToString());
}

Result<BranchStats> SocketTransport::GetBranchStats(const std::string& branch) {
  Request req;
  req.type = MsgType::kBranchStats;
  req.branch = branch;
  auto body = CallIdempotent(&req);
  if (!body.ok()) return body.status();
  BranchStats s;
  Status decoded = DecodeBranchStatsBody(*body, &s);
  if (!decoded.ok()) return decoded;
  return s;
}

Result<std::vector<std::string>> SocketTransport::ListBranches() {
  Request req;
  req.type = MsgType::kListBranches;
  auto body = CallIdempotent(&req);
  if (!body.ok()) return body.status();
  std::vector<std::string> branches;
  Status decoded = DecodeStringListBody(*body, &branches);
  if (!decoded.ok()) return decoded;
  return branches;
}

Transport::Stats SocketTransport::stats() const {
  Stats out;
  out.rpcs = rpcs_.load(std::memory_order_relaxed);
  out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  out.syscalls = syscalls_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.reconnects = reconnects_.load(std::memory_order_relaxed);
  out.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  out.pushed_nodes = pushed_nodes_.load(std::memory_order_relaxed);
  out.pushed_bytes = pushed_bytes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace net
}  // namespace siri
