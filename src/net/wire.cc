// Copyright (c) 2026 The siri Authors. MIT license.

#include "net/wire.h"

#include "common/varint.h"
#include "crypto/sha256.h"

namespace siri {
namespace net {

namespace {

// A varint is at most 10 bytes; if that many are buffered and none
// terminates the length, the stream is garbage, not merely short.
constexpr size_t kMaxVarintBytes = 10;

Status Malformed(const char* what) {
  return Status::Corruption(std::string("malformed wire message: ") + what);
}

// Every decode must consume the body exactly: trailing bytes mean the two
// sides disagree about the message layout, which is unrecoverable.
Status CheckDrained(const Slice& in) {
  return in.empty() ? Status::OK() : Malformed("trailing bytes");
}

}  // namespace

void PutHash(std::string* dst, const Hash& h) {
  dst->append(reinterpret_cast<const char*>(h.data()), Hash::kSize);
}

bool GetHash(Slice* in, Hash* h) {
  if (in->size() < Hash::kSize) return false;
  *h = Hash::FromBytes(in->data());
  in->remove_prefix(Hash::kSize);
  return true;
}

std::string EncodeRequest(const Request& req, uint32_t wire_version) {
  std::string out;
  out.push_back(static_cast<char>(req.type));
  // v2 pipelining: every request but the pre-negotiation Hello opens with
  // the correlation id its response must echo.
  if (wire_version >= 2 && req.type != MsgType::kHello) {
    PutVarint64(&out, req.corr_id);
  }
  switch (req.type) {
    case MsgType::kHello:
      PutVarint64(&out, req.version);
      break;
    case MsgType::kGet:
    case MsgType::kContains:
    case MsgType::kSizeOf:
      PutHash(&out, req.hash);
      break;
    case MsgType::kPut:
      PutLengthPrefixed(&out, req.bytes);
      break;
    case MsgType::kPutMany:
      PutVarint64(&out, req.batch.size());
      for (const NodeRecord& rec : req.batch) {
        PutHash(&out, rec.hash);
        PutLengthPrefixed(&out, *rec.bytes);
      }
      break;
    case MsgType::kHead:
    case MsgType::kBranchStats:
      PutLengthPrefixed(&out, req.branch);
      break;
    case MsgType::kPublish:
      PutLengthPrefixed(&out, req.structure);
      PutLengthPrefixed(&out, req.branch);
      PutHash(&out, req.new_root);
      PutLengthPrefixed(&out, req.author);
      PutLengthPrefixed(&out, req.message);
      out.push_back(req.expected_head.has_value() ? 1 : 0);
      if (req.expected_head.has_value()) PutHash(&out, *req.expected_head);
      if (wire_version >= 2) out.push_back(req.want_push ? 1 : 0);
      break;
    case MsgType::kFlush:
    case MsgType::kStoreStats:
    case MsgType::kResetCounters:
    case MsgType::kListBranches:
      break;  // empty body
    case MsgType::kResponse:
      break;  // never encoded as a request
  }
  return out;
}

Status DecodeRequest(Slice payload, Request* out, uint32_t wire_version) {
  if (payload.empty()) return Malformed("empty payload");
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  *out = Request{};
  out->type = static_cast<MsgType>(type);
  if (wire_version >= 2 && out->type != MsgType::kHello) {
    if (!GetVarint64(&payload, &out->corr_id)) {
      return Malformed("correlation id");
    }
  }
  switch (out->type) {
    case MsgType::kHello: {
      uint64_t v = 0;
      if (!GetVarint64(&payload, &v) || v > UINT32_MAX) {
        return Malformed("hello version");
      }
      out->version = static_cast<uint32_t>(v);
      break;
    }
    case MsgType::kGet:
    case MsgType::kContains:
    case MsgType::kSizeOf:
      if (!GetHash(&payload, &out->hash)) return Malformed("hash");
      break;
    case MsgType::kPut:
      if (!GetLengthPrefixed(&payload, &out->bytes)) {
        return Malformed("put bytes");
      }
      break;
    case MsgType::kPutMany: {
      uint64_t count = 0;
      if (!GetVarint64(&payload, &count)) return Malformed("batch count");
      // Each record needs at least a digest + a length byte, so an honest
      // count never exceeds the remaining bytes — reject before reserving.
      if (count > payload.size()) return Malformed("batch count");
      out->batch.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        NodeRecord rec;
        std::string bytes;
        if (!GetHash(&payload, &rec.hash) ||
            !GetLengthPrefixed(&payload, &bytes)) {
          return Malformed("batch record");
        }
        rec.bytes = std::make_shared<const std::string>(std::move(bytes));
        out->batch.push_back(std::move(rec));
      }
      break;
    }
    case MsgType::kHead:
    case MsgType::kBranchStats:
      if (!GetLengthPrefixed(&payload, &out->branch)) {
        return Malformed("branch name");
      }
      break;
    case MsgType::kPublish: {
      if (!GetLengthPrefixed(&payload, &out->structure) ||
          !GetLengthPrefixed(&payload, &out->branch) ||
          !GetHash(&payload, &out->new_root) ||
          !GetLengthPrefixed(&payload, &out->author) ||
          !GetLengthPrefixed(&payload, &out->message) || payload.empty()) {
        return Malformed("publish");
      }
      const uint8_t has_expected = static_cast<uint8_t>(payload[0]);
      payload.remove_prefix(1);
      if (has_expected > 1) return Malformed("publish expected flag");
      if (has_expected) {
        Hash h;
        if (!GetHash(&payload, &h)) return Malformed("publish expected head");
        out->expected_head = h;
      }
      if (wire_version >= 2) {
        if (payload.empty()) return Malformed("publish want-push flag");
        const uint8_t want = static_cast<uint8_t>(payload[0]);
        payload.remove_prefix(1);
        if (want > 1) return Malformed("publish want-push flag");
        out->want_push = want != 0;
      }
      break;
    }
    case MsgType::kFlush:
    case MsgType::kStoreStats:
    case MsgType::kResetCounters:
    case MsgType::kListBranches:
      break;
    default:
      return Malformed("unknown request type");
  }
  return CheckDrained(payload);
}

Status StatusFromWire(uint8_t code, std::string message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(message));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(message));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Status::Code::kConflict:
      return Status::Conflict(std::move(message));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(message));
    case Status::Code::kIOError:
      return Status::IOError(std::move(message));
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case Status::Code::kUnavailable:
      return Status::Unavailable(std::move(message));
  }
  return Status::IOError("unknown wire status code: " + std::move(message));
}

bool IsBadFrameReject(const Status& s) {
  return s.IsCorruption() &&
         s.message().compare(0, sizeof(kBadFramePrefix) - 1, kBadFramePrefix) ==
             0;
}

bool IsDegradedReject(const Status& s) {
  return (s.IsResourceExhausted() || s.IsUnavailable()) &&
         s.message().compare(0, sizeof(kDegradedPrefix) - 1, kDegradedPrefix) ==
             0;
}

std::string EncodeResponse(const Status& app, Slice body,
                           uint32_t wire_version, uint64_t corr_id) {
  std::string out;
  out.push_back(static_cast<char>(MsgType::kResponse));
  if (wire_version >= 2) PutVarint64(&out, corr_id);
  out.push_back(static_cast<char>(app.code()));
  PutLengthPrefixed(&out, app.message());
  out.append(body.data(), body.size());
  return out;
}

Status DecodeResponse(Slice payload, Status* app, std::string* body,
                      uint32_t wire_version, uint64_t* corr_id) {
  if (payload.empty() ||
      static_cast<MsgType>(payload[0]) != MsgType::kResponse) {
    return Malformed("not a response");
  }
  payload.remove_prefix(1);
  uint64_t corr = 0;
  if (wire_version >= 2 && !GetVarint64(&payload, &corr)) {
    return Malformed("response correlation id");
  }
  if (corr_id != nullptr) *corr_id = corr;
  if (payload.empty()) return Malformed("response code");
  const uint8_t code = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  std::string message;
  if (!GetLengthPrefixed(&payload, &message)) {
    return Malformed("response message");
  }
  *app = StatusFromWire(code, std::move(message));
  body->assign(payload.data(), payload.size());
  return Status::OK();
}

std::string EncodePublishResultBody(const WirePublishResult& r,
                                    uint32_t wire_version) {
  std::string out;
  PutHash(&out, r.head);
  PutHash(&out, r.commit);
  PutVarint64(&out, r.cas_failures);
  PutVarint64(&out, r.merge_commits);
  if (wire_version >= 2) {
    PutVarint64(&out, r.pushed.size());
    for (const NodeRecord& rec : r.pushed) {
      PutHash(&out, rec.hash);
      PutLengthPrefixed(&out, *rec.bytes);
    }
  }
  return out;
}

Status DecodePublishResultBody(Slice body, WirePublishResult* r,
                               uint32_t wire_version) {
  if (!GetHash(&body, &r->head) || !GetHash(&body, &r->commit) ||
      !GetVarint64(&body, &r->cas_failures) ||
      !GetVarint64(&body, &r->merge_commits)) {
    return Malformed("publish result");
  }
  r->pushed.clear();
  if (wire_version >= 2) {
    uint64_t count = 0;
    if (!GetVarint64(&body, &count)) return Malformed("push count");
    // Each pushed record needs at least a digest + a length byte, so an
    // honest count never exceeds the remaining bytes.
    if (count > body.size()) return Malformed("push count");
    r->pushed.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      NodeRecord rec;
      std::string bytes;
      if (!GetHash(&body, &rec.hash) || !GetLengthPrefixed(&body, &bytes)) {
        return Malformed("pushed record");
      }
      rec.bytes = std::make_shared<const std::string>(std::move(bytes));
      r->pushed.push_back(std::move(rec));
    }
  }
  return CheckDrained(body);
}

std::string EncodeBranchStatsBody(const BranchStats& s) {
  std::string out;
  PutVarint64(&out, s.commits);
  PutVarint64(&out, s.cas_failures);
  PutVarint64(&out, s.merge_retries);
  PutVarint64(&out, s.combined_commits);
  return out;
}

Status DecodeBranchStatsBody(Slice body, BranchStats* s) {
  if (!GetVarint64(&body, &s->commits) ||
      !GetVarint64(&body, &s->cas_failures) ||
      !GetVarint64(&body, &s->merge_retries) ||
      !GetVarint64(&body, &s->combined_commits)) {
    return Malformed("branch stats");
  }
  return CheckDrained(body);
}

std::string EncodeStoreStatsBody(const NodeStore::Stats& s) {
  std::string out;
  PutVarint64(&out, s.puts);
  PutVarint64(&out, s.put_bytes);
  PutVarint64(&out, s.dup_puts);
  PutVarint64(&out, s.gets);
  PutVarint64(&out, s.get_bytes);
  PutVarint64(&out, s.unique_nodes);
  PutVarint64(&out, s.unique_bytes);
  PutVarint64(&out, s.flushes);
  return out;
}

Status DecodeStoreStatsBody(Slice body, NodeStore::Stats* s) {
  if (!GetVarint64(&body, &s->puts) || !GetVarint64(&body, &s->put_bytes) ||
      !GetVarint64(&body, &s->dup_puts) || !GetVarint64(&body, &s->gets) ||
      !GetVarint64(&body, &s->get_bytes) ||
      !GetVarint64(&body, &s->unique_nodes) ||
      !GetVarint64(&body, &s->unique_bytes) ||
      !GetVarint64(&body, &s->flushes)) {
    return Malformed("store stats");
  }
  return CheckDrained(body);
}

std::string EncodeStringListBody(const std::vector<std::string>& v) {
  std::string out;
  PutVarint64(&out, v.size());
  for (const std::string& s : v) PutLengthPrefixed(&out, s);
  return out;
}

Status DecodeStringListBody(Slice body, std::vector<std::string>* v) {
  uint64_t count = 0;
  if (!GetVarint64(&body, &count) || count > body.size()) {
    return Malformed("string list count");
  }
  v->clear();
  v->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string s;
    if (!GetLengthPrefixed(&body, &s)) return Malformed("string list entry");
    v->push_back(std::move(s));
  }
  return CheckDrained(body);
}

std::string EncodeFrame(Slice payload) {
  std::string out;
  AppendDigestRecord(&out, Sha256::Digest(payload), payload);
  return out;
}

Result<bool> FrameDecoder::Next(std::string* payload) {
  Slice in(buf_.data() + off_, buf_.size() - off_);
  if (in.empty()) return false;

  // Peek the length first so oversized / garbled lengths surface as typed
  // errors instead of "need more bytes" forever. The wrap-safe arithmetic
  // stays in record_io.h; this probe only classifies.
  Slice probe = in;
  uint64_t len = 0;
  if (!GetVarint64(&probe, &len)) {
    if (in.size() >= kMaxVarintBytes) {
      return Status::Corruption("malformed frame length varint");
    }
    return false;  // the varint itself may still be arriving
  }
  if (len > max_frame_bytes_) {
    return Status::Corruption("oversized frame: " + std::to_string(len) +
                              " bytes exceeds limit of " +
                              std::to_string(max_frame_bytes_));
  }

  Slice rec = in;
  Hash stored;
  if (!ReadDigestRecord(&rec, payload, &stored)) {
    return false;  // torn: the rest of the frame has not arrived yet
  }
  if (Sha256::Digest(*payload) != stored) {
    payload->clear();
    return Status::Corruption("frame digest mismatch");
  }
  off_ += in.size() - rec.size();
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer does not grow without bound.
  if (off_ > 4096 && off_ >= buf_.size() / 2) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return true;
}

}  // namespace net
}  // namespace siri
