// Copyright (c) 2026 The siri Authors. MIT license.
//
// SiriServer — the epoll event loop that puts a ForkbaseServlet behind a
// real socket. K client *processes* connect over loopback/TCP, speak the
// framed wire protocol (net/wire.h), and share one servlet: one node
// store, one branch table, one group-commit combiner — so commits from
// different processes batch into combined publishes and share fsyncs
// exactly as in-process committers do.
//
// Shape: one event-loop thread multiplexes the listen socket and every
// connection (edge-ish via EPOLLONESHOT) and hands ready connections to a
// small worker pool. A connection processes its requests strictly in
// order — wire-v2 clients may keep many requests in flight (pipelining),
// but responses are executed and answered in arrival order, each tagged
// with its request's correlation id — so per-connection state needs no
// locking: a connection is owned either by the epoll set or by exactly
// one worker, never both. Concurrency across connections is what feeds
// the combiner its batches; pipelining concentrates it per connection.
// A worker drains a wakeup's worth of frames with vectored reads (readv)
// and flushes all their responses in one coalesced writev burst.
//
// Malformed input never kills the server: a frame that cannot
// resynchronize (oversized length, garbled varint, digest mismatch — the
// typed errors FrameDecoder distinguishes from "need more bytes") gets a
// best-effort typed error response and the connection is closed; every
// other connection is untouched.

#ifndef SIRI_NET_SERVER_H_
#define SIRI_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "net/wire.h"

namespace siri {

class ForkbaseServlet;

namespace net {

/// \brief Server-mode configuration, and the documented home of the
/// group-fsync policy split:
///
/// A FileNodeStore constructed directly (embedded deployment) has its
/// wait-a-little window OFF — `set_group_flush_window_micros` defaults to
/// 0 — because an embedded committer is usually alone and the tests that
/// account exact fsyncs-per-commit rely on undelayed flushes. A
/// `siri-server` serves K independent client processes whose commits
/// *should* share durability points, so server mode turns the window ON
/// by default: SiriServer::Start applies `group_flush_window_micros` to
/// the servlet's store when it is file-backed. Pass 0 to keep server-side
/// flushes undelayed.
struct ServerOptions {
  /// Group-fsync wait-a-little window applied at Start (file-backed
  /// stores only). Default ON in server mode; embedded default is OFF.
  uint64_t group_flush_window_micros = 200;

  /// Request-processing threads. More workers = more concurrent publishes
  /// feeding the combiner; connections never share a worker mid-request.
  int worker_threads = 4;

  /// Frames beyond this are rejected as corrupt (see net/wire.h).
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// listen(2) backlog: connections queued before accept. Forked client
  /// processes may all connect before the server thread first runs.
  int listen_backlog = 64;

  /// Re-digest every node a PutMany uploads and reject the batch on any
  /// mismatch. The in-process boundary trusts its caller (same address
  /// space); a socket is a trust boundary.
  bool verify_uploads = true;

  /// Connection cap (0 = unlimited). Enforced at Hello time, not accept
  /// time: the reject travels as a typed ResourceExhausted *response*
  /// before the close, so the client sees a clean "back off and retry"
  /// instead of a RST that may discard the explanation.
  int max_connections = 0;

  /// Connections with no traffic for this long are reaped by the event
  /// loop's periodic tick (0 = never). In-flight connections (owned by a
  /// worker or queued for one) are never reaped mid-request.
  int idle_timeout_ms = 0;

  /// Per-connection cap on bytes buffered but not yet executed (0 = one
  /// max-size frame plus header room). A client that streams requests
  /// faster than the worker drains them is paused at this bound instead
  /// of growing the connection's buffer without limit.
  uint64_t max_buffered_bytes = 0;

  /// Byte budget for the combiner-aware cache push: when a wire-v2 client
  /// asks (`want_push`), a Publish ack carries the combined publish's
  /// staged batch — merged index pages and commit objects, the nodes a
  /// losing committer re-reads next round — up to this many node bytes
  /// (0 disables the push server-wide). Records are dropped from the
  /// push, never from the publish: the cap shapes ack size only.
  uint64_t cache_push_max_bytes = 4ull << 20;
};

/// \brief Epoll server for one ForkbaseServlet. Not copyable. The servlet
/// must outlive the server; Stop() (or destruction) joins every thread.
class SiriServer {
 public:
  struct Stats {
    uint64_t connections = 0;   ///< accepted over the lifetime
    uint64_t requests = 0;      ///< frames decoded and executed
    uint64_t frame_errors = 0;  ///< connections dropped on malformed input
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t overload_rejects = 0;  ///< Hellos refused at max_connections
    uint64_t idle_reaped = 0;       ///< connections closed by the idle sweep
    uint64_t pushed_nodes = 0;      ///< nodes attached to Publish acks
    /// Write requests answered with the typed degraded-mode reject
    /// (kDegradedPrefix) because the store or ref log holds a sticky
    /// disk error.
    uint64_t degraded_rejects = 0;
    /// True while the servlet's store or ref log reports a sticky disk
    /// error: writes are rejected, reads keep serving resident state.
    bool degraded = false;
    /// The sticky cause when degraded (empty otherwise) — what the
    /// shutdown summary line prints.
    std::string degraded_cause;
  };

  /// What a graceful Drain() accomplished, for the shutdown log line.
  struct DrainSummary {
    uint64_t connections_closed = 0;   ///< open connections at drain start
    uint64_t inflight_completed = 0;   ///< requests executed during the drain
  };

  explicit SiriServer(ForkbaseServlet* servlet, ServerOptions opts = {});
  ~SiriServer();

  SiriServer(const SiriServer&) = delete;
  SiriServer& operator=(const SiriServer&) = delete;

  /// Binds 127.0.0.1:\p port (0 = ephemeral; read the choice back with
  /// port()). Call once, before Start.
  [[nodiscard]] Status Listen(int port);

  /// Adopts an already-bound, already-listening socket instead of binding
  /// one. The multi-process tests use this: the parent binds, forks, and
  /// the server child adopts — clients that connected before the child
  /// started sit in the backlog.
  [[nodiscard]] Status AdoptListener(int listen_fd);

  /// The bound port (after Listen/AdoptListener).
  int port() const { return port_; }

  /// Applies the server-mode group-flush window and spawns the event
  /// loop + workers. Call once, after Listen/AdoptListener.
  [[nodiscard]] Status Start();

  /// Stops accepting, joins every thread, closes every connection.
  /// Idempotent; in-flight requests finish first.
  void Stop();

  /// Graceful shutdown: stop accepting, let every in-flight request run
  /// to completion and its response flush, close the drained connections,
  /// then push the store and ref log to their durability points — so
  /// every response the server ever acked is on disk when this returns.
  /// Finishes with Stop(). Idempotent with it; safe after Stop (no-op).
  DrainSummary Drain() EXCLUDES(mu_);

  Stats stats() const;

 private:
  struct Connection {
    explicit Connection(int fd_in, uint64_t max_frame, int64_t now_ms)
        : fd(fd_in), decoder(max_frame), last_activity_ms(now_ms) {}
    int fd;
    FrameDecoder decoder;  // touched only by the owning worker
    /// Negotiated at this connection's Hello (net/wire.h); 1 until then.
    /// Touched only by the owning worker, like the decoder.
    uint32_t wire_version = 1;
    /// Wall of the connection's last traffic, for the idle sweep.
    std::atomic<int64_t> last_activity_ms;
    /// True from the moment the event loop queues the fd for a worker
    /// until that worker re-arms it: the sweep and the drain must not
    /// close a connection a worker is (or is about to be) processing.
    std::atomic<bool> busy{false};
  };

  void EventLoop();
  void WorkerLoop();
  /// Reads, decodes, and executes everything \p conn has ready; returns
  /// false when the connection must be closed. Responses for one wakeup
  /// accumulate in an outbox and flush coalesced (one writev burst per
  /// round) instead of one send per frame.
  bool ProcessConnection(Connection* conn);
  /// Degraded-mode gate around ExecuteOp: write requests (Put / PutMany /
  /// Flush / Publish) are rejected with the typed kDegradedPrefix error
  /// while DiskHealth() reports a sticky fault; reads pass through. The
  /// very request that *trips* the fault gets its raw store error
  /// remapped to the same typed reject, so clients see one error shape.
  void Execute(const Request& req, Connection* conn, Status* app,
               std::string* body);
  void ExecuteOp(const Request& req, Connection* conn, Status* app,
                 std::string* body);
  /// The sticky disk health across everything the servlet persists: the
  /// node store first, then the attached ref log (if any).
  Status DiskHealth() const;
  /// Writes every queued response frame with writev (gathering across
  /// frame boundaries, IOV-chunked); false when the peer is unwritable.
  /// Clears \p outbox on success.
  bool FlushOutbox(Connection* conn, std::vector<std::string>* outbox);
  void CloseConnection(int fd) EXCLUDES(mu_);
  /// Closes every connection not owned by a worker; run on the event-loop
  /// tick for the idle sweep (\p idle_only) and during a drain (all).
  void SweepConnections(bool idle_only) EXCLUDES(mu_);
  size_t ActiveConnections() const EXCLUDES(mu_);

  ForkbaseServlet* servlet_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;

  mutable Mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;  ///< signaled when conns_ empties
  std::deque<int> ready_ GUARDED_BY(mu_);  ///< fds waiting for a worker
  std::unordered_map<int, std::unique_ptr<Connection>> conns_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> frame_errors_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> overload_rejects_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> pushed_nodes_{0};
  std::atomic<uint64_t> degraded_rejects_{0};
};

}  // namespace net
}  // namespace siri

#endif  // SIRI_NET_SERVER_H_
