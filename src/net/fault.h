// Copyright (c) 2026 The siri Authors. MIT license.
//
// Deterministic fault injection for the socket RPC path. A FaultInjector
// decides, per *wire attempt* (every frame exchange SocketTransport makes,
// including handshakes and retries, consumes one index), whether that
// attempt is sabotaged and how. Two modes, freely mixed:
//
//   - scripted: ScriptAt(index, action) pins an exact fault at an exact
//     attempt index — the chaos tests sweep "fault kind X at every RPC
//     index" this way, so every failure site is hit deterministically;
//   - random: a seeded xoshiro draw per attempt injects faults at a fixed
//     rate — the forked chaos stress and the `fig06 --chaos` bench use
//     this, reproducible from the seed.
//
// The injector is a *client-side* saboteur: it garbles, tears, delays, or
// resets the transport's own traffic, which exercises every server
// hardening path (digest-mismatch rejects, torn-frame connection drops)
// and every client resilience path (reconnect, retry, publish replay
// resolution) without any cooperation from the server. Thread-safe: one
// injector may serve a transport shared by many threads.

#ifndef SIRI_NET_FAULT_H_
#define SIRI_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/random.h"

namespace siri {
namespace net {

enum class FaultKind : uint8_t {
  kNone = 0,
  /// Close the connection before any byte of the request is sent. The
  /// request is definitely not executed; the next attempt reconnects.
  kResetBeforeSend,
  /// Send only half the request frame, then close. The server can never
  /// decode a torn frame (the length prefix says more bytes follow), so
  /// the request is definitely not executed.
  kShortWrite,
  /// Flip one payload byte of the request frame. The server's digest
  /// check rejects the frame ("bad frame: ..." + connection drop) without
  /// executing it.
  kCorruptFrame,
  /// Send the full request, then close before reading the response: the
  /// classic lost-ack. The request may or may not have executed — the
  /// ambiguous case Publish must resolve by head inspection.
  kResetAfterSend,
  /// Sleep before sending (a slow client / congested path).
  kDelaySend,
  /// Sleep after sending, before reading (a delayed response delivery).
  kDelayRecv,
};

const char* FaultKindName(FaultKind k);

struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  uint64_t delay_micros = 0;  ///< kDelaySend / kDelayRecv only
  /// kShortWrite only: how many bytes of the request frame to send before
  /// closing. UINT64_MAX (default) keeps the legacy behavior — half the
  /// frame; a scripted value pins the tear at an exact offset boundary
  /// (0 = nothing sent, clamped to the frame size). The regression tests
  /// sweep this across the varint/digest/payload boundaries.
  uint64_t short_write_offset = UINT64_MAX;
};

/// Random-mode configuration: each non-scripted attempt draws one fault
/// with probability `fault_rate`, choosing uniformly among the enabled
/// kinds. Scripted entries always win over the draw at their index.
/// (Namespace-scoped so it is complete where FaultInjector's constructor
/// defaults it — GCC rejects defaulting a nested struct with NSDMIs.)
struct FaultRandomConfig {
  double fault_rate = 0.0;
  uint64_t delay_micros = 2000;  ///< used when a delay kind is drawn
  bool reset_before_send = true;
  bool short_write = true;
  bool corrupt_frame = true;
  bool reset_after_send = true;
  bool delays = true;
};

class FaultInjector {
 public:
  using RandomConfig = FaultRandomConfig;

  explicit FaultInjector(uint64_t seed = 1,
                         RandomConfig config = RandomConfig());

  /// Pins \p action at wire-attempt \p index (0-based, counted across the
  /// injector's lifetime). Replaces any earlier script at that index.
  void ScriptAt(uint64_t index, FaultAction action);

  /// Pins \p action at the next attempt index not yet consumed — the
  /// "fault the very next RPC" convenience the unit tests lean on.
  void ScriptNext(FaultAction action);

  /// The action for the current attempt; consumes one index. Called by
  /// SocketTransport once per wire attempt.
  FaultAction Next();

  struct Stats {
    uint64_t attempts = 0;  ///< wire attempts observed
    uint64_t injected = 0;  ///< attempts sabotaged (any kind)
    uint64_t resets_before_send = 0;
    uint64_t short_writes = 0;
    uint64_t corrupt_frames = 0;
    uint64_t resets_after_send = 0;
    uint64_t delays = 0;
  };
  Stats stats() const EXCLUDES(mu_);

 private:
  FaultAction DrawRandomLocked() REQUIRES(mu_);

  mutable Mutex mu_;
  RandomConfig config_;
  Rng rng_ GUARDED_BY(mu_);
  uint64_t next_index_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, FaultAction> script_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace siri

#endif  // SIRI_NET_FAULT_H_
