// Copyright (c) 2026 The siri Authors. MIT license.
//
// Transport — the client/server boundary as an interface. It is exactly
// the RPC surface ForkbaseClientStore always used against the in-process
// ForkbaseServlet (node Get/Contains/SizeOf, Put, the batched PutMany
// upload, branch head/publish/stats), extracted so the same client code
// runs over two implementations:
//
//   InProcessTransport — the servlet lives in this address space; calls
//     forward directly and a *simulated* round trip (busy-wait or sleep,
//     the RTT models the benches always charged) stands in for the wire.
//     This preserves the embedded deployment and every existing test and
//     bench semantic, including the 1-upload-RPC-per-commit accounting.
//
//   SocketTransport (net/socket_transport.h) — the servlet lives in a
//     siri-server process; calls serialize through net/wire.h and the
//     cost is *measured* (real bytes, real syscalls), not simulated.
//
// Every transport counts rpcs/bytes/syscalls so benches can report
// measured socket cost next to — never silently comparable with — the
// slept-RTT in-process numbers.

#ifndef SIRI_NET_TRANSPORT_H_
#define SIRI_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/hash.h"
#include "store/node_store.h"
#include "version/commit.h"

namespace siri {

class ForkbaseServlet;

/// How the simulated round trip is charged on a remote access
/// (InProcessTransport only; a socket pays real round trips).
enum class RttModel {
  kBusyWait,  ///< burn the core — accurate single-client cost accounting
  kSleep,     ///< yield the core — round trips of concurrent clients overlap
};

namespace net {

/// One commit publish: everything the server needs to land new_root on
/// branch through its group-commit combiner, merging through the
/// server-side index registered under `structure`.
struct PublishRequest {
  std::string structure;  ///< index name ("pos", "mbt", ...) to merge with
  std::string branch;
  Hash new_root;
  std::string author;
  std::string message;
  std::optional<Hash> expected_head;  ///< head the committer built on
};

/// What a publish returned (MergeCommitResult across the boundary).
struct PublishResult {
  Hash head;    ///< branch head containing the commit
  Hash commit;  ///< the author's content commit
  uint64_t cas_failures = 0;
  uint64_t merge_commits = 0;
};

/// \brief The client/server boundary. Thread-safe: one transport may be
/// shared by every reader/writer thread of a client process.
class Transport {
 public:
  /// Cost accounting, for bench honesty: in-process transports count rpcs
  /// only (nothing is serialized, no syscalls happen); a socket transport
  /// measures real bytes and send/recv syscalls.
  struct Stats {
    uint64_t rpcs = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    uint64_t syscalls = 0;  ///< send+recv calls issued
    // Resilience counters (socket transports only; an in-process call has
    // nothing to retry). Zero on a healthy wire, so any nonzero value in a
    // bench report is a flag that faults shaped the numbers.
    uint64_t retries = 0;          ///< wire attempts beyond the first, per RPC
    uint64_t reconnects = 0;       ///< re-dial + fresh handshake cycles
    uint64_t deadline_misses = 0;  ///< attempts abandoned at the RPC deadline
    // Combiner-aware cache push (socket transports, wire v2, opt-in):
    // nodes a Publish ack carried back and the push sink accepted — each
    // one a Get round trip a losing committer no longer pays.
    uint64_t pushed_nodes = 0;
    uint64_t pushed_bytes = 0;
  };

  /// Consumer of publish-ack cache pushes: receives digest-verified node
  /// batches the server attached to Publish responses. Transports without
  /// a push path (in-process: the cache already shares the address space)
  /// ignore the sink.
  using PushSink = std::function<void(const NodeBatch&)>;

  virtual ~Transport() = default;

  // --- node store surface ---------------------------------------------
  virtual Result<std::shared_ptr<const std::string>> Get(const Hash& h) = 0;
  virtual Result<bool> Contains(const Hash& h) = 0;
  virtual Result<uint64_t> SizeOf(const Hash& h) = 0;
  virtual Result<Hash> Put(Slice bytes) = 0;
  /// The chunk-upload call: a whole staged commit in one round trip.
  [[nodiscard]] virtual Status PutMany(const NodeBatch& batch) = 0;
  [[nodiscard]] virtual Status Flush() = 0;
  virtual Result<NodeStore::Stats> StoreStats() = 0;
  [[nodiscard]] virtual Status ResetServerOpCounters() = 0;

  // --- branch surface -------------------------------------------------
  virtual Result<Hash> Head(const std::string& branch) = 0;
  virtual Result<PublishResult> Publish(const PublishRequest& req) = 0;
  virtual Result<BranchStats> GetBranchStats(const std::string& branch) = 0;
  virtual Result<std::vector<std::string>> ListBranches() = 0;

  virtual Stats stats() const = 0;

  /// Installs (or, with an empty function, uninstalls) the cache-push
  /// sink. Default: no-op — only transports with a real wire have
  /// something to push.
  virtual void SetPushSink(PushSink sink) { (void)sink; }
};

/// \brief Transport over a servlet in this address space.
///
/// Forwards every call directly (Get returns the servlet's shared bytes
/// without a copy) and charges the configured simulated round trip first,
/// exactly where ForkbaseClientStore used to charge it: Put, non-empty
/// PutMany, Get, Contains, SizeOf. Publishes route through the servlet's
/// group-commit combiner via the server-side index registry.
class InProcessTransport : public Transport {
 public:
  /// \param rtt_nanos simulated per-RPC round-trip cost (0 = count only),
  ///        charged per \p rtt_model so throughput numbers include it.
  explicit InProcessTransport(ForkbaseServlet* servlet, uint64_t rtt_nanos = 0,
                              RttModel rtt_model = RttModel::kBusyWait);

  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  Result<bool> Contains(const Hash& h) override;
  Result<uint64_t> SizeOf(const Hash& h) override;
  Result<Hash> Put(Slice bytes) override;
  Status PutMany(const NodeBatch& batch) override;
  Status Flush() override;
  Result<NodeStore::Stats> StoreStats() override;
  Status ResetServerOpCounters() override;

  Result<Hash> Head(const std::string& branch) override;
  Result<PublishResult> Publish(const PublishRequest& req) override;
  Result<BranchStats> GetBranchStats(const std::string& branch) override;
  Result<std::vector<std::string>> ListBranches() override;

  Stats stats() const override;

  ForkbaseServlet* servlet() { return servlet_; }

 private:
  void ChargeRoundTrip() const;

  ForkbaseServlet* servlet_;
  uint64_t rtt_nanos_;
  RttModel rtt_model_;
  mutable std::atomic<uint64_t> rpcs_{0};
};

}  // namespace net
}  // namespace siri

#endif  // SIRI_NET_TRANSPORT_H_
