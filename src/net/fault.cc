// Copyright (c) 2026 The siri Authors. MIT license.

#include "net/fault.h"

#include <vector>

namespace siri {
namespace net {

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kResetBeforeSend: return "reset-before-send";
    case FaultKind::kShortWrite: return "short-write";
    case FaultKind::kCorruptFrame: return "corrupt-frame";
    case FaultKind::kResetAfterSend: return "reset-after-send";
    case FaultKind::kDelaySend: return "delay-send";
    case FaultKind::kDelayRecv: return "delay-recv";
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed, RandomConfig config)
    : config_(config), rng_(seed) {}

void FaultInjector::ScriptAt(uint64_t index, FaultAction action) {
  MutexLock lock(mu_);
  script_[index] = action;
}

void FaultInjector::ScriptNext(FaultAction action) {
  MutexLock lock(mu_);
  script_[next_index_] = action;
}

FaultAction FaultInjector::Next() {
  MutexLock lock(mu_);
  const uint64_t index = next_index_++;
  ++stats_.attempts;
  FaultAction action;
  auto it = script_.find(index);
  if (it != script_.end()) {
    action = it->second;
  } else {
    action = DrawRandomLocked();
  }
  switch (action.kind) {
    case FaultKind::kNone:
      return action;
    case FaultKind::kResetBeforeSend:
      ++stats_.resets_before_send;
      break;
    case FaultKind::kShortWrite:
      ++stats_.short_writes;
      break;
    case FaultKind::kCorruptFrame:
      ++stats_.corrupt_frames;
      break;
    case FaultKind::kResetAfterSend:
      ++stats_.resets_after_send;
      break;
    case FaultKind::kDelaySend:
    case FaultKind::kDelayRecv:
      ++stats_.delays;
      break;
  }
  ++stats_.injected;
  return action;
}

FaultAction FaultInjector::DrawRandomLocked() {
  FaultAction action;
  if (config_.fault_rate <= 0.0) return action;
  // Draw the Bernoulli unconditionally so the random stream position
  // depends only on the attempt count, never on the enabled-kind set.
  const bool inject = rng_.Bernoulli(config_.fault_rate);
  const uint64_t pick = rng_.Next();
  if (!inject) return action;
  std::vector<FaultKind> kinds;
  if (config_.reset_before_send) kinds.push_back(FaultKind::kResetBeforeSend);
  if (config_.short_write) kinds.push_back(FaultKind::kShortWrite);
  if (config_.corrupt_frame) kinds.push_back(FaultKind::kCorruptFrame);
  if (config_.reset_after_send) kinds.push_back(FaultKind::kResetAfterSend);
  if (config_.delays) {
    kinds.push_back(FaultKind::kDelaySend);
    kinds.push_back(FaultKind::kDelayRecv);
  }
  if (kinds.empty()) return action;
  action.kind = kinds[pick % kinds.size()];
  if (action.kind == FaultKind::kDelaySend ||
      action.kind == FaultKind::kDelayRecv) {
    action.delay_micros = config_.delay_micros;
  }
  return action;
}

FaultInjector::Stats FaultInjector::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace net
}  // namespace siri
