// Copyright (c) 2026 The siri Authors. MIT license.
//
// siri-server — the standalone daemon that serves one ForkbaseServlet to
// K client processes over the framed wire protocol (src/net/wire.h).
//
// Quickstart:
//   siri-server --port=4433 --data=/var/lib/siri   # durable, group-fsync on
//   siri-server --port=4433                        # in-memory (testing)
//
// Clients connect with net::SocketTransport and wrap it in a
// ForkbaseClientStore; `fig06_ycsb_throughput --transport=socket` is the
// reference workload.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "index/mbt/mbt.h"
#include "index/mpt/mpt.h"
#include "index/mvmb/mvmb_tree.h"
#include "index/pos/pos_tree.h"
#include "net/server.h"
#include "store/file_store.h"
#include "store/node_store.h"
#include "system/forkbase.h"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_drain{false};

void HandleStop(int) { g_stop.store(true); }

// SIGTERM is the orderly-shutdown signal: drain in-flight RPCs, flush,
// then exit. SIGINT stays the fast path.
void HandleTerm(int) {
  g_drain.store(true);
  g_stop.store(true);
}

// --flag=value parser; exits with usage on anything unrecognized so a
// typo'd flag cannot silently run a misconfigured server.
struct Flags {
  int port = 4433;
  std::string data;             // empty = in-memory store
  uint64_t window_micros = 200; // server-mode group-fsync window
  int workers = 4;
  uint64_t mbt_buckets = 8192;  // must match committing clients
  int max_connections = 0;      // 0 = unlimited
  int idle_timeout_ms = 0;      // 0 = never reap idle connections
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port=N] [--data=DIR] [--window-micros=N]\n"
               "          [--workers=N] [--mbt-buckets=N] "
               "[--max-connections=N]\n"
               "          [--idle-timeout-ms=N]\n"
               "  --port=N           TCP port on 127.0.0.1 (0 = ephemeral, "
               "printed at start)\n"
               "  --data=DIR         durable FileNodeStore + ref log under "
               "DIR (default: in-memory)\n"
               "  --window-micros=N  group-fsync wait-a-little window "
               "(default 200; 0 = off)\n"
               "  --workers=N        request worker threads (default 4)\n"
               "  --mbt-buckets=N    MBT bucket count; must match clients "
               "(default 8192)\n"
               "  --max-connections=N  reject Hellos beyond N open "
               "connections (default 0 = unlimited)\n"
               "  --idle-timeout-ms=N  reap connections idle this long "
               "(default 0 = never)\n",
               argv0);
  std::exit(2);
}

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* eq = std::strchr(arg, '=');
    const std::string key = eq ? std::string(arg, eq - arg) : std::string(arg);
    const char* val = eq ? eq + 1 : "";
    uint64_t n = 0;
    if (key == "--port" && ParseUint(val, &n) && n <= 65535) {
      f.port = static_cast<int>(n);
    } else if (key == "--data" && *val) {
      f.data = val;
    } else if (key == "--window-micros" && ParseUint(val, &n)) {
      f.window_micros = n;
    } else if (key == "--workers" && ParseUint(val, &n) && n >= 1 && n <= 64) {
      f.workers = static_cast<int>(n);
    } else if (key == "--mbt-buckets" && ParseUint(val, &n) && n >= 1) {
      f.mbt_buckets = n;
    } else if (key == "--max-connections" && ParseUint(val, &n) &&
               n <= 1000000) {
      f.max_connections = static_cast<int>(n);
    } else if (key == "--idle-timeout-ms" && ParseUint(val, &n) &&
               n <= INT32_MAX) {
      f.idle_timeout_ms = static_cast<int>(n);
    } else {
      std::fprintf(stderr, "siri-server: bad flag: %s\n", arg);
      Usage(argv[0]);
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace siri;
  const Flags flags = Parse(argc, argv);

  NodeStorePtr store;
  if (!flags.data.empty()) {
    std::shared_ptr<FileNodeStore> file_store;
    const Status opened =
        FileNodeStore::Open(flags.data + "/pages.log", &file_store);
    if (!opened.ok()) {
      std::fprintf(stderr, "siri-server: open %s: %s\n", flags.data.c_str(),
                   opened.ToString().c_str());
      return 1;
    }
    store = file_store;
  } else {
    store = std::make_shared<InMemoryNodeStore>();
  }

  ForkbaseServlet servlet(store);
  if (!flags.data.empty()) {
    const Status refs = servlet.branches()->AttachRefLog(flags.data + "/refs.log");
    if (!refs.ok()) {
      std::fprintf(stderr, "siri-server: ref log: %s\n",
                   refs.ToString().c_str());
      return 1;
    }
  }

  // Every structure a client may commit must be registered with the same
  // construction geometry the client uses (see ForkbaseServlet::RegisterIndex).
  servlet.RegisterIndex(std::make_unique<PosTree>(store));
  MbtOptions mbt_opt;
  mbt_opt.num_buckets = flags.mbt_buckets;
  mbt_opt.fanout = 32;
  servlet.RegisterIndex(std::make_unique<Mbt>(store, mbt_opt));
  servlet.RegisterIndex(std::make_unique<Mpt>(store));
  servlet.RegisterIndex(std::make_unique<MvmbTree>(store));

  net::ServerOptions opts;
  opts.group_flush_window_micros = flags.window_micros;
  opts.worker_threads = flags.workers;
  opts.max_connections = flags.max_connections;
  opts.idle_timeout_ms = flags.idle_timeout_ms;
  net::SiriServer server(&servlet, opts);
  Status s = server.Listen(flags.port);
  if (!s.ok()) {
    std::fprintf(stderr, "siri-server: listen: %s\n", s.ToString().c_str());
    return 1;
  }
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "siri-server: start: %s\n", s.ToString().c_str());
    return 1;
  }

  // A client that vanishes mid-response must surface as an EPIPE errno on
  // the worker's send, never as a process-killing SIGPIPE.
  signal(SIGPIPE, SIG_IGN);
  struct sigaction sa {};
  sa.sa_handler = HandleStop;
  sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = HandleTerm;
  sigaction(SIGTERM, &sa, nullptr);

  std::printf("siri-server: listening on 127.0.0.1:%d (%s, window=%lluus, "
              "workers=%d)\n",
              server.port(), flags.data.empty() ? "in-memory" : "durable",
              static_cast<unsigned long long>(flags.window_micros),
              flags.workers);
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (g_drain.load()) {
    const auto drained = server.Drain();
    std::printf("siri-server: drained. connections_closed=%llu "
                "inflight_completed=%llu flushed=yes\n",
                static_cast<unsigned long long>(drained.connections_closed),
                static_cast<unsigned long long>(drained.inflight_completed));
  } else {
    server.Stop();
  }
  const auto st = server.stats();
  std::printf("siri-server: stopped. connections=%llu requests=%llu "
              "frame_errors=%llu overload_rejects=%llu idle_reaped=%llu "
              "degraded_rejects=%llu\n",
              static_cast<unsigned long long>(st.connections),
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.frame_errors),
              static_cast<unsigned long long>(st.overload_rejects),
              static_cast<unsigned long long>(st.idle_reaped),
              static_cast<unsigned long long>(st.degraded_rejects));
  if (st.degraded) {
    // An operator reading the shutdown log must learn the server spent
    // its final stretch read-only, and why.
    std::printf("siri-server: DEGRADED (read-only): %s\n",
                st.degraded_cause.c_str());
  }
  return 0;
}
