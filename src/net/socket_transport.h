// Copyright (c) 2026 The siri Authors. MIT license.
//
// SocketTransport — the Transport implementation that talks to a
// siri-server process over TCP. Synchronous RPC: one framed request, one
// framed response, serialized by an internal mutex (the protocol allows
// one outstanding request per connection; a client wanting parallel RPCs
// opens parallel transports, exactly like opening more connections).
//
// Where InProcessTransport *simulates* its round trip, this transport
// *measures* it: stats() reports real serialized bytes and real send/recv
// syscall counts, which is what the socket benches report next to the
// slept-RTT numbers.

#ifndef SIRI_NET_SOCKET_TRANSPORT_H_
#define SIRI_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "net/transport.h"
#include "net/wire.h"

namespace siri {
namespace net {

class SocketTransport : public Transport {
 public:
  struct Options {
    uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Total time to keep retrying the initial connect, for clients that
    /// race a server still binding (0 = single attempt).
    int connect_retry_ms = 2000;
  };

  /// Connects to 127.0.0.1:\p port (or \p host) and runs the Hello
  /// version handshake; a version-skewed or non-siri server fails here,
  /// not on the first real RPC.
  [[nodiscard]] static Status Connect(const std::string& host, int port,
                                      std::shared_ptr<SocketTransport>* out,
                                      Options opts);
  [[nodiscard]] static Status Connect(const std::string& host, int port,
                                      std::shared_ptr<SocketTransport>* out) {
    return Connect(host, port, out, Options());
  }

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  Result<bool> Contains(const Hash& h) override;
  Result<uint64_t> SizeOf(const Hash& h) override;
  Result<Hash> Put(Slice bytes) override;
  Status PutMany(const NodeBatch& batch) override;
  Status Flush() override;
  Result<NodeStore::Stats> StoreStats() override;
  Status ResetServerOpCounters() override;

  Result<Hash> Head(const std::string& branch) override;
  Result<PublishResult> Publish(const PublishRequest& req) override;
  Result<BranchStats> GetBranchStats(const std::string& branch) override;
  Result<std::vector<std::string>> ListBranches() override;

  Stats stats() const override;

  /// Closes the connection; every later RPC fails with IOError. Safe to
  /// call concurrently with RPCs (they fail, they do not crash).
  void Close() EXCLUDES(mu_);

 private:
  SocketTransport(int fd, Options opts);

  /// One RPC: frame + send \p req, read one response frame, surface the
  /// application status or the response body.
  Result<std::string> Call(const Request& req) EXCLUDES(mu_);
  [[nodiscard]] Status SendFrame(Slice frame) REQUIRES(mu_);
  [[nodiscard]] Status ReadResponse(std::string* payload) REQUIRES(mu_);
  void CloseLocked() REQUIRES(mu_);

  Options opts_;
  mutable Mutex mu_;
  int fd_ GUARDED_BY(mu_);
  FrameDecoder decoder_ GUARDED_BY(mu_);

  std::atomic<uint64_t> rpcs_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> syscalls_{0};
};

}  // namespace net
}  // namespace siri

#endif  // SIRI_NET_SOCKET_TRANSPORT_H_
