// Copyright (c) 2026 The siri Authors. MIT license.
//
// SocketTransport — the Transport implementation that talks to a
// siri-server process over TCP.
//
// Pipelining. Under wire v2 (negotiated at Hello — a v1 peer on either
// side degrades the connection to the legacy one-outstanding protocol)
// the transport keeps up to Options::max_inflight RPCs outstanding on the
// one connection. Each wire attempt carries a fresh correlation id;
// responses are matched by id, so caller threads' RPCs overlap on the
// wire instead of queuing behind each other's round trips. Internally:
// one *sender* at a time owns the write side (frames never interleave),
// and whichever waiting thread finds the read side free becomes the
// *reader*, dispatching every decoded response to its waiter by id until
// its own arrives, then handing the role to another waiter.
//
// Where InProcessTransport *simulates* its round trip, this transport
// *measures* it: stats() reports real serialized bytes and real
// send/recv/poll syscall counts, which is what the socket benches report
// next to the slept-RTT numbers.
//
// Deadlines. Options::rpc_timeout_ms is a monotonic budget for one whole
// wire attempt — admission wait + (re)connect + send + receive all draw
// from the same deadline, so a server that dribbles one byte per poll
// interval still times out on schedule. Retry backoff sleeps between
// attempts are NOT counted against it: each attempt starts a fresh
// budget. A v2 attempt that misses its deadline after its frame was
// fully sent abandons just its own correlation id (the connection — and
// every other in-flight RPC on it — stays healthy; the late response is
// discarded on arrival); a v1 miss, or a miss mid-send, must close the
// connection, because an un-abandoned stream position cannot be resynced.
//
// Resilience. When the wire fails, a capped-exponential RetryPolicy with
// automatic reconnect + fresh Hello handshake replays the RPC. The retry
// layer classifies each failed wire attempt *per correlation id* before
// replaying:
//
//   not executed — nothing sent, a torn frame (the length prefix makes the
//     server wait for bytes that never come), a server frame-reject
//     ("bad frame: ...", see net/wire.h), or a ResourceExhausted overload
//     reject. Safe to replay any request, including Publish.
//   ambiguous — the full frame left the socket but no clean response came
//     back (lost ack — including a connection torn by ANOTHER RPC's fault
//     while ours was awaiting its response). Safe to replay only the
//     idempotent surface (Get/Contains/SizeOf/Put/PutMany/Flush are
//     content-addressed: a replay re-stores identical bytes under
//     identical digests). Publish is NOT blindly replayed: the transport
//     resolves the ambiguity by head inspection — it computes the
//     content-commit digest the server would have written and walks the
//     branch DAG (sequence-pruned, bounded) to prove the publish either
//     applied (return success with that commit) or did not (replay is
//     then safe).
//
// When the policy is exhausted without an answer the RPC fails with a
// typed Status::Unavailable — "the op may not have run" — never with a
// silently wrong success. Faults can be injected deterministically via
// Options::fault (net/fault.h); every wire exchange, handshakes included,
// consumes one injector index.
//
// Cache push. With Options::cache_push set (and v2 negotiated), Publish
// requests ask the server to attach the publish's staged batch — merged
// index pages and commit objects, exactly the nodes a losing committer
// re-reads next round — to the ack. Pushed nodes are re-digested
// client-side (the socket is a trust boundary; a mismatched record is
// dropped, never cached) and handed to the sink installed with
// SetPushSink (ForkbaseClientStore write-allocates them into NodeCache).

#ifndef SIRI_NET_SOCKET_TRANSPORT_H_
#define SIRI_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "net/fault.h"
#include "net/transport.h"
#include "net/wire.h"

namespace siri {
namespace net {

/// Capped exponential backoff with deterministic jitter, applied between
/// wire attempts of one RPC. Attempt k (k >= 1) sleeps roughly
/// backoff_init_ms * 2^(k-1), capped at backoff_max_ms, jittered to
/// [delay/2, delay] so a fleet of clients does not retry in lockstep.
struct RetryPolicy {
  int max_attempts = 5;     ///< total wire attempts per RPC (1 = no retry)
  int backoff_init_ms = 10;
  int backoff_max_ms = 500;
  uint64_t jitter_seed = 0x5eedu;  ///< per-transport jitter stream seed
};

class SocketTransport : public Transport {
 public:
  struct Options {
    uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Total time to keep retrying the initial connect, for clients that
    /// race a server still binding (0 = single attempt).
    int connect_retry_ms = 2000;
    /// Whole-attempt deadline: a monotonic budget covering one wire
    /// attempt end to end — admission wait, any reconnect, send, and
    /// receive. An attempt that misses it is abandoned (counted in
    /// stats().deadline_misses) and retried under the policy; backoff
    /// sleeps between attempts start a fresh budget. 0 = none.
    int rpc_timeout_ms = 30000;
    /// Re-dial + fresh handshake when the connection is lost mid-policy.
    /// Off = any wire failure surfaces immediately (legacy behavior); an
    /// explicit Close() always sticks regardless.
    bool auto_reconnect = true;
    /// RPCs outstanding on the connection at once (request pipelining).
    /// Effective only once the Hello negotiates wire v2; a v1 peer keeps
    /// the one-outstanding protocol regardless. Clamped to >= 1.
    int max_inflight = 8;
    /// Ask the server to attach combined-publish staged batches to
    /// Publish acks (combiner-aware cache push, wire v2 only). Off by
    /// default so baseline bench rows stay reproducible.
    bool cache_push = false;
    RetryPolicy retry;
    /// Optional deterministic saboteur for chaos tests and the chaos
    /// bench; every wire exchange consumes one injector index.
    std::shared_ptr<FaultInjector> fault;
  };

  /// Connects to 127.0.0.1:\p port (or \p host) and runs the Hello
  /// version handshake (negotiating the wire version — see
  /// net/wire.h); a non-siri server fails here, not on the first real
  /// RPC. Transient handshake failures (IO, overload) are retried under
  /// the policy; typed application rejects fail fast, except the
  /// version-mismatch reject of a pre-negotiation server, which triggers
  /// one downgrade retry at kMinWireVersion.
  [[nodiscard]] static Status Connect(const std::string& host, int port,
                                      std::shared_ptr<SocketTransport>* out,
                                      Options opts);
  [[nodiscard]] static Status Connect(const std::string& host, int port,
                                      std::shared_ptr<SocketTransport>* out) {
    return Connect(host, port, out, Options());
  }

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  Result<bool> Contains(const Hash& h) override;
  Result<uint64_t> SizeOf(const Hash& h) override;
  Result<Hash> Put(Slice bytes) override;
  Status PutMany(const NodeBatch& batch) override;
  Status Flush() override;
  Result<NodeStore::Stats> StoreStats() override;
  Status ResetServerOpCounters() override;

  Result<Hash> Head(const std::string& branch) override;
  Result<PublishResult> Publish(const PublishRequest& req) override;
  Result<BranchStats> GetBranchStats(const std::string& branch) override;
  Result<std::vector<std::string>> ListBranches() override;

  Stats stats() const override;

  /// Installs the consumer of publish-ack cache pushes (pass an empty
  /// function to uninstall). Pushed records reach the sink already
  /// digest-verified.
  void SetPushSink(PushSink sink) override;

  /// The wire version the last Hello negotiated (1 until connected).
  uint32_t negotiated_wire_version() const EXCLUDES(mu_);

  /// Closes the connection permanently; every later RPC fails with
  /// IOError (no reconnect — an explicit Close is an instruction, not a
  /// fault). Safe to call concurrently with RPCs.
  void Close() EXCLUDES(mu_);

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// One RPC attempt in flight on the connection, owned by the calling
  /// thread's stack and registered in pending_ under its correlation id
  /// until the owner deregisters it.
  struct PendingRpc {
    uint64_t corr = 0;
    bool sent_fully = false;  ///< the ambiguity boundary for this id
    bool done = false;        ///< response arrived (app/body valid)
    bool failed = false;      ///< transport-level failure (error valid)
    Status app;
    std::string body;
    Status error;
  };

  /// One failed-or-succeeded wire attempt, classified for the retry layer.
  struct AttemptResult {
    enum class Kind {
      kResponded,    ///< clean response: `app` (+ `body` when app.ok())
      kNotExecuted,  ///< server provably never ran it — replay anything
      kAmbiguous,    ///< frame fully sent, no clean response — lost ack
    };
    Kind kind = Kind::kNotExecuted;
    Status app;        ///< application status (kResponded)
    std::string body;  ///< response body (kResponded && app.ok())
    Status error;      ///< transport error (kNotExecuted / kAmbiguous)
    /// Explicitly Close()d (or reconnect disabled): fail fast, no retry.
    bool permanent = false;
  };

  SocketTransport(std::string host, int port, int fd, Options opts);

  TimePoint DeadlineFromNow() const;
  int EffectiveMaxInflightLocked() const REQUIRES(mu_);

  /// Fails every in-flight RPC with \p error, closes the fd, resets the
  /// decoder, and bumps the connection epoch. Each waiter classifies its
  /// own failure by its own sent_fully flag.
  void CloseAndFailAllLocked(const Status& error) REQUIRES(mu_);
  void CloseLocked() REQUIRES(mu_);

  // The helpers below temporarily release mu_ around blocking syscalls
  // (poll) and sleeps — the scoped-capability analysis cannot express a
  // mid-scope release performed by a callee, so they opt out and document
  // the contract: called with mu_ held, returns with mu_ held, and every
  // reacquisition re-validates the connection epoch.

  /// Blocks until \p fd is ready for \p events or \p deadline passes,
  /// with mu_ (held via \p lock) released for the duration of the poll.
  Status PollUnlocked(MutexLock& lock, int fd, short events,
                      TimePoint deadline) NO_THREAD_SAFETY_ANALYSIS;
  /// Releases mu_ for a fault-injected delay.
  void SleepUnlocked(MutexLock& lock, uint64_t micros)
      NO_THREAD_SAFETY_ANALYSIS;
  /// Sends frame[0, limit) on the current connection; the caller must be
  /// the active sender. Checks the whole-attempt deadline every
  /// iteration (dribble-proof) and re-validates the epoch after every
  /// poll. Does NOT close on failure — the caller decides.
  Status SendFrameLocked(MutexLock& lock, const std::string& frame,
                         size_t limit, TimePoint deadline)
      NO_THREAD_SAFETY_ANALYSIS;
  /// The reader role: decode + dispatch responses by correlation id until
  /// \p self is done/failed or the wire breaks. Caller set reader_active_.
  void ReadLoopLocked(MutexLock& lock, PendingRpc* self, TimePoint deadline)
      NO_THREAD_SAFETY_ANALYSIS;
  /// Reads exactly one response payload during the pre-pipelining
  /// handshake (exclusive connection access via connecting_).
  Status ReadHandshakeResponseLocked(MutexLock& lock, std::string* payload,
                                     TimePoint deadline)
      NO_THREAD_SAFETY_ANALYSIS;

  /// A deadline miss for \p self: under v2 with the frame fully sent the
  /// single correlation id is abandoned (connection stays up, late
  /// response discarded); otherwise the stream position is lost and the
  /// connection closes, failing everything in flight.
  void HandleDeadlineMissLocked(PendingRpc* self) REQUIRES(mu_);

  /// Hello on a freshly dialed fd_ + version negotiation (shares the
  /// fault/deadline machinery; one injector index per hello attempt).
  Status HandshakeLocked(MutexLock& lock) REQUIRES(mu_);
  /// Re-dial + handshake; bumps stats().reconnects on success. Caller
  /// must have set connecting_.
  Status ReconnectLocked(MutexLock& lock) REQUIRES(mu_);

  /// One classified attempt: admission (slot + sender token), connect if
  /// needed, send, await the matching response. \p req->corr_id is
  /// assigned here.
  AttemptResult CallOnce(Request* req) EXCLUDES(mu_);

  /// Full retry loop for the idempotent surface: replays on both
  /// not-executed and ambiguous failures, Unavailable after exhaustion.
  Result<std::string> CallIdempotent(Request* req) EXCLUDES(mu_);

  /// Sleeps the jittered backoff before wire attempt \p attempt (>= 1).
  void BackoffSleep(int attempt) EXCLUDES(mu_);

  /// Digest-verifies \p pushed (dropping mismatches) and hands the
  /// surviving records to the push sink; counts stats().pushed_*.
  void DeliverPush(const NodeBatch& pushed) EXCLUDES(mu_);

  /// Resolves an ambiguous publish by head inspection. ok(value) = the
  /// publish applied (value is the result to return); ok(nullopt) = it
  /// provably did not apply (replay is safe); error = undecidable within
  /// budget (Unavailable) or the inspection itself failed.
  Result<std::optional<PublishResult>> CheckPublishApplied(
      const PublishRequest& pub) EXCLUDES(mu_);

  const Options opts_;
  const std::string host_;
  const int port_;

  mutable Mutex mu_;
  std::condition_variable cv_;  ///< any channel state change
  int fd_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;  ///< explicit Close(): no reconnect
  FrameDecoder decoder_ GUARDED_BY(mu_);
  Rng jitter_rng_ GUARDED_BY(mu_);
  uint32_t wire_version_ GUARDED_BY(mu_) = 1;  ///< negotiated at Hello
  /// Bumped on every close; stale-epoch observers know their attempt was
  /// failed for them while they slept.
  uint64_t conn_epoch_ GUARDED_BY(mu_) = 0;
  uint64_t next_corr_ GUARDED_BY(mu_) = 1;
  bool sender_active_ GUARDED_BY(mu_) = false;
  bool reader_active_ GUARDED_BY(mu_) = false;
  bool connecting_ GUARDED_BY(mu_) = false;
  int inflight_ GUARDED_BY(mu_) = 0;
  std::unordered_map<uint64_t, PendingRpc*> pending_ GUARDED_BY(mu_);

  mutable Mutex sink_mu_;
  PushSink push_sink_ GUARDED_BY(sink_mu_);

  std::atomic<uint64_t> rpcs_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> syscalls_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> pushed_nodes_{0};
  std::atomic<uint64_t> pushed_bytes_{0};
};

}  // namespace net
}  // namespace siri

#endif  // SIRI_NET_SOCKET_TRANSPORT_H_
