// Copyright (c) 2026 The siri Authors. MIT license.
//
// SocketTransport — the Transport implementation that talks to a
// siri-server process over TCP. Synchronous RPC: one framed request, one
// framed response, serialized by an internal mutex (the protocol allows
// one outstanding request per connection; a client wanting parallel RPCs
// opens parallel transports, exactly like opening more connections).
//
// Where InProcessTransport *simulates* its round trip, this transport
// *measures* it: stats() reports real serialized bytes and real send/recv
// syscall counts, which is what the socket benches report next to the
// slept-RTT numbers.
//
// Resilience. Every RPC runs under a poll-based deadline
// (Options::rpc_timeout_ms) and, when the wire fails, a capped-exponential
// RetryPolicy with automatic reconnect + fresh Hello handshake. The retry
// layer classifies each failed wire attempt before replaying:
//
//   not executed — nothing sent, a torn frame (the length prefix makes the
//     server wait for bytes that never come), a server frame-reject
//     ("bad frame: ...", see net/wire.h), or a ResourceExhausted overload
//     reject. Safe to replay any request, including Publish.
//   ambiguous — the full frame left the socket but no clean response came
//     back (lost ack). Safe to replay only the idempotent surface
//     (Get/Contains/SizeOf/Put/PutMany/Flush are content-addressed: a
//     replay re-stores identical bytes under identical digests). Publish
//     is NOT blindly replayed: a replay after an applied-but-unacked
//     publish would land a second, degenerate merge commit. Instead the
//     transport *resolves* the ambiguity by head inspection — it computes
//     the content-commit digest the server would have written and walks
//     the branch DAG (sequence-pruned, bounded) to prove the publish
//     either applied (return success with that commit) or did not (replay
//     is then safe).
//
// When the policy is exhausted without an answer the RPC fails with a
// typed Status::Unavailable — "the op may not have run" — never with a
// silently wrong success. Faults can be injected deterministically via
// Options::fault (net/fault.h); every wire exchange, handshakes included,
// consumes one injector index.

#ifndef SIRI_NET_SOCKET_TRANSPORT_H_
#define SIRI_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "net/fault.h"
#include "net/transport.h"
#include "net/wire.h"

namespace siri {
namespace net {

/// Capped exponential backoff with deterministic jitter, applied between
/// wire attempts of one RPC. Attempt k (k >= 1) sleeps roughly
/// backoff_init_ms * 2^(k-1), capped at backoff_max_ms, jittered to
/// [delay/2, delay] so a fleet of clients does not retry in lockstep.
struct RetryPolicy {
  int max_attempts = 5;     ///< total wire attempts per RPC (1 = no retry)
  int backoff_init_ms = 10;
  int backoff_max_ms = 500;
  uint64_t jitter_seed = 0x5eedu;  ///< per-transport jitter stream seed
};

class SocketTransport : public Transport {
 public:
  struct Options {
    uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Total time to keep retrying the initial connect, for clients that
    /// race a server still binding (0 = single attempt).
    int connect_retry_ms = 2000;
    /// Per-RPC deadline covering one wire attempt (send + receive). An
    /// attempt that misses it is abandoned (counted in
    /// stats().deadline_misses) and retried under the policy. 0 = none.
    int rpc_timeout_ms = 30000;
    /// Re-dial + fresh handshake when the connection is lost mid-policy.
    /// Off = any wire failure surfaces immediately (legacy behavior); an
    /// explicit Close() always sticks regardless.
    bool auto_reconnect = true;
    RetryPolicy retry;
    /// Optional deterministic saboteur for chaos tests and the chaos
    /// bench; every wire exchange consumes one injector index.
    std::shared_ptr<FaultInjector> fault;
  };

  /// Connects to 127.0.0.1:\p port (or \p host) and runs the Hello
  /// version handshake; a version-skewed or non-siri server fails here,
  /// not on the first real RPC. Transient handshake failures (IO,
  /// overload) are retried under the policy; typed application rejects
  /// (version skew) fail fast.
  [[nodiscard]] static Status Connect(const std::string& host, int port,
                                      std::shared_ptr<SocketTransport>* out,
                                      Options opts);
  [[nodiscard]] static Status Connect(const std::string& host, int port,
                                      std::shared_ptr<SocketTransport>* out) {
    return Connect(host, port, out, Options());
  }

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  Result<bool> Contains(const Hash& h) override;
  Result<uint64_t> SizeOf(const Hash& h) override;
  Result<Hash> Put(Slice bytes) override;
  Status PutMany(const NodeBatch& batch) override;
  Status Flush() override;
  Result<NodeStore::Stats> StoreStats() override;
  Status ResetServerOpCounters() override;

  Result<Hash> Head(const std::string& branch) override;
  Result<PublishResult> Publish(const PublishRequest& req) override;
  Result<BranchStats> GetBranchStats(const std::string& branch) override;
  Result<std::vector<std::string>> ListBranches() override;

  Stats stats() const override;

  /// Closes the connection permanently; every later RPC fails with
  /// IOError (no reconnect — an explicit Close is an instruction, not a
  /// fault). Safe to call concurrently with RPCs.
  void Close() EXCLUDES(mu_);

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// One failed-or-succeeded wire attempt, classified for the retry layer.
  struct AttemptResult {
    enum class Kind {
      kResponded,    ///< clean response: `app` (+ `body` when app.ok())
      kNotExecuted,  ///< server provably never ran it — replay anything
      kAmbiguous,    ///< frame fully sent, no clean response — lost ack
    };
    Kind kind = Kind::kNotExecuted;
    Status app;        ///< application status (kResponded)
    std::string body;  ///< response body (kResponded && app.ok())
    Status error;      ///< transport error (kNotExecuted / kAmbiguous)
    /// Explicitly Close()d (or reconnect disabled): fail fast, no retry.
    bool permanent = false;
  };

  SocketTransport(std::string host, int port, int fd, Options opts);

  TimePoint DeadlineFromNow() const;

  /// One wire exchange on the current connection: consult the fault
  /// injector, frame + send \p req, read + decode one response. On any
  /// non-OK return the connection has been closed. \p *sent_fully is the
  /// ambiguity boundary: true iff the whole request frame left the socket
  /// (so the server may have executed it).
  [[nodiscard]] Status ExchangeLocked(const Request& req, TimePoint deadline,
                                      Status* app, std::string* body,
                                      bool* sent_fully) REQUIRES(mu_);
  [[nodiscard]] Status SendBytesLocked(Slice bytes, TimePoint deadline)
      REQUIRES(mu_);
  [[nodiscard]] Status ReadResponseLocked(std::string* payload,
                                          TimePoint deadline) REQUIRES(mu_);
  /// Blocks until \p fd_ is ready for \p events or the deadline passes.
  [[nodiscard]] Status WaitReadyLocked(short events, TimePoint deadline)
      REQUIRES(mu_);

  /// Hello on a freshly dialed fd_ (shares the fault/deadline machinery).
  [[nodiscard]] Status HandshakeLocked() REQUIRES(mu_);
  /// Re-dial + handshake; bumps stats().reconnects on success.
  [[nodiscard]] Status ReconnectLocked() REQUIRES(mu_);
  void CloseLocked() REQUIRES(mu_);

  /// One classified attempt: connect if needed, exchange, classify.
  AttemptResult CallOnce(const Request& req) EXCLUDES(mu_);

  /// Full retry loop for the idempotent surface: replays on both
  /// not-executed and ambiguous failures, Unavailable after exhaustion.
  Result<std::string> CallIdempotent(const Request& req) EXCLUDES(mu_);

  /// Sleeps the jittered backoff before wire attempt \p attempt (>= 1).
  void BackoffSleep(int attempt) EXCLUDES(mu_);

  /// Resolves an ambiguous publish by head inspection. ok(value) = the
  /// publish applied (value is the result to return); ok(nullopt) = it
  /// provably did not apply (replay is safe); error = undecidable within
  /// budget (Unavailable) or the inspection itself failed.
  Result<std::optional<PublishResult>> CheckPublishApplied(
      const PublishRequest& pub) EXCLUDES(mu_);

  const Options opts_;
  const std::string host_;
  const int port_;

  mutable Mutex mu_;
  int fd_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;  ///< explicit Close(): no reconnect
  FrameDecoder decoder_ GUARDED_BY(mu_);
  Rng jitter_rng_ GUARDED_BY(mu_);

  std::atomic<uint64_t> rpcs_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> syscalls_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> deadline_misses_{0};
};

}  // namespace net
}  // namespace siri

#endif  // SIRI_NET_SOCKET_TRANSPORT_H_
