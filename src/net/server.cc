// Copyright (c) 2026 The siri Authors. MIT license.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/varint.h"
#include "crypto/hash_pool.h"
#include "store/file_store.h"
#include "system/forkbase.h"
#include "version/group_commit.h"

namespace siri {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A frame-layer reject: the request inside was never executed, and the
// kBadFramePrefix tells the client's retry layer exactly that (replay is
// safe, even for a Publish).
Status BadFrame(const Status& s) {
  return Status::Corruption(std::string(kBadFramePrefix) + s.message());
}

// writev gather width per call. IOV_MAX is at least 1024 everywhere we
// run, but a modest cap keeps the stack iovec array small; the flush
// loop simply issues another writev for the remainder.
constexpr int kMaxIov = 64;

}  // namespace

SiriServer::SiriServer(ForkbaseServlet* servlet, ServerOptions opts)
    : servlet_(servlet), opts_(opts) {}

SiriServer::~SiriServer() { Stop(); }

Status SiriServer::Listen(int port) {
  if (listen_fd_ >= 0) return Status::InvalidArgument("already listening");
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind");
    close(fd);
    return s;
  }
  if (listen(fd, opts_.listen_backlog) != 0) {
    const Status s = Errno("listen");
    close(fd);
    return s;
  }
  return AdoptListener(fd);
}

Status SiriServer::AdoptListener(int listen_fd) {
  if (listen_fd_ >= 0) return Status::InvalidArgument("already listening");
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  // The accept loop drains the backlog until EAGAIN; a blocking listen
  // socket (which an adopted pre-bound fd usually is) would wedge the
  // event loop on the accept after the last queued connection.
  const int fl = fcntl(listen_fd, F_GETFL, 0);
  if (fl < 0 || fcntl(listen_fd, F_SETFL, fl | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  listen_fd_ = listen_fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status SiriServer::Start() {
  if (listen_fd_ < 0) return Status::InvalidArgument("Listen first");
  if (started_) return Status::InvalidArgument("already started");

  // The server-mode half of the group-fsync policy split (ServerOptions):
  // a file-backed store gets the wait-a-little window turned on here, so
  // commits from independent client processes share fsyncs. Embedded
  // users never reach this line and keep the window-off default.
  if (auto* fs = dynamic_cast<FileNodeStore*>(servlet_->store())) {
    fs->set_group_flush_window_micros(opts_.group_flush_window_micros);
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Errno("epoll_ctl(wake)");
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  const int workers = opts_.worker_threads < 1 ? 1 : opts_.worker_threads;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void SiriServer::Stop() {
  if (!started_) return;
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    const uint64_t one = 1;
    // Best-effort: the loop also wakes on its 500ms epoll timeout.
    (void)!write(wake_fd_, &one, sizeof(one));
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    MutexLock lock(mu_);
    for (auto& [fd, conn] : conns_) close(fd);
    conns_.clear();
    ready_.clear();
  }
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
  started_ = false;
}

SiriServer::DrainSummary SiriServer::Drain() {
  DrainSummary out;
  if (!started_) return out;
  const uint64_t requests_before = requests_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    out.connections_closed = conns_.size();
  }
  draining_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
  {
    // The event loop sweeps idle connections each tick; workers close
    // their in-flight ones after the response flushes. Both paths signal
    // drain_cv_ when the table empties.
    MutexLock lock(mu_);
    while (!conns_.empty()) drain_cv_.wait(lock.native());
  }
  // Quiesced. Push everything acked to its durability point before the
  // process exits: acked-implies-durable must survive a graceful SIGTERM.
  // Best-effort by design — there is no one left to report a late IO
  // error to, and the store's own fsync discipline already covered every
  // publish ack.
  (void)servlet_->store()->Flush();
  (void)servlet_->branches()->SyncRefs();
  out.inflight_completed =
      requests_.load(std::memory_order_relaxed) - requests_before;
  Stop();
  return out;
}

SiriServer::Stats SiriServer::stats() const {
  Stats out;
  out.connections = connections_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  out.overload_rejects = overload_rejects_.load(std::memory_order_relaxed);
  out.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  out.pushed_nodes = pushed_nodes_.load(std::memory_order_relaxed);
  out.degraded_rejects = degraded_rejects_.load(std::memory_order_relaxed);
  const Status disk = DiskHealth();
  out.degraded = !disk.ok();
  if (!disk.ok()) out.degraded_cause = disk.ToString();
  return out;
}

size_t SiriServer::ActiveConnections() const {
  MutexLock lock(mu_);
  return conns_.size();
}

void SiriServer::SweepConnections(bool idle_only) {
  // Runs only on the event-loop thread: it is the sole setter of `busy`,
  // so a connection observed un-busy here cannot become busy while we
  // hold mu_ and close it.
  const int64_t now = NowMs();
  MutexLock lock(mu_);
  std::vector<int> doomed;
  for (auto& [fd, conn] : conns_) {
    if (conn->busy.load(std::memory_order_acquire)) continue;
    if (idle_only) {
      const int64_t idle =
          now - conn->last_activity_ms.load(std::memory_order_relaxed);
      if (idle < opts_.idle_timeout_ms) continue;
      idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    }
    doomed.push_back(fd);
  }
  for (int fd : doomed) {
    close(fd);  // also removes the fd from the epoll set
    conns_.erase(fd);
  }
  if (conns_.empty()) drain_cv_.notify_all();
}

void SiriServer::EventLoop() {
  epoll_event events[64];
  bool accepting = true;
  while (running_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        (void)!read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        if (!accepting) continue;
        for (;;) {
          const int conn_fd = accept4(listen_fd_, nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (conn_fd < 0) break;  // EAGAIN: drained the backlog
          const int one = 1;
          (void)setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof(one));
          epoll_event cev{};
          // One-shot: the fd stays silent while a worker owns it; the
          // worker re-arms after processing.
          cev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
          cev.data.fd = conn_fd;
          {
            MutexLock lock(mu_);
            conns_[conn_fd] = std::make_unique<Connection>(
                conn_fd, opts_.max_frame_bytes, NowMs());
          }
          if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn_fd, &cev) != 0) {
            CloseConnection(conn_fd);
            continue;
          }
          connections_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      // A connection is ready: hand it to a worker. It is busy from this
      // moment until that worker re-arms it.
      {
        MutexLock lock(mu_);
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // reaped while queued in epoll
        it->second->busy.store(true, std::memory_order_release);
        ready_.push_back(fd);
      }
      work_cv_.notify_one();
    }
    // Periodic tick work, piggybacked on the 500ms epoll timeout (or any
    // event): reap idle connections, and during a drain stop accepting
    // and close everything no worker owns.
    if (draining_.load(std::memory_order_acquire)) {
      if (accepting) {
        (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accepting = false;
      }
      SweepConnections(/*idle_only=*/false);
    } else if (opts_.idle_timeout_ms > 0) {
      SweepConnections(/*idle_only=*/true);
    }
  }
}

void SiriServer::WorkerLoop() {
  for (;;) {
    Connection* conn = nullptr;
    {
      MutexLock lock(mu_);
      while (ready_.empty() && !stopping_) work_cv_.wait(lock.native());
      if (ready_.empty()) return;  // stopping, queue drained
      const int fd = ready_.front();
      ready_.pop_front();
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed while queued
      conn = it->second.get();
    }
    // The connection is exclusively this worker's until it is re-armed or
    // closed (EPOLLONESHOT keeps the event loop from re-queuing it, and
    // busy keeps the sweeps away).
    bool keep = ProcessConnection(conn);
    // A drain closes the connection once its in-flight work is answered.
    if (keep && draining_.load(std::memory_order_acquire)) keep = false;
    if (keep) {
      conn->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
      // Clear busy and re-arm under the lock: the sweep must never see an
      // un-busy connection in the gap before the fd is back in epoll.
      MutexLock lock(mu_);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
      ev.data.fd = conn->fd;
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) != 0) {
        const int fd = conn->fd;
        close(fd);
        conns_.erase(fd);
        if (conns_.empty()) drain_cv_.notify_all();
      } else {
        conn->busy.store(false, std::memory_order_release);
      }
    } else {
      CloseConnection(conn->fd);
    }
  }
}

bool SiriServer::ProcessConnection(Connection* conn) {
  // Per-connection in-flight memory bound: the connection's buffer never
  // grows past one maximum frame (plus header room) before the frames in
  // it are executed and their memory reclaimed. A cap below one max frame
  // could never make progress, so it is floored there.
  const uint64_t buffer_cap =
      opts_.max_buffered_bytes > 0
          ? std::max(opts_.max_buffered_bytes, opts_.max_frame_bytes + 64)
          : opts_.max_frame_bytes + 1024;
  bool peer_closed = false;
  bool would_block = false;
  std::string payload;
  std::vector<std::string> outbox;
  while (!peer_closed && !would_block) {
    // Fill until the socket runs dry, the peer hangs up, or the buffer
    // bound is reached (then: execute first, read more after). Vectored:
    // a pipelining client lands many adjacent frames per wakeup, so give
    // the kernel two pages of gather space per syscall.
    while (conn->decoder.buffered() < buffer_cap) {
      char buf0[64 * 1024];
      char buf1[64 * 1024];
      iovec iov[2];
      iov[0].iov_base = buf0;
      iov[0].iov_len = sizeof(buf0);
      iov[1].iov_base = buf1;
      iov[1].iov_len = sizeof(buf1);
      const ssize_t n = readv(conn->fd, iov, 2);
      if (n > 0) {
        const size_t got = static_cast<size_t>(n);
        conn->decoder.Append(buf0, std::min(got, sizeof(buf0)));
        if (got > sizeof(buf0)) {
          conn->decoder.Append(buf1, got - sizeof(buf0));
        }
        bytes_in_.fetch_add(got, std::memory_order_relaxed);
        continue;
      }
      if (n == 0) {
        // A client that half-closed after sending still gets its final
        // responses: fall through and drain what arrived.
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        would_block = true;
        break;
      }
      if (errno == EINTR) continue;
      return false;  // connection error
    }

    // Execute every complete frame buffered so far. Responses queue in
    // the outbox and flush coalesced after the batch — one writev burst
    // per round instead of one send per request.
    for (;;) {
      auto next = conn->decoder.Next(&payload);
      if (!next.ok()) {
        // Unresynchronizable stream: say why with the bad-frame marker
        // (the request was never executed — the client may safely
        // replay), then hang up. Best-effort — the peer that garbled its
        // stream may not be reading. Earlier queued responses flush with
        // the reject: they answer requests that DID execute.
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        outbox.push_back(EncodeFrame(
            EncodeResponse(BadFrame(next.status()), Slice(),
                           conn->wire_version, /*corr_id=*/0)));
        (void)FlushOutbox(conn, &outbox);
        return false;
      }
      if (!*next) break;
      Request req;
      const Status decoded = DecodeRequest(payload, &req, conn->wire_version);
      if (!decoded.ok()) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        outbox.push_back(EncodeFrame(EncodeResponse(
            BadFrame(decoded), Slice(), conn->wire_version, /*corr_id=*/0)));
        (void)FlushOutbox(conn, &outbox);
        return false;
      }
      if (req.type == MsgType::kHello) {
        if (opts_.max_connections > 0 &&
            ActiveConnections() > static_cast<size_t>(opts_.max_connections)) {
          // Over capacity: shed this connection with a typed reject the
          // client's retry layer understands (back off, re-dial),
          // delivered as a clean response + FIN rather than an
          // accept-time RST that could discard the explanation.
          overload_rejects_.fetch_add(1, std::memory_order_relaxed);
          outbox.push_back(EncodeFrame(EncodeResponse(
              Status::ResourceExhausted(
                  "server at connection capacity (max " +
                  std::to_string(opts_.max_connections) + ")"),
              Slice(), /*wire_version=*/1, /*corr_id=*/0)));
          (void)FlushOutbox(conn, &outbox);
          return false;
        }
        // Version negotiation, handled inline because it writes
        // per-connection state. The exchange itself is always v1-shaped
        // (it precedes the negotiation — net/wire.h); every later frame
        // on this connection speaks the negotiated version. A below-floor
        // client gets a typed reject and the connection stays open: the
        // peer may retry the Hello with another version.
        requests_.fetch_add(1, std::memory_order_relaxed);
        Status app;
        std::string body;
        if (req.version < kMinWireVersion) {
          app = Status::InvalidArgument(
              "wire version mismatch: client speaks v" +
              std::to_string(req.version) + ", server floor v" +
              std::to_string(kMinWireVersion));
        } else {
          conn->wire_version = NegotiateWireVersion(
              static_cast<uint32_t>(req.version), kWireVersion);
          PutVarint64(&body, conn->wire_version);
        }
        outbox.push_back(EncodeFrame(
            EncodeResponse(app, body, /*wire_version=*/1, /*corr_id=*/0)));
        continue;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      Status app;
      std::string body;
      Execute(req, conn, &app, &body);
      outbox.push_back(EncodeFrame(
          EncodeResponse(app, body, conn->wire_version, req.corr_id)));
    }
    if (!outbox.empty() && !FlushOutbox(conn, &outbox)) return false;
  }
  return !peer_closed;
}

namespace {

bool IsWriteRequest(MsgType type) {
  return type == MsgType::kPut || type == MsgType::kPutMany ||
         type == MsgType::kFlush || type == MsgType::kPublish;
}

/// The typed reject a degraded server answers writes with: the sticky
/// cause keeps its ResourceExhausted identity (out of space), everything
/// else maps to Unavailable. The kDegradedPrefix is what lets the client
/// fail fast instead of treating the reject as a transient overload.
Status DegradedReject(const Status& cause) {
  const std::string msg = std::string(kDegradedPrefix) + cause.ToString();
  if (cause.IsResourceExhausted()) return Status::ResourceExhausted(msg);
  return Status::Unavailable(msg);
}

}  // namespace

Status SiriServer::DiskHealth() const {
  Status s = servlet_->store()->DiskStatus();
  if (!s.ok()) return s;
  if (RefLog* refs = servlet_->branches()->ref_log()) return refs->DiskStatus();
  return Status::OK();
}

void SiriServer::Execute(const Request& req, Connection* conn, Status* app,
                         std::string* body) {
  const bool is_write = IsWriteRequest(req.type);
  if (is_write) {
    // Read-only degraded mode: once the store (or ref log) latched a
    // sticky disk error, no write can be made durable — answer with the
    // typed reject instead of letting the request fail deep in the
    // store. Reads keep serving resident state below.
    Status disk = DiskHealth();
    if (!disk.ok()) {
      degraded_rejects_.fetch_add(1, std::memory_order_relaxed);
      *app = DegradedReject(disk);
      body->clear();
      return;
    }
  }
  ExecuteOp(req, conn, app, body);
  if (is_write && !app->ok()) {
    // This request may be the one that tripped the disk fault: its error
    // surfaced raw from the store (e.g. IOError("fsync ...")). Remap it
    // to the same typed shape every later write will get, so clients see
    // one degraded-mode error, not two.
    Status disk = DiskHealth();
    if (!disk.ok()) *app = DegradedReject(disk);
  }
}

void SiriServer::ExecuteOp(const Request& req, Connection* conn, Status* app,
                           std::string* body) {
  *app = Status::OK();
  body->clear();
  switch (req.type) {
    case MsgType::kGet: {
      auto bytes = servlet_->store()->Get(req.hash);
      if (!bytes.ok()) {
        *app = bytes.status();
        return;
      }
      body->assign(**bytes);
      return;
    }
    case MsgType::kContains:
      body->push_back(servlet_->store()->Contains(req.hash) ? 1 : 0);
      return;
    case MsgType::kSizeOf: {
      auto size = servlet_->store()->SizeOf(req.hash);
      if (!size.ok()) {
        *app = size.status();
        return;
      }
      PutVarint64(body, *size);
      return;
    }
    case MsgType::kPut:
      PutHash(body, servlet_->store()->Put(req.bytes));
      return;
    case MsgType::kPutMany: {
      if (opts_.verify_uploads) {
        // The socket is a trust boundary: re-digest every uploaded node
        // (in parallel — batches are exactly Sha256Pool's regime) and
        // reject the whole batch on any mismatch, before the store sees
        // it. A corrupted upload must not land in the content-addressed
        // store under a digest it does not hash to.
        std::vector<std::shared_ptr<const std::string>> pages;
        pages.reserve(req.batch.size());
        for (const NodeRecord& rec : req.batch) pages.push_back(rec.bytes);
        const std::vector<Hash> digests = Sha256Pool::Shared().DigestAll(pages);
        for (size_t i = 0; i < req.batch.size(); ++i) {
          if (digests[i] != req.batch[i].hash) {
            *app = Status::InvalidArgument(
                "uploaded node digest mismatch at batch index " +
                std::to_string(i));
            return;
          }
        }
      }
      servlet_->store()->PutMany(req.batch);
      return;
    }
    case MsgType::kFlush:
      *app = servlet_->store()->Flush();
      return;
    case MsgType::kHead: {
      auto head = servlet_->branches()->Head(req.branch);
      if (!head.ok()) {
        *app = head.status();
        return;
      }
      PutHash(body, *head);
      return;
    }
    case MsgType::kPublish: {
      ImmutableIndex* index = servlet_->IndexFor(req.structure);
      if (index == nullptr) {
        *app = Status::NotFound(
            "no server-side index registered for structure '" +
            req.structure + "'");
        return;
      }
      PublishSpec spec;
      spec.index = index;
      spec.branch = req.branch;
      spec.new_root = req.new_root;
      spec.author = req.author;
      spec.message = req.message;
      spec.expected_head = req.expected_head;
      auto landed = servlet_->combiner()->Publish(spec);
      if (!landed.ok()) {
        *app = landed.status();
        return;
      }
      WirePublishResult out;
      out.head = landed->head;
      out.commit = landed->commit;
      out.cas_failures = static_cast<uint64_t>(landed->cas_failures);
      out.merge_commits = static_cast<uint64_t>(landed->merge_commits);
      if (req.want_push && conn->wire_version >= 2 &&
          opts_.cache_push_max_bytes > 0 && landed->staged != nullptr) {
        // Combiner-aware cache push: attach the staged batch this publish
        // landed with — merged index pages and commit objects, exactly
        // the nodes a losing committer would Get back one round trip at a
        // time — to the ack, up to the byte budget. Over-budget records
        // are simply not pushed (the client fetches them the old way);
        // the publish itself is unaffected.
        uint64_t budget = opts_.cache_push_max_bytes;
        for (const NodeRecord& rec : *landed->staged) {
          if (rec.bytes == nullptr || rec.bytes->size() > budget) continue;
          budget -= rec.bytes->size();
          out.pushed.push_back(rec);
        }
        pushed_nodes_.fetch_add(out.pushed.size(), std::memory_order_relaxed);
      }
      *body = EncodePublishResultBody(out, conn->wire_version);
      return;
    }
    case MsgType::kBranchStats:
      *body =
          EncodeBranchStatsBody(servlet_->branches()->branch_stats(req.branch));
      return;
    case MsgType::kStoreStats:
      *body = EncodeStoreStatsBody(servlet_->store()->stats());
      return;
    case MsgType::kResetCounters:
      servlet_->store()->ResetOpCounters();
      return;
    case MsgType::kListBranches:
      *body = EncodeStringListBody(servlet_->branches()->ListBranches());
      return;
    case MsgType::kHello:  // handled inline in ProcessConnection
    case MsgType::kResponse:
      break;
  }
  *app = Status::InvalidArgument("request type not servable");
}

bool SiriServer::FlushOutbox(Connection* conn,
                             std::vector<std::string>* outbox) {
  // One gathered write for the whole round's responses: adjacent frames
  // share syscalls on the way out exactly as readv shares them on the
  // way in. `idx`/`off` mark the first unwritten byte across the frame
  // list; each writev call gathers from there, chunked at kMaxIov.
  size_t idx = 0;
  size_t off = 0;
  int stalls = 0;
  while (idx < outbox->size()) {
    iovec iov[kMaxIov];
    int cnt = 0;
    size_t skip = off;
    for (size_t i = idx; i < outbox->size() && cnt < kMaxIov; ++i) {
      const std::string& f = (*outbox)[i];
      iov[cnt].iov_base = const_cast<char*>(f.data() + skip);
      iov[cnt].iov_len = f.size() - skip;
      ++cnt;
      skip = 0;
    }
    const ssize_t n = writev(conn->fd, iov, cnt);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      size_t advanced = static_cast<size_t>(n);
      while (advanced > 0) {
        const size_t left = (*outbox)[idx].size() - off;
        if (advanced >= left) {
          advanced -= left;
          ++idx;
          off = 0;
        } else {
          off += advanced;
          advanced = 0;
        }
      }
      continue;
    }
    if (n == 0) {
      // writev(2) never reports 0 for a nonzero byte count on a healthy
      // stream socket; treating it as retriable would spin. Unwritable.
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // The peer's receive window is full. Wait for writability, bounded:
      // a client that stopped reading must not wedge a worker forever.
      if (++stalls > 300) return false;  // ~30s of 100ms waits
      pollfd pfd{conn->fd, POLLOUT, 0};
      (void)poll(&pfd, 1, 100);
      continue;
    }
    return false;
  }
  outbox->clear();
  return true;
}

void SiriServer::CloseConnection(int fd) {
  MutexLock lock(mu_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  close(fd);
  conns_.erase(it);
  if (conns_.empty()) drain_cv_.notify_all();
}

}  // namespace net
}  // namespace siri
