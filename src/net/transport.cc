// Copyright (c) 2026 The siri Authors. MIT license.

#include "net/transport.h"

#include <chrono>
#include <thread>

#include "common/timer.h"
#include "system/forkbase.h"
#include "version/group_commit.h"

namespace siri {
namespace net {

InProcessTransport::InProcessTransport(ForkbaseServlet* servlet,
                                       uint64_t rtt_nanos, RttModel rtt_model)
    : servlet_(servlet), rtt_nanos_(rtt_nanos), rtt_model_(rtt_model) {}

void InProcessTransport::ChargeRoundTrip() const {
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  if (rtt_nanos_ == 0) return;
  if (rtt_model_ == RttModel::kSleep) {
    // Yield the core: concurrent clients overlap their round trips, which
    // is what makes multi-client throughput scale on few cores.
    std::this_thread::sleep_for(std::chrono::nanoseconds(rtt_nanos_));
    return;
  }
  Timer t;
  while (t.ElapsedNanos() < rtt_nanos_) {
    // Busy-wait to model the round trip inside throughput measurements.
  }
}

Result<std::shared_ptr<const std::string>> InProcessTransport::Get(
    const Hash& h) {
  ChargeRoundTrip();
  return servlet_->store()->Get(h);
}

Result<bool> InProcessTransport::Contains(const Hash& h) {
  ChargeRoundTrip();
  return servlet_->store()->Contains(h);
}

Result<uint64_t> InProcessTransport::SizeOf(const Hash& h) {
  ChargeRoundTrip();
  return servlet_->store()->SizeOf(h);
}

Result<Hash> InProcessTransport::Put(Slice bytes) {
  ChargeRoundTrip();
  return servlet_->store()->Put(bytes);
}

Status InProcessTransport::PutMany(const NodeBatch& batch) {
  if (batch.empty()) return Status::OK();
  // The whole batch rides one chunk-upload RPC: a commit's dirty
  // root-to-leaf path costs one round trip, not one per node.
  ChargeRoundTrip();
  servlet_->store()->PutMany(batch);
  return Status::OK();
}

Status InProcessTransport::Flush() { return servlet_->store()->Flush(); }

Result<NodeStore::Stats> InProcessTransport::StoreStats() {
  return servlet_->store()->stats();
}

Status InProcessTransport::ResetServerOpCounters() {
  servlet_->store()->ResetOpCounters();
  return Status::OK();
}

Result<Hash> InProcessTransport::Head(const std::string& branch) {
  ChargeRoundTrip();
  return servlet_->branches()->Head(branch);
}

Result<PublishResult> InProcessTransport::Publish(const PublishRequest& req) {
  ChargeRoundTrip();
  ImmutableIndex* index = servlet_->IndexFor(req.structure);
  if (index == nullptr) {
    return Status::NotFound("no server-side index registered for structure '" +
                            req.structure + "'");
  }
  PublishSpec spec;
  spec.index = index;
  spec.branch = req.branch;
  spec.new_root = req.new_root;
  spec.author = req.author;
  spec.message = req.message;
  spec.expected_head = req.expected_head;
  auto landed = servlet_->combiner()->Publish(spec);
  if (!landed.ok()) return landed.status();
  PublishResult out;
  out.head = landed->head;
  out.commit = landed->commit;
  out.cas_failures = static_cast<uint64_t>(landed->cas_failures);
  out.merge_commits = static_cast<uint64_t>(landed->merge_commits);
  return out;
}

Result<BranchStats> InProcessTransport::GetBranchStats(
    const std::string& branch) {
  return servlet_->branches()->branch_stats(branch);
}

Result<std::vector<std::string>> InProcessTransport::ListBranches() {
  return servlet_->branches()->ListBranches();
}

Transport::Stats InProcessTransport::stats() const {
  Stats out;
  out.rpcs = rpcs_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace net
}  // namespace siri
