// Copyright (c) 2026 The siri Authors. MIT license.
//
// Wire protocol for the client/server boundary: the RPC surface
// ForkbaseClientStore uses (node Get/Contains/SizeOf, Put, the batched
// PutMany upload, branch head/publish/stats), serialized as one framed
// message per request and per response.
//
// Frame = the digest-verified record format both append-only logs already
// use (common/record_io.h): `varint payload-len | 32-byte SHA-256(payload)
// | payload`. The sender digests the payload it frames; the receiver
// re-digests and drops the connection on mismatch, so a flipped bit
// anywhere in transit surfaces as a typed Corruption instead of a
// misparsed message. FrameDecoder reuses ReadDigestRecord/GetVarint64 for
// the bounds logic (a corrupt varint can decode to a length near
// UINT64_MAX; the wrap-safe check lives in record_io.h, not here).
//
// Payload = `u8 message-type | type-specific body`, built from the same
// varint / length-prefixed primitives as the node codecs. Responses carry
// a status code + message first, then a body the requester interprets by
// the type of the call it made.
//
// Pipelining (wire v2). A v1 connection allows one outstanding request.
// Under v2 — negotiated at Hello, see below — every non-Hello request
// carries a varint correlation id right after the type byte, and every
// non-Hello response echoes it, so a client may keep several requests in
// flight on one connection and match responses out of band (the server
// answers in order; the ids make abandoning one RPC, e.g. on a deadline
// miss, safe without desynchronizing the stream). The Hello exchange
// itself is always v1-shaped: it happens before the version is known.
//
// Version negotiation. The client's Hello carries the highest version it
// speaks; the server answers with min(client, server) in the response
// body and both sides speak that version from the next frame on. A v1
// peer on either side therefore degrades the connection to the v1
// one-outstanding, no-correlation-id, no-cache-push wire format.

#ifndef SIRI_NET_WIRE_H_
#define SIRI_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/record_io.h"
#include "common/slice.h"
#include "common/status.h"
#include "crypto/hash.h"
#include "store/node_store.h"
#include "version/commit.h"

namespace siri {
namespace net {

/// Highest protocol version this build speaks; the Hello handshake
/// negotiates min(client, server) so skewed peers interoperate at the
/// older version instead of failing. v1 = one-outstanding-RPC frames;
/// v2 adds per-frame correlation ids (request pipelining) and the
/// combiner-aware cache push on Publish acks.
constexpr uint32_t kWireVersion = 2;

/// Oldest version still served. A Hello below this fails with a typed
/// InvalidArgument instead of negotiating.
constexpr uint32_t kMinWireVersion = 1;

/// Frames larger than this are rejected as corrupt before any allocation:
/// an honest PutMany of a staged commit is a few MB, so a length beyond
/// this bound is a garbled varint or a hostile peer, not a real message.
constexpr uint64_t kDefaultMaxFrameBytes = 64ull << 20;

enum class MsgType : uint8_t {
  kHello = 1,      ///< version handshake, first message on a connection
  kGet = 2,        ///< body: hash
  kContains = 3,   ///< body: hash
  kSizeOf = 4,     ///< body: hash
  kPut = 5,        ///< body: length-prefixed node bytes
  kPutMany = 6,    ///< body: varint count, then (hash | lp bytes) each
  kFlush = 7,      ///< empty body
  kHead = 8,       ///< body: length-prefixed branch name
  kPublish = 9,    ///< body: see EncodeRequest
  kBranchStats = 10,    ///< body: length-prefixed branch name
  kStoreStats = 11,     ///< empty body
  kResetCounters = 12,  ///< empty body
  kListBranches = 13,   ///< empty body
  kResponse = 64,  ///< body: u8 status code | lp message | result body
};

/// One decoded request, fields populated per `type` (see MsgType).
struct Request {
  MsgType type = MsgType::kHello;
  uint32_t version = kWireVersion;       ///< kHello
  /// Pipelining correlation id (v2, every type but kHello): echoed on the
  /// response so a client with several RPCs in flight matches them up.
  uint64_t corr_id = 0;
  Hash hash;                             ///< kGet / kContains / kSizeOf
  std::string bytes;                     ///< kPut node payload
  NodeBatch batch;                       ///< kPutMany
  std::string branch;                    ///< kHead / kBranchStats / kPublish
  std::string structure;                 ///< kPublish: server-side index name
  Hash new_root;                         ///< kPublish
  std::string author;                    ///< kPublish
  std::string message;                   ///< kPublish
  std::optional<Hash> expected_head;     ///< kPublish
  /// kPublish, v2: client asks the server to attach the publish's staged
  /// batch to the ack (combiner-aware cache push). Ignored under v1.
  bool want_push = false;                ///< kPublish (v2)
};

/// Serializes \p req into a frame payload (not yet framed), in the
/// \p wire_version dialect the connection negotiated. kHello is encoded
/// identically under every version (it precedes negotiation).
std::string EncodeRequest(const Request& req,
                          uint32_t wire_version = kWireVersion);

/// Parses a frame payload into \p out, expecting the \p wire_version
/// dialect. Corruption on anything that does not decode exactly (unknown
/// type, short body, trailing garbage) — the connection that produced it
/// must be dropped.
[[nodiscard]] Status DecodeRequest(Slice payload, Request* out,
                                   uint32_t wire_version = kWireVersion);

/// Serializes a response payload: \p app is the application-level outcome
/// (shipped as code + message), \p body the type-specific result bytes
/// (empty on error). Under v2 the response opens with \p corr_id, echoed
/// from the request; pass wire_version = 1 (e.g. for Hello responses,
/// which precede negotiation) for the id-less v1 shape.
std::string EncodeResponse(const Status& app, Slice body,
                           uint32_t wire_version = kWireVersion,
                           uint64_t corr_id = 0);

/// Parses a response payload. The returned Status is the *protocol*
/// outcome (Corruption = drop the connection); \p app receives the
/// application-level status, \p body the result bytes, \p corr_id the
/// echoed correlation id (0 under v1).
[[nodiscard]] Status DecodeResponse(Slice payload, Status* app,
                                    std::string* body,
                                    uint32_t wire_version = kWireVersion,
                                    uint64_t* corr_id = nullptr);

/// Negotiated version for a Hello advertising \p client_version against a
/// server speaking up to \p server_version: min of the two. The caller
/// rejects results below kMinWireVersion.
constexpr uint32_t NegotiateWireVersion(uint32_t client_version,
                                        uint32_t server_version) {
  return client_version < server_version ? client_version : server_version;
}

/// Rebuilds a Status from a wire code + message (unknown codes map to
/// IOError so a skewed peer cannot smuggle an OK).
Status StatusFromWire(uint8_t code, std::string message);

/// Message prefix on the Corruption response a server sends when a
/// *request frame* could not be decoded (garbled length, digest mismatch,
/// undecodable payload). The distinction matters to the client's retry
/// layer: a frame the server rejected at this layer was never executed,
/// so replaying it — even a non-idempotent Publish — cannot double-apply.
/// Server-side storage corruption surfaced by an executed request never
/// carries this prefix.
constexpr const char kBadFramePrefix[] = "bad frame: ";

/// True when \p s is a server-side reject of an undecodable request frame
/// (see kBadFramePrefix): the request was not executed.
bool IsBadFrameReject(const Status& s);

/// Message prefix on the typed reject a *degraded* (read-only) server
/// answers write requests with after its store latched a sticky disk
/// error (ENOSPC -> ResourceExhausted, other I/O failures ->
/// Unavailable; the rest of the message is the sticky cause). The prefix
/// lets the client's retry layer tell a persistent degraded-store reject
/// (fail fast to the caller — retrying cannot help until an operator
/// intervenes) from a transient overload shed (back off and retry).
constexpr const char kDegradedPrefix[] = "store degraded (read-only): ";

/// True when \p s is a degraded-store write reject (see kDegradedPrefix).
bool IsDegradedReject(const Status& s);

// --- type-specific response bodies -----------------------------------

void PutHash(std::string* dst, const Hash& h);
[[nodiscard]] bool GetHash(Slice* in, Hash* h);

/// What a publish RPC returns (mirrors MergeCommitResult). Under v2 the
/// body may carry `pushed` — the publish's staged batch (merged index
/// pages, content commits, the combined commit), size-capped server-side —
/// which is exactly the node set a losing committer re-reads next round;
/// the client write-allocates it into its NodeCache instead of paying
/// per-node Get round trips (the combiner-aware cache push).
struct WirePublishResult {
  Hash head;    ///< branch head after the publish
  Hash commit;  ///< the author's content commit
  uint64_t cas_failures = 0;
  uint64_t merge_commits = 0;
  NodeBatch pushed;  ///< v2 cache push (empty under v1 or push-off)
};

std::string EncodePublishResultBody(const WirePublishResult& r,
                                    uint32_t wire_version = kWireVersion);
[[nodiscard]] Status DecodePublishResultBody(
    Slice body, WirePublishResult* r, uint32_t wire_version = kWireVersion);

std::string EncodeBranchStatsBody(const BranchStats& s);
[[nodiscard]] Status DecodeBranchStatsBody(Slice body, BranchStats* s);

std::string EncodeStoreStatsBody(const NodeStore::Stats& s);
[[nodiscard]] Status DecodeStoreStatsBody(Slice body, NodeStore::Stats* s);

std::string EncodeStringListBody(const std::vector<std::string>& v);
[[nodiscard]] Status DecodeStringListBody(Slice body,
                                          std::vector<std::string>* v);

// --- framing ----------------------------------------------------------

/// Wraps a payload in the record_io frame: varint len | sha256 | payload.
std::string EncodeFrame(Slice payload);

/// \brief Incremental frame reassembly over a byte stream.
///
/// Append() buffers whatever the socket produced; Next() extracts the
/// next complete, digest-verified payload. The three outcomes are kept
/// distinct because they demand different connection handling:
///   - ok(true): a verified payload was extracted;
///   - ok(false): the buffered bytes frame no complete record yet — read
///     more (a peer that hangs up here simply tore its last frame);
///   - error (Corruption): the stream can never resynchronize — a frame
///     length exceeding max_frame_bytes, a malformed length varint, or a
///     payload whose digest does not match. Drop the connection.
///
/// Not thread-safe; each connection owns one decoder.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint64_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  [[nodiscard]] Result<bool> Next(std::string* payload);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered() const { return buf_.size() - off_; }

 private:
  uint64_t max_frame_bytes_;
  std::string buf_;
  size_t off_ = 0;  // consumed prefix of buf_, compacted lazily
};

}  // namespace net
}  // namespace siri

#endif  // SIRI_NET_WIRE_H_
