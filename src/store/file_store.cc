// Copyright (c) 2026 The siri Authors. MIT license.

#include "store/file_store.h"

#include <unistd.h>

#include <cstring>

#include "common/varint.h"
#include "crypto/sha256.h"

namespace siri {

// Log layout: an 8-byte magic header identifying the format version,
// followed by records of `varint page-length | 32-byte SHA-256 digest |
// page bytes`. The stored digest is what Replay verifies each page
// against — a bit-flip inside a record is detected instead of being
// silently indexed under the digest of the corrupted bytes. Format
// version 1 (digest-less records, no header) is not readable; reopening
// such a log fails with Corruption.

namespace {

constexpr char kLogMagic[] = "SIRILOG\x02";
constexpr size_t kLogMagicSize = 8;

// Parses one record from *in (advancing it) into *page and *digest.
// Returns false when the remaining bytes do not frame a whole record.
// The bounds check is written subtraction-first: a corrupt varint can
// decode to a length near UINT64_MAX, and `kSize + len` would wrap.
bool ReadRecord(Slice* in, std::string* page, Hash* digest) {
  uint64_t len = 0;
  if (!GetVarint64(in, &len)) return false;
  if (in->size() < Hash::kSize || in->size() - Hash::kSize < len) return false;
  *digest = Hash::FromBytes(in->data());
  in->remove_prefix(Hash::kSize);
  page->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

// Framing-only variant for counting dropped records: same bounds logic,
// no payload copy.
bool SkipRecord(Slice* in) {
  uint64_t len = 0;
  if (!GetVarint64(in, &len)) return false;
  if (in->size() < Hash::kSize || in->size() - Hash::kSize < len) return false;
  in->remove_prefix(Hash::kSize + static_cast<size_t>(len));
  return true;
}

}  // namespace

FileNodeStore::FileNodeStore(std::string path, FILE* file)
    : path_(std::move(path)), file_(file) {}

FileNodeStore::~FileNodeStore() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status FileNodeStore::RewriteLog(const char* data, size_t len) {
  const std::string tmp = path_ + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + tmp);
  if ((len > 0 && std::fwrite(data, 1, len, f) != len) ||
      std::fflush(f) != 0 || fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError("failed writing " + tmp);
  }
  std::fclose(f);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " over " + path_);
  }
  FILE* fresh = std::fopen(path_.c_str(), "a+b");
  if (fresh == nullptr) return Status::IOError("cannot reopen " + path_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = fresh;
  return Status::OK();
}

Status FileNodeStore::Open(const std::string& path,
                           std::shared_ptr<FileNodeStore>* out) {
  FILE* f = std::fopen(path.c_str(), "a+b");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " + strerror(errno));
  }
  std::shared_ptr<FileNodeStore> store(new FileNodeStore(path, f));
  Status s = store->Replay();
  if (!s.ok()) return s;
  *out = std::move(store);
  return Status::OK();
}

Status FileNodeStore::Replay() {
  std::fseek(file_, 0, SEEK_END);
  const long end = std::ftell(file_);
  if (end < 0) return Status::IOError("ftell failed");
  std::rewind(file_);

  std::string contents;
  contents.resize(static_cast<size_t>(end));
  if (end > 0 &&
      std::fread(contents.data(), 1, contents.size(), file_) !=
          contents.size()) {
    return Status::IOError("short read replaying " + path_);
  }

  Slice in(contents);
  if (in.empty()) {
    // Fresh log: stamp the format header.
    if (std::fwrite(kLogMagic, 1, kLogMagicSize, file_) != kLogMagicSize ||
        std::fflush(file_) != 0) {
      return Status::IOError("cannot write log header to " + path_);
    }
    dirty_ = true;  // header not yet fsynced; first Flush pushes it down
    return Status::OK();
  }
  if (in.size() < kLogMagicSize &&
      std::memcmp(in.data(), kLogMagic, in.size()) == 0) {
    // Torn header write (crash while stamping a fresh log): self-heal by
    // re-stamping. No pages existed yet, so nothing is dropped. (A
    // foreign sub-8-byte file that happens to be a strict prefix of the
    // magic is overwritten too — accepted: anything at this path that
    // short is ours.)
    return RewriteLog(kLogMagic, kLogMagicSize);
  }
  if (in.size() < kLogMagicSize ||
      std::memcmp(in.data(), kLogMagic, kLogMagicSize) != 0) {
    return Status::Corruption("unrecognized log format in " + path_ +
                              " (expected SIRILOG v2 header)");
  }
  in.remove_prefix(kLogMagicSize);

  bool bad = false;
  while (!in.empty()) {
    Slice mark = in;
    std::string page;
    Hash stored;
    if (!ReadRecord(&in, &page, &stored)) {
      // Torn tail (e.g. crash mid-append): one partial record dropped.
      in = mark;
      ++truncations_;
      bad = true;
      break;
    }
    if (Sha256::Digest(page) != stored) {
      // Bit-flip inside this record. Truncate at its start: this record
      // and everything after it is dropped, counting each dropped page.
      // ReadRecord already advanced `in` past the corrupt record, so the
      // suffix count starts from here.
      ++truncations_;  // the corrupt record itself
      while (!in.empty()) {
        ++truncations_;  // complete records past the corruption, or the
                         // final partial tail
        if (!SkipRecord(&in)) break;
      }
      in = mark;
      bad = true;
      break;
    }
    auto [it, inserted] = nodes_.emplace(
        stored, std::make_shared<const std::string>(std::move(page)));
    if (inserted) {
      ++stats_.unique_nodes;
      stats_.unique_bytes += it->second->size();
    }
  }

  if (bad) {
    // Rewrite the file to the valid prefix so future appends are clean.
    const size_t valid_bytes =
        static_cast<size_t>(in.data() - contents.data());
    Status s = RewriteLog(contents.data(), valid_bytes);
    if (!s.ok()) return s;
  }
  std::fseek(file_, 0, SEEK_END);
  return Status::OK();
}

void FileNodeStore::AppendRecord(std::string* out, const Hash& h,
                                 Slice bytes) {
  PutVarint64(out, bytes.size());
  out->append(reinterpret_cast<const char*>(h.data()), Hash::kSize);
  out->append(bytes.data(), bytes.size());
}

Hash FileNodeStore::Put(Slice bytes) {
  const Hash h = Sha256::Digest(bytes);
  std::lock_guard lock(mu_);
  ++stats_.puts;
  stats_.put_bytes += bytes.size();
  if (nodes_.count(h) > 0) {
    ++stats_.dup_puts;
    return h;
  }
  std::string record;
  AppendRecord(&record, h, bytes);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    // Treat append failure as fatal for this page: report via CHECK since
    // Put has no Status channel (matching the in-memory contract).
    SIRI_CHECK(false && "FileNodeStore append failed");
  }
  dirty_ = true;
  nodes_.emplace(h, std::make_shared<const std::string>(bytes.ToString()));
  ++stats_.unique_nodes;
  stats_.unique_bytes += bytes.size();
  return h;
}

void FileNodeStore::PutMany(const NodeBatch& batch) {
  std::lock_guard lock(mu_);
  // One serialized run of records per batch: the whole dirty path of a
  // commit goes to the log in a single fwrite. Records of nodes already
  // resident are skipped (content-addressed dedup), exactly as per-node
  // Put would have done.
  std::string records;
  for (const NodeRecord& rec : batch) {
    ++stats_.puts;
    stats_.put_bytes += rec.bytes->size();
    if (nodes_.count(rec.hash) > 0) {
      ++stats_.dup_puts;
      continue;
    }
    AppendRecord(&records, rec.hash, Slice(*rec.bytes));
    nodes_.emplace(rec.hash, rec.bytes);
    ++stats_.unique_nodes;
    stats_.unique_bytes += rec.bytes->size();
  }
  if (records.empty()) return;
  if (std::fwrite(records.data(), 1, records.size(), file_) !=
      records.size()) {
    SIRI_CHECK(false && "FileNodeStore batch append failed");
  }
  dirty_ = true;
}

Result<std::shared_ptr<const std::string>> FileNodeStore::Get(const Hash& h) {
  std::lock_guard lock(mu_);
  ++stats_.gets;
  auto it = nodes_.find(h);
  if (it == nodes_.end()) return Status::NotFound("node " + h.ToHex());
  stats_.get_bytes += it->second->size();
  return it->second;
}

bool FileNodeStore::Contains(const Hash& h) const {
  std::lock_guard lock(mu_);
  return nodes_.count(h) > 0;
}

Result<uint64_t> FileNodeStore::SizeOf(const Hash& h) const {
  std::lock_guard lock(mu_);
  auto it = nodes_.find(h);
  if (it == nodes_.end()) return Status::NotFound("node " + h.ToHex());
  return static_cast<uint64_t>(it->second->size());
}

NodeStore::Stats FileNodeStore::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void FileNodeStore::ResetOpCounters() {
  std::lock_guard lock(mu_);
  stats_.puts = stats_.put_bytes = stats_.dup_puts = 0;
  stats_.gets = stats_.get_bytes = 0;
}

Status FileNodeStore::Flush() {
  std::lock_guard lock(mu_);
  // Nothing appended since the last flush: the log is already durable, so
  // skip the syscalls — back-to-back commit boundaries (or a commit whose
  // batch was fully deduplicated) cost zero fsyncs.
  if (!dirty_) return Status::OK();
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  // Flush is the durability point acknowledged to callers (commit
  // boundaries call it), so push all the way to stable storage.
  if (fsync(fileno(file_)) != 0) {
    return Status::IOError(std::string("fsync failed: ") + strerror(errno));
  }
  ++fsyncs_;
  dirty_ = false;
  return Status::OK();
}

uint64_t FileNodeStore::fsync_count() const {
  std::lock_guard lock(mu_);
  return fsyncs_;
}

}  // namespace siri
