// Copyright (c) 2026 The siri Authors. MIT license.

#include "store/file_store.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/record_io.h"
#include "crypto/hash_pool.h"
#include "crypto/sha256.h"

namespace siri {

// Log layout: an 8-byte magic header identifying the format version,
// followed by records of `varint page-length | 32-byte SHA-256 digest |
// page bytes`. The stored digest is what Replay verifies each page
// against — a bit-flip inside a record is detected instead of being
// silently indexed under the digest of the corrupted bytes. Format
// version 1 (digest-less records, no header) is not readable; reopening
// such a log fails with Corruption.

namespace {

constexpr char kLogMagic[] = "SIRILOG\x02";
constexpr size_t kLogMagicSize = 8;

}  // namespace

FileNodeStore::FileNodeStore(io::Env* env, std::string path,
                             std::unique_ptr<io::WritableFile> file)
    : env_(env), path_(std::move(path)), file_(std::move(file)) {}

FileNodeStore::~FileNodeStore() = default;

Status FileNodeStore::RewriteLog(const char* data, size_t len) {
  const std::string tmp = path_ + ".tmp";
  std::unique_ptr<io::WritableFile> f;
  Status s = env_->NewWritableFile(tmp, /*truncate=*/true, &f);
  if (!s.ok()) return s;
  if (len > 0) s = f->Append(Slice(data, len));
  if (s.ok()) s = f->Sync();
  f.reset();
  if (!s.ok()) {
    (void)env_->DeleteFile(tmp);
    return s;
  }
  // Rename + parent-directory fsync: the rename alone is not
  // crash-durable — a power cut can roll the directory back to the OLD
  // inode, orphaning every fsync issued against this one, which silently
  // resurrects the pre-rewrite file.
  s = env_->RenameAndSyncDir(tmp, path_);
  if (!s.ok()) return s;
  std::unique_ptr<io::WritableFile> fresh;
  s = env_->NewWritableFile(path_, /*truncate=*/false, &fresh);
  if (!s.ok()) return s;
  file_ = std::move(fresh);
  return Status::OK();
}

Status FileNodeStore::Open(const std::string& path,
                           std::shared_ptr<FileNodeStore>* out) {
  return Open(io::Env::Default(), path, out);
}

Status FileNodeStore::Open(io::Env* env, const std::string& path,
                           std::shared_ptr<FileNodeStore>* out) {
  std::unique_ptr<io::WritableFile> f;
  Status s = env->NewWritableFile(path, /*truncate=*/false, &f);
  if (!s.ok()) return s;
  std::shared_ptr<FileNodeStore> store(
      new FileNodeStore(env, path, std::move(f)));
  s = store->Replay();
  if (!s.ok()) return s;
  *out = std::move(store);
  return Status::OK();
}

Status FileNodeStore::Replay() {
  // Replay runs once from Open(), before the store is shared — the lock
  // is uncontended and exists to satisfy the guarded-field contracts
  // (file_, nodes_, stats_, the generation counters).
  MutexLock lock(mu_);
  std::string contents;
  Status read = env_->ReadFileToString(path_, &contents);
  if (!read.ok()) return read;

  Slice in(contents);
  if (in.empty()) {
    // Fresh log: stamp the format header.
    Status s = file_->Append(Slice(kLogMagic, kLogMagicSize));
    if (s.ok()) s = file_->Flush();
    if (!s.ok()) return s;
    ++append_gen_;  // header not yet fsynced; first Flush pushes it down
    return Status::OK();
  }
  if (in.size() < kLogMagicSize &&
      std::memcmp(in.data(), kLogMagic, in.size()) == 0) {
    // Torn header write (crash while stamping a fresh log): self-heal by
    // re-stamping. No pages existed yet, so nothing is dropped. (A
    // foreign sub-8-byte file that happens to be a strict prefix of the
    // magic is overwritten too — accepted: anything at this path that
    // short is ours.)
    return RewriteLog(kLogMagic, kLogMagicSize);
  }
  if (in.size() < kLogMagicSize ||
      std::memcmp(in.data(), kLogMagic, kLogMagicSize) != 0) {
    return Status::Corruption("unrecognized log format in " + path_ +
                              " (expected SIRILOG v2 header)");
  }
  in.remove_prefix(kLogMagicSize);

  // Frame every complete record first (framing is inherently sequential),
  // then verify all page digests in one batch through the shared SHA-256
  // pool — replaying a multi-gigabyte log hashes on every core instead of
  // one. The truncation outcome is identical to a serial
  // verify-as-you-parse walk: everything from the first bad record on is
  // dropped.
  struct Framed {
    std::string page;
    Hash stored;
    const char* start;  // where this record begins inside `contents`
  };
  std::vector<Framed> records;
  bool torn_tail = false;
  while (!in.empty()) {
    Slice mark = in;
    Framed rec;
    rec.start = mark.data();
    if (!ReadDigestRecord(&in, &rec.page, &rec.stored)) {
      // Torn tail (e.g. crash mid-append): one partial record dropped.
      in = mark;
      torn_tail = true;
      break;
    }
    records.push_back(std::move(rec));
  }

  std::vector<Slice> pages;
  pages.reserve(records.size());
  for (const Framed& rec : records) pages.emplace_back(rec.page);
  const std::vector<Hash> digests = Sha256Pool::Shared().DigestAllSlices(pages);

  size_t first_bad = records.size();
  for (size_t i = 0; i < records.size(); ++i) {
    if (digests[i] != records[i].stored) {
      first_bad = i;  // bit-flip: this record and everything after drops
      break;
    }
  }

  for (size_t i = 0; i < first_bad; ++i) {
    auto [it, inserted] = nodes_.emplace(
        records[i].stored,
        std::make_shared<const std::string>(std::move(records[i].page)));
    if (inserted) {
      ++stats_.unique_nodes;
      stats_.unique_bytes += it->second->size();
    }
  }

  if (first_bad < records.size() || torn_tail) {
    // Complete records past the first corruption, the corrupt record
    // itself, and a final partial tail each count as one dropped page.
    truncations_ = (records.size() - first_bad) + (torn_tail ? 1 : 0);
    const char* valid_end = first_bad < records.size()
                                ? records[first_bad].start
                                : in.data();
    // Rewrite the file to the valid prefix so future appends are clean.
    const size_t valid_bytes = static_cast<size_t>(valid_end - contents.data());
    Status s = RewriteLog(contents.data(), valid_bytes);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void FileNodeStore::AppendRecord(std::string* out, const Hash& h,
                                 Slice bytes) {
  AppendDigestRecord(out, h, bytes);
}

void FileNodeStore::RememberRecentLocked(const Hash& h) {
  if (recent_ring_.size() < kRecentRingSize) {
    recent_ring_.push_back(h);
  } else {
    recent_set_.erase(recent_ring_[recent_next_]);
    recent_ring_[recent_next_] = h;
  }
  recent_set_.insert(h);
  recent_next_ = (recent_next_ + 1) % kRecentRingSize;
}

void FileNodeStore::LatchLocked(const Status& s) {
  if (!latch_errors_) return;
  if (io_error_.ok()) io_error_ = s;
  // Flushers parked on an in-flight fsync must observe the latch instead
  // of waiting for a durability point that will never come.
  sync_cv_.notify_all();
}

Hash FileNodeStore::Put(Slice bytes) {
  const Hash h = Sha256::Digest(bytes);
  MutexLock lock(mu_);
  ++stats_.puts;
  stats_.put_bytes += bytes.size();
  if (nodes_.count(h) > 0) {
    // The ring is consulted only on the dup path: it adds no lookup to
    // fresh appends and exists to *attribute* the dup — a ring hit means
    // a concurrent committer landed this page within the last
    // kRecentRingSize appends.
    if (recent_set_.count(h) > 0) ++dedup_skips_;
    ++stats_.dup_puts;
    return h;
  }
  if (!io_error_.ok()) {
    // Sticky failure: nothing new becomes visible after a failed or torn
    // append — a record appended now would land after the tear and bury
    // it mid-file, beyond what replay's truncation can recover. Callers
    // learn at Flush() (the commit is not acked).
    return h;
  }
  std::string record;
  AppendRecord(&record, h, bytes);
  Status s = file_->Append(record);
  if (!s.ok()) {
    LatchLocked(s);
    return h;
  }
  ++append_gen_;
  nodes_.emplace(h, std::make_shared<const std::string>(bytes.ToString()));
  RememberRecentLocked(h);
  ++stats_.unique_nodes;
  stats_.unique_bytes += bytes.size();
  return h;
}

void FileNodeStore::PutMany(const NodeBatch& batch) {
  MutexLock lock(mu_);
  if (!io_error_.ok()) {
    // Fail fast (see Put): the batch is neither appended nor indexed.
    for (const NodeRecord& rec : batch) {
      ++stats_.puts;
      stats_.put_bytes += rec.bytes->size();
    }
    return;
  }
  // One serialized run of records per batch: the whole dirty path of a
  // commit goes to the log in a single append. Records of nodes already
  // resident are skipped (content-addressed dedup), exactly as per-node
  // Put would have done; pages a concurrent committer landed within the
  // last kRecentRingSize appends are caught by the recent-digest ring
  // first and surfaced as dedup_skips. Nothing is indexed until the
  // append has succeeded — a failed batch must leave no in-memory state
  // a later commit could dedup against without durable backing.
  std::string records;
  std::vector<const NodeRecord*> fresh;
  std::unordered_set<Hash, HashHasher> staged;
  for (const NodeRecord& rec : batch) {
    ++stats_.puts;
    stats_.put_bytes += rec.bytes->size();
    const bool resident = nodes_.count(rec.hash) > 0;
    const bool in_batch = staged.count(rec.hash) > 0;
    if (resident || in_batch) {
      // Dup path only (see Put): a ring hit attributes the dup to a
      // committer that landed the page within the last kRecentRingSize
      // appends — the cross-commit dedup signal. An intra-batch dup
      // counts as recent by definition.
      if (in_batch || recent_set_.count(rec.hash) > 0) ++dedup_skips_;
      ++stats_.dup_puts;
      continue;
    }
    staged.insert(rec.hash);
    AppendRecord(&records, rec.hash, Slice(*rec.bytes));
    fresh.push_back(&rec);
  }
  if (records.empty()) return;
  Status s = file_->Append(records);
  if (!s.ok()) {
    LatchLocked(s);
    return;
  }
  ++append_gen_;
  for (const NodeRecord* rec : fresh) {
    nodes_.emplace(rec->hash, rec->bytes);
    RememberRecentLocked(rec->hash);
    ++stats_.unique_nodes;
    stats_.unique_bytes += rec->bytes->size();
  }
}

Result<std::shared_ptr<const std::string>> FileNodeStore::Get(const Hash& h) {
  MutexLock lock(mu_);
  ++stats_.gets;
  auto it = nodes_.find(h);
  if (it == nodes_.end()) return Status::NotFound("node " + h.ToHex());
  stats_.get_bytes += it->second->size();
  return it->second;
}

bool FileNodeStore::Contains(const Hash& h) const {
  MutexLock lock(mu_);
  return nodes_.count(h) > 0;
}

Result<uint64_t> FileNodeStore::SizeOf(const Hash& h) const {
  MutexLock lock(mu_);
  auto it = nodes_.find(h);
  if (it == nodes_.end()) return Status::NotFound("node " + h.ToHex());
  return static_cast<uint64_t>(it->second->size());
}

NodeStore::Stats FileNodeStore::stats() const {
  MutexLock lock(mu_);
  Stats out = stats_;
  // Reset-relative like every other op counter, so commits-per-flush
  // accounting behaves identically on memory- and disk-backed stores.
  // fsync_count() stays process-cumulative (crash-accounting tests
  // snapshot deltas of it).
  out.flushes = fsyncs_ - fsyncs_at_reset_;
  return out;
}

void FileNodeStore::ResetOpCounters() {
  MutexLock lock(mu_);
  stats_.puts = stats_.put_bytes = stats_.dup_puts = 0;
  stats_.gets = stats_.get_bytes = 0;
  fsyncs_at_reset_ = fsyncs_;
}

Status FileNodeStore::DiskStatus() const {
  MutexLock lock(mu_);
  return io_error_;
}

void FileNodeStore::set_sticky_errors_for_testing(bool on) {
  MutexLock lock(mu_);
  latch_errors_ = on;
}

Status FileNodeStore::SyncLocked(MutexLock& lock) {
  // The syscalls run with mu_ held: appends share the write handle, so a
  // concurrent append during the flush would corrupt the stream.
  // Concurrent *flushers* do not queue on the mutex, though — they wait
  // on sync_cv_ and find their generation covered when this fsync
  // finishes.
  (void)lock;
  if (!io_error_.ok()) return io_error_;
  const uint64_t covering = append_gen_;
  // Flush is the durability point acknowledged to callers (commit
  // boundaries call it), so push all the way to stable storage. A
  // failure latches: synced_gen_ must never advance past bytes the
  // failed fsync may have discarded, and no later fsync may claim them.
  Status s = file_->Sync();
  if (!s.ok()) {
    LatchLocked(s);
    return latch_errors_ ? io_error_ : s;
  }
  ++fsyncs_;
  synced_gen_ = covering;
  return Status::OK();
}

Status FileNodeStore::Flush() {
  MutexLock lock(mu_);
  // A latched store fails every Flush — even one whose appends all
  // predate the failure: the failed fsync may have discarded exactly
  // those dirty bytes, so no durability claim is safe anymore.
  if (!io_error_.ok()) return io_error_;
  // Nothing appended since the last fsync: the log is already durable, so
  // skip the syscalls — back-to-back commit boundaries (or a commit whose
  // batch was fully deduplicated) cost zero fsyncs.
  if (append_gen_ == synced_gen_) return Status::OK();

  // Everything this caller appended is durable once synced_gen_ reaches
  // the generation observed here.
  const uint64_t target = append_gen_;
  for (;;) {
    if (!io_error_.ok()) return io_error_;
    if (synced_gen_ >= target) {
      // Another thread's fsync covered us: group commit in action.
      ++coalesced_flushes_;
      return Status::OK();
    }
    if (!sync_in_progress_) break;
    // An fsync is in flight; piggyback on it instead of queuing a second
    // syscall. If it fails (or covered an older generation), the loop
    // falls through and this thread becomes the syncer.
    sync_cv_.wait(lock.native());
  }

  sync_in_progress_ = true;
  if (group_window_micros_ > 0) {
    // Wait-a-little: let concurrent committers get their appends into the
    // log so one fsync covers them all. The lock is dropped — the window
    // exists precisely so others can append during it — so the window
    // length is copied out first: reading group_window_micros_ after the
    // unlock would race set_group_flush_window_micros.
    const uint64_t window = group_window_micros_;
    lock.Unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(window));
    lock.Lock();
  }
  Status s = SyncLocked(lock);
  sync_in_progress_ = false;
  sync_cv_.notify_all();
  return s;
}

void FileNodeStore::set_group_flush_window_micros(uint64_t micros) {
  MutexLock lock(mu_);
  group_window_micros_ = micros;
}

uint64_t FileNodeStore::group_flush_window_micros() const {
  MutexLock lock(mu_);
  return group_window_micros_;
}

uint64_t FileNodeStore::fsync_count() const {
  MutexLock lock(mu_);
  return fsyncs_;
}

uint64_t FileNodeStore::coalesced_flushes() const {
  MutexLock lock(mu_);
  return coalesced_flushes_;
}

uint64_t FileNodeStore::dedup_skips() const {
  MutexLock lock(mu_);
  return dedup_skips_;
}

}  // namespace siri
