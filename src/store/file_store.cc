// Copyright (c) 2026 The siri Authors. MIT license.

#include "store/file_store.h"

#include <cstring>

#include "common/varint.h"
#include "crypto/sha256.h"

namespace siri {

// Log record layout: varint length | page bytes. The page digest is not
// stored — it is recomputed on replay, which both rebuilds the index and
// verifies integrity.

FileNodeStore::FileNodeStore(std::string path, FILE* file)
    : path_(std::move(path)), file_(file) {}

FileNodeStore::~FileNodeStore() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status FileNodeStore::Open(const std::string& path,
                           std::shared_ptr<FileNodeStore>* out) {
  FILE* f = std::fopen(path.c_str(), "a+b");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " + strerror(errno));
  }
  std::shared_ptr<FileNodeStore> store(new FileNodeStore(path, f));
  Status s = store->Replay();
  if (!s.ok()) return s;
  *out = std::move(store);
  return Status::OK();
}

Status FileNodeStore::Replay() {
  std::fseek(file_, 0, SEEK_END);
  const long end = std::ftell(file_);
  if (end < 0) return Status::IOError("ftell failed");
  std::rewind(file_);

  std::string contents;
  contents.resize(static_cast<size_t>(end));
  if (end > 0 &&
      std::fread(contents.data(), 1, contents.size(), file_) !=
          contents.size()) {
    return Status::IOError("short read replaying " + path_);
  }

  Slice in(contents);
  size_t valid_bytes = 0;
  while (!in.empty()) {
    Slice mark = in;
    std::string page;
    if (!GetLengthPrefixed(&in, &page)) {
      // Truncated tail (e.g. crash mid-append): cut it off.
      ++truncations_;
      break;
    }
    const Hash h = Sha256::Digest(page);
    auto [it, inserted] = nodes_.emplace(
        h, std::make_shared<const std::string>(std::move(page)));
    if (inserted) {
      ++stats_.unique_nodes;
      stats_.unique_bytes += it->second->size();
    }
    valid_bytes += static_cast<size_t>(in.data() - mark.data());
  }

  if (truncations_ > 0) {
    // Rewrite the file to the valid prefix so future appends are clean.
    FILE* fresh = std::fopen(path_.c_str(), "wb");
    if (fresh == nullptr) return Status::IOError("cannot truncate " + path_);
    if (valid_bytes > 0 &&
        std::fwrite(contents.data(), 1, valid_bytes, fresh) != valid_bytes) {
      std::fclose(fresh);
      return Status::IOError("failed rewriting " + path_);
    }
    std::fclose(file_);
    file_ = fresh;
  }
  std::fseek(file_, 0, SEEK_END);
  return Status::OK();
}

Hash FileNodeStore::Put(Slice bytes) {
  const Hash h = Sha256::Digest(bytes);
  std::lock_guard lock(mu_);
  ++stats_.puts;
  stats_.put_bytes += bytes.size();
  if (nodes_.count(h) > 0) {
    ++stats_.dup_puts;
    return h;
  }
  std::string record;
  PutLengthPrefixed(&record, bytes);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    // Treat append failure as fatal for this page: report via CHECK since
    // Put has no Status channel (matching the in-memory contract).
    SIRI_CHECK(false && "FileNodeStore append failed");
  }
  nodes_.emplace(h, std::make_shared<const std::string>(bytes.ToString()));
  ++stats_.unique_nodes;
  stats_.unique_bytes += bytes.size();
  return h;
}

Result<std::shared_ptr<const std::string>> FileNodeStore::Get(const Hash& h) {
  std::lock_guard lock(mu_);
  ++stats_.gets;
  auto it = nodes_.find(h);
  if (it == nodes_.end()) return Status::NotFound("node " + h.ToHex());
  stats_.get_bytes += it->second->size();
  return it->second;
}

bool FileNodeStore::Contains(const Hash& h) const {
  std::lock_guard lock(mu_);
  return nodes_.count(h) > 0;
}

Result<uint64_t> FileNodeStore::SizeOf(const Hash& h) const {
  std::lock_guard lock(mu_);
  auto it = nodes_.find(h);
  if (it == nodes_.end()) return Status::NotFound("node " + h.ToHex());
  return static_cast<uint64_t>(it->second->size());
}

NodeStore::Stats FileNodeStore::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void FileNodeStore::ResetOpCounters() {
  std::lock_guard lock(mu_);
  stats_.puts = stats_.put_bytes = stats_.dup_puts = 0;
  stats_.gets = stats_.get_bytes = 0;
}

Status FileNodeStore::Flush() {
  std::lock_guard lock(mu_);
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

}  // namespace siri
