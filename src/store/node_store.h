// Copyright (c) 2026 The siri Authors. MIT license.
//
// Content-addressed node (page) storage. Every index node is serialized to
// bytes, digested with SHA-256, and stored under its digest. Storing the
// same bytes twice is free — this is the mechanism behind page-level
// deduplication across versions, branches, and even different datasets
// (§3.3 of the paper). All four index structures share one NodeStore, so
// space metrics (deduplication ratio η, node sharing ratio) can be computed
// directly from store statistics and reachable page sets.

#ifndef SIRI_STORE_NODE_STORE_H_
#define SIRI_STORE_NODE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "crypto/hash.h"

namespace siri {

/// A set of page digests, e.g. all pages reachable from one version root.
using PageSet = std::unordered_set<Hash, HashHasher>;

/// \brief Abstract content-addressed store mapping SHA-256(bytes) -> bytes.
///
/// Implementations must be thread-safe. Nodes are immutable once stored.
class NodeStore {
 public:
  struct Stats {
    uint64_t puts = 0;         ///< total Put calls
    uint64_t put_bytes = 0;    ///< bytes offered across all Put calls
    uint64_t dup_puts = 0;     ///< Put calls that hit an existing node
    uint64_t gets = 0;         ///< total Get calls
    uint64_t get_bytes = 0;    ///< bytes returned across all Get calls
    uint64_t unique_nodes = 0; ///< distinct nodes resident
    uint64_t unique_bytes = 0; ///< total bytes of distinct nodes
  };

  virtual ~NodeStore() = default;

  /// Stores \p bytes (idempotent) and returns its SHA-256 digest.
  virtual Hash Put(Slice bytes) = 0;

  /// Fetches the node with digest \p h. NotFound if absent.
  virtual Result<std::shared_ptr<const std::string>> Get(const Hash& h) = 0;

  virtual bool Contains(const Hash& h) const = 0;

  /// Serialized size of the node, or NotFound.
  virtual Result<uint64_t> SizeOf(const Hash& h) const = 0;

  virtual Stats stats() const = 0;

  /// Zeroes the operation counters (puts/gets); resident-node counters keep
  /// their values. Benches call this between phases.
  virtual void ResetOpCounters() = 0;

  /// Makes previously acknowledged Puts durable. No-op for in-memory
  /// stores; disk-backed stores fsync. Commit boundaries call this so an
  /// acknowledged commit survives a crash.
  virtual Status Flush() { return Status::OK(); }
};

using NodeStorePtr = std::shared_ptr<NodeStore>;

/// \brief Hash-map backed store; the default for every test and bench.
class InMemoryNodeStore : public NodeStore {
 public:
  Hash Put(Slice bytes) override;
  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  bool Contains(const Hash& h) const override;
  Result<uint64_t> SizeOf(const Hash& h) const override;
  Stats stats() const override;
  void ResetOpCounters() override;

  /// Total serialized bytes of the pages in \p pages that exist in this
  /// store (the byte() function of §4.2.1 applied to a page set).
  uint64_t BytesOf(const PageSet& pages) const;

  /// Garbage collection: drops every page NOT in \p retain (the union of
  /// CollectPages over all roots the application still needs). Returns the
  /// number of pages dropped. Digest addressing makes this safe: a page in
  /// the retain set can never be a dangling reference.
  uint64_t PruneExcept(const PageSet& retain);

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<Hash, std::shared_ptr<const std::string>, HashHasher>
      nodes_;
  // Op counters are bumped on the shared-lock read path, so they are
  // atomic; the resident-node counters only change under the unique lock.
  mutable std::atomic<uint64_t> puts_{0};
  mutable std::atomic<uint64_t> put_bytes_{0};
  mutable std::atomic<uint64_t> dup_puts_{0};
  mutable std::atomic<uint64_t> gets_{0};
  mutable std::atomic<uint64_t> get_bytes_{0};
  uint64_t unique_nodes_ = 0;
  uint64_t unique_bytes_ = 0;
};

std::shared_ptr<InMemoryNodeStore> NewInMemoryNodeStore();

/// \brief Store decorator that fails a configurable fraction of operations.
///
/// Used by failure-injection tests to verify that index code surfaces
/// corruption/missing-node errors instead of crashing or mis-answering.
class FaultyNodeStore : public NodeStore {
 public:
  explicit FaultyNodeStore(NodeStorePtr base) : base_(std::move(base)) {}

  /// Every call to Get for \p h fails with Corruption until cleared.
  void CorruptNode(const Hash& h);
  /// Makes \p h invisible (NotFound) until cleared.
  void DropNode(const Hash& h);
  void ClearFaults();

  Hash Put(Slice bytes) override { return base_->Put(bytes); }
  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  bool Contains(const Hash& h) const override;
  Result<uint64_t> SizeOf(const Hash& h) const override {
    return base_->SizeOf(h);
  }
  Stats stats() const override { return base_->stats(); }
  void ResetOpCounters() override { base_->ResetOpCounters(); }
  Status Flush() override { return base_->Flush(); }

 private:
  NodeStorePtr base_;
  mutable std::shared_mutex mu_;
  PageSet corrupted_;
  PageSet dropped_;
};

}  // namespace siri

#endif  // SIRI_STORE_NODE_STORE_H_
