// Copyright (c) 2026 The siri Authors. MIT license.
//
// Content-addressed node (page) storage. Every index node is serialized to
// bytes, digested with SHA-256, and stored under its digest. Storing the
// same bytes twice is free — this is the mechanism behind page-level
// deduplication across versions, branches, and even different datasets
// (§3.3 of the paper). All four index structures share one NodeStore, so
// space metrics (deduplication ratio η, node sharing ratio) can be computed
// directly from store statistics and reachable page sets.
//
// Write path: index commit paths stage the dirty root-to-leaf nodes of one
// batch locally (see staging_store.h) and hand the whole set to PutMany,
// so a commit costs one lock acquisition per touched shard / one log
// append / one upload RPC instead of one per node.

#ifndef SIRI_STORE_NODE_STORE_H_
#define SIRI_STORE_NODE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "crypto/hash.h"

namespace siri {

/// A set of page digests, e.g. all pages reachable from one version root.
using PageSet = std::unordered_set<Hash, HashHasher>;

/// \brief One pre-digested node of a write batch.
///
/// Contract: \c hash MUST equal SHA-256(*bytes). Producers (the staging
/// layer, version transfer) compute the digest exactly once when the node
/// is created; PutMany implementations trust it so the batch path does not
/// re-hash every node — that amortization is the point of batching.
struct NodeRecord {
  Hash hash;
  std::shared_ptr<const std::string> bytes;
};

/// A batch of nodes flushed together at a commit boundary.
using NodeBatch = std::vector<NodeRecord>;

/// \brief Abstract content-addressed store mapping SHA-256(bytes) -> bytes.
///
/// Implementations must be thread-safe. Nodes are immutable once stored.
class NodeStore {
 public:
  struct Stats {
    uint64_t puts = 0;         ///< total nodes offered (Put + PutMany)
    uint64_t put_bytes = 0;    ///< bytes offered across all put calls
    uint64_t dup_puts = 0;     ///< offered nodes that hit an existing node
    uint64_t gets = 0;         ///< total Get calls
    uint64_t get_bytes = 0;    ///< bytes returned across all Get calls
    uint64_t unique_nodes = 0; ///< distinct nodes resident
    uint64_t unique_bytes = 0; ///< total bytes of distinct nodes
    /// Durability points paid: the in-memory store counts Flush() calls
    /// (each stands for the fsync a disk-backed deployment would issue),
    /// the file store counts real fsyncs. Commits-per-flush > 1 is the
    /// group-commit win benches report.
    uint64_t flushes = 0;
  };

  virtual ~NodeStore() = default;

  /// Stores \p bytes (idempotent) and returns its SHA-256 digest.
  /// [[nodiscard]]: the digest is the only handle to the stored node —
  /// a caller that drops it stored bytes it can never address again.
  /// Fire-and-forget writes of *pre-digested* nodes go through PutMany.
  [[nodiscard]] virtual Hash Put(Slice bytes) = 0;

  /// Stores every node of \p batch (idempotent, like Put). Implementations
  /// override this to amortize per-node overhead: the in-memory store takes
  /// each shard lock once, the file store issues one log append, the client
  /// store pays one simulated round trip. The default loops over Put so
  /// decorators keep working unchanged. Per-node put/dup accounting is
  /// identical to calling Put once per node.
  virtual void PutMany(const NodeBatch& batch);

  /// Fetches the node with digest \p h. NotFound if absent.
  virtual Result<std::shared_ptr<const std::string>> Get(const Hash& h) = 0;

  virtual bool Contains(const Hash& h) const = 0;

  /// Serialized size of the node, or NotFound.
  virtual Result<uint64_t> SizeOf(const Hash& h) const = 0;

  virtual Stats stats() const = 0;

  /// Zeroes the operation counters (puts/gets); resident-node counters keep
  /// their values. Benches call this between phases.
  virtual void ResetOpCounters() = 0;

  /// Makes previously acknowledged Puts durable. No-op for in-memory
  /// stores; disk-backed stores fsync. Commit boundaries call this so an
  /// acknowledged commit survives a crash. The Status must be checked
  /// ([[nodiscard]] via Status): an ignored failed flush is an
  /// acknowledged commit that does not survive a crash.
  virtual Status Flush() { return Status::OK(); }

  /// Sticky disk health. OK for stores with no failure mode (the
  /// in-memory default); disk-backed stores latch the first
  /// unrecoverable write/sync error here (typed: ResourceExhausted for
  /// out-of-space, IOError otherwise) and never reset it — see
  /// FileNodeStore. Servers poll this to flip into read-only degraded
  /// mode.
  virtual Status DiskStatus() const { return Status::OK(); }
};

using NodeStorePtr = std::shared_ptr<NodeStore>;

/// \brief Hash-map backed store; the default for every test and bench.
///
/// Internally sharded like NodeCache: a node lives in the shard selected by
/// its digest prefix, and each shard has its own mutex and resident-node
/// counters, so concurrent writers on different shards never contend.
/// Op counters are process-wide relaxed atomics. Constructing with
/// `num_shards = 1` preserves the exact single-map semantics (one lock
/// ordering all operations), which tests that reason about interleavings
/// rely on.
class InMemoryNodeStore : public NodeStore {
 public:
  static constexpr int kDefaultShards = 16;

  explicit InMemoryNodeStore(int num_shards = kDefaultShards);

  [[nodiscard]] Hash Put(Slice bytes) override;
  void PutMany(const NodeBatch& batch) override;
  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  bool Contains(const Hash& h) const override;
  Result<uint64_t> SizeOf(const Hash& h) const override;
  Stats stats() const override;
  void ResetOpCounters() override;

  /// No durability work to do, but the call is counted (stats().flushes)
  /// so benches over the in-memory store can report commits-per-flush the
  /// same way the file store reports commits-per-fsync.
  Status Flush() override {
    flushes_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Total serialized bytes of the pages in \p pages that exist in this
  /// store (the byte() function of §4.2.1 applied to a page set).
  uint64_t BytesOf(const PageSet& pages) const;

  /// Garbage collection: drops every page NOT in \p retain (the union of
  /// CollectPages over all roots the application still needs). Returns the
  /// number of pages dropped. Digest addressing makes this safe: a page in
  /// the retain set can never be a dangling reference.
  uint64_t PruneExcept(const PageSet& retain);

 private:
  struct Shard {
    mutable SharedMutex mu;
    std::unordered_map<Hash, std::shared_ptr<const std::string>, HashHasher>
        nodes GUARDED_BY(mu);
    // Resident-node counters only change under the shard's unique lock.
    uint64_t unique_nodes GUARDED_BY(mu) = 0;
    uint64_t unique_bytes GUARDED_BY(mu) = 0;
  };

  size_t ShardIndexFor(const Hash& h) const {
    return h.Prefix64() % shards_.size();
  }
  Shard& ShardFor(const Hash& h) { return shards_[ShardIndexFor(h)]; }
  const Shard& ShardFor(const Hash& h) const {
    return shards_[ShardIndexFor(h)];
  }

  /// Inserts one pre-digested node into \p shard (which must be uniquely
  /// locked by the caller) and bumps the op counters.
  void InsertLocked(Shard& shard, const Hash& h,
                    std::shared_ptr<const std::string> bytes)
      REQUIRES(shard.mu);

  std::vector<Shard> shards_;
  // Op counters are bumped on shared-lock read paths and across shards, so
  // they are process-wide atomics rather than per-shard fields.
  mutable std::atomic<uint64_t> puts_{0};
  mutable std::atomic<uint64_t> put_bytes_{0};
  mutable std::atomic<uint64_t> dup_puts_{0};
  mutable std::atomic<uint64_t> gets_{0};
  mutable std::atomic<uint64_t> get_bytes_{0};
  mutable std::atomic<uint64_t> flushes_{0};
};

std::shared_ptr<InMemoryNodeStore> NewInMemoryNodeStore(
    int num_shards = InMemoryNodeStore::kDefaultShards);

/// \brief Store decorator that fails a configurable fraction of operations.
///
/// Used by failure-injection tests to verify that index code surfaces
/// corruption/missing-node errors instead of crashing or mis-answering.
class FaultyNodeStore : public NodeStore {
 public:
  explicit FaultyNodeStore(NodeStorePtr base) : base_(std::move(base)) {}

  /// Every call to Get for \p h fails with Corruption until cleared.
  void CorruptNode(const Hash& h);
  /// Makes \p h invisible (NotFound) until cleared.
  void DropNode(const Hash& h);
  void ClearFaults();

  [[nodiscard]] Hash Put(Slice bytes) override { return base_->Put(bytes); }
  void PutMany(const NodeBatch& batch) override { base_->PutMany(batch); }
  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  bool Contains(const Hash& h) const override;
  Result<uint64_t> SizeOf(const Hash& h) const override {
    return base_->SizeOf(h);
  }
  Stats stats() const override { return base_->stats(); }
  void ResetOpCounters() override { base_->ResetOpCounters(); }
  Status Flush() override { return base_->Flush(); }
  Status DiskStatus() const override { return base_->DiskStatus(); }

 private:
  NodeStorePtr base_;
  mutable SharedMutex mu_;
  PageSet corrupted_ GUARDED_BY(mu_);
  PageSet dropped_ GUARDED_BY(mu_);
};

}  // namespace siri

#endif  // SIRI_STORE_NODE_STORE_H_
