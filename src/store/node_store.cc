// Copyright (c) 2026 The siri Authors. MIT license.

#include "store/node_store.h"

#include <mutex>

#include "crypto/sha256.h"

namespace siri {

Hash InMemoryNodeStore::Put(Slice bytes) {
  const Hash h = Sha256::Digest(bytes);
  std::unique_lock lock(mu_);
  puts_.fetch_add(1, std::memory_order_relaxed);
  put_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  auto it = nodes_.find(h);
  if (it != nodes_.end()) {
    dup_puts_.fetch_add(1, std::memory_order_relaxed);
    return h;
  }
  nodes_.emplace(h, std::make_shared<const std::string>(bytes.ToString()));
  ++unique_nodes_;
  unique_bytes_ += bytes.size();
  return h;
}

Result<std::shared_ptr<const std::string>> InMemoryNodeStore::Get(
    const Hash& h) {
  std::shared_lock lock(mu_);
  gets_.fetch_add(1, std::memory_order_relaxed);
  auto it = nodes_.find(h);
  if (it == nodes_.end()) {
    return Status::NotFound("node " + h.ToHex());
  }
  get_bytes_.fetch_add(it->second->size(), std::memory_order_relaxed);
  return it->second;
}

bool InMemoryNodeStore::Contains(const Hash& h) const {
  std::shared_lock lock(mu_);
  return nodes_.count(h) > 0;
}

Result<uint64_t> InMemoryNodeStore::SizeOf(const Hash& h) const {
  std::shared_lock lock(mu_);
  auto it = nodes_.find(h);
  if (it == nodes_.end()) {
    return Status::NotFound("node " + h.ToHex());
  }
  return static_cast<uint64_t>(it->second->size());
}

NodeStore::Stats InMemoryNodeStore::stats() const {
  std::shared_lock lock(mu_);
  Stats out;
  out.puts = puts_.load(std::memory_order_relaxed);
  out.put_bytes = put_bytes_.load(std::memory_order_relaxed);
  out.dup_puts = dup_puts_.load(std::memory_order_relaxed);
  out.gets = gets_.load(std::memory_order_relaxed);
  out.get_bytes = get_bytes_.load(std::memory_order_relaxed);
  out.unique_nodes = unique_nodes_;
  out.unique_bytes = unique_bytes_;
  return out;
}

void InMemoryNodeStore::ResetOpCounters() {
  puts_.store(0, std::memory_order_relaxed);
  put_bytes_.store(0, std::memory_order_relaxed);
  dup_puts_.store(0, std::memory_order_relaxed);
  gets_.store(0, std::memory_order_relaxed);
  get_bytes_.store(0, std::memory_order_relaxed);
}

uint64_t InMemoryNodeStore::BytesOf(const PageSet& pages) const {
  std::shared_lock lock(mu_);
  uint64_t total = 0;
  for (const Hash& h : pages) {
    auto it = nodes_.find(h);
    if (it != nodes_.end()) total += it->second->size();
  }
  return total;
}

uint64_t InMemoryNodeStore::PruneExcept(const PageSet& retain) {
  std::unique_lock lock(mu_);
  uint64_t dropped = 0;
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (retain.count(it->first) == 0) {
      unique_bytes_ -= it->second->size();
      --unique_nodes_;
      it = nodes_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::shared_ptr<InMemoryNodeStore> NewInMemoryNodeStore() {
  return std::make_shared<InMemoryNodeStore>();
}

void FaultyNodeStore::CorruptNode(const Hash& h) {
  std::unique_lock lock(mu_);
  corrupted_.insert(h);
}

void FaultyNodeStore::DropNode(const Hash& h) {
  std::unique_lock lock(mu_);
  dropped_.insert(h);
}

void FaultyNodeStore::ClearFaults() {
  std::unique_lock lock(mu_);
  corrupted_.clear();
  dropped_.clear();
}

Result<std::shared_ptr<const std::string>> FaultyNodeStore::Get(
    const Hash& h) {
  {
    std::shared_lock lock(mu_);
    if (corrupted_.count(h) > 0) {
      return Status::Corruption("injected corruption for " + h.ToHex());
    }
    if (dropped_.count(h) > 0) {
      return Status::NotFound("injected drop for " + h.ToHex());
    }
  }
  return base_->Get(h);
}

bool FaultyNodeStore::Contains(const Hash& h) const {
  {
    std::shared_lock lock(mu_);
    if (dropped_.count(h) > 0) return false;
  }
  return base_->Contains(h);
}

}  // namespace siri
