// Copyright (c) 2026 The siri Authors. MIT license.

#include "store/node_store.h"

#include "crypto/sha256.h"

namespace siri {

void NodeStore::PutMany(const NodeBatch& batch) {
  for (const NodeRecord& rec : batch) Put(Slice(*rec.bytes));
}

InMemoryNodeStore::InMemoryNodeStore(int num_shards)
    : shards_(num_shards < 1 ? 1 : static_cast<size_t>(num_shards)) {}

void InMemoryNodeStore::InsertLocked(Shard& shard, const Hash& h,
                                     std::shared_ptr<const std::string> bytes) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  put_bytes_.fetch_add(bytes->size(), std::memory_order_relaxed);
  auto [it, inserted] = shard.nodes.emplace(h, std::move(bytes));
  if (!inserted) {
    dup_puts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++shard.unique_nodes;
  shard.unique_bytes += it->second->size();
}

Hash InMemoryNodeStore::Put(Slice bytes) {
  const Hash h = Sha256::Digest(bytes);
  Shard& shard = ShardFor(h);
  WriterLock lock(shard.mu);
  puts_.fetch_add(1, std::memory_order_relaxed);
  put_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  auto it = shard.nodes.find(h);
  if (it != shard.nodes.end()) {
    dup_puts_.fetch_add(1, std::memory_order_relaxed);
    return h;  // duplicate: no payload copy
  }
  shard.nodes.emplace(h, std::make_shared<const std::string>(bytes.ToString()));
  ++shard.unique_nodes;
  shard.unique_bytes += bytes.size();
  return h;
}

void InMemoryNodeStore::PutMany(const NodeBatch& batch) {
  // Small batches (a single-op commit dirties only a handful of path
  // nodes) skip the grouping scaffolding: lock per record, like Put minus
  // the hashing — no allocations on the latency path.
  if (batch.size() <= shards_.size() / 2) {
    for (const NodeRecord& rec : batch) {
      Shard& shard = ShardFor(rec.hash);
      WriterLock lock(shard.mu);
      InsertLocked(shard, rec.hash, rec.bytes);
    }
    return;
  }
  // Group records by shard first so each shard lock is taken exactly once
  // per batch, no matter how many nodes land in it.
  std::vector<std::vector<const NodeRecord*>> by_shard(shards_.size());
  for (const NodeRecord& rec : batch) {
    by_shard[ShardIndexFor(rec.hash)].push_back(&rec);
  }
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    WriterLock lock(shard.mu);
    for (const NodeRecord* rec : by_shard[s]) {
      InsertLocked(shard, rec->hash, rec->bytes);
    }
  }
}

Result<std::shared_ptr<const std::string>> InMemoryNodeStore::Get(
    const Hash& h) {
  const Shard& shard = ShardFor(h);
  ReaderLock lock(shard.mu);
  gets_.fetch_add(1, std::memory_order_relaxed);
  auto it = shard.nodes.find(h);
  if (it == shard.nodes.end()) {
    return Status::NotFound("node " + h.ToHex());
  }
  get_bytes_.fetch_add(it->second->size(), std::memory_order_relaxed);
  return it->second;
}

bool InMemoryNodeStore::Contains(const Hash& h) const {
  const Shard& shard = ShardFor(h);
  ReaderLock lock(shard.mu);
  return shard.nodes.count(h) > 0;
}

Result<uint64_t> InMemoryNodeStore::SizeOf(const Hash& h) const {
  const Shard& shard = ShardFor(h);
  ReaderLock lock(shard.mu);
  auto it = shard.nodes.find(h);
  if (it == shard.nodes.end()) {
    return Status::NotFound("node " + h.ToHex());
  }
  return static_cast<uint64_t>(it->second->size());
}

NodeStore::Stats InMemoryNodeStore::stats() const {
  Stats out;
  out.puts = puts_.load(std::memory_order_relaxed);
  out.put_bytes = put_bytes_.load(std::memory_order_relaxed);
  out.dup_puts = dup_puts_.load(std::memory_order_relaxed);
  out.gets = gets_.load(std::memory_order_relaxed);
  out.get_bytes = get_bytes_.load(std::memory_order_relaxed);
  out.flushes = flushes_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    ReaderLock lock(shard.mu);
    out.unique_nodes += shard.unique_nodes;
    out.unique_bytes += shard.unique_bytes;
  }
  return out;
}

void InMemoryNodeStore::ResetOpCounters() {
  puts_.store(0, std::memory_order_relaxed);
  put_bytes_.store(0, std::memory_order_relaxed);
  dup_puts_.store(0, std::memory_order_relaxed);
  gets_.store(0, std::memory_order_relaxed);
  get_bytes_.store(0, std::memory_order_relaxed);
  flushes_.store(0, std::memory_order_relaxed);
}

uint64_t InMemoryNodeStore::BytesOf(const PageSet& pages) const {
  uint64_t total = 0;
  for (const Hash& h : pages) {
    const Shard& shard = ShardFor(h);
    ReaderLock lock(shard.mu);
    auto it = shard.nodes.find(h);
    if (it != shard.nodes.end()) total += it->second->size();
  }
  return total;
}

uint64_t InMemoryNodeStore::PruneExcept(const PageSet& retain) {
  uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    WriterLock lock(shard.mu);
    for (auto it = shard.nodes.begin(); it != shard.nodes.end();) {
      if (retain.count(it->first) == 0) {
        shard.unique_bytes -= it->second->size();
        --shard.unique_nodes;
        it = shard.nodes.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

std::shared_ptr<InMemoryNodeStore> NewInMemoryNodeStore(int num_shards) {
  return std::make_shared<InMemoryNodeStore>(num_shards);
}

void FaultyNodeStore::CorruptNode(const Hash& h) {
  WriterLock lock(mu_);
  corrupted_.insert(h);
}

void FaultyNodeStore::DropNode(const Hash& h) {
  WriterLock lock(mu_);
  dropped_.insert(h);
}

void FaultyNodeStore::ClearFaults() {
  WriterLock lock(mu_);
  corrupted_.clear();
  dropped_.clear();
}

Result<std::shared_ptr<const std::string>> FaultyNodeStore::Get(
    const Hash& h) {
  {
    ReaderLock lock(mu_);
    if (corrupted_.count(h) > 0) {
      return Status::Corruption("injected corruption for " + h.ToHex());
    }
    if (dropped_.count(h) > 0) {
      return Status::NotFound("injected drop for " + h.ToHex());
    }
  }
  return base_->Get(h);
}

bool FaultyNodeStore::Contains(const Hash& h) const {
  {
    ReaderLock lock(mu_);
    if (dropped_.count(h) > 0) return false;
  }
  return base_->Contains(h);
}

}  // namespace siri
