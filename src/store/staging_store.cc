// Copyright (c) 2026 The siri Authors. MIT license.

#include "store/staging_store.h"

#include "crypto/hash_pool.h"
#include "crypto/sha256.h"

namespace siri {

const NodeRecord* StagingNodeStore::FindStaged(const Hash& h) const {
  if (!staged_.empty()) {
    auto it = staged_.find(h);
    return it == staged_.end() ? nullptr : &batch_[it->second];
  }
  for (const NodeRecord& rec : batch_) {
    if (rec.hash == h) return &rec;
  }
  return nullptr;
}

void StagingNodeStore::IndexNewestStaged() {
  if (!staged_.empty()) {
    staged_.emplace(batch_.back().hash, batch_.size() - 1);
  } else if (batch_.size() > kLinearThreshold) {
    // Outgrew the linear regime: index everything staged so far.
    staged_.reserve(batch_.size() * 2);
    for (size_t i = 0; i < batch_.size(); ++i) {
      staged_.emplace(batch_[i].hash, i);
    }
  }
}

Hash StagingNodeStore::Put(Slice bytes) {
  const Hash h = Sha256::Digest(bytes);
  if (FindStaged(h) != nullptr) return h;  // content-addressed: staged once
  batch_.push_back(
      NodeRecord{h, std::make_shared<const std::string>(bytes.ToString())});
  IndexNewestStaged();
  return h;
}

std::vector<Hash> StagingNodeStore::PutPages(
    const std::vector<std::shared_ptr<const std::string>>& pages) {
  std::vector<Hash> digests = Sha256Pool::Shared().DigestAll(pages);
  for (size_t i = 0; i < pages.size(); ++i) {
    if (FindStaged(digests[i]) != nullptr) continue;
    batch_.push_back(NodeRecord{digests[i], pages[i]});
    IndexNewestStaged();
  }
  return digests;
}

void StagingNodeStore::PutMany(const NodeBatch& batch) {
  for (const NodeRecord& rec : batch) {
    if (FindStaged(rec.hash) != nullptr) continue;
    batch_.push_back(rec);
    IndexNewestStaged();  // keeps large relayed batches O(n), not O(n^2)
  }
}

Result<std::shared_ptr<const std::string>> StagingNodeStore::Get(
    const Hash& h) {
  if (const NodeRecord* rec = FindStaged(h)) return rec->bytes;
  return base_->Get(h);
}

bool StagingNodeStore::Contains(const Hash& h) const {
  return FindStaged(h) != nullptr || base_->Contains(h);
}

Result<uint64_t> StagingNodeStore::SizeOf(const Hash& h) const {
  if (const NodeRecord* rec = FindStaged(h)) {
    return static_cast<uint64_t>(rec->bytes->size());
  }
  return base_->SizeOf(h);
}

void StagingNodeStore::FlushBatch() {
  if (batch_.empty()) return;
  base_->PutMany(batch_);
  batch_.clear();
  staged_.clear();
}

}  // namespace siri
