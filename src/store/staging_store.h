// Copyright (c) 2026 The siri Authors. MIT license.
//
// StagingNodeStore — the write batch behind every index commit. One
// logical update dirties a whole root-to-leaf path of nodes; instead of
// pushing each node through the backing store's locked Put, the index
// mutation paths write into a staging store that digests and buffers the
// nodes locally, then flush the whole set with a single NodeStore::PutMany
// at the end of the batch (which is what makes a commit cost one lock
// acquisition per shard / one log append / one upload RPC).
//
// Reads fall through to the buffer first, so a mutation that re-reads
// nodes it just produced (MPT applying the next key of a batch to the
// staged root, POS re-chunking the level above) sees them before they are
// flushed. The roots an index returns are only handed to callers after
// FlushBatch(), so staged nodes are never visible outside the mutation.

#ifndef SIRI_STORE_STAGING_STORE_H_
#define SIRI_STORE_STAGING_STORE_H_

#include <memory>
#include <unordered_map>

#include "store/node_store.h"

namespace siri {

/// \brief Single-writer write-batch decorator over a NodeStore.
///
/// NOT thread-safe — one staging store belongs to one mutation call (each
/// concurrent PutBatch gets its own). The backing store keeps its own
/// thread-safety contract; FlushBatch hands it the batch in one call.
class StagingNodeStore : public NodeStore {
 public:
  explicit StagingNodeStore(NodeStore* base) : base_(base) {}

  /// Buffers destroy staged nodes that were never flushed — mutation paths
  /// that fail mid-way simply drop their staged writes.
  ~StagingNodeStore() override = default;

  /// Digests \p bytes and stages the node locally. The digest is computed
  /// exactly once, here; FlushBatch hands it to the base store so the
  /// batch path never re-hashes.
  [[nodiscard]] Hash Put(Slice bytes) override;

  /// Stages every node of \p batch (used when relaying an already-digested
  /// batch, e.g. version transfer through a staging boundary).
  void PutMany(const NodeBatch& batch) override;

  /// Bulk-stages \p pages, digesting the batch through the shared SHA-256
  /// worker pool when it is large (bit-identical to calling Put on each
  /// page in order — same digests, same stage order). Returns the digests
  /// in page order. This is the parallel-hashing entry for producers that
  /// hold many undigested pages at once (pack landing, bulk loads); the
  /// per-page Put stays serial because index write paths need each child
  /// digest before they can build the parent.
  std::vector<Hash> PutPages(
      const std::vector<std::shared_ptr<const std::string>>& pages);

  /// Staged node first, then the base store.
  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  bool Contains(const Hash& h) const override;
  Result<uint64_t> SizeOf(const Hash& h) const override;

  /// Base-store statistics: staged nodes are not counted until flushed, so
  /// put/dup accounting lands when the batch does.
  Stats stats() const override { return base_->stats(); }
  void ResetOpCounters() override { base_->ResetOpCounters(); }

  /// Flushes the staged batch, then the base store (durability point).
  Status Flush() override {
    FlushBatch();
    return base_->Flush();
  }

  Status DiskStatus() const override { return base_->DiskStatus(); }

  /// Hands the staged nodes to the base store in one PutMany call and
  /// clears the buffer. Idempotent; an empty batch is a no-op.
  void FlushBatch();

  size_t staged_count() const { return batch_.size(); }

  /// The staged nodes in insertion order. Valid until the next Put or
  /// FlushBatch; callers that need the batch past the flush (e.g. the
  /// publish-ack cache push, which ships the landed batch back to
  /// clients) must copy before flushing.
  const NodeBatch& staged_batch() const { return batch_; }

 private:
  // Below this many staged nodes, digest lookups linearly scan the batch —
  // a single-op commit stages only a handful of path nodes, and a scan of
  // those beats allocating a hash map on the per-op latency path. The map
  // is built lazily once a batch outgrows the threshold.
  static constexpr size_t kLinearThreshold = 16;

  const NodeRecord* FindStaged(const Hash& h) const;

  /// Records batch_.back() in the digest index, building the index lazily
  /// once the batch outgrows the linear-scan regime.
  void IndexNewestStaged();

  NodeStore* base_;
  NodeBatch batch_;  // insertion order — the order nodes were produced
  // Digest -> index into batch_; empty until batch_ crosses the threshold.
  std::unordered_map<Hash, size_t, HashHasher> staged_;
};

}  // namespace siri

#endif  // SIRI_STORE_STAGING_STORE_H_
