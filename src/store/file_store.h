// Copyright (c) 2026 The siri Authors. MIT license.
//
// FileNodeStore — a durable content-addressed store: an append-only log of
// pages on disk with an in-memory digest index. Restarting a process and
// reopening the log recovers every version ever committed (roots are just
// digests, so persisting the pages persists the versions). Every record
// stores the page's SHA-256 digest alongside the bytes; replay verifies
// each page against its stored digest, so corrupt records and truncated
// tails are detected and cut off, recovering the longest valid prefix.
// The log starts with a format header ("SIRILOG" v2); older digest-less
// logs are rejected with Corruption rather than mis-read.

#ifndef SIRI_STORE_FILE_STORE_H_
#define SIRI_STORE_FILE_STORE_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "store/node_store.h"

namespace siri {

/// \brief Append-only-log backed NodeStore.
class FileNodeStore : public NodeStore {
 public:
  /// Opens (or creates) the log at \p path, replaying existing pages.
  /// \param out receives the opened store.
  static Status Open(const std::string& path,
                     std::shared_ptr<FileNodeStore>* out);

  ~FileNodeStore() override;

  Hash Put(Slice bytes) override;

  /// Appends every new node of \p batch as ONE buffered log write (a
  /// commit's whole root-to-leaf path in a single append) instead of one
  /// write per node. Durability still happens at Flush(), so a batched
  /// commit costs exactly one fsync.
  void PutMany(const NodeBatch& batch) override;

  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override;
  bool Contains(const Hash& h) const override;
  Result<uint64_t> SizeOf(const Hash& h) const override;
  Stats stats() const override;
  void ResetOpCounters() override;

  /// Flushes buffered appends all the way to stable storage (fsync).
  /// Commit boundaries (Ledger, BranchManager) call this; pages are only
  /// crash-durable once it returns OK. When nothing was appended since the
  /// last flush the syscall is skipped entirely.
  Status Flush() override;

  /// Number of fsyncs actually issued (skipped clean flushes excluded).
  /// Lets tests and benches assert the ≤1-fsync-per-commit property.
  uint64_t fsync_count() const;

  /// Number of records (pages) dropped from the recovered log: the first
  /// torn or digest-mismatching record plus everything after it — replay
  /// truncates at the first bad record.
  uint64_t recovered_truncations() const { return truncations_; }

  const std::string& path() const { return path_; }

 private:
  FileNodeStore(std::string path, FILE* file);
  Status Replay();

  /// Serializes one `varint len | digest | bytes` record into \p out.
  static void AppendRecord(std::string* out, const Hash& h, Slice bytes);

  /// Atomically replaces the log with \p len bytes of \p data (written to
  /// a temp file, fsynced, renamed over the log) and reopens the append
  /// handle. Recovery uses this so a crash mid-rewrite can never destroy
  /// the valid prefix.
  Status RewriteLog(const char* data, size_t len);

  std::string path_;
  FILE* file_;
  mutable std::mutex mu_;
  std::unordered_map<Hash, std::shared_ptr<const std::string>, HashHasher>
      nodes_;
  Stats stats_;
  uint64_t truncations_ = 0;
  // True when bytes were appended since the last fsync; Flush() on a clean
  // store is a no-op so idle commit boundaries cost nothing.
  bool dirty_ = false;
  uint64_t fsyncs_ = 0;
};

}  // namespace siri

#endif  // SIRI_STORE_FILE_STORE_H_
