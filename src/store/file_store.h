// Copyright (c) 2026 The siri Authors. MIT license.
//
// FileNodeStore — a durable content-addressed store: an append-only log of
// pages on disk with an in-memory digest index. Restarting a process and
// reopening the log recovers every version ever committed (roots are just
// digests, so persisting the pages persists the versions). Every record
// stores the page's SHA-256 digest alongside the bytes; replay verifies
// each page against its stored digest (in parallel through the shared
// SHA-256 pool on big logs), so corrupt records and truncated tails are
// detected and cut off, recovering the longest valid prefix.
// The log starts with a format header ("SIRILOG" v2); older digest-less
// logs are rejected with Corruption rather than mis-read.
//
// All file I/O flows through an io::Env (io/env.h) — the seam that lets
// tests swap in io::FaultEnv to inject short writes, ENOSPC, fsync
// failures, and simulated power cuts.
//
// Failure semantics: the first failed append, fflush, or fsync latches a
// sticky error (DiskStatus()). After the latch nothing new becomes
// visible or durable — Put/PutMany stop appending and indexing, Flush
// fails fast — and a later fsync never retroactively claims durability
// for bytes that were dirty at the failure (the kernel marks those pages
// clean on fsync error, so a "successful" retry covers nothing: the
// fsyncgate bug class). A torn append (short write) therefore stays at
// the file tail where replay's truncation recovers the valid prefix; no
// record can land after a tear and bury it mid-file.
//
// Group fsync: Flush() coalesces. Appends carry a generation number and an
// fsync makes everything appended up to its covering generation durable,
// so a Flush whose data an in-flight or just-finished fsync already covers
// returns without issuing its own syscall. An optional wait-a-little
// window (set_group_flush_window_micros) makes the syncing thread pause
// briefly before the fsync so concurrent committers' appends arrive in
// time to share it — under K-writer contention, commits-per-fsync rises
// toward the batch size. fsync_count() stays exact (real syscalls only),
// which is what lets tests assert the coalescing actually happened.
//
// Locking contract (compiler-checked under SIRI_THREAD_SAFETY): one Mutex
// mu_ orders everything — the write handle, the digest index, the
// generation counters, and the dedup ring are all GUARDED_BY(mu_).
// Appends happen under mu_ *before* the page becomes visible in nodes_;
// the fsync syscall runs under mu_ too (appenders share the write
// handle), but concurrent flushers never queue behind it — they wait on
// sync_cv_ and discover their generation covered. The wait-a-little
// window is the one place the syncer drops mu_ (MutexLock::Unlock), which
// is exactly what lets straggler appends join the covered generation.

#ifndef SIRI_STORE_FILE_STORE_H_
#define SIRI_STORE_FILE_STORE_H_

#include <condition_variable>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "io/env.h"
#include "store/node_store.h"

namespace siri {

/// \brief Append-only-log backed NodeStore.
class FileNodeStore : public NodeStore {
 public:
  /// Digests remembered by the recently-flushed ring (cross-commit dedup).
  static constexpr size_t kRecentRingSize = 1024;

  /// Opens (or creates) the log at \p path, replaying existing pages.
  /// \param out receives the opened store.
  static Status Open(const std::string& path,
                     std::shared_ptr<FileNodeStore>* out);

  /// Same, with every byte of I/O routed through \p env (which must
  /// outlive the store).
  static Status Open(io::Env* env, const std::string& path,
                     std::shared_ptr<FileNodeStore>* out);

  ~FileNodeStore() override;

  [[nodiscard]] Hash Put(Slice bytes) override EXCLUDES(mu_);

  /// Appends every new node of \p batch as ONE buffered log write (a
  /// commit's whole root-to-leaf path in a single append) instead of one
  /// write per node. Durability still happens at Flush(), so a batched
  /// commit costs exactly one fsync. Duplicate pages another committer
  /// landed within the last kRecentRingSize appends are attributed by the
  /// recent-digest ring and counted in dedup_skips() — the cross-commit
  /// dedup signal under shared key prefixes. The batch becomes visible in
  /// the index only after its log append succeeded: a failed or short
  /// append latches the sticky error and indexes nothing.
  void PutMany(const NodeBatch& batch) override EXCLUDES(mu_);

  Result<std::shared_ptr<const std::string>> Get(const Hash& h) override
      EXCLUDES(mu_);
  bool Contains(const Hash& h) const override EXCLUDES(mu_);
  Result<uint64_t> SizeOf(const Hash& h) const override EXCLUDES(mu_);
  Stats stats() const override EXCLUDES(mu_);
  void ResetOpCounters() override EXCLUDES(mu_);

  /// Flushes buffered appends all the way to stable storage (fsync), with
  /// group-commit coalescing: if another thread's fsync already covers (or
  /// is about to cover) everything this caller appended, the call waits on
  /// that fsync instead of issuing its own. Pages are only crash-durable
  /// once it returns OK. When nothing was appended since the last flush
  /// the syscall is skipped entirely. Once the sticky error is latched,
  /// every Flush fails fast with it — including flushes whose appends all
  /// predate the failure, because the failed fsync may have discarded
  /// exactly those dirty bytes.
  Status Flush() override EXCLUDES(mu_);

  /// The sticky disk error: OK until the first failed append/fflush/fsync,
  /// that failure's typed Status afterwards (ResourceExhausted for
  /// out-of-space, IOError otherwise). Reads keep serving resident state;
  /// writes and flushes fail fast. Never resets — a store that has lied
  /// about durability once cannot un-lie (reopen to recover).
  Status DiskStatus() const override EXCLUDES(mu_);

  /// Wait-a-little group window: before issuing an fsync, the syncing
  /// thread sleeps up to \p micros so concurrent committers' appends land
  /// in time to be covered by the same syscall. 0 (the default) disables
  /// the wait; coalescing via generations still happens. Typical
  /// contended-server settings are 100-500µs.
  void set_group_flush_window_micros(uint64_t micros) EXCLUDES(mu_);
  uint64_t group_flush_window_micros() const EXCLUDES(mu_);

  /// Number of fsyncs actually issued (skipped clean flushes and coalesced
  /// flushes excluded). Lets tests and benches assert the ≤1-fsync-per-
  /// commit and >1-commit-per-fsync properties.
  uint64_t fsync_count() const EXCLUDES(mu_);

  /// Dirty Flush() calls that were made durable by another thread's fsync
  /// instead of their own syscall (the group-commit coalescing counter).
  uint64_t coalesced_flushes() const EXCLUDES(mu_);

  /// Offered duplicate pages whose digest sat in the recently-flushed
  /// ring — i.e. a concurrent committer landed the identical page within
  /// the last kRecentRingSize appends. A subset of stats().dup_puts:
  /// the ring attributes *recent* cross-commit dedup, which the
  /// all-time resident map cannot.
  uint64_t dedup_skips() const EXCLUDES(mu_);

  /// Number of records (pages) dropped from the recovered log: the first
  /// torn or digest-mismatching record plus everything after it — replay
  /// truncates at the first bad record.
  uint64_t recovered_truncations() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return truncations_;
  }

  /// Harness self-test hook: turns OFF the sticky-error latch, restoring
  /// the historical report-once-and-forget behavior (the fsyncgate bug).
  /// Exists so the crash-consistency harness can prove it catches that
  /// bug when deliberately reintroduced. Never use outside tests.
  void set_sticky_errors_for_testing(bool on) EXCLUDES(mu_);

  const std::string& path() const { return path_; }

 private:
  FileNodeStore(io::Env* env, std::string path,
                std::unique_ptr<io::WritableFile> file);
  Status Replay() EXCLUDES(mu_);

  /// Serializes one `varint len | digest | bytes` record into \p out.
  static void AppendRecord(std::string* out, const Hash& h, Slice bytes);

  /// Remembers \p h in the recent-digest ring.
  void RememberRecentLocked(const Hash& h) REQUIRES(mu_);

  /// Latches \p s as the sticky disk error (first failure wins) and wakes
  /// flushers so they observe it instead of waiting forever.
  void LatchLocked(const Status& s) REQUIRES(mu_);

  /// Issues the fsync covering everything appended so far. The caller has
  /// claimed sync_in_progress_; \p lock holds mu_ (appenders share the
  /// write handle, so the syscalls run locked — concurrent flushers wait
  /// on sync_cv_ instead of queuing on the mutex).
  Status SyncLocked(MutexLock& lock) REQUIRES(mu_);

  /// Atomically replaces the log with \p len bytes of \p data (written to
  /// a temp file, fsynced, renamed over the log, parent directory
  /// fsynced) and reopens the append handle. Recovery uses this so a
  /// crash mid-rewrite can never destroy the valid prefix.
  Status RewriteLog(const char* data, size_t len) REQUIRES(mu_);

  io::Env* const env_;
  std::string path_;
  mutable Mutex mu_;
  std::unique_ptr<io::WritableFile> file_ GUARDED_BY(mu_);
  Status io_error_ GUARDED_BY(mu_);
  bool latch_errors_ GUARDED_BY(mu_) = true;
  std::unordered_map<Hash, std::shared_ptr<const std::string>, HashHasher>
      nodes_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
  uint64_t truncations_ GUARDED_BY(mu_) = 0;

  // Group-commit state. An append bumps append_gen_; a successful fsync
  // records the generation it covered in synced_gen_. dirty ≡ append_gen_
  // > synced_gen_. One thread at a time owns the actual syscall
  // (sync_in_progress_); others wait on sync_cv_ and re-check whether the
  // finished fsync covered their appends.
  uint64_t append_gen_ GUARDED_BY(mu_) = 0;
  uint64_t synced_gen_ GUARDED_BY(mu_) = 0;
  bool sync_in_progress_ GUARDED_BY(mu_) = false;
  std::condition_variable sync_cv_;
  uint64_t group_window_micros_ GUARDED_BY(mu_) = 0;
  uint64_t fsyncs_ GUARDED_BY(mu_) = 0;
  // fsyncs_ at the last ResetOpCounters: stats().flushes reports the
  // difference so the Stats view is reset-relative like every other op
  // counter, while fsync_count() stays cumulative.
  uint64_t fsyncs_at_reset_ GUARDED_BY(mu_) = 0;
  uint64_t coalesced_flushes_ GUARDED_BY(mu_) = 0;

  // Recently-flushed digest ring: the last kRecentRingSize appended
  // digests, membership-indexed. Consulted on the dup path only, so
  // cross-commit duplicates are observable as dedup_skips without any
  // cost to fresh appends.
  std::vector<Hash> recent_ring_ GUARDED_BY(mu_);
  size_t recent_next_ GUARDED_BY(mu_) = 0;
  std::unordered_set<Hash, HashHasher> recent_set_ GUARDED_BY(mu_);
  uint64_t dedup_skips_ GUARDED_BY(mu_) = 0;
};

}  // namespace siri

#endif  // SIRI_STORE_FILE_STORE_H_
