// Copyright (c) 2026 The siri Authors. MIT license.
//
// FaultEnv — deterministic disk-fault injection behind the io::Env seam,
// the storage twin of net::FaultInjector. Every *mutating* file-system
// operation (Append / Flush / Sync / Rename / SyncDir / DeleteFile /
// NewWritableFile) consumes one op index; a fault can be scripted at an
// exact index (ScriptAt) or drawn from a seeded distribution per op, so
// every failure site in the store's write path is reachable
// deterministically. Reads never consume indices — crash points stay
// stable across verification re-reads.
//
// Two modes:
//
//   - kPassthrough: wraps a real Env (e.g. Env::Default()); injected
//     faults short-circuit or sabotage individual calls while clean ops
//     forward to the base. The fig06 ENOSPC smoke and the server
//     degradation tests run this way over a real file (or over a
//     buffered FaultEnv — FaultEnv wraps any Env).
//
//   - kBuffered: a full in-memory file system with a durability model.
//     Each file (inode) tracks the prefix covered by a completed Sync;
//     renames apply immediately but stay *pending* until a SyncDir
//     commits them. Reboot(spec) simulates a power cut: pending renames
//     roll back, and each file's unsynced suffix is dropped (kDrop) or
//     cut at a seeded random byte (kKeepPrefix — the torn-tail
//     generator). What survives is exactly what a real disk guarantees:
//     synced bytes behind committed directory entries, nothing more.
//
// Faithful-failure details the harness leans on:
//   - a failed Sync DROPS the unsynced bytes (kernels mark dirty pages
//     clean on fsync error — the fsyncgate class), so a store that
//     forgets the failure and lets a later fsync "succeed" visibly loses
//     acked data;
//   - set_drop_dir_syncs(true) makes SyncDir succeed without committing
//     pending renames — the deliberately reintroduced missing-dir-fsync
//     bug the crash harness must catch;
//   - file creation becomes durable at the file's first completed Sync
//     (journaling-fs approximation); a created-but-never-synced file
//     vanishes at the cut.

#ifndef SIRI_IO_FAULT_ENV_H_
#define SIRI_IO_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "io/env.h"

namespace siri {
namespace io {

enum class IoFaultKind : uint8_t {
  kNone = 0,
  /// Append writes only a prefix of the data (a torn record at the file
  /// tail), then fails with IOError.
  kShortWrite,
  /// The op fails with IOError; an Append writes nothing.
  kEIO,
  /// The op fails with ResourceExhausted (out of space); nothing written.
  kENoSpc,
  /// Sync fails with IOError. In buffered mode the unsynced suffix is
  /// dropped immediately (dirty pages marked clean then lost) — see
  /// set_sync_failure_drops_unsynced.
  kSyncFail,
  /// Power cut: this op and every later mutating op fail until Reboot().
  kPowerCut,
};

const char* IoFaultKindName(IoFaultKind k);

struct IoFaultAction {
  IoFaultKind kind = IoFaultKind::kNone;
  /// kShortWrite only: bytes of the append actually written before the
  /// failure. UINT64_MAX (default) tears at half the data.
  uint64_t short_bytes = UINT64_MAX;
};

/// Random-mode configuration: each non-scripted mutating op draws one
/// fault with probability `fault_rate`, choosing among the kinds enabled
/// here that apply to the op (short writes only tear Appends, sync
/// failures only hit Syncs). Scripted entries win at their index.
struct IoFaultRandomConfig {
  double fault_rate = 0.0;
  bool short_writes = true;
  bool eio = true;
  bool enospc = true;
  bool sync_failures = true;
};

/// How a power cut treats bytes not covered by a completed Sync.
struct CrashSpec {
  enum class UnsyncedFate : uint8_t {
    kDrop,        ///< cut exactly at the synced prefix
    kKeepPrefix,  ///< keep a seeded-random prefix of the unsynced suffix
  };
  UnsyncedFate fate = UnsyncedFate::kDrop;
  uint64_t seed = 1;  ///< kKeepPrefix: per-file keep-length draw
  /// Explicit per-path override: exactly this many unsynced bytes
  /// survive (clamped). Lets a test pin torn tails in BOTH logs at once.
  std::map<std::string, uint64_t> keep_unsynced;
};

class FaultEnv : public Env {
 public:
  enum class Mode : uint8_t { kPassthrough, kBuffered };

  explicit FaultEnv(Env* base = Env::Default(),
                    Mode mode = Mode::kPassthrough, uint64_t seed = 1,
                    IoFaultRandomConfig config = IoFaultRandomConfig());

  // --- fault scripting ----------------------------------------------------

  /// Pins \p action at mutating-op \p index (0-based, lifetime-counted).
  void ScriptAt(uint64_t index, IoFaultAction action) EXCLUDES(mu_);
  /// Pins \p action at the next op index not yet consumed.
  void ScriptNext(IoFaultAction action) EXCLUDES(mu_);

  /// Every mutating op with index >= \p index fails as a power cut
  /// (buffered mode; cleared by Reboot). The crash-sweep knob.
  void set_crash_at_op(uint64_t index) EXCLUDES(mu_);

  /// Every Append/Flush/Sync op with index >= \p index fails with
  /// ResourceExhausted — a disk that filled up and stays full. Works in
  /// both modes (the ENOSPC degradation knob).
  void set_enospc_after_op(uint64_t index) EXCLUDES(mu_);

  // --- power-cut machinery (kBuffered only) -------------------------------

  /// Applies the durability cut of \p spec — rolls back uncommitted
  /// renames, truncates every file to its surviving bytes, marks the
  /// survivors durable — and brings the file system back up (clears the
  /// crash point). The next open sees exactly what a real disk would
  /// show after power loss.
  void Reboot(const CrashSpec& spec = CrashSpec()) EXCLUDES(mu_);

  // --- bug-reintroduction hooks (harness self-tests) ----------------------

  /// SyncDir reports OK without committing pending renames: the
  /// missing-parent-dir-fsync bug, as a switch. The crash harness must
  /// fail when this is on.
  void set_drop_dir_syncs(bool on) EXCLUDES(mu_);

  /// Whether an injected Sync failure drops the unsynced bytes (default
  /// true, the kernel-faithful model). Buffered mode only.
  void set_sync_failure_drops_unsynced(bool on) EXCLUDES(mu_);

  // --- observability ------------------------------------------------------

  struct Stats {
    uint64_t ops = 0;       ///< mutating ops observed
    uint64_t injected = 0;  ///< ops sabotaged (any kind)
    uint64_t short_writes = 0;
    uint64_t eio = 0;
    uint64_t enospc = 0;
    uint64_t sync_failures = 0;
    uint64_t power_cut_failures = 0;
  };
  Stats stats() const EXCLUDES(mu_);
  uint64_t op_count() const EXCLUDES(mu_);

  /// Bytes of \p path covered by a completed Sync (buffered mode).
  Result<uint64_t> DurableSize(const std::string& path) EXCLUDES(mu_);

  // --- Env ----------------------------------------------------------------

  [[nodiscard]] Status NewWritableFile(
      const std::string& path, bool truncate,
      std::unique_ptr<WritableFile>* out) override EXCLUDES(mu_);
  [[nodiscard]] Status NewSequentialFile(
      const std::string& path,
      std::unique_ptr<SequentialFile>* out) override EXCLUDES(mu_);
  bool FileExists(const std::string& path) override EXCLUDES(mu_);
  [[nodiscard]] Result<uint64_t> FileSize(const std::string& path) override
      EXCLUDES(mu_);
  [[nodiscard]] Status DeleteFile(const std::string& path) override
      EXCLUDES(mu_);
  [[nodiscard]] Status Rename(const std::string& from,
                              const std::string& to) override EXCLUDES(mu_);
  [[nodiscard]] Status SyncDir(const std::string& path) override EXCLUDES(mu_);

 private:
  friend class FaultWritableFile;

  /// One in-memory file. `durable` is the prefix a completed Sync
  /// covers; `created_durable` says the directory entry itself survives
  /// a crash (set by the first completed Sync).
  struct MemInode {
    std::string data;
    uint64_t durable = 0;
    bool created_durable = false;
  };
  using InodePtr = std::shared_ptr<MemInode>;

  /// A rename applied to the directory but not yet committed by SyncDir.
  /// Rolled back (in reverse order) at a power cut.
  struct PendingRename {
    std::string from;
    std::string to;
    InodePtr moved;       ///< inode now at `to`
    InodePtr displaced;   ///< inode previously at `to` (null if none)
    bool existed = false; ///< whether `to` had an entry before
  };

  /// Draws the action for the current mutating op and consumes one
  /// index. \p is_append / \p is_sync restrict which random kinds apply.
  IoFaultAction NextActionLocked(bool is_append, bool is_sync,
                                 bool is_flush) REQUIRES(mu_);
  Status PowerCutError();

  // Buffered-mode backends called by FaultWritableFile.
  Status BufferedAppend(const InodePtr& inode, const std::string& path,
                        Slice data) EXCLUDES(mu_);
  Status BufferedFlush(const std::string& path) EXCLUDES(mu_);
  Status BufferedSync(const InodePtr& inode, const std::string& path)
      EXCLUDES(mu_);
  // Passthrough-mode backends (consult the injector, then forward).
  Status ForwardAppend(WritableFile* base, const std::string& path,
                       Slice data) EXCLUDES(mu_);
  Status ForwardFlush(WritableFile* base, const std::string& path)
      EXCLUDES(mu_);
  Status ForwardSync(WritableFile* base, const std::string& path)
      EXCLUDES(mu_);

  Env* const base_;
  const Mode mode_;

  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  IoFaultRandomConfig config_ GUARDED_BY(mu_);
  uint64_t next_index_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, IoFaultAction> script_ GUARDED_BY(mu_);
  uint64_t crash_at_ GUARDED_BY(mu_) = UINT64_MAX;
  uint64_t enospc_after_ GUARDED_BY(mu_) = UINT64_MAX;
  bool drop_dir_syncs_ GUARDED_BY(mu_) = false;
  bool sync_failure_drops_unsynced_ GUARDED_BY(mu_) = true;
  Stats stats_ GUARDED_BY(mu_);

  // Buffered-mode file system.
  std::map<std::string, InodePtr> files_ GUARDED_BY(mu_);
  std::vector<PendingRename> pending_ GUARDED_BY(mu_);
};

}  // namespace io
}  // namespace siri

#endif  // SIRI_IO_FAULT_ENV_H_
