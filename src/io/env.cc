// Copyright (c) 2026 The siri Authors. MIT license.

#include "io/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace siri {
namespace io {

namespace {

// errno -> typed Status. ENOSPC keeps its identity so the sticky cause a
// store latches (and the server's degraded-mode reply) says "out of
// space", not just "I/O error".
Status PosixError(const std::string& context, int err) {
  const std::string msg = context + ": " + strerror(err);
  if (err == ENOSPC || err == EDQUOT) return Status::ResourceExhausted(msg);
  return Status::IOError(msg);
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(std::string path, FILE* file)
      : path_(std::move(path)), file_(file) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) {
      // Best-effort flush on close, matching the stdio-backed stores'
      // historical destructor behavior (survives process death; callers
      // needing stronger guarantees Sync() before destroying).
      std::fflush(file_);
      std::fclose(file_);
    }
  }

  [[nodiscard]] Status Append(Slice data) override {
    const size_t wrote = std::fwrite(data.data(), 1, data.size(), file_);
    if (wrote != data.size()) {
      return PosixError("short append to " + path_, errno);
    }
    return Status::OK();
  }

  [[nodiscard]] Status Flush() override {
    if (std::fflush(file_) != 0) {
      return PosixError("fflush " + path_, errno);
    }
    return Status::OK();
  }

  [[nodiscard]] Status Sync() override {
    if (std::fflush(file_) != 0) {
      return PosixError("fflush " + path_, errno);
    }
    if (fsync(fileno(file_)) != 0) {
      return PosixError("fsync " + path_, errno);
    }
    return Status::OK();
  }

 private:
  std::string path_;
  FILE* file_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  explicit PosixSequentialFile(std::string path, FILE* file)
      : path_(std::move(path)), file_(file) {}

  ~PosixSequentialFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  [[nodiscard]] Result<uint64_t> Read(uint64_t n,
                                      std::string* scratch) override {
    const size_t before = scratch->size();
    scratch->resize(before + static_cast<size_t>(n));
    const size_t got =
        std::fread(scratch->data() + before, 1, static_cast<size_t>(n), file_);
    scratch->resize(before + got);
    if (got < n && std::ferror(file_)) {
      return PosixError("read " + path_, errno);
    }
    return static_cast<uint64_t>(got);
  }

 private:
  std::string path_;
  FILE* file_;
};

class PosixEnv : public Env {
 public:
  [[nodiscard]] Status NewWritableFile(
      const std::string& path, bool truncate,
      std::unique_ptr<WritableFile>* out) override {
    FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) return PosixError("cannot open " + path, errno);
    *out = std::make_unique<PosixWritableFile>(path, f);
    return Status::OK();
  }

  [[nodiscard]] Status NewSequentialFile(
      const std::string& path, std::unique_ptr<SequentialFile>* out) override {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return PosixError("cannot open " + path, errno);
    *out = std::make_unique<PosixSequentialFile>(path, f);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  [[nodiscard]] Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return PosixError("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  [[nodiscard]] Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return PosixError("unlink " + path, errno);
    }
    return Status::OK();
  }

  [[nodiscard]] Status Rename(const std::string& from,
                              const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  [[nodiscard]] Status SyncDir(const std::string& path) override {
    const std::string dir = ParentDir(path);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open dir " + dir, errno);
    Status s;
    if (fsync(fd) != 0) s = PosixError("fsync dir " + dir, errno);
    ::close(fd);
    return s;
  }
};

}  // namespace

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = NewSequentialFile(path, &file);
  if (!s.ok()) return s;
  for (;;) {
    auto got = file->Read(64 * 1024, out);
    if (!got.ok()) return got.status();
    if (*got == 0) return Status::OK();
  }
}

Status Env::RenameAndSyncDir(const std::string& from, const std::string& to) {
  Status s = Rename(from, to);
  if (!s.ok()) return s;
  return SyncDir(to);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // leaked: outlives every store
  return env;
}

}  // namespace io
}  // namespace siri
