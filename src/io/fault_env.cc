// Copyright (c) 2026 The siri Authors. MIT license.

#include "io/fault_env.h"

#include <algorithm>

namespace siri {
namespace io {

const char* IoFaultKindName(IoFaultKind k) {
  switch (k) {
    case IoFaultKind::kNone:
      return "none";
    case IoFaultKind::kShortWrite:
      return "short-write";
    case IoFaultKind::kEIO:
      return "eio";
    case IoFaultKind::kENoSpc:
      return "enospc";
    case IoFaultKind::kSyncFail:
      return "sync-fail";
    case IoFaultKind::kPowerCut:
      return "power-cut";
  }
  return "unknown";
}

namespace {

Status InjectedError(IoFaultKind kind, const std::string& path) {
  const std::string what =
      std::string("injected ") + IoFaultKindName(kind) + ": " + path;
  if (kind == IoFaultKind::kENoSpc) return Status::ResourceExhausted(what);
  return Status::IOError(what);
}

}  // namespace

/// Write handle for both modes: `inode` set in buffered mode, `base` set
/// in passthrough mode. All policy lives in the env (which outlives its
/// handles the way a file system outlives file descriptors).
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultEnv* env, std::string path,
                    std::shared_ptr<FaultEnv::MemInode> inode,
                    std::unique_ptr<WritableFile> base)
      : env_(env),
        path_(std::move(path)),
        inode_(std::move(inode)),
        base_(std::move(base)) {}

  [[nodiscard]] Status Append(Slice data) override {
    if (inode_ != nullptr) return env_->BufferedAppend(inode_, path_, data);
    return env_->ForwardAppend(base_.get(), path_, data);
  }

  [[nodiscard]] Status Flush() override {
    if (inode_ != nullptr) return env_->BufferedFlush(path_);
    return env_->ForwardFlush(base_.get(), path_);
  }

  [[nodiscard]] Status Sync() override {
    if (inode_ != nullptr) return env_->BufferedSync(inode_, path_);
    return env_->ForwardSync(base_.get(), path_);
  }

 private:
  FaultEnv* const env_;
  const std::string path_;
  std::shared_ptr<FaultEnv::MemInode> inode_;
  std::unique_ptr<WritableFile> base_;
};

namespace {

/// Reads from a snapshot taken at open — matching POSIX, where a reader
/// opened before later appends still sees a consistent byte stream.
class MemSequentialFile : public SequentialFile {
 public:
  explicit MemSequentialFile(std::string data) : data_(std::move(data)) {}

  [[nodiscard]] Result<uint64_t> Read(uint64_t n,
                                      std::string* scratch) override {
    const uint64_t got = std::min<uint64_t>(n, data_.size() - pos_);
    scratch->append(data_.data() + pos_, static_cast<size_t>(got));
    pos_ += static_cast<size_t>(got);
    return got;
  }

 private:
  std::string data_;
  size_t pos_ = 0;
};

}  // namespace

FaultEnv::FaultEnv(Env* base, Mode mode, uint64_t seed,
                   IoFaultRandomConfig config)
    : base_(base), mode_(mode), rng_(seed), config_(config) {}

void FaultEnv::ScriptAt(uint64_t index, IoFaultAction action) {
  MutexLock lock(mu_);
  script_[index] = action;
}

void FaultEnv::ScriptNext(IoFaultAction action) {
  MutexLock lock(mu_);
  script_[next_index_] = action;
}

void FaultEnv::set_crash_at_op(uint64_t index) {
  MutexLock lock(mu_);
  crash_at_ = index;
}

void FaultEnv::set_enospc_after_op(uint64_t index) {
  MutexLock lock(mu_);
  enospc_after_ = index;
}

void FaultEnv::set_drop_dir_syncs(bool on) {
  MutexLock lock(mu_);
  drop_dir_syncs_ = on;
}

void FaultEnv::set_sync_failure_drops_unsynced(bool on) {
  MutexLock lock(mu_);
  sync_failure_drops_unsynced_ = on;
}

FaultEnv::Stats FaultEnv::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

uint64_t FaultEnv::op_count() const {
  MutexLock lock(mu_);
  return next_index_;
}

Result<uint64_t> FaultEnv::DurableSize(const std::string& path) {
  MutexLock lock(mu_);
  SIRI_CHECK(mode_ == Mode::kBuffered && "DurableSize is buffered-mode only");
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file " + path);
  return it->second->durable;
}

Status FaultEnv::PowerCutError() {
  return Status::IOError("simulated power cut");
}

IoFaultAction FaultEnv::NextActionLocked(bool is_append, bool is_sync,
                                         bool is_flush) {
  const uint64_t idx = next_index_++;
  ++stats_.ops;
  if (idx >= crash_at_) {
    ++stats_.power_cut_failures;
    return IoFaultAction{IoFaultKind::kPowerCut, 0};
  }
  if ((is_append || is_sync || is_flush) && idx >= enospc_after_) {
    ++stats_.injected;
    ++stats_.enospc;
    return IoFaultAction{IoFaultKind::kENoSpc, 0};
  }

  IoFaultAction action;
  auto it = script_.find(idx);
  if (it != script_.end()) {
    action = it->second;
  } else if (config_.fault_rate > 0.0 && rng_.Bernoulli(config_.fault_rate)) {
    // Draw among the enabled kinds that apply to this op.
    IoFaultKind candidates[4];
    int n = 0;
    if (is_append && config_.short_writes)
      candidates[n++] = IoFaultKind::kShortWrite;
    if (is_sync && config_.sync_failures)
      candidates[n++] = IoFaultKind::kSyncFail;
    if (config_.eio) candidates[n++] = IoFaultKind::kEIO;
    if (config_.enospc) candidates[n++] = IoFaultKind::kENoSpc;
    if (n > 0) action.kind = candidates[rng_.Uniform(static_cast<uint64_t>(n))];
  }

  switch (action.kind) {
    case IoFaultKind::kShortWrite:
      ++stats_.injected;
      ++stats_.short_writes;
      break;
    case IoFaultKind::kEIO:
      ++stats_.injected;
      ++stats_.eio;
      break;
    case IoFaultKind::kENoSpc:
      ++stats_.injected;
      ++stats_.enospc;
      break;
    case IoFaultKind::kSyncFail:
      ++stats_.injected;
      ++stats_.sync_failures;
      break;
    default:
      break;
  }
  return action;
}

// --- buffered-mode write path ---------------------------------------------

Status FaultEnv::BufferedAppend(const InodePtr& inode, const std::string& path,
                                Slice data) {
  MutexLock lock(mu_);
  const IoFaultAction a = NextActionLocked(true, false, false);
  switch (a.kind) {
    case IoFaultKind::kPowerCut:
      return PowerCutError();
    case IoFaultKind::kShortWrite: {
      const uint64_t torn = a.short_bytes == UINT64_MAX
                                ? data.size() / 2
                                : std::min<uint64_t>(a.short_bytes,
                                                     data.size());
      inode->data.append(data.data(), static_cast<size_t>(torn));
      return InjectedError(a.kind, path);
    }
    case IoFaultKind::kEIO:
    case IoFaultKind::kENoSpc:
      return InjectedError(a.kind, path);
    default:
      break;
  }
  inode->data.append(data.data(), data.size());
  return Status::OK();
}

Status FaultEnv::BufferedFlush(const std::string& path) {
  MutexLock lock(mu_);
  const IoFaultAction a = NextActionLocked(false, false, true);
  if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
  if (a.kind != IoFaultKind::kNone) return InjectedError(a.kind, path);
  // No app-buffer layer in the model: appends already sit in the "OS
  // cache" (the inode), so a clean Flush has nothing to move.
  return Status::OK();
}

Status FaultEnv::BufferedSync(const InodePtr& inode, const std::string& path) {
  MutexLock lock(mu_);
  const IoFaultAction a = NextActionLocked(false, true, false);
  if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
  if (a.kind != IoFaultKind::kNone) {
    if (a.kind == IoFaultKind::kSyncFail && sync_failure_drops_unsynced_) {
      // The kernel-faithful part of fsyncgate: the error ALSO invalidates
      // the dirty pages, so the unsynced suffix is simply gone. A store
      // that shrugs and lets the next fsync "succeed" loses acked data —
      // which is exactly what the crash harness detects.
      inode->data.resize(static_cast<size_t>(inode->durable));
    }
    return InjectedError(a.kind, path);
  }
  inode->durable = inode->data.size();
  inode->created_durable = true;
  return Status::OK();
}

// --- passthrough-mode write path ------------------------------------------

Status FaultEnv::ForwardAppend(WritableFile* base, const std::string& path,
                               Slice data) {
  IoFaultAction a;
  {
    MutexLock lock(mu_);
    a = NextActionLocked(true, false, false);
  }
  switch (a.kind) {
    case IoFaultKind::kPowerCut:
      return PowerCutError();
    case IoFaultKind::kShortWrite: {
      const uint64_t torn = a.short_bytes == UINT64_MAX
                                ? data.size() / 2
                                : std::min<uint64_t>(a.short_bytes,
                                                     data.size());
      (void)base->Append(Slice(data.data(), static_cast<size_t>(torn)));
      return InjectedError(a.kind, path);
    }
    case IoFaultKind::kEIO:
    case IoFaultKind::kENoSpc:
      return InjectedError(a.kind, path);
    default:
      return base->Append(data);
  }
}

Status FaultEnv::ForwardFlush(WritableFile* base, const std::string& path) {
  IoFaultAction a;
  {
    MutexLock lock(mu_);
    a = NextActionLocked(false, false, true);
  }
  if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
  if (a.kind != IoFaultKind::kNone) return InjectedError(a.kind, path);
  return base->Flush();
}

Status FaultEnv::ForwardSync(WritableFile* base, const std::string& path) {
  IoFaultAction a;
  {
    MutexLock lock(mu_);
    a = NextActionLocked(false, true, false);
  }
  if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
  if (a.kind != IoFaultKind::kNone) return InjectedError(a.kind, path);
  return base->Sync();
}

// --- Env surface ----------------------------------------------------------

Status FaultEnv::NewWritableFile(const std::string& path, bool truncate,
                                 std::unique_ptr<WritableFile>* out) {
  if (mode_ == Mode::kPassthrough) {
    {
      MutexLock lock(mu_);
      const IoFaultAction a = NextActionLocked(false, false, false);
      if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
      if (a.kind != IoFaultKind::kNone) return InjectedError(a.kind, path);
    }
    std::unique_ptr<WritableFile> base_file;
    Status s = base_->NewWritableFile(path, truncate, &base_file);
    if (!s.ok()) return s;
    *out = std::make_unique<FaultWritableFile>(this, path, nullptr,
                                               std::move(base_file));
    return Status::OK();
  }

  MutexLock lock(mu_);
  const IoFaultAction a = NextActionLocked(false, false, false);
  if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
  if (a.kind != IoFaultKind::kNone) return InjectedError(a.kind, path);
  InodePtr inode;
  auto it = files_.find(path);
  if (it == files_.end() || truncate) {
    inode = std::make_shared<MemInode>();
    // Truncating an existing file keeps the directory entry's
    // durability; the fresh content is unsynced until the next Sync.
    if (it != files_.end()) inode->created_durable = it->second->created_durable;
    files_[path] = inode;
  } else {
    inode = it->second;
  }
  *out = std::make_unique<FaultWritableFile>(this, path, inode, nullptr);
  return Status::OK();
}

Status FaultEnv::NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* out) {
  if (mode_ == Mode::kPassthrough) return base_->NewSequentialFile(path, out);
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::IOError("cannot open " + path);
  *out = std::make_unique<MemSequentialFile>(it->second->data);
  return Status::OK();
}

bool FaultEnv::FileExists(const std::string& path) {
  if (mode_ == Mode::kPassthrough) return base_->FileExists(path);
  MutexLock lock(mu_);
  return files_.count(path) > 0;
}

Result<uint64_t> FaultEnv::FileSize(const std::string& path) {
  if (mode_ == Mode::kPassthrough) return base_->FileSize(path);
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::IOError("stat " + path);
  return static_cast<uint64_t>(it->second->data.size());
}

Status FaultEnv::DeleteFile(const std::string& path) {
  {
    MutexLock lock(mu_);
    const IoFaultAction a = NextActionLocked(false, false, false);
    if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
    if (a.kind != IoFaultKind::kNone) return InjectedError(a.kind, path);
    if (mode_ == Mode::kBuffered) {
      // Deletes apply immediately and are not rolled back at a crash —
      // nothing in recovery relies on un-deleting (stale temp files are
      // truncated on their next use).
      if (files_.erase(path) == 0) {
        return Status::IOError("unlink " + path);
      }
      return Status::OK();
    }
  }
  return base_->DeleteFile(path);
}

Status FaultEnv::Rename(const std::string& from, const std::string& to) {
  {
    MutexLock lock(mu_);
    const IoFaultAction a = NextActionLocked(false, false, false);
    if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
    if (a.kind != IoFaultKind::kNone) {
      return InjectedError(a.kind, from + " -> " + to);
    }
    if (mode_ == Mode::kBuffered) {
      auto it = files_.find(from);
      if (it == files_.end()) {
        return Status::IOError("rename: no such file " + from);
      }
      PendingRename p;
      p.from = from;
      p.to = to;
      p.moved = it->second;
      auto jt = files_.find(to);
      if (jt != files_.end()) {
        p.displaced = jt->second;
        p.existed = true;
      }
      files_[to] = p.moved;
      files_.erase(from);
      // Applied to the live directory, durable only once SyncDir
      // commits it — a crash before that rolls the entry back.
      pending_.push_back(std::move(p));
      return Status::OK();
    }
  }
  return base_->Rename(from, to);
}

Status FaultEnv::SyncDir(const std::string& path) {
  {
    MutexLock lock(mu_);
    const IoFaultAction a = NextActionLocked(false, false, false);
    if (a.kind == IoFaultKind::kPowerCut) return PowerCutError();
    if (a.kind != IoFaultKind::kNone) return InjectedError(a.kind, path);
    if (drop_dir_syncs_) return Status::OK();  // the reintroduced bug
    if (mode_ == Mode::kBuffered) {
      for (PendingRename& p : pending_) {
        p.moved->created_durable = true;
      }
      pending_.clear();
      return Status::OK();
    }
  }
  return base_->SyncDir(path);
}

void FaultEnv::Reboot(const CrashSpec& spec) {
  MutexLock lock(mu_);
  SIRI_CHECK(mode_ == Mode::kBuffered && "Reboot is buffered-mode only");
  // Uncommitted directory updates roll back first (newest first, so
  // chained renames unwind correctly): the directory again points at the
  // inode it held before the rename — every Sync issued against the
  // moved inode covered bytes the directory no longer reaches.
  for (auto r = pending_.rbegin(); r != pending_.rend(); ++r) {
    files_[r->from] = r->moved;
    if (r->existed) {
      files_[r->to] = r->displaced;
    } else {
      files_.erase(r->to);
    }
  }
  pending_.clear();

  Rng cut_rng(spec.seed);
  for (auto it = files_.begin(); it != files_.end();) {
    MemInode& ino = *it->second;
    if (!ino.created_durable) {
      // Created but never synced: the directory entry itself was never
      // durable, so the file vanishes.
      it = files_.erase(it);
      continue;
    }
    const uint64_t unsynced = ino.data.size() - ino.durable;
    uint64_t keep_extra = 0;
    auto ov = spec.keep_unsynced.find(it->first);
    if (ov != spec.keep_unsynced.end()) {
      keep_extra = std::min(ov->second, unsynced);
    } else if (spec.fate == CrashSpec::UnsyncedFate::kKeepPrefix) {
      keep_extra = cut_rng.Uniform(unsynced + 1);
    }
    ino.data.resize(static_cast<size_t>(ino.durable + keep_extra));
    // What survived IS the stable-storage content now.
    ino.durable = ino.data.size();
    ++it;
  }
  crash_at_ = UINT64_MAX;
}

}  // namespace io
}  // namespace siri
