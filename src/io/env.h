// Copyright (c) 2026 The siri Authors. MIT license.
//
// Env — the file-system seam every byte the system persists flows
// through. FileNodeStore and RefLog (and their recovery rewrite paths)
// take an Env instead of calling fopen/fwrite/fsync directly, so one
// interface carries the whole durability story: appends buffer, Flush()
// pushes the application buffer to the OS, Sync() pushes the OS cache to
// stable storage, and RenameAndSyncDir() makes an atomic replace durable
// (a rename is only crash-safe once the parent directory's entry update
// is itself fsynced — forgetting that is a classic torn-recovery bug).
//
// Env::Default() returns the process-wide PosixEnv. Tests wrap any Env in
// io::FaultEnv (fault_env.h) to inject short writes, EIO, ENOSPC, fsync
// failures, and simulated power cuts without touching a real disk.
//
// Error typing: PosixEnv maps ENOSPC/EDQUOT to Status::ResourceExhausted
// and every other failure to Status::IOError, so out-of-space keeps its
// identity all the way up to the server's degraded-mode reply.

#ifndef SIRI_IO_ENV_H_
#define SIRI_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace siri {
namespace io {

/// \brief Sequential append handle to one file.
///
/// Durability tiers mirror the stdio+fsync reality the stores were built
/// on: Append lands in an application buffer (lost on process death),
/// Flush pushes it to the OS (survives process death, not power loss),
/// Sync pushes it to stable storage (survives power loss).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Buffers \p data at the end of the file. A failure may have written a
  /// prefix of \p data (a torn record) — the caller must treat the file
  /// tail as suspect and stop appending (see FileNodeStore's sticky
  /// error).
  [[nodiscard]] virtual Status Append(Slice data) = 0;

  /// Pushes buffered appends to the OS (fflush).
  [[nodiscard]] virtual Status Flush() = 0;

  /// Pushes everything appended so far to stable storage (fflush+fsync).
  /// After a FAILED Sync the unsynced bytes must be assumed gone: POSIX
  /// kernels mark the dirty pages clean on fsync error, so a later Sync
  /// returning OK covers nothing that was dirty at the failure (the
  /// fsyncgate bug class). Callers latch the error instead of retrying.
  [[nodiscard]] virtual Status Sync() = 0;
};

/// \brief Sequential read handle (replay path).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to \p n bytes, appending them to \p scratch. Returns the
  /// number of bytes read; 0 means end of file.
  [[nodiscard]] virtual Result<uint64_t> Read(uint64_t n,
                                              std::string* scratch) = 0;
};

/// \brief Abstract file system. Implementations must be thread-safe.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never destroyed).
  static Env* Default();

  /// Opens \p path for appending, creating it if absent; \p truncate
  /// empties an existing file first.
  [[nodiscard]] virtual Status NewWritableFile(
      const std::string& path, bool truncate,
      std::unique_ptr<WritableFile>* out) = 0;

  [[nodiscard]] virtual Status NewSequentialFile(
      const std::string& path, std::unique_ptr<SequentialFile>* out) = 0;

  /// Reads the whole file into \p out (replacing its contents).
  [[nodiscard]] virtual Status ReadFileToString(const std::string& path,
                                                std::string* out);

  virtual bool FileExists(const std::string& path) = 0;

  [[nodiscard]] virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  [[nodiscard]] virtual Status DeleteFile(const std::string& path) = 0;

  /// Atomically replaces \p to with \p from. NOT durable by itself: the
  /// directory entry update lives in the parent directory's cache until
  /// SyncDir — use RenameAndSyncDir for a crash-safe replace.
  [[nodiscard]] virtual Status Rename(const std::string& from,
                                      const std::string& to) = 0;

  /// fsyncs the parent directory of \p path, making completed renames
  /// (and file creations) of entries in that directory durable.
  [[nodiscard]] virtual Status SyncDir(const std::string& path) = 0;

  /// Rename + parent-directory fsync: the atomic-replace pattern recovery
  /// rewrites need. Without the SyncDir a power cut after the rename can
  /// roll the directory back to the OLD inode — every fsync issued
  /// against the new file covered bytes the directory no longer points
  /// at.
  [[nodiscard]] Status RenameAndSyncDir(const std::string& from,
                                        const std::string& to);
};

}  // namespace io
}  // namespace siri

#endif  // SIRI_IO_ENV_H_
