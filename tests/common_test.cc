// Copyright (c) 2026 The siri Authors. MIT license.
//
// Unit tests for src/common: Slice, Status/Result, hex, varint, Rng,
// Histogram.

#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/varint.h"

namespace siri {
namespace {

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[0], 'h');
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, EmptySlice) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.ToString(), "");
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
}

TEST(SliceTest, CompareUsesUnsignedBytes) {
  const std::string high("\xff", 1);
  const std::string low("\x01", 1);
  EXPECT_GT(Slice(high).compare(Slice(low)), 0);
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("abcdef").starts_with(Slice("abd")));
  EXPECT_TRUE(Slice("abc").starts_with(Slice()));
}

TEST(SliceTest, EqualityOperators) {
  EXPECT_EQ(Slice("x"), Slice("x"));
  EXPECT_NE(Slice("x"), Slice("y"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_FALSE(Status::IOError("x").ok());
  EXPECT_FALSE(Status::NotSupported("x").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(HexTest, EncodeDecodeRoundTrip) {
  const std::string raw("\x00\x01\xab\xff\x7f", 5);
  const std::string hex = HexEncode(raw);
  EXPECT_EQ(hex, "0001abff7f");
  std::string back;
  ASSERT_TRUE(HexDecode(hex, &back));
  EXPECT_EQ(back, raw);
}

TEST(HexTest, DecodeRejectsOddLength) {
  std::string out;
  EXPECT_FALSE(HexDecode("abc", &out));
}

TEST(HexTest, DecodeRejectsNonHex) {
  std::string out;
  EXPECT_FALSE(HexDecode("zz", &out));
}

TEST(HexTest, DecodeAcceptsUppercase) {
  std::string out;
  ASSERT_TRUE(HexDecode("AB", &out));
  EXPECT_EQ(out, "\xab");
}

TEST(VarintTest, RoundTripSmallAndLarge) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                     uint64_t{300}, uint64_t{1} << 32, ~uint64_t{0}}) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t back = 0;
    ASSERT_TRUE(GetVarint64(&in, &back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1u << 20);
  buf.pop_back();
  Slice in(buf);
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(VarintTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Slice in(buf);
  std::string a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
  EXPECT_TRUE(in.empty());
}

TEST(VarintTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buf;
  PutVarint64(&buf, 10);
  buf += "abc";  // only 3 of 10 bytes
  Slice in(buf);
  std::string out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(VarintTest, RejectsOverflowingTenthByte) {
  // Nine continuation bytes fill bits 0..62; the tenth byte holds only
  // bit 63. Any tenth byte above 1 would overflow uint64_t.
  std::string buf(9, '\x80');
  buf += '\x02';
  Slice in(buf);
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(VarintTest, RejectsContinuationPastTenBytes) {
  // An eleventh byte can only be reached through a continuation bit on the
  // tenth, which is itself invalid.
  std::string buf(10, '\x81');
  buf += '\x00';
  Slice in(buf);
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(VarintTest, AcceptsMaxValueTenByteEncoding) {
  std::string buf;
  PutVarint64(&buf, ~uint64_t{0});
  ASSERT_EQ(buf.size(), 10u);
  Slice in(buf);
  uint64_t v = 0;
  ASSERT_TRUE(GetVarint64(&in, &v));
  EXPECT_EQ(v, ~uint64_t{0});
}

TEST(VarintTest, RejectsAllContinuationBytes) {
  std::string buf(16, '\xff');
  Slice in(buf);
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(VarintTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  Slice in(buf);
  uint32_t v = 0;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BytesAndAlphaNumLengths) {
  Rng rng(3);
  EXPECT_EQ(rng.Bytes(37).size(), 37u);
  const std::string s = rng.AlphaNum(50);
  EXPECT_EQ(s.size(), 50u);
  for (char c : s) EXPECT_TRUE(isalnum(static_cast<unsigned char>(c)));
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Record(0.0);
  h.Record(10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.25), 2.5);
}

TEST(HistogramTest, FixedBucketsCoverAllValues) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(i);
  auto buckets = h.FixedBuckets(10);
  ASSERT_EQ(buckets.size(), 10u);
  uint64_t total = 0;
  for (const auto& b : buckets) total += b.count;
  EXPECT_EQ(total, 100u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(1.0);
  b.Record(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(CountHistogramTest, CountsPerValue) {
  CountHistogram h;
  h.Record(3);
  h.Record(3);
  h.Record(5);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.counts().at(3), 2u);
  EXPECT_EQ(h.counts().at(5), 1u);
}

}  // namespace
}  // namespace siri
