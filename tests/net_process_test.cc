// Copyright (c) 2026 The siri Authors. MIT license.
//
// Multi-process client/server tests: real forked client processes talking
// to one siri server over loopback TCP — the deployment shape the socket
// transport exists for. Three claims under test:
//
//   1. K concurrent client *processes* committing one branch lose no
//      updates (the servlet's combiner + OCC hold across process
//      boundaries exactly as across threads);
//   2. every commit the server ACKed is durable: SIGKILL the server
//      process, reopen its store, and each acknowledged head is
//      reachable with all its pages;
//   3. a client that dies mid-upload (half a frame on the wire, then
//      _exit) harms nothing: the server drops the torn connection, prior
//      acked commits stay readable, and the page log needs no truncation
//      recovery.
//
// These tests fork; the TSan CI job excludes them (ctest -E) the same way
// it excludes the file-store process-kill tests.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <optional>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "index/pos/pos_tree.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "net/wire.h"
#include "store/file_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"
#include "version/commit.h"

namespace siri {
namespace {

std::string TempPath(const char* tag) {
  return ::testing::TempDir() + "/siri_net_" + tag + "_" +
         std::to_string(getpid());
}

/// Binds 127.0.0.1:ephemeral and returns {fd, port}. The parent binds
/// BEFORE forking clients so no client can race the bind; the backlog
/// holds their connects until the server starts accepting.
void BindLoopback(int* fd, int* port) {
  *fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(*fd, 0);
  const int one = 1;
  setsockopt(*fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(*fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(*fd, 64), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(*fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port = ntohs(addr.sin_port);
}

/// Rebinds 127.0.0.1:\p port (a specific port this time — the restart
/// test must come back on the address the client keeps retrying).
/// SO_REUSEADDR lets the rebind beat lingering TIME_WAIT connections from
/// the killed server; brief retries cover the kernel releasing the port.
void BindLoopbackAt(int* fd, int port) {
  *fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(*fd, 0);
  const int one = 1;
  setsockopt(*fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int bound = -1;
  for (int attempt = 0; attempt < 100; ++attempt) {
    bound = bind(*fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (bound == 0) break;
    usleep(50 * 1000);
  }
  ASSERT_EQ(bound, 0);
  ASSERT_EQ(listen(*fd, 64), 0);
}

/// One client process: connect, commit `commits` kv pairs one publish at
/// a time (each on top of the current head), exit 0 on full success.
/// Exit codes identify the failing step for the test log.
void RunClientProcess(int port, int id, int commits) {
  std::shared_ptr<net::SocketTransport> t;
  net::SocketTransport::Options topts;
  topts.connect_retry_ms = 10000;  // the server may start after us
  if (!net::SocketTransport::Connect("127.0.0.1", port, &t, topts).ok()) {
    _exit(10);
  }
  auto client_store = std::make_shared<ForkbaseClientStore>(t, 8 << 20);
  PosTree index(client_store);
  for (int c = 0; c < commits; ++c) {
    // Build on the current head (or empty for the very first commit).
    Hash base = index.EmptyRoot();
    std::optional<Hash> expected;
    auto head = t->Head("main");
    if (head.ok()) {
      auto node = client_store->Get(*head);
      if (!node.ok()) _exit(16);
      auto commit = Commit::Decode(**node);
      if (!commit.ok()) _exit(11);
      base = commit->root;
      expected = *head;
    } else if (!head.status().IsNotFound()) {
      _exit(12);
    }
    const std::string key =
        "client" + std::to_string(id) + "/k" + std::to_string(c);
    auto root = index.PutBatch(base, {{key, "v" + std::to_string(c)}});
    if (!root.ok()) _exit(13);
    if (!client_store->Flush().ok()) _exit(14);
    net::PublishRequest pub;
    pub.structure = "pos";
    pub.branch = "main";
    pub.new_root = *root;
    pub.author = "client" + std::to_string(id);
    pub.message = key;
    pub.expected_head = expected;
    auto published = t->Publish(pub);
    if (!published.ok()) _exit(15);
  }
  _exit(0);
}

TEST(NetMultiProcessTest, FourClientProcessesZeroLostUpdates) {
  constexpr int kClients = 4;
  constexpr int kCommitsEach = 8;

  int listen_fd = -1;
  int port = 0;
  BindLoopback(&listen_fd, &port);

  // Fork the clients BEFORE the parent spawns server threads (fork in a
  // multithreaded parent only reproduces the forking thread; binding
  // first and starting the server after keeps both sides simple).
  std::vector<pid_t> pids;
  for (int id = 0; id < kClients; ++id) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      close(listen_fd);  // the child is a pure client
      RunClientProcess(port, id, kCommitsEach);
    }
    pids.push_back(pid);
  }

  auto store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(store);
  servlet.RegisterIndex(std::make_unique<PosTree>(store));
  net::SiriServer server(&servlet);
  ASSERT_TRUE(server.AdoptListener(listen_fd).ok());
  ASSERT_TRUE(server.Start().ok());

  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "client failed";
  }

  // Zero lost updates: every key every client committed is in the final
  // version, no matter how the 4 processes' publishes interleaved.
  auto head = servlet.branches()->Head("main");
  ASSERT_TRUE(head.ok());
  auto commit = servlet.branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  PosTree index(store);
  for (int id = 0; id < kClients; ++id) {
    for (int c = 0; c < kCommitsEach; ++c) {
      const std::string key =
          "client" + std::to_string(id) + "/k" + std::to_string(c);
      auto got = index.Get(commit->root, key, nullptr);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(got->has_value()) << "lost update: " << key;
    }
  }
  // Accounting under combining: the server routes Publish through the
  // combiner, so commits from different processes may share one head
  // swing (bs.commits counts swings, not acked publishes). What must be
  // exact is that each of the 32 acked publishes landed exactly once —
  // alone, as a combined-batch member, or via a fallback retry.
  const uint64_t acked = static_cast<uint64_t>(kClients * kCommitsEach);
  const BranchStats bs = servlet.branches()->branch_stats("main");
  const CommitCombiner::Stats cs = servlet.combiner()->stats();
  EXPECT_EQ(cs.solo_commits + cs.combined_commits + cs.fallbacks, acked);
  EXPECT_EQ(bs.combined_commits, cs.combined_commits);
  EXPECT_LE(bs.commits, acked);
  EXPECT_GE(bs.commits, 1u);
  server.Stop();
}

TEST(NetMultiProcessTest, ServerProcessKillAckedCommitsStayDurable) {
  const std::string dir = TempPath("srvkill");
  const std::string pages = dir + "_pages.log";
  const std::string refs = dir + "_refs.log";
  std::remove(pages.c_str());
  std::remove(refs.c_str());

  int listen_fd = -1;
  int port = 0;
  BindLoopback(&listen_fd, &port);

  // The SERVER runs in the forked child this time (threads are fine in a
  // fresh child). The parent is the client that receives the acks.
  const pid_t server_pid = fork();
  ASSERT_GE(server_pid, 0);
  if (server_pid == 0) {
    std::shared_ptr<FileNodeStore> store;
    if (!FileNodeStore::Open(pages, &store).ok()) _exit(20);
    ForkbaseServlet servlet(store);
    if (!servlet.branches()->AttachRefLog(refs).ok()) _exit(21);
    servlet.RegisterIndex(std::make_unique<PosTree>(store));
    net::SiriServer server(&servlet);
    if (!server.AdoptListener(listen_fd).ok()) _exit(22);
    if (!server.Start().ok()) _exit(23);
    for (;;) pause();  // serve until SIGKILL
  }
  close(listen_fd);

  std::shared_ptr<net::SocketTransport> t;
  ASSERT_TRUE(net::SocketTransport::Connect("127.0.0.1", port, &t).ok());
  auto client_store = std::make_shared<ForkbaseClientStore>(t, 8 << 20);
  PosTree index(client_store);

  // Three acked commits, remembering each acked head.
  std::vector<Hash> acked_heads;
  Hash base = index.EmptyRoot();
  std::optional<Hash> expected;
  for (int c = 0; c < 3; ++c) {
    auto root = index.PutBatch(
        base, {{"durable/k" + std::to_string(c), "v" + std::to_string(c)}});
    ASSERT_TRUE(root.ok());
    ASSERT_TRUE(client_store->Flush().ok());
    net::PublishRequest pub;
    pub.structure = "pos";
    pub.branch = "main";
    pub.new_root = *root;
    pub.author = "parent";
    pub.message = "c" + std::to_string(c);
    pub.expected_head = expected;
    auto published = t->Publish(pub);
    ASSERT_TRUE(published.ok()) << published.status().ToString();
    acked_heads.push_back(published->head);
    expected = published->head;
    base = *root;
  }

  // SIGKILL: no destructors, no flush-at-exit, no fsync the server had
  // not already issued before acking.
  ASSERT_EQ(kill(server_pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(server_pid, &status, 0), server_pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Reopen the dead server's store: every acked commit must be reachable
  // with all its pages, and the ref log must have the last acked head.
  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(pages, &reopened).ok());
  BranchManager mgr(reopened);
  ASSERT_TRUE(mgr.AttachRefLog(refs).ok());
  auto head = mgr.Head("main");
  ASSERT_TRUE(head.ok()) << "acked head lost by server crash";
  EXPECT_EQ(*head, acked_heads.back());
  PosTree recovered(reopened);
  for (const Hash& h : acked_heads) {
    auto commit = mgr.ReadCommit(h);
    ASSERT_TRUE(commit.ok()) << "acked commit unreadable after crash";
  }
  auto final_commit = mgr.ReadCommit(acked_heads.back());
  ASSERT_TRUE(final_commit.ok());
  for (int c = 0; c < 3; ++c) {
    auto got =
        recovered.Get(final_commit->root, "durable/k" + std::to_string(c),
                      nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, "v" + std::to_string(c));
  }
  std::remove(pages.c_str());
  std::remove(refs.c_str());
}

TEST(NetMultiProcessTest, ClientDeathMidUploadHarmsNothing) {
  const std::string pages = TempPath("clikill") + "_pages.log";
  const std::string refs = TempPath("clikill") + "_refs.log";
  std::remove(pages.c_str());
  std::remove(refs.c_str());

  int listen_fd = -1;
  int port = 0;
  BindLoopback(&listen_fd, &port);

  // Client child: publish one good commit, then die mid-PutMany — half a
  // frame on the wire, then _exit without closing cleanly.
  const pid_t client_pid = fork();
  ASSERT_GE(client_pid, 0);
  if (client_pid == 0) {
    close(listen_fd);
    std::shared_ptr<net::SocketTransport> t;
    net::SocketTransport::Options topts;
    topts.connect_retry_ms = 10000;
    if (!net::SocketTransport::Connect("127.0.0.1", port, &t, topts).ok()) {
      _exit(30);
    }
    auto client_store = std::make_shared<ForkbaseClientStore>(t, 8 << 20);
    PosTree index(client_store);
    auto root = index.PutBatch(index.EmptyRoot(), {{"acked/key", "survives"}});
    if (!root.ok()) _exit(31);
    if (!client_store->Flush().ok()) _exit(32);
    net::PublishRequest pub;
    pub.structure = "pos";
    pub.branch = "main";
    pub.new_root = *root;
    pub.author = "doomed";
    pub.message = "last good commit";
    if (!t->Publish(pub).ok()) _exit(33);

    // Now the torn upload: frame a real PutMany request but send only
    // half of it over a raw connection, then die.
    int raw = socket(AF_INET, SOCK_STREAM, 0);
    if (raw < 0) _exit(34);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      _exit(35);
    }
    net::Request req;
    req.type = net::MsgType::kPutMany;
    auto bytes =
        std::make_shared<const std::string>(std::string(4096, 't'));
    req.batch.push_back({Sha256::Digest(*bytes), bytes});
    const std::string frame = net::EncodeFrame(net::EncodeRequest(req));
    if (send(raw, frame.data(), frame.size() / 2, MSG_NOSIGNAL) !=
        static_cast<ssize_t>(frame.size() / 2)) {
      _exit(36);
    }
    _exit(0);  // dies with the frame torn; no shutdown, no close handshake
  }

  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(pages, &store).ok());
  ForkbaseServlet servlet(store);
  ASSERT_TRUE(servlet.branches()->AttachRefLog(refs).ok());
  servlet.RegisterIndex(std::make_unique<PosTree>(store));
  net::SiriServer server(&servlet);
  ASSERT_TRUE(server.AdoptListener(listen_fd).ok());
  ASSERT_TRUE(server.Start().ok());

  int status = 0;
  ASSERT_EQ(waitpid(client_pid, &status, 0), client_pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "client setup step failed";

  // The server outlives the torn connection and still serves new clients.
  std::shared_ptr<net::SocketTransport> fresh;
  ASSERT_TRUE(net::SocketTransport::Connect("127.0.0.1", port, &fresh).ok());
  auto head = fresh->Head("main");
  ASSERT_TRUE(head.ok()) << "acked commit lost after client death";
  auto commit = servlet.branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  PosTree index(store);
  auto got = index.Get(commit->root, "acked/key", nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "survives");

  // A torn WIRE frame is the client's problem, not the log's: nothing of
  // the half-received upload reached the page log, so reopening it later
  // needs zero truncation recovery.
  server.Stop();
  store.reset();
  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(pages, &reopened).ok());
  EXPECT_EQ(reopened->recovered_truncations(), 0u);
  std::remove(pages.c_str());
  std::remove(refs.c_str());
}

TEST(NetMultiProcessTest, ClientSurvivesServerRestartSameData) {
  const std::string dir = TempPath("restart");
  const std::string pages = dir + "_pages.log";
  const std::string refs = dir + "_refs.log";
  std::remove(pages.c_str());
  std::remove(refs.c_str());

  int listen_fd = -1;
  int port = 0;
  BindLoopback(&listen_fd, &port);

  // Forked server over a durable store; spawned twice, both generations
  // opening the SAME data files.
  const auto spawn_server = [&pages, &refs](int fd) -> pid_t {
    const pid_t pid = fork();
    if (pid != 0) return pid;
    std::shared_ptr<FileNodeStore> store;
    if (!FileNodeStore::Open(pages, &store).ok()) _exit(40);
    ForkbaseServlet servlet(store);
    if (!servlet.branches()->AttachRefLog(refs).ok()) _exit(41);
    servlet.RegisterIndex(std::make_unique<PosTree>(store));
    net::SiriServer server(&servlet);
    if (!server.AdoptListener(fd).ok()) _exit(42);
    if (!server.Start().ok()) _exit(43);
    for (;;) pause();  // serve until SIGKILL
  };

  const pid_t first = spawn_server(listen_fd);
  ASSERT_GE(first, 0);
  close(listen_fd);

  // ONE transport for the whole test: it must outlive the server it first
  // shook hands with.
  net::SocketTransport::Options topts;
  topts.connect_retry_ms = 10000;
  topts.rpc_timeout_ms = 10000;
  topts.retry.max_attempts = 20;
  topts.retry.backoff_init_ms = 5;
  topts.retry.backoff_max_ms = 100;
  std::shared_ptr<net::SocketTransport> t;
  ASSERT_TRUE(net::SocketTransport::Connect("127.0.0.1", port, &t, topts).ok());
  auto client_store = std::make_shared<ForkbaseClientStore>(t, 8 << 20);
  PosTree index(client_store);

  auto root1 = index.PutBatch(index.EmptyRoot(), {{"restart/before", "v0"}});
  ASSERT_TRUE(root1.ok());
  ASSERT_TRUE(client_store->Flush().ok());
  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root1;
  pub.author = "survivor";
  pub.message = "before restart";
  auto acked1 = t->Publish(pub);
  ASSERT_TRUE(acked1.ok()) << acked1.status().ToString();

  // SIGKILL the server, then bring a fresh process up on the SAME port
  // over the SAME data directory — a crash-restart, not a clean handoff.
  ASSERT_EQ(kill(first, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(first, &status, 0), first);
  ASSERT_TRUE(WIFSIGNALED(status));

  int listen_fd2 = -1;
  BindLoopbackAt(&listen_fd2, port);
  const pid_t second = spawn_server(listen_fd2);
  ASSERT_GE(second, 0);
  close(listen_fd2);

  // Same transport object, no application-level recovery: the next RPCs
  // ride auto-reconnect + retry through the restart invisibly.
  auto root2 = index.PutBatch(*root1, {{"restart/after", "v1"}});
  ASSERT_TRUE(root2.ok());
  ASSERT_TRUE(client_store->Flush().ok());
  pub.new_root = *root2;
  pub.message = "after restart";
  pub.expected_head = acked1->head;
  auto acked2 = t->Publish(pub);
  ASSERT_TRUE(acked2.ok()) << acked2.status().ToString();
  EXPECT_GE(t->stats().reconnects, 1u);

  // Both generations' commits are visible through the restarted server.
  auto head = t->Head("main");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, acked2->head);
  auto commit_bytes = client_store->Get(*head);
  ASSERT_TRUE(commit_bytes.ok());
  auto final_commit = Commit::Decode(**commit_bytes);
  ASSERT_TRUE(final_commit.ok());
  for (const char* key : {"restart/before", "restart/after"}) {
    auto got = index.Get(final_commit->root, key, nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->has_value()) << key;
  }

  ASSERT_EQ(kill(second, SIGKILL), 0);
  ASSERT_EQ(waitpid(second, &status, 0), second);
  std::remove(pages.c_str());
  std::remove(refs.c_str());
}

}  // namespace
}  // namespace siri
