// Copyright (c) 2026 The siri Authors. MIT license.
//
// Cross-module integration: the pieces composed the way an application
// would compose them — ledger + proofs over a durable store, branches +
// diff/merge + transfer, several structures cohabiting one store, clients
// verifying against servers.

#include <gtest/gtest.h>

#include <cstdio>

#include "index/mbt/mbt.h"
#include "index/mpt/mpt.h"
#include "index/mvmb/mvmb_tree.h"
#include "index/pos/pos_tree.h"
#include "metrics/dedup.h"
#include "store/file_store.h"
#include "system/forkbase.h"
#include "system/ledger.h"
#include "tests/test_util.h"
#include "version/commit.h"
#include "version/transfer.h"
#include "workload/datasets.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

TEST(IntegrationTest, AllStructuresShareOneStoreWithoutCollision) {
  // Four different structures index the same records in the same store;
  // each keeps its own shape, all stay correct, and identical leaf pages
  // (MBT buckets vs ordered-tree leaves share the leaf codec) may dedup.
  auto store = NewInMemoryNodeStore();
  PosTree pos(store);
  Mpt mpt(store);
  Mbt mbt(store, MbtOptions{64, 4});
  MvmbTree mvmb(store);

  auto kvs = MakeKvs(500);
  auto r_pos = pos.PutBatch(Hash::Zero(), kvs);
  auto r_mpt = mpt.PutBatch(Hash::Zero(), kvs);
  auto r_mbt = mbt.PutBatch(mbt.EmptyRoot(), kvs);
  auto r_mvmb = mvmb.PutBatch(Hash::Zero(), kvs);
  ASSERT_TRUE(r_pos.ok() && r_mpt.ok() && r_mbt.ok() && r_mvmb.ok());

  std::map<std::string, std::string> expected;
  for (const auto& kv : kvs) expected[kv.key] = kv.value;
  EXPECT_EQ(Dump(pos, *r_pos), expected);
  EXPECT_EQ(Dump(mpt, *r_mpt), expected);
  EXPECT_EQ(Dump(mbt, *r_mbt), expected);
  EXPECT_EQ(Dump(mvmb, *r_mvmb), expected);
}

TEST(IntegrationTest, LightClientVerifiesLedgerOverTransfer) {
  // A full node maintains a ledger; a light client holds only block roots.
  // The full node answers queries with proofs; verification needs nothing
  // but the 32-byte root.
  auto full_node_store = NewInMemoryNodeStore();
  Mpt full_mpt(full_node_store);
  Ledger ledger(&full_mpt);
  EthDataset eth;
  for (uint64_t b = 0; b < 6; ++b) {
    ASSERT_TRUE(ledger.AppendBlock(eth.BlockRecords(b, 80)).ok());
  }

  // Light client state: just the roots.
  const std::vector<Hash> trusted_roots = ledger.block_roots();

  // Query a tx; the server builds a proof; the client verifies with an
  // index instance bound to NO data at all (proof-only store).
  auto txs = eth.BlockRecords(3, 80);
  auto proof = full_mpt.GetProof(trusted_roots[3], txs[17].key);
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(proof->value.has_value());

  auto client_store = NewInMemoryNodeStore();  // empty!
  Mpt client_mpt(client_store);
  EXPECT_TRUE(client_mpt.VerifyProof(*proof, trusted_roots[3]));
  EXPECT_FALSE(client_mpt.VerifyProof(*proof, trusted_roots[2]));
}

TEST(IntegrationTest, BranchedWorkflowWithTransferAndGc) {
  auto store = NewInMemoryNodeStore();
  PosTree index(store);
  BranchManager branches(store);

  // main: base data.
  auto base_root = index.PutBatch(Hash::Zero(), MakeKvs(800));
  ASSERT_TRUE(base_root.ok());
  auto c_base = branches.CommitOnBranch("main", *base_root, "a", "base");
  ASSERT_TRUE(c_base.ok());

  // Two forks diverge.
  ASSERT_TRUE(branches.CreateBranch("clean", *c_base).ok());
  ASSERT_TRUE(branches.CreateBranch("enrich", *c_base).ok());
  auto clean_root = index.PutBatch(*base_root, {{TKey(3), "cleaned"}});
  auto enrich_root = index.PutBatch(*base_root, {{"extra/1", "e1"}});
  ASSERT_TRUE(clean_root.ok() && enrich_root.ok());
  auto c_clean = branches.CommitOnBranch("clean", *clean_root, "b", "fix");
  auto c_enrich = branches.CommitOnBranch("enrich", *enrich_root, "c", "add");
  ASSERT_TRUE(c_clean.ok() && c_enrich.ok());

  // Merge via the DAG's merge base.
  auto mb = branches.MergeBase(*c_clean, *c_enrich);
  ASSERT_TRUE(mb.ok());
  auto base_commit = branches.ReadCommit(*mb);
  ASSERT_TRUE(base_commit.ok());
  auto merged = index.Merge3(*clean_root, *enrich_root, base_commit->root);
  ASSERT_TRUE(merged.ok());
  auto c_merged = branches.CommitOnBranch("main", *merged, "a", "merge all");
  ASSERT_TRUE(c_merged.ok());

  // Ship main's head to a replica.
  auto pack = PackVersions(index, {*merged});
  ASSERT_TRUE(pack.ok());
  auto replica_store = NewInMemoryNodeStore();
  ASSERT_TRUE(UnpackVersions(*pack, replica_store.get()).ok());
  PosTree replica(replica_store);
  EXPECT_EQ(Dump(replica, *merged).size(), 801u);

  // GC the source down to main's head (plus its commit objects).
  PageSet retain;
  ASSERT_TRUE(index.CollectPages(*merged, &retain).ok());
  auto log = branches.Log(*branches.Head("main"));
  ASSERT_TRUE(log.ok());
  for (const auto& [h, c] : *log) retain.insert(h);
  const uint64_t dropped = store->PruneExcept(retain);
  EXPECT_GT(dropped, 0u);
  // Head still fully readable, history still walkable.
  EXPECT_EQ(Dump(index, *merged).size(), 801u);
  EXPECT_TRUE(branches.Log(*branches.Head("main")).ok());
}

TEST(IntegrationTest, DurableLedgerSurvivesRestart) {
  const std::string path = ::testing::TempDir() + "/siri_ledger_it.log";
  std::remove(path.c_str());
  std::vector<Hash> roots;
  EthDataset eth;
  {
    std::shared_ptr<FileNodeStore> disk;
    ASSERT_TRUE(FileNodeStore::Open(path, &disk).ok());
    PosTree tree(disk);
    Ledger ledger(&tree);
    for (uint64_t b = 0; b < 4; ++b) {
      ASSERT_TRUE(ledger.AppendBlock(eth.BlockRecords(b, 50)).ok());
    }
    roots = ledger.block_roots();
    ASSERT_TRUE(disk->Flush().ok());
  }
  {
    std::shared_ptr<FileNodeStore> disk;
    ASSERT_TRUE(FileNodeStore::Open(path, &disk).ok());
    PosTree tree(disk);
    // Every block root remains queryable and provable after restart.
    auto txs = eth.BlockRecords(2, 50);
    auto got = tree.Get(roots[2], txs[7].key, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    auto proof = tree.GetProof(roots[2], txs[7].key);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(tree.VerifyProof(*proof, roots[2]));
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, ClientCacheServesProofsAfterWarmup) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  PosTree server_tree(server_store);
  auto root = server_tree.PutBatch(Hash::Zero(), MakeKvs(1000));
  ASSERT_TRUE(root.ok());

  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 8 << 20, 0);
  PosTree client_tree(client_store);
  // Warm the cache, then build a proof fully from cached nodes.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client_tree.Get(*root, TKey(i), nullptr).ok());
  }
  const uint64_t remote_before = client_store->remote_stats().remote_gets;
  auto proof = client_tree.GetProof(*root, TKey(25));
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(client_store->remote_stats().remote_gets, remote_before);
  EXPECT_TRUE(client_tree.VerifyProof(*proof, *root));
}

TEST(IntegrationTest, WikiVersionHistoryDiffsAndFootprints) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  WikiDataset wiki(2000);
  Hash head = Hash::Zero();
  auto initial = wiki.InitialRecords();
  auto r = tree.PutBatch(head, initial);
  ASSERT_TRUE(r.ok());
  head = *r;
  std::vector<Hash> revs{head};
  for (int v = 1; v <= 5; ++v) {
    auto next = tree.PutBatch(head, wiki.VersionEdits(v, 0.02));
    ASSERT_TRUE(next.ok());
    head = *next;
    revs.push_back(head);
  }
  // Diff between first and last: at most the sum of all edits, at least
  // one per distinct edited page.
  auto diff = tree.Diff(revs.front(), revs.back());
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(diff->size(), 0u);
  EXPECT_LE(diff->size(), 5u * std::max<uint64_t>(1, 2000 / 50));
  // All revisions cost far less than 6 standalone copies.
  auto fp_all = ComputeFootprint(tree, revs);
  auto fp_one = ComputeFootprint(tree, {revs.front()});
  ASSERT_TRUE(fp_all.ok() && fp_one.ok());
  EXPECT_LT(fp_all->bytes, 3 * fp_one->bytes);
}

}  // namespace
}  // namespace siri
