// Copyright (c) 2026 The siri Authors. MIT license.
//
// Failure injection: indexes must surface missing/corrupt pages as Status
// errors — never crash, hang, or silently mis-answer. This is the error
// model a store-backed tamper-evident index has to get right: a flipped
// node is indistinguishable from an attack.

#include <gtest/gtest.h>

#include <cstdio>

#include "crypto/sha256.h"
#include "store/file_store.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;

class FaultTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    base_store_ = NewInMemoryNodeStore();
    faulty_store_ = std::make_shared<FaultyNodeStore>(base_store_);
    index_ = MakeIndex(GetParam(), faulty_store_);
    auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(2000));
    ASSERT_TRUE(root.ok());
    root_ = *root;
  }

  /// Digest of some node on the lookup path of \p key (the deepest one).
  Hash PathNodeFor(const std::string& key) {
    auto proof = index_->GetProof(root_, key);
    EXPECT_TRUE(proof.ok());
    EXPECT_FALSE(proof->nodes.empty());
    return Sha256::Digest(proof->nodes.back());
  }

  std::shared_ptr<InMemoryNodeStore> base_store_;
  std::shared_ptr<FaultyNodeStore> faulty_store_;
  std::unique_ptr<ImmutableIndex> index_;
  Hash root_;
};

TEST_P(FaultTest, DroppedLeafSurfacesNotFound) {
  const Hash victim = PathNodeFor(TKey(77));
  faulty_store_->DropNode(victim);
  auto got = index_->Get(root_, TKey(77), nullptr);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST_P(FaultTest, CorruptLeafSurfacesCorruption) {
  const Hash victim = PathNodeFor(TKey(123));
  faulty_store_->CorruptNode(victim);
  auto got = index_->Get(root_, TKey(123), nullptr);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
}

TEST_P(FaultTest, DroppedRootFailsEveryLookup) {
  faulty_store_->DropNode(root_);
  auto got = index_->Get(root_, TKey(1), nullptr);
  EXPECT_FALSE(got.ok());
}

TEST_P(FaultTest, OtherPathsKeepWorking) {
  const Hash victim = PathNodeFor(TKey(77));
  faulty_store_->DropNode(victim);
  // A key in a different subtree is unaffected. Scan for one that works:
  // at least half the keys live under other leaves.
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    auto got = index_->Get(root_, TKey(i * 17 % 2000), nullptr);
    if (got.ok() && got->has_value()) ++successes;
  }
  EXPECT_GT(successes, 50);
}

TEST_P(FaultTest, ScanReportsErrorInsteadOfPartialSilence) {
  const Hash victim = PathNodeFor(TKey(500));
  faulty_store_->DropNode(victim);
  Status s = index_->Scan(root_, [](Slice, Slice) {});
  EXPECT_FALSE(s.ok());
}

TEST_P(FaultTest, DiffReportsErrorOnBrokenTree) {
  auto changed = index_->Put(root_, TKey(1), "x");
  ASSERT_TRUE(changed.ok());
  const Hash victim = PathNodeFor(TKey(500));
  faulty_store_->DropNode(victim);
  // The broken node sits on both sides; the shared-subtree fast path may
  // skip it, so force divergence near the victim too.
  auto diff = index_->Diff(root_, *changed);
  // Either the diff succeeded by skipping the shared broken region (legal:
  // pruning means it never loads it) or it must surface the error. What it
  // must never do is crash or return a wrong record set silently — check
  // that a success result is exactly the single change.
  if (diff.ok()) {
    ASSERT_EQ(diff->size(), 1u);
    EXPECT_EQ((*diff)[0].key, TKey(1));
  }
}

TEST_P(FaultTest, UpdateThroughBrokenPathFails) {
  const Hash victim = PathNodeFor(TKey(300));
  faulty_store_->DropNode(victim);
  auto updated = index_->Put(root_, TKey(300), "new-value");
  EXPECT_FALSE(updated.ok());
}

TEST_P(FaultTest, RecoveryAfterClearFaults) {
  const Hash victim = PathNodeFor(TKey(42));
  faulty_store_->CorruptNode(victim);
  EXPECT_FALSE(index_->Get(root_, TKey(42), nullptr).ok());
  faulty_store_->ClearFaults();
  auto got = index_->Get(root_, TKey(42), nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->has_value());
}

// On-disk fault injection: a bit flipped inside the append-only log must be
// caught by the per-record digest on replay — an index traversing the
// recovered store can see NotFound for lost pages, but never corrupt bytes
// masquerading under a valid digest.
TEST(FileStoreFaultTest, BitFlippedLogPageIsNeverServed) {
  const std::string path = ::testing::TempDir() + "/siri_fault_store.log";
  std::remove(path.c_str());

  Hash root;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path, &store).ok());
    auto index = MakeIndex(IndexKind::kPos, store);
    auto r = index->PutBatch(index->EmptyRoot(), MakeKvs(500));
    ASSERT_TRUE(r.ok());
    root = *r;
    ASSERT_TRUE(store->Flush().ok());
  }

  // Flip one byte in the middle of the log body.
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  ASSERT_GT(size, 200);
  fseek(f, size / 2, SEEK_SET);
  const int orig = fgetc(f);
  fseek(f, size / 2, SEEK_SET);
  fputc(orig ^ 0x40, f);
  fclose(f);

  std::shared_ptr<FileNodeStore> recovered;
  ASSERT_TRUE(FileNodeStore::Open(path, &recovered).ok());
  EXPECT_GT(recovered->recovered_truncations(), 0u);
  auto index = MakeIndex(IndexKind::kPos, recovered);
  // Lookups either succeed with the right value or fail with a Status —
  // never a silent wrong answer (values are checkable: MakeKvs is
  // deterministic).
  const auto kvs = MakeKvs(500);
  for (int i = 0; i < 500; i += 25) {
    auto got = index->Get(root, kvs[i].key, nullptr);
    if (got.ok()) {
      ASSERT_TRUE(got->has_value());
      EXPECT_EQ(**got, kvs[i].value);
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, FaultTest, ::testing::ValuesIn(AllKinds()),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindName(info.param);
    });

}  // namespace
}  // namespace siri
