// Copyright (c) 2026 The siri Authors. MIT license.
//
// Failure injection: indexes must surface missing/corrupt pages as Status
// errors — never crash, hang, or silently mis-answer. This is the error
// model a store-backed tamper-evident index has to get right: a flipped
// node is indistinguishable from an attack.

#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;

class FaultTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    base_store_ = NewInMemoryNodeStore();
    faulty_store_ = std::make_shared<FaultyNodeStore>(base_store_);
    index_ = MakeIndex(GetParam(), faulty_store_);
    auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(2000));
    ASSERT_TRUE(root.ok());
    root_ = *root;
  }

  /// Digest of some node on the lookup path of \p key (the deepest one).
  Hash PathNodeFor(const std::string& key) {
    auto proof = index_->GetProof(root_, key);
    EXPECT_TRUE(proof.ok());
    EXPECT_FALSE(proof->nodes.empty());
    return Sha256::Digest(proof->nodes.back());
  }

  std::shared_ptr<InMemoryNodeStore> base_store_;
  std::shared_ptr<FaultyNodeStore> faulty_store_;
  std::unique_ptr<ImmutableIndex> index_;
  Hash root_;
};

TEST_P(FaultTest, DroppedLeafSurfacesNotFound) {
  const Hash victim = PathNodeFor(TKey(77));
  faulty_store_->DropNode(victim);
  auto got = index_->Get(root_, TKey(77), nullptr);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST_P(FaultTest, CorruptLeafSurfacesCorruption) {
  const Hash victim = PathNodeFor(TKey(123));
  faulty_store_->CorruptNode(victim);
  auto got = index_->Get(root_, TKey(123), nullptr);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
}

TEST_P(FaultTest, DroppedRootFailsEveryLookup) {
  faulty_store_->DropNode(root_);
  auto got = index_->Get(root_, TKey(1), nullptr);
  EXPECT_FALSE(got.ok());
}

TEST_P(FaultTest, OtherPathsKeepWorking) {
  const Hash victim = PathNodeFor(TKey(77));
  faulty_store_->DropNode(victim);
  // A key in a different subtree is unaffected. Scan for one that works:
  // at least half the keys live under other leaves.
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    auto got = index_->Get(root_, TKey(i * 17 % 2000), nullptr);
    if (got.ok() && got->has_value()) ++successes;
  }
  EXPECT_GT(successes, 50);
}

TEST_P(FaultTest, ScanReportsErrorInsteadOfPartialSilence) {
  const Hash victim = PathNodeFor(TKey(500));
  faulty_store_->DropNode(victim);
  Status s = index_->Scan(root_, [](Slice, Slice) {});
  EXPECT_FALSE(s.ok());
}

TEST_P(FaultTest, DiffReportsErrorOnBrokenTree) {
  auto changed = index_->Put(root_, TKey(1), "x");
  ASSERT_TRUE(changed.ok());
  const Hash victim = PathNodeFor(TKey(500));
  faulty_store_->DropNode(victim);
  // The broken node sits on both sides; the shared-subtree fast path may
  // skip it, so force divergence near the victim too.
  auto diff = index_->Diff(root_, *changed);
  // Either the diff succeeded by skipping the shared broken region (legal:
  // pruning means it never loads it) or it must surface the error. What it
  // must never do is crash or return a wrong record set silently — check
  // that a success result is exactly the single change.
  if (diff.ok()) {
    ASSERT_EQ(diff->size(), 1u);
    EXPECT_EQ((*diff)[0].key, TKey(1));
  }
}

TEST_P(FaultTest, UpdateThroughBrokenPathFails) {
  const Hash victim = PathNodeFor(TKey(300));
  faulty_store_->DropNode(victim);
  auto updated = index_->Put(root_, TKey(300), "new-value");
  EXPECT_FALSE(updated.ok());
}

TEST_P(FaultTest, RecoveryAfterClearFaults) {
  const Hash victim = PathNodeFor(TKey(42));
  faulty_store_->CorruptNode(victim);
  EXPECT_FALSE(index_->Get(root_, TKey(42), nullptr).ok());
  faulty_store_->ClearFaults();
  auto got = index_->Get(root_, TKey(42), nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, FaultTest, ::testing::ValuesIn(AllKinds()),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindName(info.param);
    });

}  // namespace
}  // namespace siri
