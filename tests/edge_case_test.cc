// Copyright (c) 2026 The siri Authors. MIT license.
//
// Targeted edge cases for paths the broad suites exercise only lightly:
// deep MPT collapse chains, transfer packs with flipped page bytes, the
// simulated-RTT client store, large-batch boundary conditions, and the
// empty/singleton extremes of every operation.

#include <gtest/gtest.h>

#include "common/timer.h"
#include "index/mpt/mpt.h"
#include "index/pos/pos_tree.h"
#include "system/forkbase.h"
#include "tests/test_util.h"
#include "version/transfer.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;
using testing_util::TKey;

TEST(MptEdgeTest, DeleteCollapsesMultiLevelChain) {
  // Build a trie where removal must cascade: branch -> lone child is a
  // branch -> becomes extension -> merges with parent extension.
  auto store = NewInMemoryNodeStore();
  Mpt mpt(store);
  auto base = mpt.PutBatch(Hash::Zero(), {{"aaaa0000", "1"},
                                          {"aaaa1111", "2"}});
  ASSERT_TRUE(base.ok());
  // Adding and removing a deep fork must restore the exact digest.
  auto forked = mpt.PutBatch(*base, {{"aaaa1122", "3"}, {"aaaa1133", "4"}});
  ASSERT_TRUE(forked.ok());
  auto back1 = mpt.Delete(*forked, "aaaa1122");
  ASSERT_TRUE(back1.ok());
  auto back2 = mpt.Delete(*back1, "aaaa1133");
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(*back2, *base);
}

TEST(MptEdgeTest, SingleCharAndNearMissKeys) {
  auto store = NewInMemoryNodeStore();
  Mpt mpt(store);
  auto r = mpt.PutBatch(Hash::Zero(), {{"a", "1"}, {"b", "2"}, {"A", "3"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*mpt.Get(*r, "a", nullptr)->value().c_str(), *"1");
  EXPECT_FALSE(mpt.Get(*r, "c", nullptr)->has_value());
  EXPECT_FALSE(mpt.Get(*r, "aa", nullptr)->has_value());
  // Nibble-level near miss: 'a' = 0x61, 'q' = 0x71 share the low nibble.
  EXPECT_FALSE(mpt.Get(*r, "q", nullptr)->has_value());
}

TEST(MptEdgeTest, ValueAtEveryPrefixDepth) {
  // A chain where every prefix of the deepest key is itself a key: every
  // branch on the path carries a value.
  auto store = NewInMemoryNodeStore();
  Mpt mpt(store);
  Hash root = Hash::Zero();
  std::string key;
  for (int i = 0; i < 8; ++i) {
    key.push_back('k');
    auto r = mpt.Put(root, key, "depth" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    root = *r;
  }
  key.clear();
  for (int i = 0; i < 8; ++i) {
    key.push_back('k');
    auto got = mpt.Get(root, key, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, "depth" + std::to_string(i));
  }
  // Deleting the middle of the chain keeps both ends.
  auto r = mpt.Delete(root, "kkkk");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(mpt.Get(*r, "kkk", nullptr)->has_value());
  EXPECT_TRUE(mpt.Get(*r, "kkkkk", nullptr)->has_value());
  EXPECT_FALSE(mpt.Get(*r, "kkkk", nullptr)->has_value());
}

TEST(TransferEdgeTest, FlippedPageYieldsUnreadableRootsNotWrongData) {
  // Content addressing turns corruption into absence: a flipped page gets
  // a different digest, so the packed root becomes unreadable — the store
  // can never serve wrong bytes under the right digest.
  auto src_store = NewInMemoryNodeStore();
  PosTree src(src_store);
  auto root = src.PutBatch(Hash::Zero(), MakeKvs(300));
  ASSERT_TRUE(root.ok());
  auto pack = PackVersions(src, {*root});
  ASSERT_TRUE(pack.ok());
  // Flip one byte deep inside the page payload area.
  pack->bytes[pack->bytes.size() / 2] ^= 0x40;

  auto dst_store = NewInMemoryNodeStore();
  Status s = UnpackVersions(*pack, dst_store.get());
  PosTree dst(dst_store);
  bool some_failure = !s.ok();
  if (s.ok()) {
    // Unpack may parse (lengths intact); then some lookups must fail with
    // NotFound instead of returning corrupt values.
    for (int i = 0; i < 300 && !some_failure; ++i) {
      auto got = dst.Get(*root, TKey(i), nullptr);
      if (!got.ok()) {
        some_failure = true;
      } else if (got->has_value()) {
        EXPECT_EQ(**got, testing_util::TVal(i));  // never wrong data
      }
    }
  }
  EXPECT_TRUE(some_failure);
}

TEST(TransferEdgeTest, EmptyRootsPackIsValid) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  auto pack = PackVersions(tree, {Hash::Zero()});
  ASSERT_TRUE(pack.ok());
  auto dst = NewInMemoryNodeStore();
  EXPECT_TRUE(UnpackVersions(*pack, dst.get()).ok());
}

TEST(ForkbaseEdgeTest, SimulatedRttSlowsRemoteFetches) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  PosTree server_tree(server_store);
  auto root = server_tree.PutBatch(Hash::Zero(), MakeKvs(500));
  ASSERT_TRUE(root.ok());

  auto timed = [&](uint64_t rtt_ns) {
    auto client_store =
        std::make_shared<ForkbaseClientStore>(&servlet, 8 << 20, rtt_ns);
    PosTree client(client_store);
    Timer t;
    for (int i = 0; i < 50; ++i) {
      SIRI_CHECK(client.Get(*root, TKey(i * 7), nullptr).ok());
    }
    return t.ElapsedMicros();
  };
  const double fast = timed(0);
  const double slow = timed(200000);  // 200us per remote fetch
  EXPECT_GT(slow, fast + 1000);  // at least several simulated round trips
}

TEST(PosEdgeTest, BatchLargerThanTree) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  auto small = tree.PutBatch(Hash::Zero(), MakeKvs(10));
  ASSERT_TRUE(small.ok());
  // A batch 100x the tree size: exercises splices spanning everything.
  auto big = tree.PutBatch(*small, MakeKvs(1000, /*version=*/1));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(Dump(tree, *big).size(), 1000u);
  // Equal to the canonical build of the final content (SI).
  std::vector<KV> all = MakeKvs(1000, 1);
  std::sort(all.begin(), all.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });
  auto direct = tree.BuildFromSorted(all);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*big, *direct);
}

TEST(PosEdgeTest, InterleavedDeleteAndInsertAtSameBoundary) {
  // Delete a chunk's first key while inserting its immediate predecessor:
  // stresses splice ordering at chunk starts.
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  auto root = tree.BuildFromSorted(MakeKvs(2000));
  ASSERT_TRUE(root.ok());
  // Find some chunk-start key via the cursor machinery indirectly: delete
  // and reinsert around a fixed key; invariance must hold regardless.
  std::vector<KV> puts;
  std::vector<std::string> dels;
  for (int i = 500; i < 520; ++i) dels.push_back(TKey(i));
  for (int i = 500; i < 520; ++i) {
    puts.push_back(KV{TKey(i) + "~", "shifted"});
  }
  auto r1 = tree.DeleteBatch(*root, dels);
  ASSERT_TRUE(r1.ok());
  auto r2 = tree.PutBatch(*r1, puts);
  ASSERT_TRUE(r2.ok());
  // Reverse order reaches the same digest.
  auto r3 = tree.PutBatch(*root, puts);
  ASSERT_TRUE(r3.ok());
  auto r4 = tree.DeleteBatch(*r3, dels);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(*r2, *r4);
}

TEST(StoreEdgeTest, PruneEverythingThenRebuild) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  auto root = tree.PutBatch(Hash::Zero(), MakeKvs(200));
  ASSERT_TRUE(root.ok());
  store->PruneExcept({});  // drop all
  EXPECT_EQ(store->stats().unique_nodes, 0u);
  // The store remains usable.
  auto fresh = tree.PutBatch(Hash::Zero(), MakeKvs(200));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, *root);  // same content, same digest, fresh pages
  EXPECT_EQ(Dump(tree, *fresh).size(), 200u);
}

}  // namespace
}  // namespace siri
