// Copyright (c) 2026 The siri Authors. MIT license.
//
// Deeper invariants, mostly statistical or algebraic: diff/patch
// round-trips, merge symmetry, digest injectivity in practice, chunk-size
// and bucket-balance distributions, proof-size growth.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "common/random.h"
#include "index/ordered/tree_cursor.h"
#include "index/pos/pos_tree.h"
#include "tests/test_util.h"
#include "workload/ycsb.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::Dump;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

class InvariantTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    index_ = MakeIndex(GetParam(), store_);
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<ImmutableIndex> index_;
};

TEST_P(InvariantTest, DiffThenPatchReproducesTarget) {
  // Applying Diff(a, b) onto a must yield exactly b's content.
  auto a = index_->PutBatch(index_->EmptyRoot(), MakeKvs(400));
  ASSERT_TRUE(a.ok());
  Rng rng(21);
  std::vector<KV> puts;
  std::vector<std::string> dels;
  for (int i = 0; i < 80; ++i) {
    const int k = static_cast<int>(rng.Uniform(600));
    if (rng.Bernoulli(0.3)) {
      dels.push_back(TKey(k));
    } else {
      puts.push_back(KV{TKey(k), TVal(k, 9)});
    }
  }
  auto b1 = index_->PutBatch(*a, puts);
  ASSERT_TRUE(b1.ok());
  auto b = index_->DeleteBatch(*b1, dels);
  ASSERT_TRUE(b.ok());

  auto diff = index_->Diff(*a, *b);
  ASSERT_TRUE(diff.ok());
  std::vector<KV> patch_puts;
  std::vector<std::string> patch_dels;
  for (const DiffEntry& e : *diff) {
    if (e.right) {
      patch_puts.push_back(KV{e.key, *e.right});
    } else {
      patch_dels.push_back(e.key);
    }
  }
  auto patched1 = index_->PutBatch(*a, patch_puts);
  ASSERT_TRUE(patched1.ok());
  auto patched = index_->DeleteBatch(*patched1, patch_dels);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(Dump(*index_, *patched), Dump(*index_, *b));
}

TEST_P(InvariantTest, MergeContentIsSymmetric) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(200));
  ASSERT_TRUE(base.ok());
  auto ours = index_->PutBatch(*base, {{"o1", "x"}, {TKey(5), "ov"}});
  auto theirs = index_->PutBatch(*base, {{"t1", "y"}, {TKey(5), "tv"}});
  ASSERT_TRUE(ours.ok() && theirs.ok());
  // Symmetric resolver: order of operands must not change the content.
  auto resolver = [](const std::string&, const std::optional<std::string>& ao,
                     const std::optional<std::string>& bo) {
    const std::string a = ao.value_or(""), b = bo.value_or("");
    return std::optional<std::string>(a < b ? a + b : b + a);
  };
  auto m1 = index_->Merge(*ours, *theirs, resolver);
  auto m2 = index_->Merge(*theirs, *ours, resolver);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(Dump(*index_, *m1), Dump(*index_, *m2));
}

TEST_P(InvariantTest, DistinctContentDistinctDigest) {
  // Sampled injectivity: N single-record trees, all digests distinct, and
  // rebuilding any of them reproduces its digest.
  std::set<Hash> digests;
  for (int i = 0; i < 200; ++i) {
    auto r = index_->Put(index_->EmptyRoot(), TKey(i), TVal(i));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(digests.insert(*r).second) << i;
  }
  auto again = index_->Put(index_->EmptyRoot(), TKey(77), TVal(77));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(digests.count(*again), 1u);
}

TEST_P(InvariantTest, ProofSizeGrowsSublinearly) {
  auto small = index_->PutBatch(index_->EmptyRoot(), MakeKvs(500));
  auto large = index_->PutBatch(index_->EmptyRoot(), MakeKvs(8000));
  ASSERT_TRUE(small.ok() && large.ok());
  auto p_small = index_->GetProof(*small, TKey(123));
  auto p_large = index_->GetProof(*large, TKey(123));
  ASSERT_TRUE(p_small.ok() && p_large.ok());
  // 16x the data must cost far less than 16x the proof (log growth, or
  // +N/B for MBT buckets).
  EXPECT_LT(p_large->ByteSize(), 8 * std::max<uint64_t>(p_small->ByteSize(), 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, InvariantTest, ::testing::ValuesIn(AllKinds()),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindName(info.param);
    });

TEST(PosDistributionTest, LeafSizesMatchPatternExpectation) {
  // With q pattern bits, leaf sizes are ~geometric with mean ≈ 2^q bytes;
  // check mean within a factor of two and nontrivial spread.
  auto store = NewInMemoryNodeStore();
  PosTreeOptions opt;
  opt.leaf_pattern_bits = 9;  // target 512 B
  PosTree tree(store, opt);
  auto root = tree.BuildFromSorted(MakeKvs(20000));
  ASSERT_TRUE(root.ok());

  std::vector<uint64_t> leaf_sizes;
  LevelCursor cur(store.get(), *root, 0);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  while (cur.Valid()) {
    if (cur.AtChunkStart()) {
      auto size = store->SizeOf(cur.CurrentChunkHash());
      ASSERT_TRUE(size.ok());
      leaf_sizes.push_back(*size);
    }
    ASSERT_TRUE(cur.Next().ok());
  }
  ASSERT_GT(leaf_sizes.size(), 100u);
  double mean = 0;
  for (uint64_t s : leaf_sizes) mean += s;
  mean /= leaf_sizes.size();
  EXPECT_GT(mean, 256);
  EXPECT_LT(mean, 1024 + 256);
  const auto [mn, mx] = std::minmax_element(leaf_sizes.begin(), leaf_sizes.end());
  EXPECT_LT(*mn, mean);  // content-defined: sizes vary
  EXPECT_GT(*mx, mean);
}

TEST(MbtDistributionTest, BucketsAreRoughlyBalanced) {
  auto store = NewInMemoryNodeStore();
  MbtOptions opt;
  opt.num_buckets = 64;
  opt.fanout = 4;
  Mbt mbt(store, opt);
  YcsbGenerator gen(3);
  auto records = gen.GenerateRecords(6400);  // 100 expected per bucket
  std::vector<int> counts(64, 0);
  for (const auto& kv : records) ++counts[mbt.BucketIndexOf(kv.key)];
  for (int c : counts) {
    EXPECT_GT(c, 50);   // < half the mean would signal a broken hash
    EXPECT_LT(c, 200);  // > twice the mean likewise
  }
}

TEST(PosDistributionTest, InternalFanoutMatchesPattern) {
  // internal_pattern_bits = 5 -> mean fanout ≈ 32 (min 2 enforced).
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  auto root = tree.BuildFromSorted(MakeKvs(30000));
  ASSERT_TRUE(root.ok());
  auto height = LevelCursor::TreeHeight(store.get(), *root);
  ASSERT_TRUE(height.ok());
  ASSERT_GE(*height, 3);
  // Count level-1 nodes and level-0 nodes: ratio ≈ fanout.
  uint64_t leaves = 0, internals = 0;
  for (int level : {0, 1}) {
    LevelCursor cur(store.get(), *root, level);
    ASSERT_TRUE(cur.SeekToFirst().ok());
    while (cur.Valid()) {
      if (cur.AtChunkStart()) ++(level == 0 ? leaves : internals);
      ASSERT_TRUE(cur.Next().ok());
    }
  }
  // level-1 item count == leaves; level-1 node count == internals.
  const double fanout = static_cast<double>(leaves) / internals;
  EXPECT_GT(fanout, 8);
  EXPECT_LT(fanout, 128);
}

TEST(ScanOrderTest, OrderedStructuresScanSorted) {
  for (IndexKind kind : {IndexKind::kPos, IndexKind::kMvmb, IndexKind::kMpt,
                         IndexKind::kProlly}) {
    auto store = NewInMemoryNodeStore();
    auto index = MakeIndex(kind, store);
    Rng rng(31);
    std::vector<KV> kvs;
    for (int i = 0; i < 300; ++i) {
      kvs.push_back(KV{rng.Bytes(1 + rng.Uniform(20)), "v"});
    }
    auto root = index->PutBatch(index->EmptyRoot(), kvs);
    ASSERT_TRUE(root.ok());
    std::string prev;
    bool first = true;
    ASSERT_TRUE(index->Scan(*root, [&](Slice k, Slice) {
      if (!first) EXPECT_LT(Slice(prev).compare(k), 0) << KindName(kind);
      prev = k.ToString();
      first = false;
    }).ok());
  }
}


TEST(ConcurrencyTest, ConcurrentReadersAcrossVersionsWhileWriting) {
  // Immutability means readers need no coordination: many threads read
  // different versions while a writer produces new ones.
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  auto r0 = tree.PutBatch(Hash::Zero(), MakeKvs(2000));
  ASSERT_TRUE(r0.ok());
  std::vector<Hash> versions{*r0};
  std::atomic<bool> stop{false};
  std::atomic<int> read_failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Snapshot a version; reads against it are wait-free w.r.t. the
        // writer because versions are never mutated in place.
        const Hash v = versions[rng.Uniform(versions.size())];
        const int k = static_cast<int>(rng.Uniform(2000));
        auto got = tree.Get(v, TKey(k), nullptr);
        if (!got.ok() || !got->has_value()) {
          read_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Hash head = *r0;
  for (int round = 0; round < 30; ++round) {
    std::vector<KV> batch;
    for (int i = 0; i < 50; ++i) {
      const int k = (round * 53 + i * 7) % 2000;
      batch.push_back(KV{TKey(k), TVal(k, round + 1)});
    }
    auto next = tree.PutBatch(head, batch);
    ASSERT_TRUE(next.ok());
    head = *next;
    // Note: readers only index into the stable prefix of `versions`; we
    // never resize while they read (capacity reserved up front).
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(read_failures.load(), 0);
}

}  // namespace
}  // namespace siri
