// Copyright (c) 2026 The siri Authors. MIT license.
//
// Group-commit publish pipeline (version/group_commit.h): the combining
// commit queue that batches K racing committers of one branch into one
// combined merge + one staged flush + one head swing. The deterministic
// tests drive PublishCombined (exactly what a leader does with a gathered
// batch) so batch composition is hand-controlled; the threaded tests and
// the `stress`-labeled rerun race real Publish calls through the lanes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "index/pos/pos_tree.h"
#include "store/file_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"
#include "version/group_commit.h"
#include "version/occ.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    index_ = std::make_unique<PosTree>(store_);
    mgr_ = std::make_unique<BranchManager>(store_);
    base_root_ = Put(index_->EmptyRoot(), MakeKvs(10));
  }

  Hash Put(const Hash& root, std::vector<KV> kvs) {
    auto r = index_->PutBatch(root, std::move(kvs));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  std::vector<KV> Keys(const std::string& prefix, int n) {
    std::vector<KV> kvs;
    for (int i = 0; i < n; ++i) {
      kvs.push_back(KV{prefix + "/" + std::to_string(i), "v" + prefix});
    }
    return kvs;
  }

  PublishSpec Spec(const std::string& branch, const Hash& new_root,
                   const std::string& author,
                   const std::optional<Hash>& expected_head) {
    PublishSpec s;
    s.index = index_.get();
    s.branch = branch;
    s.new_root = new_root;
    s.author = author;
    s.message = "by " + author;
    s.expected_head = expected_head;
    return s;
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<PosTree> index_;
  std::unique_ptr<BranchManager> mgr_;
  Hash base_root_;
};

// Three committers, all built on the same head, gathered into one batch:
// one combined publish lands all three. The head is a single combined
// commit whose parents are [old head, content_a, content_b, content_c],
// every author's keys are present, and each content commit preserves its
// author's lineage untouched.
TEST_F(GroupCommitTest, CombinedBatchLandsEveryMemberInOnePublish) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  CommitCombiner combiner(mgr_.get());
  std::vector<PublishSpec> specs;
  for (const char* who : {"a", "b", "c"}) {
    specs.push_back(
        Spec("main", Put(base_root_, Keys(who, 4)), who, *c0));
  }
  auto results = combiner.PublishCombined(specs);
  ASSERT_EQ(results.size(), 3u);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();

  // All three share one publish: same head, one combined wrapper.
  const Hash head = results[0]->head;
  for (auto& r : results) {
    EXPECT_EQ(r->head, head);
    EXPECT_EQ(r->merge_commits, 1);
    EXPECT_EQ(r->cas_failures, 0);
  }
  EXPECT_EQ(*mgr_->Head("main"), head);

  auto combined = mgr_->ReadCommit(head);
  ASSERT_TRUE(combined.ok());
  ASSERT_EQ(combined->parents.size(), 4u);
  EXPECT_EQ(combined->parents[0], *c0);  // first parent: the prior head
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(combined->parents[i + 1], results[i]->commit);
    auto content = mgr_->ReadCommit(results[i]->commit);
    ASSERT_TRUE(content.ok());
    ASSERT_EQ(content->parents.size(), 1u);
    EXPECT_EQ(content->parents[0], *c0);  // lineage preserved
    EXPECT_LT(content->sequence, combined->sequence);
  }

  // No author's keys lost, base intact.
  auto content = Dump(*index_, combined->root);
  for (const char* who : {"a", "b", "c"}) {
    for (const KV& kv : Keys(who, 4)) EXPECT_EQ(content.at(kv.key), kv.value);
  }
  for (const KV& kv : MakeKvs(10)) EXPECT_EQ(content.at(kv.key), kv.value);

  const BranchStats stats = mgr_->branch_stats("main");
  EXPECT_EQ(stats.commits, 2u);  // init + ONE combined head swing
  EXPECT_EQ(stats.combined_commits, 3u);
  EXPECT_EQ(combiner.stats().publishes, 1u);
  EXPECT_EQ(combiner.stats().combined_commits, 3u);
}

// A batch of racing branch *creators*: the combined commit has no head
// parent, the content commits are parentless creation commits.
TEST_F(GroupCommitTest, CombinedCreationRaceMergesFromEmptyBase) {
  CommitCombiner combiner(mgr_.get());
  std::vector<PublishSpec> specs;
  for (const char* who : {"a", "b"}) {
    specs.push_back(Spec("fresh", Put(index_->EmptyRoot(), Keys(who, 3)), who,
                         std::nullopt));
  }
  auto results = combiner.PublishCombined(specs);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto combined = mgr_->ReadCommit(results[0]->head);
  ASSERT_TRUE(combined.ok());
  ASSERT_EQ(combined->parents.size(), 2u);  // no prior head, two contents
  auto content = Dump(*index_, combined->root);
  for (const char* who : {"a", "b"}) {
    for (const KV& kv : Keys(who, 3)) EXPECT_EQ(content.at(kv.key), kv.value);
  }
}

// More specs than one commit can parent (16-parent decode limit): the
// combine chains maximal batches; every head stays decodable and no
// member is lost.
TEST_F(GroupCommitTest, OversizedBatchChainsWithinParentLimit) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  CommitCombiner combiner(mgr_.get());
  std::vector<PublishSpec> specs;
  for (int i = 0; i < 20; ++i) {
    const std::string who = "m" + std::to_string(i);
    specs.push_back(Spec("main", Put(base_root_, Keys(who, 2)), who, *c0));
  }
  auto results = combiner.PublishCombined(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();

  // The whole history — including both combined commits — decodes and
  // walks, and every member's keys are present at the final head.
  auto head = mgr_->Head("main");
  ASSERT_TRUE(head.ok());
  auto log = mgr_->Log(*head, std::numeric_limits<size_t>::max());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  for (const auto& [h, c] : *log) EXPECT_LE(c.parents.size(), 16u);
  auto head_commit = mgr_->ReadCommit(*head);
  ASSERT_TRUE(head_commit.ok());
  auto content = Dump(*index_, head_commit->root);
  for (int i = 0; i < 20; ++i) {
    for (const KV& kv : Keys("m" + std::to_string(i), 2)) {
      EXPECT_EQ(content.at(kv.key), kv.value);
    }
  }
  EXPECT_EQ(combiner.stats().publishes, 2u);  // 15 + 5
  EXPECT_EQ(mgr_->branch_stats("main").combined_commits, 20u);
}

// Two members of one batch write the same key divergently with no
// resolver: the first folds in cleanly, the second conflicts inside the
// combined merge, is dropped WITH its partial pages, and falls back to an
// individual CommitWithMerge retry — which also conflicts. The winner's
// value survives at the head, and the loser's whole adventure wrote
// exactly zero extra pages (the only store offer of the publish is the
// winner's content commit object).
TEST_F(GroupCommitTest, InBatchConflictFallsBackToIndividualRetry) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  CommitCombiner combiner(mgr_.get());
  std::vector<PublishSpec> specs = {
      Spec("main", Put(base_root_, {{"shared", "alice's"}}), "alice", *c0),
      Spec("main", Put(base_root_, {{"shared", "bob's"}}), "bob", *c0),
  };
  const uint64_t puts_before = store_->stats().puts;
  auto results = combiner.PublishCombined(specs);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_FALSE(results[1].ok());
  EXPECT_TRUE(results[1].status().IsConflict());
  EXPECT_EQ(combiner.stats().fallbacks, 1u);

  // Alice's batch shrank to a sole survivor whose expectation matched the
  // head: no wrapper commit, the head IS her content commit, and the only
  // store offer of the whole publish is that one commit object. Bob's
  // combined attempt and his individual retry both wrote nothing.
  EXPECT_EQ(results[0]->merge_commits, 0);
  EXPECT_EQ(*mgr_->Head("main"), results[0]->commit);
  EXPECT_EQ(store_->stats().puts - puts_before, 1u);

  auto head = mgr_->ReadCommit(*mgr_->Head("main"));
  ASSERT_TRUE(head.ok());
  auto got = index_->Get(head->root, "shared", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "alice's");
}

// With a resolver in the combiner's merge options, the same divergent
// batch resolves inside the combined merge — both members land in one
// publish.
TEST_F(GroupCommitTest, ResolverResolvesInBatchConflictInsideCombine) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  GroupCommitOptions opts;
  opts.merge.resolver = [](const std::string&,
                           const std::optional<std::string>& ours,
                           const std::optional<std::string>&) { return ours; };
  CommitCombiner combiner(mgr_.get(), opts);
  std::vector<PublishSpec> specs = {
      Spec("main", Put(base_root_, {{"shared", "alice's"}}), "alice", *c0),
      Spec("main", Put(base_root_, {{"shared", "bob's"}}), "bob", *c0),
  };
  auto results = combiner.PublishCombined(specs);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(results[0]->head, results[1]->head);
  EXPECT_EQ(combiner.stats().fallbacks, 0u);
  auto head = mgr_->ReadCommit(results[0]->head);
  ASSERT_TRUE(head.ok());
  auto got = index_->Get(head->root, "shared", nullptr);
  ASSERT_TRUE(got.ok());
  // The combine keeps CommitWithMerge's orientation: the member being
  // folded is "ours". Bob is the member merged against alice's
  // already-folded value, so the ours-wins resolver keeps bob's — the
  // same answer bob would get losing an individual head race to alice.
  EXPECT_EQ(**got, "bob's");
}

// A member whose expectation is stale relative to the batch head (it
// built before an earlier commit landed) is folded in via its merge base,
// exactly like an individual merge retry would.
TEST_F(GroupCommitTest, StaleMemberFoldsInViaMergeBase) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());
  // Bob builds against c0...
  const Hash root_b = Put(base_root_, Keys("b", 3));
  // ...then Alice lands first, individually.
  const Hash root_a = Put(base_root_, Keys("a", 3));
  CasResult a = mgr_->CommitOnBranchIf("main", *c0, root_a, "alice", "A");
  ASSERT_TRUE(a.ok());

  CommitCombiner combiner(mgr_.get());
  // Carol builds on the new head; Bob's expectation is stale.
  const Hash root_c = Put(root_a, Keys("c", 3));
  std::vector<PublishSpec> specs = {
      Spec("main", root_c, "carol", a.commit),
      Spec("main", root_b, "bob", *c0),
  };
  auto results = combiner.PublishCombined(specs);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(results[0]->head, results[1]->head);

  auto combined = mgr_->ReadCommit(results[0]->head);
  ASSERT_TRUE(combined.ok());
  auto content = Dump(*index_, combined->root);
  for (const char* who : {"a", "b", "c"}) {
    for (const KV& kv : Keys(who, 3)) EXPECT_EQ(content.at(kv.key), kv.value);
  }
  // Bob's content commit still claims his true parent, c0.
  auto bob = mgr_->ReadCommit(results[1]->commit);
  ASSERT_TRUE(bob.ok());
  ASSERT_EQ(bob->parents.size(), 1u);
  EXPECT_EQ(bob->parents[0], *c0);
}

// A lost-ack replay arriving in a LATER batch: its expectation is stale
// because the original already landed, and the identical content commit
// is reachable from the head — the combiner acks the original landing
// without executing. solo+combined+fallbacks counts the two real
// executions only, exactly-once accounting under replays.
TEST_F(GroupCommitTest, StaleReplayInLaterBatchDeduplicatesWithoutCounting) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  CommitCombiner combiner(mgr_.get());
  const PublishSpec original =
      Spec("main", Put(base_root_, Keys("a", 4)), "a", *c0);
  auto first = combiner.Publish(original);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->already_applied);

  // The ack was lost in flight; the client replays the identical publish,
  // and a fresh committer happens to share its batch.
  const PublishSpec fresh =
      Spec("main", Put(base_root_, Keys("b", 4)), "b", first->head);
  auto results = combiner.PublishCombined({original, fresh});
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_TRUE(results[1].ok()) << results[1].status().ToString();
  EXPECT_TRUE(results[0]->already_applied);
  EXPECT_EQ(results[0]->commit, first->commit);
  EXPECT_FALSE(results[1]->already_applied);

  const auto s = combiner.stats();
  EXPECT_EQ(s.solo_commits + s.combined_commits + s.fallbacks, 2u);
  // History holds exactly a's commit once: the fresh member shrank to a
  // sole survivor, so the head is b's content commit on top of it.
  EXPECT_EQ(mgr_->branch_stats("main").commits, 3u);  // c0, a, b
}

// The replay can even share the SAME batch as its original (the original
// was still queued when the replay arrived). The batch stages the content
// commit once — no duplicate parent in the combined commit — and both
// requests ack the same landing, with only real executions counted.
TEST_F(GroupCommitTest, TwinReplayInSameBatchAcksOriginalsLandingOnce) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  CommitCombiner combiner(mgr_.get());
  const PublishSpec pub = Spec("main", Put(base_root_, Keys("a", 4)), "a", *c0);
  const PublishSpec fresh =
      Spec("main", Put(base_root_, Keys("b", 4)), "b", *c0);
  auto results = combiner.PublishCombined({pub, pub, fresh});
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_FALSE(results[0]->already_applied);
  EXPECT_TRUE(results[1]->already_applied);
  EXPECT_EQ(results[1]->commit, results[0]->commit);
  EXPECT_EQ(results[1]->head, results[0]->head);

  // Combined parents: [c0, content_a, content_b] — a's content exactly
  // once despite two requests carrying it.
  auto combined = mgr_->ReadCommit(results[0]->head);
  ASSERT_TRUE(combined.ok());
  ASSERT_EQ(combined->parents.size(), 3u);
  EXPECT_EQ(combined->parents[0], *c0);

  const auto s = combiner.stats();
  EXPECT_EQ(s.solo_commits + s.combined_commits + s.fallbacks, 2u);

  auto content = Dump(*index_, combined->root);
  for (const char* who : {"a", "b"}) {
    for (const KV& kv : Keys(who, 4)) EXPECT_EQ(content.at(kv.key), kv.value);
  }
}

// A solo committer through the threaded Publish path never pays the
// publish window: with a multi-second window configured, a lone publish
// returns in a fraction of it.
TEST_F(GroupCommitTest, SoloCommitterPaysNoPublishWindowWait) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  GroupCommitOptions opts;
  opts.window_micros = 2000000;  // 2s: a paid window would be unmissable
  CommitCombiner combiner(mgr_.get(), opts);

  Timer timer;
  auto r = combiner.Publish(Spec("main", Put(base_root_, Keys("solo", 4)),
                                 "solo", *c0));
  const double secs = timer.ElapsedSeconds();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->merge_commits, 0);  // plain fast-path commit, no wrapper
  EXPECT_LT(secs, 1.0);
  EXPECT_EQ(combiner.stats().solo_commits, 1u);
  EXPECT_EQ(*mgr_->Head("main"), r->commit);
}

// Shutdown drains cleanly: concurrent publishers all complete (no hang,
// nothing lost), and publishes after shutdown still work — uncombined,
// straight through CommitWithMerge.
TEST_F(GroupCommitTest, ShutdownDrainsQueueAndKeepsCommitting) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  GroupCommitOptions opts;
  opts.window_micros = 500;
  opts.merge.max_retries = std::numeric_limits<int>::max();
  CommitCombiner combiner(mgr_.get(), opts);

  constexpr int kThreads = 4;
  constexpr int kCommits = 3;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int c = 0; c < kCommits; ++c) {
        auto head = mgr_->Head("main");
        ASSERT_TRUE(head.ok());
        auto head_commit = mgr_->ReadCommit(*head);
        ASSERT_TRUE(head_commit.ok());
        auto root = index_->PutBatch(
            head_commit->root,
            Keys("w" + std::to_string(t) + "c" + std::to_string(c), 2));
        ASSERT_TRUE(root.ok());
        auto r = combiner.Publish(
            Spec("main", *root, "w" + std::to_string(t), *head));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Shut down while publishers are mid-flight: Shutdown must wait for the
  // lanes to drain, never strand a waiter.
  combiner.Shutdown();
  for (auto& w : workers) w.join();

  // Every committed key is at the final head.
  auto head = mgr_->ReadCommit(*mgr_->Head("main"));
  ASSERT_TRUE(head.ok());
  auto content = Dump(*index_, head->root);
  for (int t = 0; t < kThreads; ++t) {
    for (int c = 0; c < kCommits; ++c) {
      for (const KV& kv :
           Keys("w" + std::to_string(t) + "c" + std::to_string(c), 2)) {
        EXPECT_EQ(content.at(kv.key), kv.value) << "lost " << kv.key;
      }
    }
  }

  // Post-shutdown publishes run inline and still land.
  auto after = combiner.Publish(Spec(
      "main", Put(head->root, Keys("after", 2)), "late", *mgr_->Head("main")));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*mgr_->Head("main"), after->head);
}

// --- Publish-cost accounting (file store: fsyncs) --------------------------

TEST(GroupCommitAccountingTest, CombinedBatchCostsExactlyOneFsync) {
  const std::string path =
      ::testing::TempDir() + "group_commit_fsync.sirilog";
  std::remove(path.c_str());
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path, &store).ok());
  PosTree index(store);
  BranchManager mgr(store);

  const Hash base_root = *index.PutBatch(index.EmptyRoot(), MakeKvs(10));
  auto c0 = mgr.CommitOnBranch("main", base_root, "init", "base");
  ASSERT_TRUE(c0.ok());

  CommitCombiner combiner(&mgr);
  std::vector<PublishSpec> specs;
  for (const char* who : {"a", "b", "c", "d"}) {
    PublishSpec s;
    s.index = &index;
    s.branch = "main";
    s.new_root = *index.PutBatch(
        base_root, {{std::string(who) + "/key", std::string("v") + who}});
    s.author = who;
    s.message = who;
    s.expected_head = *c0;
    specs.push_back(std::move(s));
  }

  // Four combined commits: ONE staged flush, hence exactly ONE fsync.
  const uint64_t fsyncs_before = store->fsync_count();
  auto results = combiner.PublishCombined(specs);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(store->fsync_count(), fsyncs_before + 1);
  const BranchStats stats = mgr.branch_stats("main");
  EXPECT_EQ(stats.combined_commits, 4u);

  std::remove(path.c_str());
}

// --- Publish-cost accounting (client store: upload RPCs) -------------------

TEST(GroupCommitAccountingTest, CombinedBatchCostsExactlyOneUploadRpc) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  PosTree server_index(server_store);
  const Hash base_root =
      *server_index.PutBatch(server_index.EmptyRoot(), MakeKvs(10));
  BranchManager* mgr = servlet.branches();
  auto c0 = mgr->CommitOnBranch("main", base_root, "init", "base");
  ASSERT_TRUE(c0.ok());

  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 1 << 20, 0);
  auto client_index = server_index.WithStore(client_store);

  std::vector<PublishSpec> specs;
  for (const char* who : {"a", "b", "c"}) {
    PublishSpec s;
    s.index = client_index.get();
    s.branch = "main";
    s.new_root = *client_index->PutBatch(
        base_root, {{std::string(who) + "/key", std::string("v") + who}});
    s.author = who;
    s.message = who;
    s.expected_head = *c0;
    specs.push_back(std::move(s));
  }

  // Three combined commits through the client boundary: the whole staged
  // publish — merged pages, three content commits, the combined commit —
  // ships in exactly ONE PutMany upload RPC.
  const uint64_t puts_before = client_store->remote_stats().remote_puts;
  auto results = servlet.combiner()->PublishCombined(specs);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(client_store->remote_stats().remote_puts, puts_before + 1);

  // And everything is readable server-side.
  auto head = mgr->ReadCommit(results[0]->head);
  ASSERT_TRUE(head.ok());
  for (const char* who : {"a", "b", "c"}) {
    auto got = server_index.Get(head->root, std::string(who) + "/key", nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
  }
}

// --- Scheduler-driven races through the real Publish lanes -----------------

/// Workload multiplier: 1 by default, larger under SIRI_STRESS=1 (the
/// `stress`-labeled CTest rerun the TSan job executes).
int StressFactor() {
  const char* e = std::getenv("SIRI_STRESS");
  return (e != nullptr && e[0] == '1') ? 6 : 1;
}

TEST(GroupCommitStressTest, WritersRaceOneBranchThroughCombiner) {
  const int kThreads = 4;
  const int commits = 4 * StressFactor();
  auto store = NewInMemoryNodeStore();
  PosTree index(store);
  BranchManager mgr(store);
  const Hash base = *index.PutBatch(index.EmptyRoot(), MakeKvs(100));
  ASSERT_TRUE(mgr.CommitOnBranch("main", base, "init", "base").ok());

  GroupCommitOptions opts;
  opts.window_micros = 200;
  opts.merge.max_retries = std::numeric_limits<int>::max();
  CommitCombiner combiner(&mgr, opts);

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int c = 0; c < commits; ++c) {
        auto head = mgr.Head("main");
        ASSERT_TRUE(head.ok());
        auto head_commit = mgr.ReadCommit(*head);
        ASSERT_TRUE(head_commit.ok());
        std::vector<KV> batch;
        for (int k = 0; k < 3; ++k) {
          batch.push_back(KV{"w" + std::to_string(t) + "/c" +
                                 std::to_string(c) + "/k" + std::to_string(k),
                             "v"});
        }
        auto root = index.PutBatch(head_commit->root, std::move(batch));
        ASSERT_TRUE(root.ok());
        // Hand the core away inside the widest race window so commits
        // pile into the combiner even on a single-core host.
        std::this_thread::yield();
        PublishSpec spec;
        spec.index = &index;
        spec.branch = "main";
        spec.new_root = *root;
        spec.author = "w" + std::to_string(t);
        spec.message = "c" + std::to_string(c);
        spec.expected_head = *head;
        auto r = combiner.Publish(spec);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  // Zero lost updates: every writer's every key at the final head.
  auto head_commit = mgr.ReadCommit(*mgr.Head("main"));
  ASSERT_TRUE(head_commit.ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int c = 0; c < commits; ++c) {
      for (int k = 0; k < 3; ++k) {
        const std::string key = "w" + std::to_string(t) + "/c" +
                                std::to_string(c) + "/k" + std::to_string(k);
        auto got = index.Get(head_commit->root, key, nullptr);
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(got->has_value()) << "lost update: " << key;
      }
    }
  }

  // Every content commit is reachable from the head, exactly once, and
  // sequences increase strictly along the first-parent chain.
  auto log = mgr.Log(*mgr.Head("main"), std::numeric_limits<size_t>::max());
  ASSERT_TRUE(log.ok());
  uint64_t content_commits = 0;
  for (const auto& [h, c] : *log) {
    // Content commits carry a writer author and a linear (≤ 1 parent)
    // lineage; two-parent merge commits from individual retries share the
    // writer's author but are wrappers, not content.
    if (c.author.rfind("w", 0) == 0 && c.parents.size() <= 1) {
      ++content_commits;
    }
  }
  EXPECT_EQ(content_commits, static_cast<uint64_t>(kThreads) * commits);
  Hash cursor = *mgr.Head("main");
  for (;;) {
    auto c = mgr.ReadCommit(cursor);
    ASSERT_TRUE(c.ok());
    if (c->parents.empty()) break;
    auto parent = mgr.ReadCommit(c->parents[0]);
    ASSERT_TRUE(parent.ok());
    EXPECT_LT(parent->sequence, c->sequence);
    cursor = c->parents[0];
  }
  // The combiner must have been exercised (batches may degenerate to
  // solos under an adversarial scheduler, but publishes always happen).
  EXPECT_GT(combiner.stats().publishes + combiner.stats().solo_commits, 0u);
}

}  // namespace
}  // namespace siri
