// Copyright (c) 2026 The siri Authors. MIT license.
//
// Node codec: canonical serialization round trips, corruption detection,
// in-node search helpers, and nibble-path encoding for MPT.

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/sha256.h"
#include "index/mpt/nibbles.h"
#include "index/ordered/node_codec.h"

namespace siri {
namespace {

TEST(NodeCodecTest, LeafRoundTrip) {
  std::vector<KV> entries = {{"a", "1"}, {"b", ""}, {"cc", std::string(500, 'x')}};
  const std::string node = EncodeLeaf(entries);
  EXPECT_TRUE(IsLeafNode(node));
  std::vector<KV> back;
  ASSERT_TRUE(DecodeLeaf(node, &back).ok());
  EXPECT_EQ(back, entries);
}

TEST(NodeCodecTest, InternalRoundTrip) {
  std::vector<ChildEntry> entries;
  for (int i = 0; i < 5; ++i) {
    entries.push_back({"key" + std::to_string(i),
                       Sha256::Digest("child" + std::to_string(i))});
  }
  const std::string node = EncodeInternal(entries);
  EXPECT_FALSE(IsLeafNode(node));
  std::vector<ChildEntry> back;
  ASSERT_TRUE(DecodeInternal(node, &back).ok());
  ASSERT_EQ(back.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].key, entries[i].key);
    EXPECT_EQ(back[i].hash, entries[i].hash);
  }
}

TEST(NodeCodecTest, EmptyLeafRoundTrip) {
  const std::string node = EncodeLeaf({});
  std::vector<KV> back;
  ASSERT_TRUE(DecodeLeaf(node, &back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(NodeCodecTest, EncodingIsCanonical) {
  // Equal content => equal bytes => equal digest (dedup substrate).
  std::vector<KV> entries = {{"k1", "v1"}, {"k2", "v2"}};
  EXPECT_EQ(EncodeLeaf(entries), EncodeLeaf(entries));
  EXPECT_EQ(Sha256::Digest(EncodeLeaf(entries)),
            Sha256::Digest(EncodeLeaf(entries)));
}

TEST(NodeCodecTest, SaltChangesBytes) {
  std::vector<KV> entries = {{"k", "v"}};
  EXPECT_NE(EncodeLeaf(entries, 0), EncodeLeaf(entries, 1));
  std::vector<KV> back;
  ASSERT_TRUE(DecodeLeaf(EncodeLeaf(entries, 7), &back).ok());
  EXPECT_EQ(back, entries);  // salt is ignored on decode
}

TEST(NodeCodecTest, DecodeRejectsWrongTag) {
  std::vector<KV> leaf_back;
  EXPECT_TRUE(DecodeLeaf(EncodeInternal({}), &leaf_back).IsCorruption());
  std::vector<ChildEntry> int_back;
  EXPECT_TRUE(DecodeInternal(EncodeLeaf({}), &int_back).IsCorruption());
}

TEST(NodeCodecTest, DecodeRejectsTruncation) {
  std::vector<KV> entries = {{"key", "value"}};
  std::string node = EncodeLeaf(entries);
  node.resize(node.size() - 2);
  std::vector<KV> back;
  EXPECT_TRUE(DecodeLeaf(node, &back).IsCorruption());
}

TEST(NodeCodecTest, DecodeRejectsTrailingGarbage) {
  std::string node = EncodeLeaf({{"k", "v"}});
  node += "garbage";
  std::vector<KV> back;
  EXPECT_TRUE(DecodeLeaf(node, &back).IsCorruption());
}

TEST(NodeCodecTest, PayloadStreamingMatchesWholeEncode) {
  // Chunk builders accumulate entry bytes incrementally; the result must be
  // identical to encoding the vector at once.
  std::vector<KV> entries = {{"a", "1"}, {"bb", "22"}, {"ccc", "333"}};
  std::string payload;
  for (const KV& e : entries) AppendLeafEntryBytes(&payload, e.key, e.value);
  EXPECT_EQ(EncodeLeafFromPayload(entries.size(), payload), EncodeLeaf(entries));
}

TEST(NodeCodecTest, ChildIndexForPicksCoveringChild) {
  std::vector<ChildEntry> entries = {
      {"b", Hash()}, {"f", Hash()}, {"m", Hash()}};
  EXPECT_EQ(ChildIndexFor(entries, "a"), 0u);  // below first: clamp left
  EXPECT_EQ(ChildIndexFor(entries, "b"), 0u);
  EXPECT_EQ(ChildIndexFor(entries, "c"), 0u);
  EXPECT_EQ(ChildIndexFor(entries, "f"), 1u);
  EXPECT_EQ(ChildIndexFor(entries, "k"), 1u);
  EXPECT_EQ(ChildIndexFor(entries, "m"), 2u);
  EXPECT_EQ(ChildIndexFor(entries, "zzz"), 2u);
}

TEST(NodeCodecTest, LeafLowerBoundFindsExactAndInsertPoint) {
  std::vector<KV> entries = {{"b", "1"}, {"d", "2"}, {"f", "3"}};
  bool found = false;
  EXPECT_EQ(LeafLowerBound(entries, "d", &found), 1u);
  EXPECT_TRUE(found);
  EXPECT_EQ(LeafLowerBound(entries, "c", &found), 1u);
  EXPECT_FALSE(found);
  EXPECT_EQ(LeafLowerBound(entries, "a", &found), 0u);
  EXPECT_FALSE(found);
  EXPECT_EQ(LeafLowerBound(entries, "z", &found), 3u);
  EXPECT_FALSE(found);
}

TEST(NibblesTest, KeyToNibblesExpandsBytes) {
  const Nibbles n = KeyToNibbles(std::string("\x4f\xa0", 2));
  ASSERT_EQ(n.size(), 4u);
  EXPECT_EQ(n[0], 0x4);
  EXPECT_EQ(n[1], 0xf);
  EXPECT_EQ(n[2], 0xa);
  EXPECT_EQ(n[3], 0x0);
}

TEST(NibblesTest, RoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const std::string key = rng.Bytes(rng.Uniform(64));
    EXPECT_EQ(NibblesToKey(KeyToNibbles(key)), key);
  }
}

TEST(NibblesTest, NibbleOrderMatchesByteOrder) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::string a = rng.Bytes(1 + rng.Uniform(10));
    const std::string b = rng.Bytes(1 + rng.Uniform(10));
    const Nibbles na = KeyToNibbles(a), nb = KeyToNibbles(b);
    const bool byte_lt = a < b;
    const bool nib_lt = std::lexicographical_compare(na.begin(), na.end(),
                                                     nb.begin(), nb.end());
    EXPECT_EQ(byte_lt, nib_lt) << i;
  }
}

TEST(NibblesTest, PathEncodingRoundTrip) {
  Rng rng(8);
  for (size_t len : {0u, 1u, 2u, 7u, 8u, 33u}) {
    Nibbles path;
    for (size_t i = 0; i < len; ++i) {
      path.push_back(static_cast<uint8_t>(rng.Uniform(16)));
    }
    std::string buf;
    EncodeNibblePath(&buf, path.data(), path.size());
    Slice in(buf);
    Nibbles back;
    ASSERT_TRUE(DecodeNibblePath(&in, &back));
    EXPECT_EQ(back, path);
    EXPECT_TRUE(in.empty());
  }
}

TEST(NibblesTest, CommonPrefixLength) {
  const Nibbles a = {1, 2, 3, 4};
  const Nibbles b = {1, 2, 9};
  EXPECT_EQ(CommonNibblePrefix(a.data(), a.size(), b.data(), b.size()), 2u);
  EXPECT_EQ(CommonNibblePrefix(a.data(), a.size(), a.data(), a.size()), 4u);
  EXPECT_EQ(CommonNibblePrefix(a.data(), 0, b.data(), b.size()), 0u);
}

}  // namespace
}  // namespace siri
