// Copyright (c) 2026 The siri Authors. MIT license.
//
// System layer: Forkbase servlet/client node cache behavior (§5.6.1) and
// the blockchain ledger simulation (§5.1.3).

#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "index/pos/pos_tree.h"
#include "system/forkbase.h"
#include "system/ledger.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace siri {
namespace {

using testing_util::MakeKvs;
using testing_util::TKey;

TEST(NodeCacheTest, LookupAfterInsertHits) {
  NodeCache cache(1 << 20);
  const Hash h = Sha256::Digest("x");
  cache.Insert(h, std::make_shared<const std::string>("payload"));
  auto got = cache.Lookup(h);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "payload");
}

TEST(NodeCacheTest, EvictsLruWhenOverCapacity) {
  // One shard: exact global LRU order is observable.
  NodeCache cache(100, /*num_shards=*/1);
  const Hash a = Sha256::Digest("a");
  const Hash b = Sha256::Digest("b");
  const Hash c = Sha256::Digest("c");
  cache.Insert(a, std::make_shared<const std::string>(std::string(60, 'a')));
  cache.Insert(b, std::make_shared<const std::string>(std::string(60, 'b')));
  // a is LRU and must be gone; b stays.
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(b), nullptr);
  // Touch b, insert c: b stays hot.
  cache.Insert(c, std::make_shared<const std::string>(std::string(60, 'c')));
  EXPECT_NE(cache.Lookup(c), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);  // b was evicted by c (b size 60+60>100)
}

TEST(NodeCacheTest, ClearEmptiesEverything) {
  NodeCache cache(1000);
  cache.Insert(Sha256::Digest("k"),
               std::make_shared<const std::string>("v"));
  cache.Clear();
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.Lookup(Sha256::Digest("k")), nullptr);
}

TEST(NodeCacheTest, ReinsertRefreshesRecency) {
  // Regression: Insert on an already-present digest used to return without
  // touching the LRU, so the entry could be evicted as if cold.
  NodeCache cache(100, /*num_shards=*/1);
  const Hash a = Sha256::Digest("a");
  const Hash b = Sha256::Digest("b");
  const Hash c = Sha256::Digest("c");
  const auto payload = [](char ch) {
    return std::make_shared<const std::string>(std::string(40, ch));
  };
  cache.Insert(a, payload('a'));
  cache.Insert(b, payload('b'));  // LRU order: b, a
  cache.Insert(a, payload('a'));  // re-insert must move a to the front
  cache.Insert(c, payload('c'));  // 120 bytes > 100: evicts the LRU entry
  EXPECT_EQ(cache.Lookup(b), nullptr);   // b was coldest
  EXPECT_NE(cache.Lookup(a), nullptr);   // a was refreshed, survives
  EXPECT_NE(cache.Lookup(c), nullptr);
  EXPECT_EQ(cache.size_bytes(), 80u);
}

TEST(NodeCacheTest, NodeLargerThanCapacityIsNotRetained) {
  NodeCache cache(50, /*num_shards=*/1);
  const Hash h = Sha256::Digest("big");
  cache.Insert(h, std::make_shared<const std::string>(std::string(200, 'x')));
  EXPECT_EQ(cache.Lookup(h), nullptr);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(NodeCacheTest, ZeroCapacityCachesNothing) {
  NodeCache cache(0);
  const Hash h = Sha256::Digest("k");
  cache.Insert(h, std::make_shared<const std::string>("v"));
  EXPECT_EQ(cache.Lookup(h), nullptr);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(NodeCacheTest, ClearThenReinsertWorks) {
  NodeCache cache(1000, /*num_shards=*/4);
  const Hash h = Sha256::Digest("k");
  cache.Insert(h, std::make_shared<const std::string>("before"));
  cache.Clear();
  cache.Insert(h, std::make_shared<const std::string>("before"));
  auto got = cache.Lookup(h);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "before");
  EXPECT_EQ(cache.size_bytes(), 6u);
}

TEST(NodeCacheTest, ShardedCacheSpreadsCapacity) {
  // With uniform SHA-256 keys and per-shard capacity, a sharded cache still
  // retains roughly its capacity's worth of hot nodes.
  NodeCache cache(64 << 10);
  EXPECT_EQ(cache.num_shards(), NodeCache::kDefaultShards);
  std::vector<Hash> keys;
  for (int i = 0; i < 64; ++i) {
    const std::string payload(512, 'a' + (i % 26));
    const Hash h = Sha256::Digest(payload + std::to_string(i));
    cache.Insert(h, std::make_shared<const std::string>(payload));
    keys.push_back(h);
  }
  // 32 KB of payload in a 64 KB cache: the vast majority survives even
  // though per-shard capacity makes eviction possible for unlucky shards.
  int hits = 0;
  for (const Hash& h : keys) hits += cache.Lookup(h) != nullptr;
  EXPECT_GE(hits, 48);
  EXPECT_LE(cache.size_bytes(), cache.capacity_bytes());
}

TEST(ForkbaseClientTest, RepeatedReadsHitCache) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 16 << 20, 0);

  // Server-side index construction.
  PosTree server_tree(server_store);
  auto root = server_tree.BuildFromSorted(MakeKvs(2000));
  ASSERT_TRUE(root.ok());

  // Client-side reads via cache.
  PosTree client_tree(client_store);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      auto got = client_tree.Get(*root, TKey(i * 7), nullptr);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(got->has_value());
    }
  }
  const auto& stats = client_store->remote_stats();
  // Rounds 2 and 3 hit the cache for every node on the paths.
  EXPECT_GT(stats.cache_hits, stats.remote_gets);
  EXPECT_GT(stats.HitRatio(), 0.5);
}

TEST(ForkbaseClientTest, ColdCacheGoesRemote) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 16 << 20, 0);
  PosTree server_tree(server_store);
  auto root = server_tree.BuildFromSorted(MakeKvs(500));
  ASSERT_TRUE(root.ok());

  PosTree client_tree(client_store);
  auto got = client_tree.Get(*root, TKey(123), nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(client_store->remote_stats().remote_gets, 0u);
  EXPECT_EQ(client_store->remote_stats().cache_hits, 0u);
}

TEST(ForkbaseClientTest, CachedNodeAnswersSizeOfAndContainsLocally) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 1 << 20, 0);

  const std::string payload(300, 'p');
  const Hash h = client_store->Put(payload);
  // Prime the cache with one remote fetch.
  ASSERT_TRUE(client_store->Get(h).ok());
  ASSERT_EQ(client_store->remote_stats().remote_gets, 1u);
  client_store->ResetOpCounters();

  // Cached node: metadata queries must not touch the servlet.
  auto size = client_store->SizeOf(h);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());
  EXPECT_TRUE(client_store->Contains(h));
  EXPECT_EQ(client_store->remote_stats().remote_gets, 0u);
  EXPECT_EQ(client_store->remote_stats().cache_hits, 2u);

  // Uncached node: the query is a (counted) remote round trip.
  const Hash cold = server_store->Put(std::string(40, 'q'));
  auto cold_size = client_store->SizeOf(cold);
  ASSERT_TRUE(cold_size.ok());
  EXPECT_EQ(*cold_size, 40u);
  EXPECT_EQ(client_store->remote_stats().remote_gets, 1u);
}

TEST(ForkbaseClientTest, WritesForwardToServer) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 1 << 20, 0);
  PosTree client_tree(client_store);
  auto root = client_tree.Put(Hash::Zero(), "k", "v");
  ASSERT_TRUE(root.ok());
  // The node is durable on the server.
  EXPECT_TRUE(server_store->Contains(*root));
}

TEST(LedgerTest, AppendAndLookup) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  Ledger ledger(&tree);
  EthDataset eth;

  std::vector<KV> probe;
  for (uint64_t b = 0; b < 5; ++b) {
    auto txs = eth.BlockRecords(b, 100);
    probe.push_back(txs[b]);  // remember one tx per block
    ASSERT_TRUE(ledger.AppendBlock(txs).ok());
  }
  EXPECT_EQ(ledger.num_blocks(), 5u);

  for (const auto& kv : probe) {
    uint64_t scanned = 0;
    auto got = ledger.Lookup(kv.key, &scanned);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, kv.value);
    EXPECT_GE(scanned, 1u);
    EXPECT_LE(scanned, 5u);
  }
}

TEST(LedgerTest, MissingTransactionScansAllBlocks) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  Ledger ledger(&tree);
  EthDataset eth;
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(ledger.AppendBlock(eth.BlockRecords(b, 50)).ok());
  }
  uint64_t scanned = 0;
  auto got = ledger.Lookup("deadbeef-no-such-hash", &scanned);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
  EXPECT_EQ(scanned, 4u);
}

TEST(LedgerTest, NewerBlocksAreScannedFirst) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  Ledger ledger(&tree);
  // The same key in two blocks: the newer block's value wins.
  ASSERT_TRUE(ledger.AppendBlock({{"txhash", "old"}}).ok());
  ASSERT_TRUE(ledger.AppendBlock({{"txhash", "new"}}).ok());
  uint64_t scanned = 0;
  auto got = ledger.Lookup("txhash", &scanned);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "new");
  EXPECT_EQ(scanned, 1u);
}

}  // namespace
}  // namespace siri
