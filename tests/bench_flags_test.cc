// Copyright (c) 2026 The siri Authors. MIT license.
//
// Bench flag validation (bench/bench_common.h): FirstUnknownFlag's
// matching rules, and ParseScale's fail-fast rejection of anything not in
// kKnownBenchFlags — a typo'd flag must abort the run instead of silently
// benchmarking the defaults and poisoning a recorded trajectory.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace siri {
namespace bench {
namespace {

/// Fabricated argv (argv[0] is the program name, as in main).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    args_.insert(args_.begin(), "bench_binary");
    ptrs_.reserve(args_.size());
    for (auto& a : args_) ptrs_.push_back(a.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

TEST(BenchFlagsTest, NoArgumentsIsClean) {
  Argv a({});
  EXPECT_EQ(FirstUnknownFlag(a.argc(), a.argv()), nullptr);
}

TEST(BenchFlagsTest, EveryKnownFlagIsAccepted) {
  Argv a({"--scale=8", "--threads=1,2,4", "--write-threads=2", "--help",
          "--threads-only", "--write-scaling-only", "--branch-commits-only",
          "--group-commit-only", "--smoke", "--transport=socket"});
  EXPECT_EQ(FirstUnknownFlag(a.argc(), a.argv()), nullptr);
}

TEST(BenchFlagsTest, ParseTransportFlagDefaultsToInproc) {
  Argv a({"--scale=2"});
  EXPECT_EQ(ParseTransportFlag(a.argc(), a.argv()), "inproc");
}

TEST(BenchFlagsTest, ParseTransportFlagAcceptsBothTransports) {
  Argv inproc({"--transport=inproc"});
  EXPECT_EQ(ParseTransportFlag(inproc.argc(), inproc.argv()), "inproc");
  Argv socket({"--transport=socket"});
  EXPECT_EQ(ParseTransportFlag(socket.argc(), socket.argv()), "socket");
}

TEST(BenchFlagsDeathTest, ParseTransportFlagRejectsUnknownValue) {
  // A misspelled transport must abort, not silently benchmark in-process
  // and record the numbers under the wrong label.
  Argv a({"--transport=sockte"});
  EXPECT_EXIT(ParseTransportFlag(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "--transport must be");
}

TEST(BenchFlagsTest, ReturnsTheFirstUnknownFlag) {
  Argv a({"--scale=4", "--sclae=8", "--also-bad"});
  const char* bad = FirstUnknownFlag(a.argc(), a.argv());
  ASSERT_NE(bad, nullptr);
  EXPECT_STREQ(bad, "--sclae=8");
}

TEST(BenchFlagsTest, PrefixFlagWithoutValueIsUnknown) {
  // "--threads=" is a prefix flag; bare "--threads" matches nothing.
  Argv a({"--threads"});
  const char* bad = FirstUnknownFlag(a.argc(), a.argv());
  ASSERT_NE(bad, nullptr);
  EXPECT_STREQ(bad, "--threads");
}

TEST(BenchFlagsTest, ExactFlagWithValueIsUnknown) {
  // "--smoke" is exact-match; "--smoke=1" is a different (bad) spelling.
  Argv a({"--smoke=1"});
  const char* bad = FirstUnknownFlag(a.argc(), a.argv());
  ASSERT_NE(bad, nullptr);
  EXPECT_STREQ(bad, "--smoke=1");
}

TEST(BenchFlagsTest, PositionalArgumentIsUnknown) {
  Argv a({"extra"});
  const char* bad = FirstUnknownFlag(a.argc(), a.argv());
  ASSERT_NE(bad, nullptr);
  EXPECT_STREQ(bad, "extra");
}

TEST(BenchFlagsTest, ParseScaleStillParsesScale) {
  Argv a({"--scale=8", "--smoke"});
  EXPECT_EQ(ParseScale(a.argc(), a.argv()), 8u);
}

TEST(BenchFlagsDeathTest, ParseScaleExitsNonZeroOnUnknownFlag) {
  Argv a({"--sclae=8"});
  EXPECT_EXIT(ParseScale(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
              "unrecognized argument '--sclae=8'");
}

}  // namespace
}  // namespace bench
}  // namespace siri
