// Copyright (c) 2026 The siri Authors. MIT license.
//
// Workload substrate: Zipfian skew, YCSB geometry (Table 2), overlap sets,
// RLP encoding, and the synthetic Wiki / Ethereum dataset shapes.

#include <gtest/gtest.h>

#include <set>

#include "workload/datasets.h"
#include "workload/rlp.h"
#include "workload/ycsb.h"
#include "workload/zipfian.h"

namespace siri {
namespace {

TEST(ZipfianTest, UniformWhenThetaZero) {
  ZipfianGenerator gen(1000, 0.0);
  std::vector<uint64_t> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[gen.Next()];
  // No item should dominate under uniformity.
  for (uint64_t c : counts) EXPECT_LT(c, 400u);
}

TEST(ZipfianTest, SkewConcentratesMass) {
  ZipfianGenerator gen(1000, 0.9);
  std::map<uint64_t, uint64_t> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next()];
  // Top item of a θ=0.9 Zipfian over 1000 items draws >5% of the mass.
  uint64_t max_count = 0;
  for (const auto& [item, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, static_cast<uint64_t>(0.05 * n));
}

TEST(ZipfianTest, RankZeroIsHottestUnscrambled) {
  ZipfianGenerator gen(100, 0.9);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[gen.NextRank()];
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
}

TEST(ZipfianTest, StaysInRange) {
  for (double theta : {0.0, 0.5, 0.9}) {
    ZipfianGenerator gen(37, theta);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.Next(), 37u);
  }
}

TEST(YcsbTest, KeysUniqueAndSized) {
  YcsbGenerator gen(1);
  auto records = gen.GenerateRecords(5000);
  std::set<std::string> keys;
  for (const auto& kv : records) {
    keys.insert(kv.key);
    EXPECT_GE(kv.key.size(), 5u);
    EXPECT_LE(kv.key.size(), 15u);
  }
  EXPECT_EQ(keys.size(), 5000u);
}

TEST(YcsbTest, ValueLengthAveragesNear256) {
  YcsbGenerator gen(2);
  auto records = gen.GenerateRecords(2000);
  uint64_t total = 0;
  for (const auto& kv : records) total += kv.value.size();
  const double avg = static_cast<double>(total) / records.size();
  EXPECT_GT(avg, 230);
  EXPECT_LT(avg, 280);
}

TEST(YcsbTest, DeterministicAcrossInstances) {
  YcsbGenerator a(3), b(3);
  EXPECT_EQ(a.GenerateRecords(100), b.GenerateRecords(100));
  EXPECT_EQ(a.KeyOf(42), b.KeyOf(42));
  EXPECT_EQ(a.ValueOf(42, 7), b.ValueOf(42, 7));
}

TEST(YcsbTest, OpsRespectWriteRatio) {
  YcsbGenerator gen(4);
  for (double ratio : {0.0, 0.5, 1.0}) {
    auto ops = gen.GenerateOps(10000, 1000, ratio, 0.0);
    uint64_t writes = 0;
    for (const auto& op : ops) {
      if (op.type == YcsbOp::Type::kWrite) ++writes;
    }
    const double measured = static_cast<double>(writes) / ops.size();
    EXPECT_NEAR(measured, ratio, 0.03);
  }
}

TEST(YcsbTest, OpsKeysComeFromDataset) {
  YcsbGenerator gen(5);
  std::set<std::string> keys;
  for (uint64_t i = 0; i < 200; ++i) keys.insert(gen.KeyOf(i));
  auto ops = gen.GenerateOps(1000, 200, 0.5, 0.5);
  for (const auto& op : ops) EXPECT_EQ(keys.count(op.key), 1u) << op.key;
}

TEST(YcsbTest, OverlapSetsShareExactFraction) {
  YcsbGenerator gen(6);
  auto sets = gen.GenerateOverlapSets(4, 1000, 0.3);
  ASSERT_EQ(sets.size(), 4u);
  std::set<std::string> first_keys;
  for (const auto& kv : sets[0]) first_keys.insert(kv.key);
  for (int p = 1; p < 4; ++p) {
    uint64_t shared = 0;
    for (const auto& kv : sets[p]) shared += first_keys.count(kv.key);
    EXPECT_EQ(shared, 300u) << "party " << p;
  }
}

TEST(YcsbTest, SplitIntoBatchesPreservesOrderAndSize) {
  std::vector<KV> kvs;
  for (int i = 0; i < 10; ++i) kvs.push_back(KV{std::to_string(i), "v"});
  auto batches = SplitIntoBatches(kvs, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[2].size(), 2u);
  EXPECT_EQ(batches[2][1].key, "9");
}

TEST(RlpTest, SingleByteEncodesAsItself) {
  EXPECT_EQ(RlpEncodeString(std::string(1, 0x42)), std::string(1, 0x42));
}

TEST(RlpTest, ShortStringGetsPrefix) {
  const std::string enc = RlpEncodeString("dog");
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(enc[0]), 0x83);
  EXPECT_EQ(enc.substr(1), "dog");
}

TEST(RlpTest, EmptyStringIs0x80) {
  const std::string enc = RlpEncodeString("");
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(static_cast<uint8_t>(enc[0]), 0x80);
}

TEST(RlpTest, LongStringUsesLengthOfLength) {
  const std::string enc = RlpEncodeString(std::string(1024, 'x'));
  EXPECT_EQ(static_cast<uint8_t>(enc[0]), 0xb9);  // 0xb7 + 2 length bytes
  EXPECT_EQ(static_cast<uint8_t>(enc[1]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(enc[2]), 0x00);
  EXPECT_EQ(enc.size(), 3u + 1024u);
}

TEST(RlpTest, UintZeroIsEmptyString) {
  const std::string enc = RlpEncodeUint(0);
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(static_cast<uint8_t>(enc[0]), 0x80);
}

TEST(RlpTest, ListEncoding) {
  // ["cat", "dog"] -> 0xc8 0x83 cat 0x83 dog (canonical example).
  const std::string enc =
      RlpEncodeList({RlpEncodeString("cat"), RlpEncodeString("dog")});
  ASSERT_EQ(enc.size(), 9u);
  EXPECT_EQ(static_cast<uint8_t>(enc[0]), 0xc8);
}

TEST(RlpTest, DecodeRoundTrip) {
  bool is_list = false;
  std::string payload;
  ASSERT_TRUE(RlpDecode(RlpEncodeString("hello world"), &is_list, &payload));
  EXPECT_FALSE(is_list);
  EXPECT_EQ(payload, "hello world");

  const std::string list =
      RlpEncodeList({RlpEncodeString("a"), RlpEncodeString("b")});
  ASSERT_TRUE(RlpDecode(list, &is_list, &payload));
  EXPECT_TRUE(is_list);
}

TEST(RlpTest, DecodeRejectsTruncation) {
  std::string enc = RlpEncodeString("hello world longer than nothing");
  enc.pop_back();
  bool is_list = false;
  std::string payload;
  EXPECT_FALSE(RlpDecode(enc, &is_list, &payload));
}

TEST(WikiDatasetTest, KeyAndValueGeometry) {
  WikiDataset wiki(2000);
  auto records = wiki.InitialRecords();
  ASSERT_EQ(records.size(), 2000u);
  uint64_t key_total = 0, val_total = 0;
  std::set<std::string> keys;
  for (const auto& kv : records) {
    EXPECT_GE(kv.key.size(), 31u);
    EXPECT_LE(kv.key.size(), 298u);
    EXPECT_GE(kv.value.size(), 1u);
    EXPECT_LE(kv.value.size(), 1036u);
    key_total += kv.key.size();
    val_total += kv.value.size();
    keys.insert(kv.key);
  }
  EXPECT_EQ(keys.size(), 2000u);  // unique URLs
  EXPECT_NEAR(static_cast<double>(key_total) / records.size(), 50.0, 20.0);
  EXPECT_NEAR(static_cast<double>(val_total) / records.size(), 96.0, 40.0);
}

TEST(WikiDatasetTest, VersionEditsTouchExistingPages) {
  WikiDataset wiki(500);
  std::set<std::string> keys;
  for (const auto& kv : wiki.InitialRecords()) keys.insert(kv.key);
  auto edits = wiki.VersionEdits(3, 0.05);
  EXPECT_GE(edits.size(), 20u);
  for (const auto& kv : edits) EXPECT_EQ(keys.count(kv.key), 1u);
  // New version, new content.
  EXPECT_NE(wiki.ValueOf(7, 1), wiki.ValueOf(7, 2));
}

TEST(EthDatasetTest, TransactionGeometry) {
  EthDataset eth;
  auto txs = eth.Block(1, 500);
  ASSERT_EQ(txs.size(), 500u);
  uint64_t total = 0;
  std::set<std::string> hashes;
  for (const auto& tx : txs) {
    EXPECT_EQ(tx.hash.size(), 64u);  // hex digest
    EXPECT_GE(tx.rlp.size(), 100u);
    EXPECT_LE(tx.rlp.size(), 57738u);
    total += tx.rlp.size();
    hashes.insert(tx.hash);
    bool is_list = false;
    std::string payload;
    EXPECT_TRUE(RlpDecode(tx.rlp, &is_list, &payload));
    EXPECT_TRUE(is_list);
  }
  EXPECT_EQ(hashes.size(), 500u);
  const double avg = static_cast<double>(total) / txs.size();
  EXPECT_GT(avg, 150);
  EXPECT_LT(avg, 1500);
}

TEST(EthDatasetTest, BlocksAreDeterministicAndDistinct) {
  EthDataset eth;
  auto a1 = eth.Block(5, 50);
  auto a2 = eth.Block(5, 50);
  ASSERT_EQ(a1.size(), a2.size());
  for (size_t i = 0; i < a1.size(); ++i) EXPECT_EQ(a1[i].hash, a2[i].hash);
  auto b = eth.Block(6, 50);
  EXPECT_NE(a1[0].hash, b[0].hash);
}

}  // namespace
}  // namespace siri
