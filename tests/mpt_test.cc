// Copyright (c) 2026 The siri Authors. MIT license.
//
// MPT-specific behavior: node splitting/collapsing around shared prefixes,
// path compaction, lookup depth ~ key length, trie-aligned diff.

#include <gtest/gtest.h>

#include "index/mpt/mpt.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;
using testing_util::TKey;

class MptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    mpt_ = std::make_unique<Mpt>(store_);
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<Mpt> mpt_;
};

TEST_F(MptTest, SharedPrefixKeysSplitCorrectly) {
  auto r = mpt_->PutBatch(Hash::Zero(), {{"abcdef", "1"},
                                         {"abcxyz", "2"},
                                         {"abc", "3"},
                                         {"zzz", "4"}});
  ASSERT_TRUE(r.ok());
  for (const auto& [k, v] : std::map<std::string, std::string>{
           {"abcdef", "1"}, {"abcxyz", "2"}, {"abc", "3"}, {"zzz", "4"}}) {
    auto got = mpt_->Get(*r, k, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value()) << k;
    EXPECT_EQ(**got, v);
  }
  // Near-miss keys must not resolve.
  EXPECT_FALSE(mpt_->Get(*r, "abcd", nullptr)->has_value());
  EXPECT_FALSE(mpt_->Get(*r, "ab", nullptr)->has_value());
  EXPECT_FALSE(mpt_->Get(*r, "abcdefg", nullptr)->has_value());
}

TEST_F(MptTest, LookupDepthTracksKeyLength) {
  // With distinct shared-prefix chains, depth grows with key length —
  // the O(L) bound of §4.1.1.
  std::vector<KV> kvs;
  std::string key;
  for (int i = 0; i < 24; ++i) {
    key.push_back('a' + (i % 3));
    kvs.push_back(KV{key, "v"});
  }
  auto r = mpt_->PutBatch(Hash::Zero(), kvs);
  ASSERT_TRUE(r.ok());
  LookupStats shallow, deep;
  ASSERT_TRUE(mpt_->Get(*r, kvs.front().key, &shallow).ok());
  ASSERT_TRUE(mpt_->Get(*r, kvs.back().key, &deep).ok());
  EXPECT_GT(deep.depth, shallow.depth);
}

TEST_F(MptTest, DeleteCollapsesBranchToLeaf) {
  // Two keys diverging at the last nibble: removing one must collapse the
  // branch, restoring the exact pre-insert digest (canonical form).
  auto r1 = mpt_->Put(Hash::Zero(), "aaa1", "x");
  ASSERT_TRUE(r1.ok());
  auto r2 = mpt_->Put(*r1, "aaa2", "y");
  ASSERT_TRUE(r2.ok());
  auto r3 = mpt_->Delete(*r2, "aaa2");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, *r1);
}

TEST_F(MptTest, DeleteCollapsesThroughExtensions) {
  auto base = mpt_->PutBatch(Hash::Zero(), {{"prefix-long-a", "1"},
                                            {"prefix-long-b", "2"}});
  ASSERT_TRUE(base.ok());
  auto with = mpt_->Put(*base, "prefix-other", "3");
  ASSERT_TRUE(with.ok());
  auto restored = mpt_->Delete(*with, "prefix-other");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, *base);
}

TEST_F(MptTest, BranchValueSurvivesChildDeletion) {
  // "ab" terminates at a branch that also routes "abc".
  auto r1 = mpt_->PutBatch(Hash::Zero(), {{"ab", "vab"}, {"abc", "vabc"},
                                          {"abd", "vabd"}});
  ASSERT_TRUE(r1.ok());
  auto r2 = mpt_->DeleteBatch(*r1, {"abc", "abd"});
  ASSERT_TRUE(r2.ok());
  auto got = mpt_->Get(*r2, "ab", nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "vab");
  EXPECT_EQ(Dump(*mpt_, *r2).size(), 1u);
}

TEST_F(MptTest, ScanYieldsLexicographicOrder) {
  auto r = mpt_->PutBatch(Hash::Zero(), MakeKvs(200));
  ASSERT_TRUE(r.ok());
  std::string prev;
  bool first = true;
  ASSERT_TRUE(mpt_->Scan(*r, [&](Slice k, Slice) {
    if (!first) EXPECT_LT(prev, k.ToString());
    prev = k.ToString();
    first = false;
  }).ok());
}

TEST_F(MptTest, DiffFindsExactChanges) {
  auto base = mpt_->PutBatch(Hash::Zero(), MakeKvs(300));
  ASSERT_TRUE(base.ok());
  auto changed = mpt_->PutBatch(
      *base, {{TKey(5), "new5"}, {TKey(250), "new250"}, {"brand-new", "x"}});
  ASSERT_TRUE(changed.ok());
  auto after_del = mpt_->Delete(*changed, TKey(100));
  ASSERT_TRUE(after_del.ok());

  auto diff = mpt_->Diff(*base, *after_del);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 4u);
  // Sorted by key: TKey(100) deleted, TKey(250)/TKey(5) modified, new added.
  std::map<std::string, std::pair<bool, bool>> presence;
  for (const auto& e : *diff) {
    presence[e.key] = {e.left.has_value(), e.right.has_value()};
  }
  EXPECT_EQ(presence.at(TKey(100)), std::make_pair(true, false));
  EXPECT_EQ(presence.at(TKey(5)), std::make_pair(true, true));
  EXPECT_EQ(presence.at(TKey(250)), std::make_pair(true, true));
  EXPECT_EQ(presence.at("brand-new"), std::make_pair(false, true));
}

TEST_F(MptTest, DiffAgainstEmptyListsEverything) {
  auto r = mpt_->PutBatch(Hash::Zero(), MakeKvs(50));
  ASSERT_TRUE(r.ok());
  auto diff = mpt_->Diff(Hash::Zero(), *r);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 50u);
  for (const auto& e : *diff) {
    EXPECT_FALSE(e.left.has_value());
    EXPECT_TRUE(e.right.has_value());
  }
}

TEST_F(MptTest, DiffPrunesSharedSubtrees) {
  auto base = mpt_->PutBatch(Hash::Zero(), MakeKvs(2000));
  ASSERT_TRUE(base.ok());
  auto changed = mpt_->Put(*base, TKey(1234), "changed");
  ASSERT_TRUE(changed.ok());
  store_->ResetOpCounters();
  auto diff = mpt_->Diff(*base, *changed);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 1u);
  // Pruning means the diff touched only the two divergent paths, not the
  // whole 2000-record trie.
  EXPECT_LT(store_->stats().gets, 100u);
}

TEST_F(MptTest, LongKeysWithDeepSharedPrefix) {
  const std::string prefix(60, 'p');
  std::vector<KV> kvs;
  for (int i = 0; i < 20; ++i) {
    kvs.push_back(KV{prefix + std::to_string(i), "v" + std::to_string(i)});
  }
  auto r = mpt_->PutBatch(Hash::Zero(), kvs);
  ASSERT_TRUE(r.ok());
  for (const auto& kv : kvs) {
    auto got = mpt_->Get(*r, kv.key, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, kv.value);
  }
}

TEST_F(MptTest, EmptyKeySupported) {
  auto r = mpt_->Put(Hash::Zero(), "", "empty-key-value");
  ASSERT_TRUE(r.ok());
  auto got = mpt_->Get(*r, "", nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "empty-key-value");
  auto r2 = mpt_->Put(*r, "a", "x");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(mpt_->Get(*r2, "", nullptr)->has_value());
}

}  // namespace
}  // namespace siri
