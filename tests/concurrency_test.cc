// Copyright (c) 2026 The siri Authors. MIT license.
//
// Multithreaded stress tests for the thread-safety contract of the store
// and system layers (node_store.h: "Implementations must be thread-safe").
// These tests are meaningful under ThreadSanitizer (cmake --preset tsan):
// a data race anywhere in the store, cache, or client path fails the run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "crypto/sha256.h"
#include "store/file_store.h"
#include "store/staging_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"
#include "version/occ.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

constexpr int kThreads = 4;

/// Releases all workers at once so their critical sections overlap.
class StartGate {
 public:
  void Wait() const {
    while (!go_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  void Open() { go_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> go_{false};
};

void RunAll(std::vector<std::thread>* threads, StartGate* gate) {
  gate->Open();
  for (auto& t : *threads) t.join();
}

// --- NodeCache ------------------------------------------------------------

TEST(ConcurrencyTest, NodeCacheConcurrentInsertLookup) {
  NodeCache cache(64 << 10);
  // Pre-populate a shared working set every thread re-reads.
  std::vector<Hash> hot;
  for (int i = 0; i < 64; ++i) {
    const std::string payload =
        std::string(128, 'a' + (i % 26)) + std::to_string(i);
    const Hash h = Sha256::Digest(payload);
    cache.Insert(h, std::make_shared<const std::string>(payload));
    hot.push_back(h);
  }

  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.Wait();
      for (int round = 0; round < 400; ++round) {
        // Shared lookups race on the LRU recency list.
        for (const Hash& h : hot) cache.Lookup(h);
        // Private inserts churn the eviction path.
        const std::string payload =
            "t" + std::to_string(t) + "r" + std::to_string(round);
        cache.Insert(Sha256::Digest(payload),
                     std::make_shared<const std::string>(payload));
      }
    });
  }
  RunAll(&threads, &gate);
  EXPECT_LE(cache.size_bytes(), cache.capacity_bytes());
}

// --- ForkbaseClientStore (the §5.6 boundary) ------------------------------

TEST(ConcurrencyTest, SharedClientStoreConcurrentReaders) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);

  auto server_index = MakeIndex(IndexKind::kPos, server_store);
  auto root = server_index->PutBatch(server_index->EmptyRoot(), MakeKvs(3000));
  ASSERT_TRUE(root.ok());

  // ONE client store shared by all reader threads: every Get races on the
  // cache's LRU bookkeeping and on RemoteStats.
  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 256 << 10, 0);
  auto client_index = server_index->WithStore(client_store);

  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.Wait();
      for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 600; ++i) {
          auto got = client_index->Get(*root, TKey((i * 7 + t) % 3000), nullptr);
          ASSERT_TRUE(got.ok());
          ASSERT_TRUE(got->has_value());
        }
      }
    });
  }
  RunAll(&threads, &gate);

  const auto stats = client_store->remote_stats();
  EXPECT_GT(stats.cache_hits + stats.remote_gets, 0u);
}

TEST(ConcurrencyTest, ManyClientsOneServlet) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto server_index = MakeIndex(IndexKind::kPos, server_store);
  auto root = server_index->PutBatch(server_index->EmptyRoot(), MakeKvs(2000));
  ASSERT_TRUE(root.ok());

  StartGate gate;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<ForkbaseClientStore>> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(
        std::make_shared<ForkbaseClientStore>(&servlet, 128 << 10, 0));
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto index = server_index->WithStore(clients[t]);
      gate.Wait();
      for (int i = 0; i < 2000; ++i) {
        auto got = index->Get(*root, TKey(i % 2000), nullptr);
        ASSERT_TRUE(got.ok());
      }
    });
  }
  RunAll(&threads, &gate);
  for (const auto& c : clients) {
    EXPECT_GT(c->remote_stats().remote_gets, 0u);
  }
}

// --- Shared store: concurrent Get/Put/Scan over all four structures -------

TEST(ConcurrencyTest, ConcurrentGetPutScanAllStructures) {
  for (IndexKind kind : AllKinds()) {
    SCOPED_TRACE(KindName(kind));
    auto store = NewInMemoryNodeStore();
    auto index = MakeIndex(kind, store);
    auto base = index->PutBatch(index->EmptyRoot(), MakeKvs(800));
    ASSERT_TRUE(base.ok());

    StartGate gate;
    std::vector<std::thread> threads;
    // Writers derive fresh versions from the shared base (copy-on-write:
    // no coordination needed beyond the store itself).
    for (int w = 0; w < 2; ++w) {
      threads.emplace_back([&, w] {
        gate.Wait();
        Hash root = *base;
        for (int round = 0; round < 6; ++round) {
          std::vector<KV> batch;
          for (int i = 0; i < 40; ++i) {
            batch.push_back(KV{"w" + std::to_string(w) + "-" + TKey(i),
                               TVal(i, round)});
          }
          auto next = index->PutBatch(root, batch);
          ASSERT_TRUE(next.ok());
          root = *next;
        }
      });
    }
    // Readers hammer the base version with point lookups and scans.
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&, r] {
        gate.Wait();
        for (int round = 0; round < 4; ++round) {
          for (int i = 0; i < 200; ++i) {
            auto got = index->Get(*base, TKey((i * 3 + r) % 800), nullptr);
            ASSERT_TRUE(got.ok());
            ASSERT_TRUE(got->has_value());
          }
          uint64_t seen = 0;
          ASSERT_TRUE(index->Scan(*base, [&seen](Slice, Slice) { ++seen; }).ok());
          EXPECT_EQ(seen, 800u);
        }
      });
    }
    RunAll(&threads, &gate);
  }
}

// --- Sharded InMemoryNodeStore under mixed Put/PutMany/Get ----------------

TEST(ConcurrencyTest, ShardedStoreConcurrentBatchedWrites) {
  // Writers flush batches (one lock per touched shard), other writers use
  // per-node Put, readers Get and scan the stats — all concurrently. Under
  // TSan this covers the per-shard locking and the atomic op counters.
  auto store = NewInMemoryNodeStore();
  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.Wait();
      for (int round = 0; round < 60; ++round) {
        if (t % 2 == 0) {
          // Batched writer: staged batch -> one PutMany.
          StagingNodeStore staging(store.get());
          std::vector<Hash> mine;
          for (int i = 0; i < 20; ++i) {
            mine.push_back(staging.Put("t" + std::to_string(t) + "r" +
                                       std::to_string(round) + "i" +
                                       std::to_string(i)));
          }
          staging.FlushBatch();
          for (const Hash& h : mine) ASSERT_TRUE(store->Get(h).ok());
        } else {
          // Per-node writer + reader.
          const Hash h =
              store->Put("p" + std::to_string(t) + "-" + std::to_string(round));
          ASSERT_TRUE(store->Get(h).ok());
          (void)store->stats();
        }
      }
    });
  }
  RunAll(&threads, &gate);
  const auto stats = store->stats();
  // 2 batched writers x 60 rounds x 20 nodes + 2 plain writers x 60 nodes.
  EXPECT_EQ(stats.puts, 2u * 60 * 20 + 2u * 60);
  EXPECT_EQ(stats.dup_puts, 0u);
}

// --- Singleflight: concurrent misses on one digest share one fetch --------

TEST(ConcurrencyTest, SingleflightCoalescesConcurrentMisses) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  const std::string payload(2048, 'x');
  const Hash hot = server_store->Put(payload);

  // A long slept round trip keeps the leader's fetch in flight while every
  // other thread arrives: they must wait for its result, not refetch.
  auto client = std::make_shared<ForkbaseClientStore>(
      &servlet, 1 << 20, /*rtt_nanos=*/50'000'000, RttModel::kSleep);

  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      gate.Wait();
      auto got = client->Get(hot);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(**got, payload);
    });
  }
  RunAll(&threads, &gate);

  const auto stats = client->remote_stats();
  // Exactly one thread paid the round trip; everyone else was served from
  // its flight (or, if scheduled very late, from the now-primed cache).
  EXPECT_EQ(stats.remote_gets, 1u);
  EXPECT_EQ(stats.coalesced_gets + stats.cache_hits,
            static_cast<uint64_t>(kThreads - 1));
  EXPECT_GT(stats.coalesced_gets, 0u);

  // The node is cached now: further reads are local.
  ASSERT_TRUE(client->Get(hot).ok());
  EXPECT_EQ(client->remote_stats().remote_gets, 1u);
}

TEST(ConcurrencyTest, SingleflightMissShareSingleNotFound) {
  // All threads miss on a digest the servlet does not have: the error is
  // shared like a result, and nothing is cached.
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  const Hash absent = Sha256::Digest("never stored anywhere");
  auto client = std::make_shared<ForkbaseClientStore>(
      &servlet, 1 << 20, /*rtt_nanos=*/20'000'000, RttModel::kSleep);

  StartGate gate;
  std::vector<std::thread> threads;
  std::atomic<int> not_found{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      gate.Wait();
      auto got = client->Get(absent);
      if (!got.ok() && got.status().IsNotFound()) ++not_found;
    });
  }
  RunAll(&threads, &gate);
  EXPECT_EQ(not_found.load(), kThreads);
  // A failed fetch is not a remote_get; followers still count as coalesced.
  const auto stats = client->remote_stats();
  EXPECT_EQ(stats.remote_gets, 0u);
  EXPECT_GT(stats.coalesced_gets, 0u);
}

// --- Concurrent batched writers through client stores ----------------------

TEST(ConcurrencyTest, ConcurrentWritersBatchOneRttPerCommit) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto server_index = MakeIndex(IndexKind::kPos, server_store);
  auto base = server_index->PutBatch(server_index->EmptyRoot(), MakeKvs(1000));
  ASSERT_TRUE(base.ok());

  StartGate gate;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<ForkbaseClientStore>> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(
        std::make_shared<ForkbaseClientStore>(&servlet, 256 << 10, 0));
  }
  constexpr int kCommits = 8;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto index = server_index->WithStore(clients[t]);
      gate.Wait();
      Hash root = *base;
      for (int c = 0; c < kCommits; ++c) {
        std::vector<KV> batch;
        for (int i = 0; i < 30; ++i) {
          batch.push_back(KV{"w" + std::to_string(t) + "-" + TKey(i),
                             TVal(i, c)});
        }
        auto next = index->PutBatch(root, batch);
        ASSERT_TRUE(next.ok());
        root = *next;
      }
    });
  }
  RunAll(&threads, &gate);
  for (const auto& c : clients) {
    // Each commit shipped its whole staged batch in exactly one upload RPC.
    EXPECT_EQ(c->remote_stats().remote_puts,
              static_cast<uint64_t>(kCommits));
  }
}

// --- Optimistic branch commits: N writers race real CommitWithMerge -------
//
// Scheduler-driven races over the whole OCC stack (BranchManager head CAS
// + merge retries + staged batches). The OccStressTest suite also runs as
// the `stress`-labeled CTest entry (ctest -L stress) with SIRI_STRESS=1,
// which scales the workload up — that long configuration is what the TSan
// CI job exercises; the default size keeps plain `ctest` wall time flat.

/// Workload multiplier: 1 by default, larger under SIRI_STRESS=1.
int StressFactor() {
  const char* e = std::getenv("SIRI_STRESS");
  return (e != nullptr && e[0] == '1') ? 4 : 1;
}

/// One writer's loop: read the branch head, commit a batch of
/// writer-private keys on top of it via CommitWithMerge, collect the
/// content-commit hashes it landed.
void RunOccWriter(BranchManager* mgr, ImmutableIndex* index,
                  const std::string& branch, const std::string& writer,
                  int commits, std::vector<Hash>* landed,
                  std::atomic<uint64_t>* merges) {
  MergeCommitOptions opts;
  opts.max_retries = 256;
  for (int c = 0; c < commits; ++c) {
    auto head = mgr->Head(branch);
    ASSERT_TRUE(head.ok());
    auto head_commit = mgr->ReadCommit(*head);
    ASSERT_TRUE(head_commit.ok());
    std::vector<KV> batch;
    for (int k = 0; k < 4; ++k) {
      batch.push_back(KV{writer + "/c" + std::to_string(c) + "/k" +
                             std::to_string(k),
                         "v" + std::to_string(c)});
    }
    auto root = index->PutBatch(head_commit->root, std::move(batch));
    ASSERT_TRUE(root.ok());
    // Hand the core to another writer inside the widest race window (root
    // built, head not yet CASed) so conflicts materialize even on a
    // single-core host where threads otherwise run their loops back to
    // back.
    std::this_thread::yield();
    auto res = CommitWithMerge(mgr, index, branch, *root, writer,
                               "c" + std::to_string(c), *head, opts);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    landed->push_back(res->commit);
    merges->fetch_add(res->merge_commits, std::memory_order_relaxed);
  }
}

/// Asserts the OCC invariants for one branch after the writers joined:
/// every landed content commit is reachable from the final head exactly
/// once, sequences increase strictly along first-parent chains, and no
/// writer's update was lost.
void CheckBranchInvariants(BranchManager* mgr, const ImmutableIndex& index,
                           const std::string& branch,
                           const std::vector<std::vector<Hash>>& landed,
                           uint64_t merges, int commits_per_writer) {
  auto head = mgr->Head(branch);
  ASSERT_TRUE(head.ok());
  auto log = mgr->Log(*head, std::numeric_limits<size_t>::max());
  ASSERT_TRUE(log.ok());

  // Reachable exactly once: the history walk (which deduplicates) must
  // contain every landed content commit, and the total count must equal
  // initial + content commits + merge commits — nothing lost, nothing
  // double-counted.
  std::map<std::string, int> occurrences;
  for (const auto& [h, c] : *log) occurrences[h.ToHex()]++;
  uint64_t total_content = 0;
  for (const auto& per_writer : landed) {
    total_content += per_writer.size();
    for (const Hash& h : per_writer) {
      EXPECT_EQ(occurrences[h.ToHex()], 1)
          << "content commit not reachable exactly once";
    }
  }
  EXPECT_EQ(log->size(), 1 + total_content + merges);

  // Strictly increasing sequence along the first-parent chain.
  Hash cursor = *head;
  for (;;) {
    auto c = mgr->ReadCommit(cursor);
    ASSERT_TRUE(c.ok());
    if (c->parents.empty()) break;
    auto first_parent = mgr->ReadCommit(c->parents[0]);
    ASSERT_TRUE(first_parent.ok());
    EXPECT_LT(first_parent->sequence, c->sequence);
    cursor = c->parents[0];
  }

  // No update lost: every writer's every key is present at the final head.
  auto head_commit = mgr->ReadCommit(*head);
  ASSERT_TRUE(head_commit.ok());
  for (size_t w = 0; w < landed.size(); ++w) {
    for (int c = 0; c < commits_per_writer; ++c) {
      for (int k = 0; k < 4; ++k) {
        const std::string key = "w" + std::to_string(w) + "/c" +
                                std::to_string(c) + "/k" + std::to_string(k);
        auto got = index.Get(head_commit->root, key, nullptr);
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(got->has_value()) << "lost update: " << key;
      }
    }
  }
}

TEST(OccStressTest, WritersRaceOneBranch) {
  const int commits = 5 * StressFactor();
  auto store = NewInMemoryNodeStore();
  auto index = MakeIndex(IndexKind::kPos, store);
  BranchManager mgr(store);
  auto base = index->PutBatch(index->EmptyRoot(), MakeKvs(200));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(mgr.CommitOnBranch("main", *base, "init", "base").ok());

  StartGate gate;
  std::atomic<uint64_t> merges{0};
  std::vector<std::vector<Hash>> landed(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.Wait();
      RunOccWriter(&mgr, index.get(), "main", "w" + std::to_string(t),
                   commits, &landed[t], &merges);
    });
  }
  RunAll(&threads, &gate);

  CheckBranchInvariants(&mgr, *index, "main", landed, merges.load(), commits);
  const BranchStats stats = mgr.branch_stats("main");
  EXPECT_EQ(stats.commits,
            1 + static_cast<uint64_t>(kThreads) * commits);
  EXPECT_EQ(stats.merge_retries, stats.cas_failures);
}

TEST(OccStressTest, WriterGroupsRaceManyBranches) {
  // N x M writer threads over M branches (N writers per branch): races
  // within a branch, independence across branches (different shards of
  // the head table move concurrently).
  constexpr int kBranches = 3;
  constexpr int kWritersPerBranch = 3;
  const int commits = 4 * StressFactor();

  auto store = NewInMemoryNodeStore();
  auto index = MakeIndex(IndexKind::kPos, store);
  BranchManager mgr(store);
  auto base = index->PutBatch(index->EmptyRoot(), MakeKvs(200));
  ASSERT_TRUE(base.ok());
  for (int b = 0; b < kBranches; ++b) {
    ASSERT_TRUE(
        mgr.CommitOnBranch("b" + std::to_string(b), *base, "init", "base")
            .ok());
  }

  StartGate gate;
  std::atomic<uint64_t> merges[kBranches] = {};
  std::vector<std::vector<Hash>> landed[kBranches];
  for (int b = 0; b < kBranches; ++b) landed[b].resize(kWritersPerBranch);
  std::vector<std::thread> threads;
  for (int b = 0; b < kBranches; ++b) {
    for (int t = 0; t < kWritersPerBranch; ++t) {
      threads.emplace_back([&, b, t] {
        gate.Wait();
        RunOccWriter(&mgr, index.get(), "b" + std::to_string(b),
                     "w" + std::to_string(t), commits, &landed[b][t],
                     &merges[b]);
      });
    }
  }
  RunAll(&threads, &gate);

  for (int b = 0; b < kBranches; ++b) {
    SCOPED_TRACE("branch b" + std::to_string(b));
    CheckBranchInvariants(&mgr, *index, "b" + std::to_string(b), landed[b],
                          merges[b].load(), commits);
  }
}

// --- ProofNodeStore stats under concurrent verification -------------------

TEST(ConcurrencyTest, SharedProofStoreConcurrentGets) {
  auto store = NewInMemoryNodeStore();
  auto index = MakeIndex(IndexKind::kMpt, store);
  auto root = index->PutBatch(index->EmptyRoot(), MakeKvs(500));
  ASSERT_TRUE(root.ok());
  auto proof = index->GetProof(*root, TKey(123));
  ASSERT_TRUE(proof.ok());

  // One proof-backed store shared across verifier threads: Get bumps the
  // stats counters on every call.
  auto proof_store = std::make_shared<ProofNodeStore>(*proof);
  auto verifier = index->WithStore(proof_store);

  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      gate.Wait();
      for (int i = 0; i < 300; ++i) {
        auto got = verifier->Get(*root, TKey(123), nullptr);
        ASSERT_TRUE(got.ok());
        ASSERT_TRUE(got->has_value());
      }
    });
  }
  RunAll(&threads, &gate);
  EXPECT_GT(proof_store->stats().gets, 0u);
}

// --- Group fsync x ref-log appends ----------------------------------------

TEST(ConcurrencyTest, RefLogAppendsRideGroupFsyncWithoutReordering) {
  // K writers commit on their own branches of one BranchManager whose page
  // store is a FileNodeStore with the wait-a-little group-fsync window on
  // and whose heads mirror into an attached ref log. The commit path's
  // ordering contract — ref-log append happens under the shard lock AFTER
  // the page flush — means a recovered head can never point at a commit
  // (or an index root) the recovered page log does not contain. A toggler
  // thread flips the group window while flushes are in flight: regression
  // coverage for the syncer reading group_flush_window_micros outside the
  // store lock (the TSan preset is what catches a reintroduction).
  const std::string tag = std::to_string(getpid());
  const std::string pages_path =
      ::testing::TempDir() + "/siri_gcref_pages_" + tag + ".log";
  const std::string refs_path =
      ::testing::TempDir() + "/siri_gcref_refs_" + tag + ".log";
  std::remove(pages_path.c_str());
  std::remove(refs_path.c_str());

  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 12;
  std::map<std::string, Hash> final_heads;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(pages_path, &store).ok());
    store->set_group_flush_window_micros(200);
    BranchManager mgr(store);
    ASSERT_TRUE(mgr.AttachRefLog(refs_path).ok());

    StartGate gate;
    std::atomic<bool> stop_toggling{false};
    std::atomic<int> failures{0};
    std::thread toggler([&] {
      gate.Wait();
      uint64_t w = 0;
      while (!stop_toggling.load(std::memory_order_acquire)) {
        store->set_group_flush_window_micros(150 + (w++ % 2) * 150);
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        gate.Wait();
        const std::string branch = "b" + std::to_string(t);
        for (int c = 0; c < kCommitsPerWriter; ++c) {
          // The "index root" of this commit: one unique durable page.
          const Hash root = store->Put("page-" + std::to_string(t) + "-" +
                                       std::to_string(c));
          auto landed = mgr.CommitOnBranch(branch, root, "w" + std::to_string(t),
                                           "c" + std::to_string(c));
          if (!landed.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    RunAll(&writers, &gate);
    stop_toggling.store(true, std::memory_order_release);
    toggler.join();
    ASSERT_EQ(failures.load(), 0);
    EXPECT_GE(store->fsync_count(), 1u);

    for (int t = 0; t < kWriters; ++t) {
      const std::string branch = "b" + std::to_string(t);
      auto head = mgr.Head(branch);
      ASSERT_TRUE(head.ok()) << branch;
      final_heads[branch] = *head;
    }
  }

  // Reopen both logs fresh (the crash-free restart): every branch comes
  // back at exactly its final head, and each recovered head's commit
  // object and the index root it points at exist in the recovered pages.
  std::shared_ptr<FileNodeStore> recovered;
  ASSERT_TRUE(FileNodeStore::Open(pages_path, &recovered).ok());
  EXPECT_EQ(recovered->recovered_truncations(), 0u);
  BranchManager recovered_mgr(recovered);
  ASSERT_TRUE(recovered_mgr.AttachRefLog(refs_path).ok());
  EXPECT_EQ(recovered_mgr.ref_log()->recovered_truncations(), 0u);
  ASSERT_EQ(recovered_mgr.ListBranches().size(),
            static_cast<size_t>(kWriters));
  for (const auto& [branch, head] : final_heads) {
    auto got = recovered_mgr.Head(branch);
    ASSERT_TRUE(got.ok()) << branch;
    EXPECT_EQ(*got, head) << branch;
    auto commit = recovered_mgr.ReadCommit(*got);
    ASSERT_TRUE(commit.ok()) << branch;
    EXPECT_TRUE(recovered->Contains(commit->root)) << branch;
  }
  std::remove(pages_path.c_str());
  std::remove(refs_path.c_str());
}

}  // namespace
}  // namespace siri
