// Copyright (c) 2026 The siri Authors. MIT license.
//
// Multithreaded stress tests for the thread-safety contract of the store
// and system layers (node_store.h: "Implementations must be thread-safe").
// These tests are meaningful under ThreadSanitizer (cmake --preset tsan):
// a data race anywhere in the store, cache, or client path fails the run.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "crypto/sha256.h"
#include "store/staging_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

constexpr int kThreads = 4;

/// Releases all workers at once so their critical sections overlap.
class StartGate {
 public:
  void Wait() const {
    while (!go_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  void Open() { go_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> go_{false};
};

void RunAll(std::vector<std::thread>* threads, StartGate* gate) {
  gate->Open();
  for (auto& t : *threads) t.join();
}

// --- NodeCache ------------------------------------------------------------

TEST(ConcurrencyTest, NodeCacheConcurrentInsertLookup) {
  NodeCache cache(64 << 10);
  // Pre-populate a shared working set every thread re-reads.
  std::vector<Hash> hot;
  for (int i = 0; i < 64; ++i) {
    const std::string payload =
        std::string(128, 'a' + (i % 26)) + std::to_string(i);
    const Hash h = Sha256::Digest(payload);
    cache.Insert(h, std::make_shared<const std::string>(payload));
    hot.push_back(h);
  }

  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.Wait();
      for (int round = 0; round < 400; ++round) {
        // Shared lookups race on the LRU recency list.
        for (const Hash& h : hot) cache.Lookup(h);
        // Private inserts churn the eviction path.
        const std::string payload =
            "t" + std::to_string(t) + "r" + std::to_string(round);
        cache.Insert(Sha256::Digest(payload),
                     std::make_shared<const std::string>(payload));
      }
    });
  }
  RunAll(&threads, &gate);
  EXPECT_LE(cache.size_bytes(), cache.capacity_bytes());
}

// --- ForkbaseClientStore (the §5.6 boundary) ------------------------------

TEST(ConcurrencyTest, SharedClientStoreConcurrentReaders) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);

  auto server_index = MakeIndex(IndexKind::kPos, server_store);
  auto root = server_index->PutBatch(server_index->EmptyRoot(), MakeKvs(3000));
  ASSERT_TRUE(root.ok());

  // ONE client store shared by all reader threads: every Get races on the
  // cache's LRU bookkeeping and on RemoteStats.
  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 256 << 10, 0);
  auto client_index = server_index->WithStore(client_store);

  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.Wait();
      for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 600; ++i) {
          auto got = client_index->Get(*root, TKey((i * 7 + t) % 3000), nullptr);
          ASSERT_TRUE(got.ok());
          ASSERT_TRUE(got->has_value());
        }
      }
    });
  }
  RunAll(&threads, &gate);

  const auto stats = client_store->remote_stats();
  EXPECT_GT(stats.cache_hits + stats.remote_gets, 0u);
}

TEST(ConcurrencyTest, ManyClientsOneServlet) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto server_index = MakeIndex(IndexKind::kPos, server_store);
  auto root = server_index->PutBatch(server_index->EmptyRoot(), MakeKvs(2000));
  ASSERT_TRUE(root.ok());

  StartGate gate;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<ForkbaseClientStore>> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(
        std::make_shared<ForkbaseClientStore>(&servlet, 128 << 10, 0));
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto index = server_index->WithStore(clients[t]);
      gate.Wait();
      for (int i = 0; i < 2000; ++i) {
        auto got = index->Get(*root, TKey(i % 2000), nullptr);
        ASSERT_TRUE(got.ok());
      }
    });
  }
  RunAll(&threads, &gate);
  for (const auto& c : clients) {
    EXPECT_GT(c->remote_stats().remote_gets, 0u);
  }
}

// --- Shared store: concurrent Get/Put/Scan over all four structures -------

TEST(ConcurrencyTest, ConcurrentGetPutScanAllStructures) {
  for (IndexKind kind : AllKinds()) {
    SCOPED_TRACE(KindName(kind));
    auto store = NewInMemoryNodeStore();
    auto index = MakeIndex(kind, store);
    auto base = index->PutBatch(index->EmptyRoot(), MakeKvs(800));
    ASSERT_TRUE(base.ok());

    StartGate gate;
    std::vector<std::thread> threads;
    // Writers derive fresh versions from the shared base (copy-on-write:
    // no coordination needed beyond the store itself).
    for (int w = 0; w < 2; ++w) {
      threads.emplace_back([&, w] {
        gate.Wait();
        Hash root = *base;
        for (int round = 0; round < 6; ++round) {
          std::vector<KV> batch;
          for (int i = 0; i < 40; ++i) {
            batch.push_back(KV{"w" + std::to_string(w) + "-" + TKey(i),
                               TVal(i, round)});
          }
          auto next = index->PutBatch(root, batch);
          ASSERT_TRUE(next.ok());
          root = *next;
        }
      });
    }
    // Readers hammer the base version with point lookups and scans.
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&, r] {
        gate.Wait();
        for (int round = 0; round < 4; ++round) {
          for (int i = 0; i < 200; ++i) {
            auto got = index->Get(*base, TKey((i * 3 + r) % 800), nullptr);
            ASSERT_TRUE(got.ok());
            ASSERT_TRUE(got->has_value());
          }
          uint64_t seen = 0;
          ASSERT_TRUE(index->Scan(*base, [&seen](Slice, Slice) { ++seen; }).ok());
          EXPECT_EQ(seen, 800u);
        }
      });
    }
    RunAll(&threads, &gate);
  }
}

// --- Sharded InMemoryNodeStore under mixed Put/PutMany/Get ----------------

TEST(ConcurrencyTest, ShardedStoreConcurrentBatchedWrites) {
  // Writers flush batches (one lock per touched shard), other writers use
  // per-node Put, readers Get and scan the stats — all concurrently. Under
  // TSan this covers the per-shard locking and the atomic op counters.
  auto store = NewInMemoryNodeStore();
  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.Wait();
      for (int round = 0; round < 60; ++round) {
        if (t % 2 == 0) {
          // Batched writer: staged batch -> one PutMany.
          StagingNodeStore staging(store.get());
          std::vector<Hash> mine;
          for (int i = 0; i < 20; ++i) {
            mine.push_back(staging.Put("t" + std::to_string(t) + "r" +
                                       std::to_string(round) + "i" +
                                       std::to_string(i)));
          }
          staging.FlushBatch();
          for (const Hash& h : mine) ASSERT_TRUE(store->Get(h).ok());
        } else {
          // Per-node writer + reader.
          const Hash h =
              store->Put("p" + std::to_string(t) + "-" + std::to_string(round));
          ASSERT_TRUE(store->Get(h).ok());
          (void)store->stats();
        }
      }
    });
  }
  RunAll(&threads, &gate);
  const auto stats = store->stats();
  // 2 batched writers x 60 rounds x 20 nodes + 2 plain writers x 60 nodes.
  EXPECT_EQ(stats.puts, 2u * 60 * 20 + 2u * 60);
  EXPECT_EQ(stats.dup_puts, 0u);
}

// --- Singleflight: concurrent misses on one digest share one fetch --------

TEST(ConcurrencyTest, SingleflightCoalescesConcurrentMisses) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  const std::string payload(2048, 'x');
  const Hash hot = server_store->Put(payload);

  // A long slept round trip keeps the leader's fetch in flight while every
  // other thread arrives: they must wait for its result, not refetch.
  auto client = std::make_shared<ForkbaseClientStore>(
      &servlet, 1 << 20, /*rtt_nanos=*/50'000'000, RttModel::kSleep);

  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      gate.Wait();
      auto got = client->Get(hot);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(**got, payload);
    });
  }
  RunAll(&threads, &gate);

  const auto stats = client->remote_stats();
  // Exactly one thread paid the round trip; everyone else was served from
  // its flight (or, if scheduled very late, from the now-primed cache).
  EXPECT_EQ(stats.remote_gets, 1u);
  EXPECT_EQ(stats.coalesced_gets + stats.cache_hits,
            static_cast<uint64_t>(kThreads - 1));
  EXPECT_GT(stats.coalesced_gets, 0u);

  // The node is cached now: further reads are local.
  ASSERT_TRUE(client->Get(hot).ok());
  EXPECT_EQ(client->remote_stats().remote_gets, 1u);
}

TEST(ConcurrencyTest, SingleflightMissShareSingleNotFound) {
  // All threads miss on a digest the servlet does not have: the error is
  // shared like a result, and nothing is cached.
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  const Hash absent = Sha256::Digest("never stored anywhere");
  auto client = std::make_shared<ForkbaseClientStore>(
      &servlet, 1 << 20, /*rtt_nanos=*/20'000'000, RttModel::kSleep);

  StartGate gate;
  std::vector<std::thread> threads;
  std::atomic<int> not_found{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      gate.Wait();
      auto got = client->Get(absent);
      if (!got.ok() && got.status().IsNotFound()) ++not_found;
    });
  }
  RunAll(&threads, &gate);
  EXPECT_EQ(not_found.load(), kThreads);
  // A failed fetch is not a remote_get; followers still count as coalesced.
  const auto stats = client->remote_stats();
  EXPECT_EQ(stats.remote_gets, 0u);
  EXPECT_GT(stats.coalesced_gets, 0u);
}

// --- Concurrent batched writers through client stores ----------------------

TEST(ConcurrencyTest, ConcurrentWritersBatchOneRttPerCommit) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  auto server_index = MakeIndex(IndexKind::kPos, server_store);
  auto base = server_index->PutBatch(server_index->EmptyRoot(), MakeKvs(1000));
  ASSERT_TRUE(base.ok());

  StartGate gate;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<ForkbaseClientStore>> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(
        std::make_shared<ForkbaseClientStore>(&servlet, 256 << 10, 0));
  }
  constexpr int kCommits = 8;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto index = server_index->WithStore(clients[t]);
      gate.Wait();
      Hash root = *base;
      for (int c = 0; c < kCommits; ++c) {
        std::vector<KV> batch;
        for (int i = 0; i < 30; ++i) {
          batch.push_back(KV{"w" + std::to_string(t) + "-" + TKey(i),
                             TVal(i, c)});
        }
        auto next = index->PutBatch(root, batch);
        ASSERT_TRUE(next.ok());
        root = *next;
      }
    });
  }
  RunAll(&threads, &gate);
  for (const auto& c : clients) {
    // Each commit shipped its whole staged batch in exactly one upload RPC.
    EXPECT_EQ(c->remote_stats().remote_puts,
              static_cast<uint64_t>(kCommits));
  }
}

// --- ProofNodeStore stats under concurrent verification -------------------

TEST(ConcurrencyTest, SharedProofStoreConcurrentGets) {
  auto store = NewInMemoryNodeStore();
  auto index = MakeIndex(IndexKind::kMpt, store);
  auto root = index->PutBatch(index->EmptyRoot(), MakeKvs(500));
  ASSERT_TRUE(root.ok());
  auto proof = index->GetProof(*root, TKey(123));
  ASSERT_TRUE(proof.ok());

  // One proof-backed store shared across verifier threads: Get bumps the
  // stats counters on every call.
  auto proof_store = std::make_shared<ProofNodeStore>(*proof);
  auto verifier = index->WithStore(proof_store);

  StartGate gate;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      gate.Wait();
      for (int i = 0; i < 300; ++i) {
        auto got = verifier->Get(*root, TKey(123), nullptr);
        ASSERT_TRUE(got.ok());
        ASSERT_TRUE(got->has_value());
      }
    });
  }
  RunAll(&threads, &gate);
  EXPECT_GT(proof_store->stats().gets, 0u);
}

}  // namespace
}  // namespace siri
