// Copyright (c) 2026 The siri Authors. MIT license.
//
// MVMB+-Tree baseline: node splitting, balanced packing, order dependence
// (the Figure 2 phenomenon that disqualifies B+-trees from SIRI), and
// copy-on-write versioning.

#include <gtest/gtest.h>

#include "index/mvmb/mvmb_tree.h"
#include "index/ordered/tree_cursor.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

class MvmbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    tree_ = std::make_unique<MvmbTree>(store_);
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<MvmbTree> tree_;
};

TEST_F(MvmbTest, NodesRespectByteBudget) {
  auto root = tree_->PutBatch(Hash::Zero(), MakeKvs(3000));
  ASSERT_TRUE(root.ok());
  PageSet pages;
  ASSERT_TRUE(tree_->CollectPages(*root, &pages).ok());
  for (const Hash& h : pages) {
    auto size = store_->SizeOf(h);
    ASSERT_TRUE(size.ok());
    // Packing targets max_node_bytes with slack for one oversized entry.
    EXPECT_LT(*size, 2 * tree_->options().max_node_bytes);
  }
}

TEST_F(MvmbTest, TreeIsBalancedEnough) {
  auto root = tree_->PutBatch(Hash::Zero(), MakeKvs(10000));
  ASSERT_TRUE(root.ok());
  auto height = LevelCursor::TreeHeight(store_.get(), *root);
  ASSERT_TRUE(height.ok());
  // ~3 entries/leaf at 1KB, fanout ~25 internal: height stays modest.
  EXPECT_LE(*height, 6);
  EXPECT_GE(*height, 2);
}

TEST_F(MvmbTest, OrderDependentStructure) {
  // The defining non-SIRI behavior (Figure 2): same records, different
  // insertion orders, different digests — while content matches.
  auto kvs = MakeKvs(1000);
  auto forward = tree_->PutBatch(Hash::Zero(), kvs);
  ASSERT_TRUE(forward.ok());

  Hash reverse_root = Hash::Zero();
  for (auto it = kvs.rbegin(); it != kvs.rend(); it += 100) {
    std::vector<KV> batch(it, it + 100);
    auto next = tree_->PutBatch(reverse_root, batch);
    ASSERT_TRUE(next.ok());
    reverse_root = *next;
  }
  EXPECT_NE(*forward, reverse_root);
  EXPECT_EQ(Dump(*tree_, *forward), Dump(*tree_, reverse_root));
}

TEST_F(MvmbTest, BulkLoadMatchesContent) {
  auto kvs = MakeKvs(2000);
  auto bulk = tree_->BuildFromSorted(kvs);
  ASSERT_TRUE(bulk.ok());
  std::map<std::string, std::string> expected;
  for (const auto& kv : kvs) expected[kv.key] = kv.value;
  EXPECT_EQ(Dump(*tree_, *bulk), expected);
}

TEST_F(MvmbTest, SplitPreservesAllRecordsAcrossBoundary) {
  // Fill one leaf to overflow and verify the split loses nothing.
  std::vector<KV> kvs;
  for (int i = 0; i < 30; ++i) {
    kvs.push_back(KV{TKey(i), std::string(100, 'a' + (i % 26))});
  }
  Hash root = Hash::Zero();
  for (const auto& kv : kvs) {
    auto next = tree_->Put(root, kv.key, kv.value);
    ASSERT_TRUE(next.ok());
    root = *next;
  }
  EXPECT_EQ(Dump(*tree_, root).size(), 30u);
}

TEST_F(MvmbTest, CopyOnWriteSharesSubtrees) {
  auto base = tree_->PutBatch(Hash::Zero(), MakeKvs(5000));
  ASSERT_TRUE(base.ok());
  auto next = tree_->Put(*base, TKey(2500), "x");
  ASSERT_TRUE(next.ok());
  PageSet p1, p2;
  ASSERT_TRUE(tree_->CollectPages(*base, &p1).ok());
  ASSERT_TRUE(tree_->CollectPages(*next, &p2).ok());
  size_t fresh = 0;
  for (const Hash& h : p2) {
    if (p1.count(h) == 0) ++fresh;
  }
  // Only the root-to-leaf path is rewritten.
  EXPECT_LE(fresh, 8u);
}

TEST_F(MvmbTest, DeletesLeaveUnderfullNodesButCorrectContent) {
  auto root = tree_->PutBatch(Hash::Zero(), MakeKvs(1000));
  ASSERT_TRUE(root.ok());
  std::vector<std::string> dels;
  for (int i = 0; i < 1000; i += 2) dels.push_back(TKey(i));
  auto after = tree_->DeleteBatch(*root, dels);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Dump(*tree_, *after).size(), 500u);
}

TEST_F(MvmbTest, EmptyRootAfterDeletingEverything) {
  auto root = tree_->PutBatch(Hash::Zero(), MakeKvs(100));
  ASSERT_TRUE(root.ok());
  std::vector<std::string> dels;
  for (int i = 0; i < 100; ++i) dels.push_back(TKey(i));
  auto after = tree_->DeleteBatch(*root, dels);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->IsZero());
}

TEST_F(MvmbTest, HugeSingleValueGetsOwnNode) {
  auto root = tree_->Put(Hash::Zero(), "big", std::string(10000, 'x'));
  ASSERT_TRUE(root.ok());
  auto got = tree_->Get(*root, "big", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value().size(), 10000u);
}

}  // namespace
}  // namespace siri
