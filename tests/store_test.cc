// Copyright (c) 2026 The siri Authors. MIT license.
//
// Content-addressed node store: idempotent puts, statistics, page-set
// accounting, and fault injection plumbing.

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "crypto/sha256.h"
#include "store/node_store.h"

namespace siri {
namespace {

TEST(NodeStoreTest, PutReturnsContentDigest) {
  auto store = NewInMemoryNodeStore();
  const Hash h = store->Put("hello node");
  EXPECT_EQ(h, Sha256::Digest("hello node"));
}

TEST(NodeStoreTest, GetReturnsStoredBytes) {
  auto store = NewInMemoryNodeStore();
  const Hash h = store->Put("payload");
  auto got = store->Get(h);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "payload");
}

TEST(NodeStoreTest, GetMissingIsNotFound) {
  auto store = NewInMemoryNodeStore();
  auto got = store->Get(Sha256::Digest("never stored"));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST(NodeStoreTest, DuplicatePutIsDeduplicated) {
  auto store = NewInMemoryNodeStore();
  store->Put("same");
  store->Put("same");
  store->Put("same");
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.dup_puts, 2u);
  EXPECT_EQ(stats.unique_nodes, 1u);
  EXPECT_EQ(stats.unique_bytes, 4u);
}

TEST(NodeStoreTest, StatsTrackBytes) {
  auto store = NewInMemoryNodeStore();
  store->Put(std::string(100, 'a'));
  store->Put(std::string(50, 'b'));
  const auto stats = store->stats();
  EXPECT_EQ(stats.put_bytes, 150u);
  EXPECT_EQ(stats.unique_bytes, 150u);
}

TEST(NodeStoreTest, ResetOpCountersKeepsResidency) {
  auto store = NewInMemoryNodeStore();
  const Hash h = store->Put("x");
  (void)store->Get(h);
  store->ResetOpCounters();
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 0u);
  EXPECT_EQ(stats.gets, 0u);
  EXPECT_EQ(stats.unique_nodes, 1u);
  EXPECT_TRUE(store->Contains(h));
}

TEST(NodeStoreTest, SizeOfReportsSerializedSize) {
  auto store = NewInMemoryNodeStore();
  const Hash h = store->Put(std::string(321, 'z'));
  auto size = store->SizeOf(h);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 321u);
  EXPECT_FALSE(store->SizeOf(Sha256::Digest("absent")).ok());
}

TEST(NodeStoreTest, BytesOfSumsPageSet) {
  auto store = NewInMemoryNodeStore();
  PageSet pages;
  pages.insert(store->Put(std::string(10, 'a')));
  pages.insert(store->Put(std::string(20, 'b')));
  EXPECT_EQ(store->BytesOf(pages), 30u);
}

TEST(NodeStoreTest, ConcurrentPutsAndGetsAreSafe) {
  auto store = NewInMemoryNodeStore();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      Rng rng(t);
      for (int i = 0; i < 500; ++i) {
        const Hash h = store->Put(rng.Bytes(64));
        auto got = store->Get(h);
        ASSERT_TRUE(got.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store->stats().puts, 2000u);
}

TEST(FaultyNodeStoreTest, CorruptNodeSurfacesCorruption) {
  auto base = NewInMemoryNodeStore();
  FaultyNodeStore faulty(base);
  const Hash h = faulty.Put("data");
  faulty.CorruptNode(h);
  auto got = faulty.Get(h);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
}

TEST(FaultyNodeStoreTest, DropNodeSurfacesNotFound) {
  auto base = NewInMemoryNodeStore();
  FaultyNodeStore faulty(base);
  const Hash h = faulty.Put("data");
  faulty.DropNode(h);
  EXPECT_FALSE(faulty.Contains(h));
  auto got = faulty.Get(h);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST(FaultyNodeStoreTest, ClearFaultsRestoresAccess) {
  auto base = NewInMemoryNodeStore();
  FaultyNodeStore faulty(base);
  const Hash h = faulty.Put("data");
  faulty.CorruptNode(h);
  faulty.ClearFaults();
  auto got = faulty.Get(h);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "data");
}

}  // namespace
}  // namespace siri
